"""Benchmark fixtures.

The benches regenerate the paper's tables/figures at the ``medium``
preset.  Training is expensive (~15 min CPU), so the trained solvers
are cached on disk under ``.artifacts/medium`` — the first benchmark
session pays the cost, later sessions load in seconds.

Numeric results are also dumped to ``.artifacts/results/*.json`` so the
EXPERIMENTS.md paper-vs-measured tables can cite exact values.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.pipeline import (
    DEFAULT_CACHE,
    TrainedSolvers,
    medium_preset,
    train_solvers,
)

RESULTS_DIR = Path(DEFAULT_CACHE) / "results"


@pytest.fixture(scope="session")
def solvers() -> TrainedSolvers:
    """Medium-preset trained MLP + CNN (cached on disk)."""
    return train_solvers(medium_preset(), cache_dir=DEFAULT_CACHE, include_cnn=True)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def dump_result(results_dir: Path, name: str, payload: dict) -> None:
    """Persist a benchmark's numeric outcome for EXPERIMENTS.md."""
    (results_dir / f"{name}.json").write_text(json.dumps(payload, indent=2))
