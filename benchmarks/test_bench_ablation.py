"""Ablations called out in the paper's Sec. VII.

* *Binning order* — "the usage of higher-order interpolation functions
  would likely improve the performance of the DL electric field
  solver": compare NGP vs CIC phase-space binning on identical states.
* *PIC interpolation order* — NGP/CIC/TSC deposit noise, the artifact
  source the paper blames for binning noise.
* *Network width* — MLP capacity vs regression error at fixed budget.
* *Vlasov training data* — the paper's proposed noise-free data source
  vs PIC-generated data on the same architecture.
"""

import numpy as np
import pytest
from conftest import dump_result

from repro.config import SimulationConfig
from repro.datagen.campaign import harvest_simulation
from repro.models.architectures import build_mlp
from repro.nn.losses import MSELoss
from repro.nn.metrics import mean_absolute_error
from repro.nn.optimizers import Adam
from repro.nn.training import Trainer
from repro.phasespace.binning import PhaseSpaceGrid
from repro.phasespace.normalization import MinMaxNormalizer

pytestmark = pytest.mark.slow  # needs the medium-preset trained solvers (~15 min cold)


def _train_mlp_on(data, hidden, epochs=25, lr=1e-3, seed=0):
    """Train a small MLP on a dataset; return its held-out MAE."""
    train, _, test = data.split(n_val=1, n_test=max(16, len(data) // 10), rng=seed)
    norm = MinMaxNormalizer().fit(train.inputs)
    model = build_mlp(
        input_size=data.ps_grid.size, output_size=data.n_cells,
        hidden_size=hidden, rng=seed,
    )
    trainer = Trainer(model, MSELoss(), Adam(lr=lr))
    trainer.fit(norm.transform(train.flat_inputs()), train.targets,
                epochs=epochs, batch_size=32, rng=seed)
    pred = model.predict(norm.transform(test.flat_inputs()))
    return mean_absolute_error(pred, test.targets)


@pytest.fixture(scope="module")
def ablation_config():
    return SimulationConfig(n_cells=32, particles_per_cell=150, n_steps=120,
                            v0=0.2, vth=0.01, seed=21)


def test_binning_order_ablation(ablation_config, results_dir, benchmark):
    """CIC phase-space binning reduces histogram noise vs NGP (Sec. VII)."""
    grid = PhaseSpaceGrid(n_x=32, n_v=16, box_length=ablation_config.box_length)

    def run():
        maes = {}
        for order in ("ngp", "cic"):
            data = harvest_simulation(ablation_config, grid, binning=order)
            maes[order] = _train_mlp_on(data, hidden=64)
        return maes

    maes = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  binning MAE: ngp={maes['ngp']:.4e}  cic={maes['cic']:.4e}")
    dump_result(results_dir, "ablation_binning", maes)
    # Both orders must produce a usable regressor; the paper predicts
    # CIC helps — assert it is at least not substantially worse.
    assert maes["cic"] < 1.5 * maes["ngp"]


def test_interpolation_order_noise_ablation(results_dir, benchmark):
    """Deposit shot noise at high k drops with shape-function order."""
    from repro.pic.diagnostics import mode_spectrum
    from repro.pic.simulation import TraditionalPIC

    def run():
        noise = {}
        for order in ("ngp", "cic", "tsc"):
            cfg = SimulationConfig(n_cells=64, particles_per_cell=200, v0=0.2,
                                   vth=0.0, interpolation=order, seed=31)
            sim = TraditionalPIC(cfg)
            noise[order] = float(mode_spectrum(sim.charge_density)[16:].sum())
        return noise

    noise = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  high-k deposit noise: {noise}")
    dump_result(results_dir, "ablation_interpolation", noise)
    assert noise["tsc"] < noise["cic"] < noise["ngp"]


def test_mlp_width_ablation(ablation_config, results_dir, benchmark):
    """Wider MLPs fit the field map better at fixed epochs."""
    grid = PhaseSpaceGrid(n_x=32, n_v=16, box_length=ablation_config.box_length)
    data = harvest_simulation(ablation_config, grid, binning="ngp")

    def run():
        return {width: _train_mlp_on(data, hidden=width) for width in (16, 64, 256)}

    maes = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  width MAE: {maes}")
    dump_result(results_dir, "ablation_width", {str(k): v for k, v in maes.items()})
    assert maes[256] < maes[16]


def test_vlasov_training_data_ablation(results_dir, benchmark):
    """The paper's future-work idea: noise-free Vlasov training pairs.

    Train the same architecture on (a) PIC-harvested pairs and
    (b) Vlasov-harvested pairs, then evaluate both on noise-free
    Vlasov-generated targets from a *different* beam speed.  Observed
    outcome (recorded for EXPERIMENTS.md): at this scale the noise-free
    single-trajectory Vlasov data generalizes *worse* than the noisy but
    more diverse PIC data — the paper's future-work idea needs a sweep
    of Vlasov runs, not just cleaner samples.
    """
    from repro.vlasov.harvest import harvest_vlasov_dataset
    from repro.vlasov.solver import VlasovConfig

    vcfg = VlasovConfig(n_x=32, n_v=32, dt=0.2, n_steps=120, v0=0.2, vth=0.03,
                        perturbation=5e-3)
    grid = PhaseSpaceGrid(n_x=32, n_v=32, box_length=vcfg.box_length)
    pic_cfg = SimulationConfig(n_cells=32, particles_per_cell=150, n_steps=120,
                               v0=0.2, vth=0.03, seed=41)

    def run():
        n_particles = pic_cfg.n_particles
        vlasov_data = harvest_vlasov_dataset(vcfg, grid, n_particles=n_particles)
        pic_data = harvest_simulation(pic_cfg, grid, binning="ngp")
        # Evaluate both on a second, later-seeded Vlasov run (smooth truth).
        eval_cfg = VlasovConfig(n_x=32, n_v=32, dt=0.2, n_steps=80, v0=0.22,
                                vth=0.03, perturbation=5e-3)
        eval_data = harvest_vlasov_dataset(eval_cfg, grid, n_particles=n_particles)

        maes = {}
        for name, data in (("vlasov", vlasov_data), ("pic", pic_data)):
            norm = MinMaxNormalizer().fit(data.inputs)
            model = build_mlp(input_size=grid.size, output_size=32,
                              hidden_size=64, rng=7)
            Trainer(model, MSELoss(), Adam(lr=1e-3)).fit(
                norm.transform(data.flat_inputs()), data.targets,
                epochs=25, batch_size=32, rng=7,
            )
            pred = model.predict(norm.transform(eval_data.flat_inputs()))
            maes[name] = mean_absolute_error(pred, eval_data.targets)
        return maes

    maes = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  training-data MAE on smooth eval states: {maes}")
    dump_result(results_dir, "ablation_vlasov_data", maes)
    # Both data sources must yield a usable regressor (same order of
    # magnitude); which one wins is the recorded finding, not asserted.
    assert maes["vlasov"] < 5.0 * maes["pic"]
    assert maes["pic"] < 5.0 * maes["vlasov"]
