"""Public API v1 — Client overhead + float32-tier throughput gates.

Two gates from the API-redesign ISSUE:

* the :class:`~repro.api.Client` façade must add **less than 5%**
  wall-clock overhead over driving the
  :class:`~repro.service.SimulationService` directly for the same
  mixed-scenario request stream (the envelope is bookkeeping, not a
  second service layer) — and the float64 results it returns must be
  bitwise identical to the direct service results;
* the ``dtype: float32`` tier must serve a 16-request batch at
  **>= 1.5x** the float64 throughput for the same workload (the tier
  exists to halve serving cost where the bitwise guarantee is waived).

The numeric outcome lands in ``.artifacts/results/BENCH_api.json`` and
is uploaded as a CI artifact.  Runs in the CI benchmark smoke job (not
marked ``slow``): a full timing pass takes ~20 s on one CPU core.
"""

import time

import numpy as np
import pytest
from conftest import dump_result

from repro.api import Client, RunRequest
from repro.config import SimulationConfig
from repro.service import ResultStore, SimulationService

# -- Gate 1 workload: a mixed-scenario stream of small requests --------
OVERHEAD_SCENARIOS = ["two_stream", "landau_damping", "bump_on_tail", "cold_beam"]
OVERHEAD_CONFIGS = [
    SimulationConfig(
        n_cells=32, particles_per_cell=60, n_steps=30,
        vth=0.0 if OVERHEAD_SCENARIOS[i % 4] == "cold_beam" else 0.02 + 0.005 * (i % 3),
        scenario=OVERHEAD_SCENARIOS[i % 4], seed=i,
    )
    for i in range(32)
]

# -- Gate 2 workload: batch 16, float64 vs float32 tier ----------------
TIER_BATCH = 16
TIER_CONFIGS = [
    SimulationConfig(
        n_cells=64, particles_per_cell=400, n_steps=40,
        scenario="two_stream", vth=0.025, seed=s,
    )
    for s in range(TIER_BATCH)
]

MAX_CLIENT_OVERHEAD = 0.05
MIN_FLOAT32_SPEEDUP = 1.5


def _interleaved_best(fns, repeats: int = 4) -> list[float]:
    """Best-of timing with the contenders interleaved per repeat."""
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def _serve_direct() -> list:
    """Drive the service layer directly (the pre-v1 calling convention)."""
    with SimulationService(
        max_batch_size=16, store=ResultStore(capacity=64), start=False
    ) as service:
        futures = [service.submit(config) for config in OVERHEAD_CONFIGS]
        service.flush()
        return [future.result() for future in futures]


def _serve_via_client() -> list:
    """The same stream through the public Client façade."""
    with Client(max_batch_size=16, store=ResultStore(capacity=64),
                background=False) as client:
        return client.map([
            RunRequest(config=config, id=f"req-{i}")
            for i, config in enumerate(OVERHEAD_CONFIGS)
        ])


def _serve_tier(dtype: str) -> list:
    configs = (
        TIER_CONFIGS if dtype == "float64"
        else [c.with_updates(dtype="float32") for c in TIER_CONFIGS]
    )
    with Client(max_batch_size=TIER_BATCH, store=ResultStore(capacity=4),
                background=False) as client:
        return client.map(configs)


@pytest.fixture(scope="module")
def measurements() -> dict:
    # Parity first (uncached passes): the client must return bitwise
    # the series the direct service produced for every float64 request.
    direct = _serve_direct()
    via_client = _serve_via_client()
    for served, result in zip(direct, via_client):
        assert result.status == "ok"
        assert result.key == served.key
        for name, values in served.series.items():
            np.testing.assert_array_equal(
                np.asarray(result.series[name]), np.asarray(values),
                err_msg=f"client result differs from direct service in {name!r}",
            )

    t_direct, t_client = _interleaved_best([_serve_direct, _serve_via_client])
    overhead = t_client / t_direct - 1.0

    t64, t32 = _interleaved_best(
        [lambda: _serve_tier("float64"), lambda: _serve_tier("float32")],
        repeats=3,
    )
    return {
        "n_overhead_requests": len(OVERHEAD_CONFIGS),
        "direct_service_s": t_direct,
        "client_s": t_client,
        "client_overhead_fraction": overhead,
        "max_client_overhead_fraction": MAX_CLIENT_OVERHEAD,
        "tier_batch": TIER_BATCH,
        "tier_steps": TIER_CONFIGS[0].n_steps,
        "tier_particles_per_run": TIER_CONFIGS[0].n_particles,
        "float64_s": t64,
        "float32_s": t32,
        "float32_speedup": t64 / t32,
        "min_float32_speedup": MIN_FLOAT32_SPEEDUP,
    }


def test_client_overhead_under_5_percent(measurements, results_dir):
    dump_result(results_dir, "BENCH_api", measurements)
    assert measurements["client_overhead_fraction"] < MAX_CLIENT_OVERHEAD, (
        f"Client façade adds {measurements['client_overhead_fraction']:.1%} "
        f"over direct service calls (budget {MAX_CLIENT_OVERHEAD:.0%})"
    )


def test_float32_tier_at_least_1_5x(measurements, results_dir):
    dump_result(results_dir, "BENCH_api", measurements)
    assert measurements["float32_speedup"] >= MIN_FLOAT32_SPEEDUP, (
        f"float32 tier speedup {measurements['float32_speedup']:.2f}x at "
        f"batch {TIER_BATCH} is below the {MIN_FLOAT32_SPEEDUP}x gate"
    )
