"""Sec. VII distributed-memory claim — communication volume/latency.

"An additional advantage of the DL electric field solver is that it
does not need communication when running ... on distributed memory
systems as all neural networks can be loaded on each process."

Made quantitative: per PIC cycle the traditional field solve needs a
reduce(rho) + bcast(E) (two synchronization points), while the DL solve
needs a single allreduce of the additive phase-space histogram (one
synchronization point).  In 1D the histogram is larger than rho, so the
DL method trades bytes for synchronization latency — the bench prints
the crossover explicitly.
"""

import numpy as np
from conftest import dump_result

from repro.parallel.picparallel import (
    communication_model,
    run_distributed_dl,
    run_distributed_traditional,
)

import pytest

pytestmark = pytest.mark.slow  # needs the medium-preset trained solvers (~15 min cold)


def test_comm_volume_sweep(solvers, results_dir, benchmark):
    """Closed-form sweep over rank counts (matches the simulated runs)."""
    preset = solvers.preset
    grid = preset.campaign.ps_grid
    n_cells = preset.campaign.base_config.n_cells
    benchmark(communication_model, 64, n_cells, grid)
    print()
    print(f"{'ranks':>6} {'trad B/step':>14} {'dl B/step':>14} "
          f"{'trad syncs':>11} {'dl syncs':>9}")
    sweep = {}
    for ranks in (2, 4, 8, 16, 32, 64):
        model = communication_model(ranks, n_cells, grid)
        t, d = model["traditional"], model["dl"]
        print(f"{ranks:>6} {t['bytes_per_step']:>14.0f} {d['bytes_per_step']:>14.0f} "
              f"{t['sync_points_per_step']:>11.1f} {d['sync_points_per_step']:>9.1f}")
        sweep[ranks] = model
        # The paper's claim, quantified: the DL solve always needs fewer
        # synchronization points per cycle.
        assert d["sync_points_per_step"] < t["sync_points_per_step"]
    dump_result(
        results_dir,
        "comm_model",
        {str(k): v for k, v in sweep.items()},
    )


def test_simulated_runs_match_model(solvers, benchmark):
    """Actually run both distributed methods and compare traffic."""
    config = solvers.preset.validation_config(seed=5).with_updates(
        n_steps=10, particles_per_cell=50
    )

    def run_both():
        trad = run_distributed_traditional(config, n_ranks=4, n_steps=10)
        dl = run_distributed_dl(config, solvers.mlp_solver, n_ranks=4, n_steps=10)
        return trad, dl

    trad, dl = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(f"  traditional: {trad.bytes_per_step:.0f} B/step, "
          f"{trad.sync_points_per_step:.1f} syncs/step")
    print(f"  DL-based:    {dl.bytes_per_step:.0f} B/step, "
          f"{dl.sync_points_per_step:.1f} syncs/step")

    # Field-solve collectives: DL uses exactly one per step.
    assert dl.comm.calls_by_op["allreduce"] == 10
    assert trad.comm.calls_by_op["reduce"] == 10
    assert trad.comm.calls_by_op["bcast"] == 10

    # Physics is identical to the serial methods (spot check).
    assert np.all(np.isfinite(trad.history.as_arrays()["total"]))
    assert np.all(np.isfinite(dl.history.as_arrays()["total"]))
