"""Streaming data campaign vs the materializing harvest — 40 runs.

The same 40-simulation campaign is harvested twice: once through
``run_campaign`` (the pre-streaming materialize-everything path, one
process, results only in memory at the end) and once through
``CampaignStream`` with 4 pool workers, 8-run shards and 2 shards of
prefetch.  The bench asserts the ISSUE's acceptance bar: the
concatenated streamed shards are bitwise identical to the materialized
dataset, peak in-flight work never exceeds ``shard_size x
prefetch_depth`` runs (the memory bound — 16 of 40 runs resident), and
streaming with workers is at least 1.5x faster end to end (shard
writes included).

The speedup gate needs real parallel hardware, so it is skipped below
4 usable cores (numbers still measured and dumped).  The outcome lands
in ``.artifacts/results/BENCH_datagen.json`` and is uploaded as a CI
artifact; CI's runners enforce the gate.
"""

import os
import time

import numpy as np
import pytest
from conftest import dump_result

from repro.config import SimulationConfig
from repro.datagen import CampaignConfig, CampaignStream, run_campaign
from repro.phasespace.binning import PhaseSpaceGrid

WORKERS = 4
SHARD_SIZE = 8
PREFETCH = 2

# 4 x 2 x 5 = 40 simulations, ~100 steps of ~6.4k particles each:
# heavy enough that harvest compute dominates shard npz I/O, light
# enough to keep the bench under ~2 min single-process.
_BASE = SimulationConfig(
    n_cells=64, particles_per_cell=100, n_steps=100, dt=0.2, seed=0
)
CAMPAIGN = CampaignConfig(
    base_config=_BASE,
    v0_values=(0.16, 0.18, 0.2, 0.22),
    vth_values=(0.01, 0.02),
    experiments_per_combo=5,
    ps_grid=PhaseSpaceGrid(n_x=32, n_v=16, box_length=_BASE.box_length),
)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_streaming_speedup_memory_bound_and_parity(results_dir, tmp_path):
    cores = _usable_cores()

    start = time.perf_counter()
    materialized = run_campaign(CAMPAIGN)
    materialize_s = time.perf_counter() - start

    from repro.api import Client
    from repro.service import ResultStore

    with Client(
        background=True,
        max_batch_size=SHARD_SIZE,
        max_wait=0.005,
        store=ResultStore(capacity=0),
        workers=WORKERS,
    ) as client:
        client.service.executor.warm()  # spawn cost stays out of the timing
        stream = CampaignStream(
            CAMPAIGN,
            tmp_path / "campaign",
            shard_size=SHARD_SIZE,
            prefetch_depth=PREFETCH,
            client=client,
        )
        start = time.perf_counter()
        streamed = stream.dataset()
        streaming_s = time.perf_counter() - start
    speedup = materialize_s / streaming_s if streaming_s > 0 else float("inf")

    # Parity before performance: shard composition must change nothing.
    assert np.array_equal(streamed.inputs, materialized.inputs)
    assert np.array_equal(streamed.targets, materialized.targets)
    assert np.array_equal(streamed.params, materialized.params)

    # The memory bound: at most shard_size x prefetch_depth of the 40
    # runs were ever resident in the stream at once.
    max_inflight = stream.stats["max_inflight_runs"]
    assert max_inflight <= SHARD_SIZE * PREFETCH
    assert stream.stats["runs_executed"] == CAMPAIGN.n_simulations

    dump_result(
        results_dir,
        "BENCH_datagen",
        {
            "n_runs": CAMPAIGN.n_simulations,
            "shard_size": SHARD_SIZE,
            "prefetch_depth": PREFETCH,
            "workers": WORKERS,
            "usable_cores": cores,
            "materialize_s": materialize_s,
            "streaming_s": streaming_s,
            "speedup": speedup,
            "max_inflight_runs": max_inflight,
            "inflight_bound": SHARD_SIZE * PREFETCH,
            "bitwise_parity": True,
            "gate": f">=1.5x at {WORKERS} workers (enforced with >=4 cores)",
        },
    )

    if cores < 4:
        pytest.skip(
            f"speedup gate needs >= 4 usable cores, have {cores} "
            f"(measured {speedup:.2f}x; parity and memory bound held)"
        )
    assert speedup >= 1.5, (
        f"expected >= 1.5x streaming with {WORKERS} workers on {cores} cores, "
        f"got {speedup:.2f}x (materialize {materialize_s:.2f}s, "
        f"streaming {streaming_s:.2f}s)"
    )
