"""Batched DL-PIC inference throughput — one network forward per step.

PR 1 batched the traditional cycle; this bench gates the DL path: a
``DLEnsemble`` of ``BATCH`` members bins every phase space with one
fused ``bincount``, normalizes the stack in one pass and predicts all
fields with ONE network forward per step, against the same ``BATCH``
``DLPIC`` runs executed sequentially.  Acceptance bar (ISSUE 2): at
least a 3x speedup at batch 16 — and, asserted separately, every
batched row bitwise identical to the corresponding single run
(histograms, predicted fields, trajectories).

The numeric outcome lands in ``.artifacts/results/BENCH_dlpic.json``
(median step time, speedup), which CI uploads as an artifact so the
perf trajectory is tracked from this PR onward.

Runs in the CI benchmark smoke job (not marked ``slow``): a full
timing pass takes a few seconds on one CPU core.
"""

import statistics
import time

import numpy as np
from conftest import dump_result

from repro.config import SimulationConfig
from repro.dlpic import DLEnsemble, DLFieldSolver, DLPIC
from repro.models.architectures import build_mlp
from repro.phasespace.binning import PhaseSpaceGrid
from repro.phasespace.normalization import MinMaxNormalizer

BATCH = 16
N_STEPS = 60
CONFIG = SimulationConfig(
    n_cells=32, particles_per_cell=25, n_steps=N_STEPS, vth=0.01, seed=0
)


def _make_solver() -> DLFieldSolver:
    """A deterministic (untrained) MLP solver — inference cost is
    architecture-bound, so training is irrelevant for timing."""
    grid = PhaseSpaceGrid(n_x=32, n_v=32, box_length=CONFIG.box_length)
    model = build_mlp(
        input_size=grid.size, output_size=CONFIG.n_cells, hidden_size=128, rng=0
    )
    normalizer = MinMaxNormalizer.from_dict({"minimum": 0.0, "maximum": 30.0})
    return DLFieldSolver(model, grid, normalizer, input_kind="flat", binning="ngp")


def _run_sequential(solver: DLFieldSolver) -> list[dict]:
    """BATCH independent DL runs, the pre-batching way: a Python loop.

    Final states are snapshotted per run because the shared solver's
    ``last_histogram`` is overwritten by each subsequent run.
    """
    finals = []
    for b in range(BATCH):
        sim = DLPIC(CONFIG.with_updates(seed=CONFIG.seed + b), solver)
        sim.run(N_STEPS)
        finals.append(
            {
                "x": sim.particles.x.copy(),
                "v": sim.particles.v.copy(),
                "efield": sim.efield.copy(),
                "histogram": sim.last_histogram.copy(),
            }
        )
    return finals


def _run_ensemble(solver: DLFieldSolver) -> DLEnsemble:
    sim = DLEnsemble.from_config(CONFIG, BATCH, solver)
    sim.run(N_STEPS)
    return sim


def _best_and_median(fn, repeats: int = 3) -> tuple[float, float]:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times), statistics.median(times)


def test_dl_ensemble_matches_sequential_bitwise():
    """Histograms, predicted fields and trajectories: bit for bit."""
    solver = _make_solver()
    ensemble = _run_ensemble(solver)
    final_hists = ensemble.last_histograms.copy()
    for b, single in enumerate(_run_sequential(solver)):
        np.testing.assert_array_equal(ensemble.particles.x[b], single["x"])
        np.testing.assert_array_equal(ensemble.particles.v[b], single["v"])
        np.testing.assert_array_equal(ensemble.efield[b], single["efield"])
        np.testing.assert_array_equal(final_hists[b], single["histogram"])


def test_dl_ensemble_speedup(results_dir):
    solver = _make_solver()
    # Warm-up (allocators, FFT plan caches, BLAS thread pools).
    _run_sequential(solver)
    _run_ensemble(solver)
    t_seq, t_seq_med = _best_and_median(lambda: _run_sequential(solver))
    t_ens, t_ens_med = _best_and_median(lambda: _run_ensemble(solver))
    speedup = t_seq / t_ens
    per_step_seq = t_seq / (BATCH * N_STEPS) * 1e6
    per_step_ens = t_ens / (BATCH * N_STEPS) * 1e6
    print()
    print(f"  sequential DLPIC: {t_seq * 1e3:8.1f} ms  ({per_step_seq:6.1f} us/run-step)")
    print(f"  DL ensemble:      {t_ens * 1e3:8.1f} ms  ({per_step_ens:6.1f} us/run-step)")
    print(f"  speedup:          {speedup:8.2f}x  (batch={BATCH})")
    dump_result(
        results_dir,
        "BENCH_dlpic",
        {
            "batch": BATCH,
            "n_steps": N_STEPS,
            "n_particles_per_run": CONFIG.n_particles,
            "t_sequential_s": t_seq,
            "t_ensemble_s": t_ens,
            "median_step_time_sequential_s": t_seq_med / (BATCH * N_STEPS),
            "median_step_time_ensemble_s": t_ens_med / (BATCH * N_STEPS),
            "speedup": speedup,
        },
    )
    assert speedup >= 3.0, (
        f"DL ensemble only {speedup:.2f}x faster than {BATCH} sequential DLPIC runs; "
        "acceptance bar is 3x"
    )
