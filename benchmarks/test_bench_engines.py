"""Unified engine layer — Vlasov ensemble throughput + observables overhead.

Two gates from the engine-layer ISSUE:

* the batch-native :class:`~repro.vlasov.ensemble.VlasovEnsemble` must
  be at least 3x faster than the same runs executed sequentially with
  the solo :class:`~repro.vlasov.solver.VlasovSimulation` at batch 8
  (service-sized grids, mixed scenarios), with every row bitwise
  identical to its solo run (also asserted);
* the streaming :class:`~repro.engines.observables.Observables`
  pipeline must add less than 5% overhead to an ensemble run compared
  to the historical list-append recorder (reproduced verbatim below).

The numeric outcome lands in ``.artifacts/results/BENCH_engines.json``
and is uploaded as a CI artifact.  Runs in the CI benchmark smoke job
(not marked ``slow``): a full timing pass takes a few seconds on one
CPU core.
"""

import time

import numpy as np
from conftest import dump_result

from repro.config import SimulationConfig
from repro.engines import make_engine
from repro.pic.diagnostics import (
    field_energy_rows,
    kinetic_energy_rows,
    mode_amplitude_rows,
    total_momentum_rows,
)
from repro.pic.scenarios import load_distribution
from repro.pic.simulation import EnsembleSimulation
from repro.vlasov import VlasovSimulation, vlasov_config_from

BATCH = 8
N_STEPS = 120
N_X = 16
N_V = 64
# Service-sized Vlasov requests: the same grid scale the service tests
# and workloads use (small enough that per-step dispatch overhead,
# which batching amortizes, is a real cost — exactly the regime the
# micro-batching service lives in).
VLASOV_SCENARIOS = ["two_stream", "landau_damping", "bump_on_tail", "random_perturbation"]
VLASOV_CONFIGS = [
    SimulationConfig(
        n_cells=N_X, n_steps=N_STEPS, vth=0.03 + 0.005 * (b % 3), v0=0.2,
        scenario=VLASOV_SCENARIOS[b % len(VLASOV_SCENARIOS)], seed=b,
        solver="vlasov", extra={"n_v": N_V},
    )
    for b in range(BATCH)
]

PIC_CONFIG = SimulationConfig(
    n_cells=32, particles_per_cell=25, n_steps=N_STEPS, vth=0.01, seed=0
)


def _interleaved_best(fns, repeats: int = 5) -> list[float]:
    """Best-of timing with the contenders interleaved per repeat.

    Interleaving decorrelates slow drifts of the machine (thermal,
    noisy neighbors) from the comparison, which matters because both
    gates below are ratios.
    """
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# Gate 1: VlasovEnsemble >= 3x over sequential solo runs at batch 8


def _run_vlasov_sequential() -> list:
    """The pre-ensemble way: one solo semi-Lagrangian run per config."""
    outputs = []
    for config in VLASOV_CONFIGS:
        sim = VlasovSimulation(vlasov_config_from(config), f0=load_distribution(config))
        series = sim.run(N_STEPS)
        outputs.append((series.as_arrays(), sim.efield.copy(), sim.f.copy()))
    return outputs


def _run_vlasov_ensemble():
    sim = make_engine(VLASOV_CONFIGS)
    hist = sim.run(N_STEPS)
    return sim, hist


def test_vlasov_ensemble_matches_sequential_bitwise():
    """Batching must not change a single bit of any member's physics."""
    sequential = _run_vlasov_sequential()
    sim, hist = _run_vlasov_ensemble()
    series = hist.as_arrays()
    for b, (solo_series, solo_efield, solo_f) in enumerate(sequential):
        np.testing.assert_array_equal(sim.f[b], solo_f)
        np.testing.assert_array_equal(sim.efield[b], solo_efield)
        for name in ("time", "kinetic", "potential", "total", "momentum", "mode1"):
            got = series[name] if name == "time" else series[name][:, b]
            np.testing.assert_array_equal(got, solo_series[name])


def test_vlasov_ensemble_speedup(results_dir):
    # Warm-up (allocators, FFT plan caches, first-call costs).
    _run_vlasov_sequential()
    _run_vlasov_ensemble()
    t_seq, t_ens = _interleaved_best(
        [_run_vlasov_sequential, lambda: _run_vlasov_ensemble()]
    )
    speedup = t_seq / t_ens
    print()
    print(f"  sequential: {t_seq * 1e3:8.1f} ms  ({BATCH} solo Vlasov runs)")
    print(f"  ensemble:   {t_ens * 1e3:8.1f} ms  (one batched engine)")
    print(f"  speedup:    {speedup:8.2f}x  (batch={BATCH})")
    dump_result(
        results_dir,
        "BENCH_engines",
        {
            "batch": BATCH,
            "n_steps": N_STEPS,
            "n_x": N_X,
            "n_v": N_V,
            "n_scenarios": len(set(VLASOV_SCENARIOS)),
            "t_vlasov_sequential_s": t_seq,
            "t_vlasov_ensemble_s": t_ens,
            "vlasov_speedup": speedup,
        },
    )
    assert speedup >= 3.0, (
        f"VlasovEnsemble only {speedup:.2f}x faster than {BATCH} sequential "
        f"runs; acceptance bar is 3x"
    )


# ----------------------------------------------------------------------
# Gate 2: the observables pipeline adds < 5% overhead vs the legacy
# list-append recorder


class _LegacyEnsembleHistory:
    """The pre-pipeline ``EnsembleHistory``: Python list appends.

    A verbatim reproduction of the recorder the streaming pipeline
    replaced, kept here as the overhead baseline.
    """

    def __init__(self) -> None:
        self.time: list = []
        self.kinetic: list = []
        self.potential: list = []
        self.total: list = []
        self.momentum: list = []
        self.mode1: list = []

    def reserve(self, n_records: int) -> None:  # the pipeline API; lists ignore it
        pass

    def __len__(self) -> int:
        return len(self.time)

    def record_frame(self, frame) -> None:
        ke = kinetic_energy_rows(frame.particles, v=frame.v_center)
        fe = field_energy_rows(frame.grid, frame.efield)
        self.time.append(frame.time)
        self.kinetic.append(ke)
        self.potential.append(fe)
        self.total.append(ke + fe)
        self.momentum.append(total_momentum_rows(frame.particles, v=frame.v_center))
        self.mode1.append(mode_amplitude_rows(frame.efield, mode=1))

    def as_arrays(self) -> dict:
        return {
            "time": np.asarray(self.time),
            "kinetic": np.asarray(self.kinetic),
            "potential": np.asarray(self.potential),
            "total": np.asarray(self.total),
            "momentum": np.asarray(self.momentum),
            "mode1": np.asarray(self.mode1),
        }


OVERHEAD_STEPS = 400  # long runs: the gate is a ratio, noise shrinks with length


def _run_pic_with(history_factory):
    sim = EnsembleSimulation.from_config(PIC_CONFIG, batch=BATCH)
    return sim.run(OVERHEAD_STEPS, history=history_factory())


def test_observables_pipeline_overhead(results_dir):
    from repro.engines import Observables, pic_observables

    def streaming_recorder():
        return Observables(pic_observables())

    # The two recorders must agree exactly before we time them.
    new_series = _run_pic_with(streaming_recorder).as_arrays()
    legacy_series = _run_pic_with(_LegacyEnsembleHistory).as_arrays()
    for name, values in legacy_series.items():
        np.testing.assert_array_equal(new_series[name], values)

    # Overhead is a ratio of two near-identical runtimes, so estimate
    # it as the median of per-repeat paired ratios: each repeat times
    # the two recorders back to back, which cancels slow machine drift
    # that best-of-N cannot.
    ratios = []
    times_new, times_legacy = [], []
    for _ in range(13):
        start = time.perf_counter()
        _run_pic_with(streaming_recorder)
        t_new = time.perf_counter() - start
        start = time.perf_counter()
        _run_pic_with(_LegacyEnsembleHistory)
        t_legacy = time.perf_counter() - start
        ratios.append(t_new / t_legacy)
        times_new.append(t_new)
        times_legacy.append(t_legacy)
    overhead = float(np.median(ratios)) - 1.0
    t_new, t_legacy = min(times_new), min(times_legacy)
    print()
    print(f"  legacy list-append recorder: {t_legacy * 1e3:8.1f} ms")
    print(f"  streaming observables:       {t_new * 1e3:8.1f} ms")
    print(f"  overhead:                    {overhead * 100:+8.2f}%")
    payload = {
        "t_run_legacy_history_s": t_legacy,
        "t_run_observables_s": t_new,
        "observables_overhead_fraction": overhead,
    }
    path = results_dir / "BENCH_engines.json"
    if path.exists():
        import json

        merged = json.loads(path.read_text())
        merged.update(payload)
        payload = merged
    dump_result(results_dir, "BENCH_engines", payload)
    assert overhead < 0.05, (
        f"observables pipeline adds {overhead * 100:.1f}% over the legacy "
        f"recorder; acceptance bar is <5%"
    )
