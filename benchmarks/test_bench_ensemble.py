"""Ensemble engine throughput — batched runs vs sequential runs.

The batched PIC cycle advances every ensemble member through one
gather/push/deposit/Poisson call per step, amortizing the per-step
Python and FFT dispatch overhead that dominates small-to-medium runs.
This bench pits an ``EnsembleSimulation`` of ``BATCH`` members against
the same ``BATCH`` simulations run sequentially with ``TraditionalPIC``
and asserts the ISSUE's acceptance bar: at least a 3x speedup at
batch 8, with bitwise-identical physics (also asserted).

Runs in the CI benchmark smoke job (not marked ``slow``): a full
timing pass takes a few seconds on one CPU core.
"""

import time

import numpy as np
from conftest import dump_result

from repro.config import SimulationConfig
from repro.pic.simulation import EnsembleSimulation, TraditionalPIC

BATCH = 8
N_STEPS = 120
CONFIG = SimulationConfig(
    n_cells=32, particles_per_cell=25, n_steps=N_STEPS, vth=0.01, seed=0
)


def _run_sequential() -> list[np.ndarray]:
    """BATCH independent runs, the pre-ensemble way: a Python loop."""
    finals = []
    for b in range(BATCH):
        sim = TraditionalPIC(CONFIG.with_updates(seed=CONFIG.seed + b))
        sim.run(N_STEPS)
        finals.append(sim.efield.copy())
    return finals


def _run_ensemble() -> np.ndarray:
    sim = EnsembleSimulation.from_config(CONFIG, batch=BATCH)
    sim.run(N_STEPS)
    return sim.efield.copy()


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_ensemble_matches_sequential_bitwise():
    """Batching must not change a single bit of any member's physics."""
    sequential = _run_sequential()
    ensemble = _run_ensemble()
    for b in range(BATCH):
        np.testing.assert_array_equal(ensemble[b], sequential[b])


def test_ensemble_speedup(results_dir):
    # Warm-up (allocators, FFT plan caches, JIT-free but first-call costs).
    _run_sequential()
    _run_ensemble()
    t_seq = _best_of(_run_sequential)
    t_ens = _best_of(_run_ensemble)
    speedup = t_seq / t_ens
    per_step_seq = t_seq / (BATCH * N_STEPS) * 1e6
    per_step_ens = t_ens / (BATCH * N_STEPS) * 1e6
    print()
    print(f"  sequential: {t_seq * 1e3:8.1f} ms  ({per_step_seq:6.1f} us/run-step)")
    print(f"  ensemble:   {t_ens * 1e3:8.1f} ms  ({per_step_ens:6.1f} us/run-step)")
    print(f"  speedup:    {speedup:8.2f}x  (batch={BATCH})")
    dump_result(
        results_dir,
        "bench_ensemble",
        {
            "batch": BATCH,
            "n_steps": N_STEPS,
            "n_particles_per_run": CONFIG.n_particles,
            "t_sequential_s": t_seq,
            "t_ensemble_s": t_ens,
            "speedup": speedup,
        },
    )
    assert speedup >= 3.0, (
        f"ensemble engine only {speedup:.2f}x faster than {BATCH} sequential runs; "
        "acceptance bar is 3x"
    )
