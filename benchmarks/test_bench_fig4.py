"""Fig. 4 — two-stream instability growth rate vs linear theory.

The validation configuration ``v0 = +/-0.2, vth = 0.025`` was never in
the training sweep.  The paper's claim: in the linear phase both the
traditional and the DL-based PIC reproduce the analytic slope
``gamma = omega_pe / (2 sqrt(2)) ~= 0.354``.
"""

import numpy as np
from conftest import dump_result

from repro.experiments import run_fig4

import pytest

pytestmark = pytest.mark.slow  # needs the medium-preset trained solvers (~15 min cold)


def test_fig4_growth_rate(solvers, results_dir, benchmark):
    config = solvers.preset.validation_config()
    result = benchmark.pedantic(
        run_fig4, args=(solvers.mlp_solver, config), rounds=1, iterations=1
    )
    print()
    print(result.summary())
    print("  E1(t) series (every 10th step):")
    for i in range(0, len(result.time), 10):
        print(
            f"    t={result.time[i]:5.1f}  traditional={result.e1_traditional[i]:.3e}"
            f"  dl={result.e1_dl[i]:.3e}"
        )

    dump_result(
        results_dir,
        "fig4",
        {
            "gamma_theory": result.gamma_theory,
            "gamma_traditional": result.fit_traditional.gamma,
            "gamma_dl": result.fit_dl.gamma,
            "r2_traditional": result.fit_traditional.r_squared,
            "r2_dl": result.fit_dl.r_squared,
            "e1_max_traditional": float(result.e1_traditional.max()),
            "e1_max_dl": float(result.e1_dl.max()),
        },
    )

    # Theory: the box is tuned to the maximum growth rate.
    assert result.gamma_theory == np.float64(result.gamma_theory)
    assert abs(result.gamma_theory - 0.3536) < 1e-3

    # Traditional PIC matches linear theory closely (paper Fig. 4).
    assert result.traditional_relative_error < 0.15
    assert result.fit_traditional.r_squared > 0.9

    # DL-based PIC reproduces the expected growth rate (the headline claim).
    assert result.dl_relative_error < 0.35
    assert result.fit_dl.r_squared > 0.85

    # Both saturate at the same field scale (paper: max E ~ 0.1).
    assert 0.03 < result.e1_traditional.max() < 0.3
    assert 0.03 < result.e1_dl.max() < 0.3

    # Phase-space holes: both methods mix the beams after saturation.
    from repro.theory.coldbeam import beam_velocity_spread

    for run in (result.traditional, result.dl):
        up, down = beam_velocity_spread(run.final_v)
        assert max(up, down) > 2 * config.vth
