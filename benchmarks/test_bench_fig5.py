"""Fig. 5 — total energy and momentum conservation (two-stream run).

Paper claims: both methods show bounded total-energy variation (the
paper reports ~2% at full training scale); the traditional PIC
conserves momentum while the DL-based PIC's momentum drifts negative.
At the reduced ``medium`` training scale the DL error floor is higher
(MAE ~4.5e-3 vs the paper's 1.9e-3), so the DL energy/momentum
variations are larger than the paper's — the *shape* (who conserves
what) is asserted, the magnitudes are recorded for EXPERIMENTS.md.
"""

import numpy as np
from conftest import dump_result

from repro.experiments import run_fig5

import pytest

pytestmark = pytest.mark.slow  # needs the medium-preset trained solvers (~15 min cold)


def test_fig5_conservation(solvers, results_dir, benchmark):
    config = solvers.preset.validation_config()
    result = benchmark.pedantic(
        run_fig5, args=(solvers.mlp_solver, config), rounds=1, iterations=1
    )
    print()
    print(result.summary())
    print("  series (every 20th step):")
    for i in range(0, len(result.time), 20):
        print(
            f"    t={result.time[i]:5.1f}"
            f"  E_trad={result.total_energy_traditional[i]:.5f}"
            f"  E_dl={result.total_energy_dl[i]:.5f}"
            f"  P_trad={result.momentum_traditional[i]:+.2e}"
            f"  P_dl={result.momentum_dl[i]:+.2e}"
        )

    dump_result(
        results_dir,
        "fig5",
        {
            "energy_variation_traditional": result.energy_variation_traditional,
            "energy_variation_dl": result.energy_variation_dl,
            "momentum_drift_traditional": result.momentum_drift_traditional,
            "momentum_drift_dl": result.momentum_drift_dl,
            "total_energy_initial": float(result.total_energy_traditional[0]),
        },
    )

    # Initial total energy matches the paper's ~0.0415 Fig. 5 axis scale.
    assert 0.040 < result.total_energy_traditional[0] < 0.043

    # Traditional PIC: energy within the paper's ~2%, momentum to round-off.
    assert result.energy_variation_traditional < 0.02
    assert abs(result.momentum_drift_traditional) < 1e-10

    # DL-based PIC does NOT conserve: bounded but visible energy change...
    assert 0.0 < result.energy_variation_dl < 0.5
    # ...and a momentum drift orders of magnitude above round-off,
    # negative as in the paper's bottom panel.
    assert result.momentum_drift_dl < -1e-4

    # The DL drift dwarfs the traditional one (the paper's contrast).
    assert abs(result.momentum_drift_dl) > 1e6 * abs(result.momentum_drift_traditional)
