"""Fig. 6 — cold-beam numerical instability (``v0 = +/-0.4, vth = 0``).

This configuration is *linearly stable* (``k1 v0 = 1.224 > omega_pe``):
physically the beams should stream forever.  Paper findings:

1. the traditional momentum-conserving PIC develops non-physical
   ripples (finite-grid instability) and loses total energy;
2. the DL-based PIC's phase space stays clean, while its total
   momentum variation grows over the run.

Finding (1) and the momentum-variation part of (2) reproduce at the
``medium`` training scale.  The DL phase-space *cleanliness* does not:
the network's extrapolation error at the never-trained beam velocity
0.4 injects fields that heat the beams (see EXPERIMENTS.md for the
scale analysis).  The bench asserts what reproduces and records the
rest.
"""

import numpy as np
from conftest import dump_result

from repro.experiments import run_fig6
from repro.theory.dispersion import growth_rate_cold

import pytest

pytestmark = pytest.mark.slow  # needs the medium-preset trained solvers (~15 min cold)


def test_fig6_coldbeam(solvers, results_dir, benchmark):
    config = solvers.preset.coldbeam_config()
    result = benchmark.pedantic(
        run_fig6, args=(solvers.mlp_solver, config), rounds=1, iterations=1
    )
    print()
    print(result.summary())

    mt, md = result.metrics_traditional, result.metrics_dl
    dump_result(
        results_dir,
        "fig6",
        {
            "spread_traditional": mt.max_spread,
            "spread_dl": md.max_spread,
            "rippled_traditional": mt.rippled,
            "rippled_dl": md.rippled,
            "energy_variation_traditional": mt.energy_variation,
            "energy_variation_dl": md.energy_variation,
            "momentum_final_traditional": float(result.momentum_traditional[-1]),
            "momentum_final_dl": float(result.momentum_dl[-1]),
            "total_energy_initial": float(result.total_energy_traditional[0]),
        },
    )

    # The configuration is linearly stable.
    assert growth_rate_cold(2 * np.pi / config.box_length, config.v0) == 0.0

    # Initial energy matches the paper's ~0.164 Fig. 6 axis scale.
    assert 0.160 < result.total_energy_traditional[0] < 0.168

    # (1) Traditional PIC: cold-beam instability appears — beams that
    # started perfectly cold acquire velocity structure...
    assert mt.rippled
    assert mt.max_spread > 1e-3
    # ...and total energy changes measurably (paper: 0.1645 -> ~0.1612).
    assert mt.energy_variation > 0.005

    # No two-stream growth in either method: E1 stays far below the
    # unstable case's ~0.1 saturation.
    assert result.traditional.series["mode1"].max() < 0.02

    # (2, partial) DL-based PIC: momentum variation grows over the run
    # (paper bottom-right panel), far above the traditional round-off.
    assert abs(result.momentum_dl[-1] - result.momentum_dl[0]) > 1e-4
    assert abs(result.momentum_traditional[-1] - result.momentum_traditional[0]) < 1e-10
