"""Kernel backend tier — raw-speed gates and the parity oracle.

Three measurements, one JSON: the ``threaded`` backend must reach
>= 1.5x over the ``numpy`` reference on a batch-16 traditional ensemble
(enforced with >= 4 usable cores — numpy releases the GIL in the hot
ufuncs, so row chunks genuinely overlap), the Vlasov float32 tier must
reach >= 1.3x over float64 (pure bandwidth/FFT win, no parallel
hardware needed, enforced everywhere), and the ``numba`` JIT
deposit/gather leg is timed when the dependency is present (skipped
gracefully elsewhere — the backend degrades to the reference slab).

Parity comes first: the float64 ``numpy`` path is the bitwise oracle
for every backend x family pair, asserted here on short runs of every
registered pair before any timing gate, and again on the timed runs
themselves.  All numbers land in ``.artifacts/results/BENCH_kernels.json``
(sections merge across tests, so the JSON is always emitted even when a
speedup gate skips) and the file is uploaded as a CI artifact.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.dlpic import DLEnsemble, DLFieldSolver
from repro.engines.base import get_engine_spec
from repro.kernels import NumbaBackend, ThreadedBackend
from repro.kernels.numba_kernels import NUMBA_AVAILABLE
from repro.models.architectures import build_mlp
from repro.phasespace.binning import PhaseSpaceGrid
from repro.phasespace.normalization import MinMaxNormalizer
from repro.pic.simulation import EnsembleSimulation
from repro.vlasov.ensemble import VlasovEnsemble

BATCH = 16
THREAD_WORKERS = 4

# Heavy enough that a step is dominated by the routed kernels (gather,
# push, deposit), light enough for ~3s of reference wall clock.
PIC = SimulationConfig(
    n_cells=64, particles_per_cell=100, n_steps=150, vth=0.01, v0=0.2, seed=0
)
# The Vlasov float32 gate is a memory-bandwidth + FFT-width win, so the
# grid is sized to live well outside L2.
VLASOV = SimulationConfig(
    solver="vlasov", scenario="two_stream", n_cells=128, n_steps=20,
    vth=0.25, v0=1.0, seed=1, extra={"n_v": 256, "v_min": -6.0, "v_max": 6.0},
)
VLASOV_BATCH = 8


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _merge_result(results_dir, section: str, payload: dict) -> None:
    """Merge one section into BENCH_kernels.json (tests run in file order)."""
    path = results_dir / "BENCH_kernels.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[section] = payload
    path.write_text(json.dumps(data, indent=2))


def _dl_solver(config):
    grid = PhaseSpaceGrid(n_x=16, n_v=8, box_length=config.box_length)
    model = build_mlp(
        input_size=grid.size, output_size=config.n_cells, hidden_size=24, rng=0
    )
    normalizer = MinMaxNormalizer.from_dict({"minimum": 0.0, "maximum": 60.0})
    return DLFieldSolver(model, grid, normalizer, input_kind="flat")


def _force_backend(family, ens, backend) -> None:
    """Inject a concrete backend instance so worker counts are pinned
    regardless of the host (a 1-core box would otherwise fall through)."""
    ens._backend = backend
    if family == "dl":
        ens.field_solver.set_kernel_backend(backend)
    elif family == "traditional":
        ens.field_solver.backend = backend


def _run_family(family, backend_name, backend=None, dtype="float64", steps=None):
    """Build + run one family; return (elapsed_s, state dict)."""
    if family == "vlasov":
        steps = steps if steps is not None else VLASOV.n_steps
        config = VLASOV.with_updates(dtype=dtype, backend=backend_name, n_steps=steps)
        ens = VlasovEnsemble(
            [config.with_updates(seed=b) for b in range(VLASOV_BATCH)]
        )
    else:
        steps = steps if steps is not None else PIC.n_steps
        config = PIC.with_updates(dtype=dtype, backend=backend_name, n_steps=steps)
        if family == "dl":
            ens = DLEnsemble.from_config(config, BATCH, _dl_solver(config))
        else:
            ens = EnsembleSimulation.from_config(config, BATCH)
    if backend is not None:
        _force_backend(family, ens, backend)
    start = time.perf_counter()
    ens.run(steps)
    elapsed = time.perf_counter() - start
    if family == "vlasov":
        state = {"f": ens.f, "efield": ens.efield}
    else:
        state = {"x": ens.particles.x, "v": ens.particles.v, "efield": ens.efield}
    return elapsed, state


def _assert_bitwise(reference, candidate, label):
    for key, want in reference.items():
        assert np.array_equal(candidate[key], want), (
            f"{label}: diverged from the float64 numpy reference on {key!r}"
        )


def test_parity_every_backend_family_pair(results_dir):
    """Short runs of every registered backend x family pair vs the oracle."""
    checked = {}
    for family in ("traditional", "dl", "vlasov"):
        _, reference = _run_family(family, "numpy", steps=8)
        for backend_name in get_engine_spec(family).backends:
            if backend_name == "numpy":
                continue
            if backend_name == "threaded":
                backend = ThreadedBackend(max_workers=THREAD_WORKERS)
            else:
                backend = NumbaBackend()  # reference slab when numba is absent
            _, candidate = _run_family(family, backend_name, backend=backend, steps=8)
            _assert_bitwise(reference, candidate, f"{family}/{backend_name}")
            checked[f"{family}/{backend_name}"] = True
    _merge_result(
        results_dir,
        "parity",
        {
            "oracle": "float64 numpy reference, bitwise",
            "pairs": checked,
            "numba_jit_active": NUMBA_AVAILABLE,
        },
    )


def test_threaded_row_parallel_speedup(results_dir):
    cores = _usable_cores()
    numpy_s, reference = _run_family("traditional", "numpy")
    threaded_s, candidate = _run_family(
        "traditional", "threaded", backend=ThreadedBackend(max_workers=THREAD_WORKERS)
    )
    _assert_bitwise(reference, candidate, "traditional/threaded")
    speedup = numpy_s / threaded_s if threaded_s > 0 else float("inf")
    _merge_result(
        results_dir,
        "threaded",
        {
            "family": "traditional",
            "batch": BATCH,
            "n_steps": PIC.n_steps,
            "workers": THREAD_WORKERS,
            "usable_cores": cores,
            "numpy_s": numpy_s,
            "threaded_s": threaded_s,
            "speedup": speedup,
            "bitwise_parity": True,
            "gate": f">=1.5x at batch {BATCH} (enforced with >=4 cores)",
        },
    )
    if cores < 4:
        pytest.skip(
            f"threaded gate needs >= 4 usable cores, have {cores} "
            f"(measured {speedup:.2f}x; parity held)"
        )
    assert speedup >= 1.5, (
        f"expected >= 1.5x from row chunking at batch {BATCH} on {cores} cores, "
        f"got {speedup:.2f}x (numpy {numpy_s:.2f}s, threaded {threaded_s:.2f}s)"
    )


def test_vlasov_float32_speedup(results_dir):
    f64_s, reference = _run_family("vlasov", "numpy", dtype="float64")
    f32_s, candidate = _run_family("vlasov", "numpy", dtype="float32")
    speedup = f64_s / f32_s if f32_s > 0 else float("inf")
    # The tier is dtype-preserving end to end and must stay within a
    # single-precision band of the double trajectory.
    assert candidate["f"].dtype == np.float32
    assert candidate["efield"].dtype == np.float32
    field_err = float(
        np.max(np.abs(candidate["efield"].astype(np.float64) - reference["efield"]))
    )
    scale = max(1.0, float(np.max(np.abs(reference["efield"]))))
    assert np.all(np.isfinite(candidate["f"]))
    assert field_err <= 1e-4 * scale
    _merge_result(
        results_dir,
        "vlasov_float32",
        {
            "batch": VLASOV_BATCH,
            "grid": [int(VLASOV.extra["n_v"]), VLASOV.n_cells],
            "n_steps": VLASOV.n_steps,
            "float64_s": f64_s,
            "float32_s": f32_s,
            "speedup": speedup,
            "max_field_error": field_err,
            "gate": ">=1.3x over float64 (enforced everywhere)",
        },
    )
    assert speedup >= 1.3, (
        f"expected the Vlasov float32 tier >= 1.3x over float64, got "
        f"{speedup:.2f}x (float64 {f64_s:.2f}s, float32 {f32_s:.2f}s)"
    )


def test_numba_jit_speedup(results_dir):
    """JIT deposit/gather leg — measured when numba is installed."""
    payload = {
        "available": NUMBA_AVAILABLE,
        "family": "traditional",
        "gate": ">=1.1x over numpy deposit/gather (skipped when numba is absent)",
    }
    if not NUMBA_AVAILABLE:
        _merge_result(results_dir, "numba", payload)
        pytest.skip("numba is not installed; JIT backend degrades to the reference")
    _run_family("traditional", "numba", backend=NumbaBackend(), steps=2)  # JIT warm-up
    numpy_s, reference = _run_family("traditional", "numpy")
    numba_s, candidate = _run_family("traditional", "numba", backend=NumbaBackend())
    _assert_bitwise(reference, candidate, "traditional/numba")
    speedup = numpy_s / numba_s if numba_s > 0 else float("inf")
    payload.update(
        {
            "batch": BATCH,
            "n_steps": PIC.n_steps,
            "numpy_s": numpy_s,
            "numba_s": numba_s,
            "speedup": speedup,
            "bitwise_parity": True,
        }
    )
    _merge_result(results_dir, "numba", payload)
    assert speedup >= 1.1, (
        f"expected the numba JIT deposit/gather >= 1.1x over numpy, got "
        f"{speedup:.2f}x (numpy {numpy_s:.2f}s, numba {numba_s:.2f}s)"
    )
