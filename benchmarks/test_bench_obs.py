"""Observability — server-side tracing overhead on the closed-loop workload.

One gate from the observability ISSUE: running the PR 6 closed-loop
HTTP workload (mixed-scenario requests over concurrent persistent
connections) against a ``--trace`` server must cost **< 3%** wall-clock
versus the identical server with tracing off.  Tracing threads spans
through every layer (server -> service -> executor worker -> engine
steps), so this bench is the proof that the ``if trace:`` guards and
the per-request span records stay off the critical path.

Results (both timings, the overhead ratio and a parity flag) land in
``.artifacts/results/BENCH_obs.json`` — written *before* the gate
assertion, so the artifact records a failing run too.  Runs in the CI
benchmark smoke job (not marked ``slow``): ~30 s on one CPU core.
"""

import time

import numpy as np
import pytest
from conftest import dump_result

from repro.api import Client, RunRequest
from repro.config import SimulationConfig
from repro.server import serve_in_thread

N_REQUESTS = 128
N_CONNECTIONS = 64
MAX_BATCH = 32
MAX_OVERHEAD = 0.03

BASE = SimulationConfig(
    n_cells=32, particles_per_cell=10, n_steps=150, vth=0.01, seed=0
)
_SCENARIOS = [
    ("two_stream", {"v0": 0.2}),
    ("cold_beam", {"v0": 0.4}),
    ("landau_damping", {"vth": 0.05}),
    ("bump_on_tail", {"v0": 0.35, "extra": {"bump_fraction": 0.15}}),
    ("random_perturbation", {"vth": 0.03}),
]
REQUESTS = [
    RunRequest(
        config=BASE.with_updates(
            scenario=_SCENARIOS[i % 5][0], seed=i, **_SCENARIOS[i % 5][1]
        ),
        id=f"req-{i}",
    )
    for i in range(N_REQUESTS)
]


def _run_workload(tracing: bool) -> list:
    """The closed-loop workload against a fresh (cold-store) server."""
    with serve_in_thread(
        max_batch_size=MAX_BATCH, max_wait=0.01,
        max_pending=2 * N_REQUESTS, max_connections=2 * N_CONNECTIONS,
        tracing=tracing,
    ) as server:
        with Client.connect(server.url,
                            max_connections=N_CONNECTIONS) as client:
            futures = client.submit_many(REQUESTS)
            return [future.result(timeout=600) for future in futures]


def _interleaved_best(fns, repeats: int = 3) -> list[float]:
    """Best-of timing with the contenders interleaved per repeat."""
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def measurements() -> dict:
    # Parity pass (doubles as warm-up): tracing must not change one bit
    # of any result, and every traced result must carry the stage keys.
    traced = _run_workload(tracing=True)
    plain = _run_workload(tracing=False)
    assert all(r.status == "ok" for r in traced)
    for with_trace, without in zip(traced, plain):
        assert with_trace.id == without.id
        assert with_trace.key == without.key
        assert {"wall_s", "batch_wait_s", "queue_wait_s", "exec_s",
                "store_s"} <= set(with_trace.timings)
        for name, values in without.series.items():
            a = np.asarray(with_trace.series[name])
            b = np.asarray(values)
            assert a.dtype == b.dtype, f"dtype drift in {name!r}"
            np.testing.assert_array_equal(
                a, b, err_msg=f"tracing changed the result in {name!r}"
            )

    t_on, t_off = _interleaved_best(
        [lambda: _run_workload(True), lambda: _run_workload(False)]
    )
    return {
        "n_requests": N_REQUESTS,
        "n_connections": N_CONNECTIONS,
        "max_batch_size": MAX_BATCH,
        "n_steps": BASE.n_steps,
        "n_scenarios": len(_SCENARIOS),
        "t_tracing_on_s": t_on,
        "t_tracing_off_s": t_off,
        "requests_per_s_on": N_REQUESTS / t_on,
        "requests_per_s_off": N_REQUESTS / t_off,
        "overhead": t_on / t_off - 1.0,
        "max_overhead": MAX_OVERHEAD,
        "bitwise_parity": True,
    }


def test_tracing_overhead_under_3_percent(measurements, results_dir):
    print()
    print(f"  tracing off: {measurements['t_tracing_off_s'] * 1e3:8.1f} ms  "
          f"({measurements['requests_per_s_off']:6.1f} req/s)")
    print(f"  tracing on:  {measurements['t_tracing_on_s'] * 1e3:8.1f} ms  "
          f"({measurements['requests_per_s_on']:6.1f} req/s)")
    print(f"  overhead: {measurements['overhead'] * 100:+6.2f}%  "
          f"(bar: <{MAX_OVERHEAD * 100:.0f}%)")
    dump_result(results_dir, "BENCH_obs", measurements)
    assert measurements["overhead"] < MAX_OVERHEAD, (
        f"tracing costs {measurements['overhead'] * 100:.2f}% on the "
        f"closed-loop workload; acceptance bar is "
        f"{MAX_OVERHEAD * 100:.0f}%"
    )


def test_tracing_preserves_bitwise_parity(measurements):
    # The parity sweep runs inside the measurements fixture (it doubles
    # as the warm-up pass); this records the gate explicitly.
    assert measurements["bitwise_parity"] is True
