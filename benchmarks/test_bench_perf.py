"""Sec. VII performance discussion — field-solve cost.

The paper defers a full performance study but argues the DL field
solver is "a simple prediction/inference step involving a series of
matrix-vector multiplications" versus the traditional solve of a
linear system.  These benches time the two field-solve stages on
identical particle states (plus the individual Poisson backends), using
pytest-benchmark's statistics.
"""

import numpy as np
import pytest

from repro.pic.grid import Grid1D
from repro.pic.poisson import (
    solve_poisson_direct,
    solve_poisson_fd,
    solve_poisson_spectral,
)
from repro.pic.simulation import ChargeDepositionFieldSolver, TraditionalPIC

pytestmark = pytest.mark.slow  # needs the medium-preset trained solvers (~15 min cold)


@pytest.fixture(scope="module")
def particle_state(solvers):
    """A mid-instability particle state at the medium resolution."""
    config = solvers.preset.validation_config()
    sim = TraditionalPIC(config)
    sim.run(100)
    return config, sim.particles.x.copy(), sim.particles.v.copy()


def test_traditional_field_solve(particle_state, benchmark):
    config, x, v = particle_state
    grid = Grid1D(config.n_cells, config.box_length)
    solver = ChargeDepositionFieldSolver(
        grid, particle_charge=config.particle_charge,
        interpolation=config.interpolation,
    )
    e = benchmark(solver.field, x, v)
    assert e.shape == (config.n_cells,)


def test_dl_field_solve(particle_state, solvers, benchmark):
    config, x, v = particle_state
    e = benchmark(solvers.mlp_solver.field, x, v)
    assert e.shape == (config.n_cells,)


def test_dl_inference_only(particle_state, solvers, benchmark):
    """Network inference alone (excluding the phase-space binning)."""
    config, x, v = particle_state
    solvers.mlp_solver.field(x, v)  # populate the histogram cache
    hist = solvers.mlp_solver.last_histogram
    e = benchmark(solvers.mlp_solver.predict_from_histogram, hist)
    assert e.shape == (config.n_cells,)


@pytest.mark.parametrize(
    "solver",
    [solve_poisson_spectral, solve_poisson_fd, solve_poisson_direct],
    ids=["spectral", "fd", "direct"],
)
def test_poisson_backends(solver, benchmark):
    grid = Grid1D(64, 2.0)
    rho = np.sin(grid.nodes * 3.06)
    phi = benchmark(solver, grid, rho)
    assert phi.shape == (64,)


def test_full_step_traditional(solvers, benchmark):
    config = solvers.preset.validation_config().with_updates(n_steps=1)
    sim = TraditionalPIC(config)
    benchmark(sim.step)


def test_full_step_dl(solvers, benchmark):
    from repro.dlpic.simulation import DLPIC

    config = solvers.preset.validation_config().with_updates(n_steps=1)
    sim = DLPIC(config, solvers.mlp_solver)
    benchmark(sim.step)
