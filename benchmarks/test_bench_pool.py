"""Sharded executor pool throughput — 4 workers vs a single worker.

A mixed workload of compatibility groups (every scenario, distinct
``n_steps`` so each request lands in its own group) is pushed through
two identically configured services: one inline (``workers=1``, the
exact pre-pool path) and one sharded over 4 spawned workers.  The bench
asserts the ISSUE's acceptance bar: at least a 2x wall-clock gain at 4
workers, with every pooled result bitwise identical to its solo
``make_engine`` run — pickling float64 arrays across the process
boundary preserves every bit.

The speedup gate only makes sense with real parallel hardware, so it is
skipped when fewer than 4 usable cores are available (the numbers are
still measured and dumped).  The numeric outcome always lands in
``.artifacts/results/BENCH_pool.json`` and is uploaded as a CI
artifact; CI's 4-core runners enforce the gate.
"""

import os
import time

import numpy as np
import pytest
from conftest import dump_result

from repro.config import SimulationConfig
from repro.engines.base import make_engine
from repro.service import SimulationService

N_GROUPS = 8
WORKERS = 4
# Heavy enough per group (~0.3s of particle pushing) that compute
# dominates the per-group IPC cost; light enough that the whole bench
# stays under ~10s of wall clock.
BASE = SimulationConfig(
    n_cells=64, particles_per_cell=100, n_steps=400, vth=0.01, seed=0
)

_SCENARIOS = [
    ("two_stream", {"v0": 0.2}),
    ("cold_beam", {"v0": 0.4}),
    ("landau_damping", {"vth": 0.05}),
    ("bump_on_tail", {"v0": 0.35, "extra": {"bump_fraction": 0.15}}),
    ("random_perturbation", {"vth": 0.03}),
]

# Distinct n_steps per request => distinct compatibility groups => the
# batcher cannot coalesce them, so the pool's group-level parallelism
# is the only thing under test.
CONFIGS = [
    BASE.with_updates(
        scenario=_SCENARIOS[i % 5][0],
        seed=i,
        n_steps=BASE.n_steps + i,
        **_SCENARIOS[i % 5][1],
    )
    for i in range(N_GROUPS)
]


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_with_workers(workers: int) -> tuple[float, list]:
    service = SimulationService(max_wait=0.005, workers=workers)
    try:
        if workers > 1:
            service.executor.warm()  # spawn cost stays out of the timing
        start = time.perf_counter()
        futures = [service.submit(config) for config in CONFIGS]
        results = [future.result(timeout=600) for future in futures]
        elapsed = time.perf_counter() - start
    finally:
        service.close()
    return elapsed, results


def test_pool_speedup_and_parity(results_dir):
    cores = _usable_cores()
    inline_s, inline_results = _run_with_workers(1)
    pooled_s, pooled_results = _run_with_workers(WORKERS)
    speedup = inline_s / pooled_s if pooled_s > 0 else float("inf")

    # Parity before performance: the pool must change nothing numeric.
    for config, inline_result, pooled_result in zip(
        CONFIGS, inline_results, pooled_results
    ):
        solo = make_engine([config]).run(config.n_steps).as_arrays()
        for name in inline_result.series:
            want = solo[name] if name == "time" else solo[name][:, 0]
            assert np.array_equal(pooled_result.series[name], want), name
            assert np.array_equal(inline_result.series[name], want), name
        assert np.array_equal(pooled_result.efield, inline_result.efield)

    dump_result(
        results_dir,
        "BENCH_pool",
        {
            "n_groups": N_GROUPS,
            "workers": WORKERS,
            "usable_cores": cores,
            "inline_s": inline_s,
            "pooled_s": pooled_s,
            "speedup": speedup,
            "bitwise_parity": True,
            "gate": f">=2x at {WORKERS} workers (enforced with >=4 cores)",
        },
    )

    if cores < WORKERS:
        pytest.skip(
            f"speedup gate needs >= {WORKERS} usable cores, have {cores} "
            f"(measured {speedup:.2f}x; parity held)"
        )
    assert speedup >= 2.0, (
        f"expected >= 2x with {WORKERS} workers on {cores} cores, "
        f"got {speedup:.2f}x (inline {inline_s:.2f}s, pooled {pooled_s:.2f}s)"
    )
