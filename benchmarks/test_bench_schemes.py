"""Scheme comparison — the conservation trade-off triangle.

Sections II and VII of the paper frame the DL-based method against the
two classic PIC families: the explicit momentum-conserving scheme (its
baseline) and energy-conserving implicit schemes (its reference [4]).
This bench runs all three on the same two-stream problem and tabulates
the trade-offs the paper describes:

* explicit: momentum to round-off, energy to ~1e-3;
* energy-conserving: energy to Picard tolerance, momentum drifts;
* DL-based: neither, with an error floor set by the network MAE.
"""

import numpy as np
from conftest import dump_result

from repro.dlpic.simulation import DLPIC
from repro.pic.energy_conserving import EnergyConservingPIC
from repro.pic.simulation import TraditionalPIC
from repro.theory.dispersion import growth_rate_cold
from repro.theory.growth import fit_growth_rate

import pytest

pytestmark = pytest.mark.slow  # needs the medium-preset trained solvers (~15 min cold)


def test_scheme_conservation_triangle(solvers, results_dir, benchmark):
    config = solvers.preset.validation_config()
    gamma_theory = growth_rate_cold(2 * np.pi / config.box_length, config.v0)

    def run_all():
        out = {}
        for name, sim in (
            ("explicit", TraditionalPIC(config)),
            ("energy-conserving", EnergyConservingPIC(config, tolerance=1e-13)),
            ("dl", DLPIC(config, solvers.mlp_solver)),
        ):
            hist = sim.run(config.n_steps)
            a = hist.as_arrays()
            fit = fit_growth_rate(a["time"], a["mode1"])
            out[name] = {
                "energy_variation": hist.energy_variation(),
                "momentum_drift": hist.momentum_drift(),
                "gamma": fit.gamma,
                "gamma_rel_err": fit.relative_error(gamma_theory),
            }
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(f"  {'scheme':<20} {'dE/E':>10} {'dP':>12} {'gamma':>8} {'err':>7}")
    for name, r in results.items():
        print(f"  {name:<20} {r['energy_variation']:>10.2e} "
              f"{r['momentum_drift']:>+12.2e} {r['gamma']:>8.4f} "
              f"{r['gamma_rel_err']:>6.1%}")
    dump_result(results_dir, "schemes", results)

    ex, ec, dl = results["explicit"], results["energy-conserving"], results["dl"]

    # All three reproduce the analytic growth rate.
    for r in (ex, ec, dl):
        assert r["gamma_rel_err"] < 0.35

    # Explicit: momentum to round-off; energy bounded but not exact.
    assert abs(ex["momentum_drift"]) < 1e-10
    assert 1e-12 < ex["energy_variation"] < 0.02

    # Energy-conserving: energy to Picard tolerance; momentum drifts.
    assert ec["energy_variation"] < 1e-9
    assert abs(ec["momentum_drift"]) > 1e-6

    # DL-based: conserves neither; both violations exceed the classic
    # schemes' corresponding conserved quantity by orders of magnitude.
    assert dl["energy_variation"] > 100 * ec["energy_variation"]
    assert abs(dl["momentum_drift"]) > 1e4 * abs(ex["momentum_drift"])
