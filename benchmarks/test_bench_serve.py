"""Networked service — closed-loop HTTP throughput, parity, shedding.

Three gates from the networked-service ISSUE:

* a ``repro serve --listen`` server driven closed-loop by **128
  concurrent connections** must clear **>= 3x** the throughput of the
  serial no-batching baseline (one in-process request at a time,
  ``max_batch_size=1``) on the same 192-request mixed-scenario stream —
  the micro-batcher must keep coalescing when requests arrive over
  sockets instead of in-process calls;
* every remote result must be **bitwise identical** to the in-process
  run of the same request (the JSON wire format round-trips arrays
  exactly, dtypes included);
* under overload the admission queue must **shed** (well-formed
  ``shed``-status results, never errors or hangs) and **recover**:
  once the flood passes, the same server serves normally again.

The numeric outcome lands in ``.artifacts/results/BENCH_serve.json``
and is uploaded as a CI artifact.  Runs in the CI benchmark smoke job
(not marked ``slow``): a full timing pass takes ~30 s on one CPU core.
"""

import time

import numpy as np
import pytest
from conftest import dump_result

from repro.api import Client, RunRequest
from repro.config import SimulationConfig
from repro.server import serve_in_thread

N_REQUESTS = 192
N_CONNECTIONS = 128
MAX_BATCH = 32
MIN_SPEEDUP = 3.0

BASE = SimulationConfig(
    n_cells=32, particles_per_cell=10, n_steps=150, vth=0.01, seed=0
)
_SCENARIOS = [
    ("two_stream", {"v0": 0.2}),
    ("cold_beam", {"v0": 0.4}),
    ("landau_damping", {"vth": 0.05}),
    ("bump_on_tail", {"v0": 0.35, "extra": {"bump_fraction": 0.15}}),
    ("random_perturbation", {"vth": 0.03}),
]
REQUESTS = [
    RunRequest(
        config=BASE.with_updates(
            scenario=_SCENARIOS[i % 5][0], seed=i, **_SCENARIOS[i % 5][1]
        ),
        id=f"req-{i}",
    )
    for i in range(N_REQUESTS)
]


def _run_serial() -> list:
    """The baseline: one in-process request at a time, no batching."""
    with Client(background=False, max_batch_size=1) as client:
        return [client.run(request) for request in REQUESTS]


def _run_remote() -> list:
    """The same stream closed-loop over HTTP: 128 persistent connections
    against a fresh (cold-store) server."""
    with serve_in_thread(
        max_batch_size=MAX_BATCH, max_wait=0.01,
        max_pending=2 * N_REQUESTS, max_connections=2 * N_CONNECTIONS,
    ) as server:
        with Client.connect(server.url,
                            max_connections=N_CONNECTIONS) as client:
            futures = client.submit_many(REQUESTS)
            return [future.result(timeout=600) for future in futures]


def _interleaved_best(fns, repeats: int = 2) -> list[float]:
    """Best-of timing with the contenders interleaved per repeat."""
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def measurements() -> dict:
    # Parity pass (doubles as warm-up): the remote results must match
    # an in-process batched run of the same requests bit for bit.
    remote = _run_remote()
    with Client(background=False, max_batch_size=MAX_BATCH) as client:
        local = client.map(REQUESTS)
    assert all(r.status == "ok" for r in remote)
    for over_http, in_process in zip(remote, local):
        assert over_http.id == in_process.id
        assert over_http.key == in_process.key
        for name, values in in_process.series.items():
            a = np.asarray(over_http.series[name])
            b = np.asarray(values)
            assert a.dtype == b.dtype, f"dtype drift in {name!r}"
            np.testing.assert_array_equal(
                a, b, err_msg=f"remote result differs in {name!r}"
            )

    t_serial, t_remote = _interleaved_best([_run_serial, _run_remote])
    return {
        "n_requests": N_REQUESTS,
        "n_connections": N_CONNECTIONS,
        "max_batch_size": MAX_BATCH,
        "n_steps": BASE.n_steps,
        "n_particles_per_run": BASE.n_particles,
        "n_scenarios": len(_SCENARIOS),
        "t_serial_s": t_serial,
        "t_remote_s": t_remote,
        "requests_per_s_serial": N_REQUESTS / t_serial,
        "requests_per_s_remote": N_REQUESTS / t_remote,
        "speedup": t_serial / t_remote,
        "min_speedup": MIN_SPEEDUP,
        "bitwise_parity": True,
    }


def test_closed_loop_throughput_at_least_3x(measurements, results_dir):
    print()
    print(f"  serial: {measurements['t_serial_s'] * 1e3:8.1f} ms  "
          f"({measurements['requests_per_s_serial']:6.1f} req/s)")
    print(f"  remote: {measurements['t_remote_s'] * 1e3:8.1f} ms  "
          f"({measurements['requests_per_s_remote']:6.1f} req/s, "
          f"{N_CONNECTIONS} connections, max_batch={MAX_BATCH})")
    print(f"  speedup: {measurements['speedup']:7.2f}x  "
          f"({N_REQUESTS} mixed-scenario requests)")
    dump_result(results_dir, "BENCH_serve", measurements)
    assert measurements["speedup"] >= MIN_SPEEDUP, (
        f"networked service only {measurements['speedup']:.2f}x faster than "
        f"the serial no-batching baseline at {N_CONNECTIONS} connections; "
        f"acceptance bar is {MIN_SPEEDUP}x"
    )


def test_remote_results_bitwise_match_in_process(measurements):
    # The parity sweep runs inside the measurements fixture (it doubles
    # as the warm-up pass); this records the gate explicitly.
    assert measurements["bitwise_parity"] is True


def test_shedding_engages_and_recovers(measurements, results_dir):
    flood = [
        RunRequest(
            config=BASE.with_updates(
                particles_per_cell=120, n_steps=300, seed=1000 + i
            ),
            id=f"flood-{i}",
        )
        for i in range(64)
    ]
    with serve_in_thread(
        max_batch_size=8, max_wait=0.005, max_pending=8, max_connections=256,
    ) as server:
        with Client.connect(server.url, max_connections=64,
                            raise_on_error=False) as client:
            futures = client.submit_many(flood)
            flooded = [future.result(timeout=600) for future in futures]
            statuses = {r.status for r in flooded}
            n_shed = sum(r.status == "shed" for r in flooded)
            n_ok = sum(r.status == "ok" for r in flooded)
            # Overload must shed (not error, not hang) while still
            # serving up to the admission bound.
            assert statuses <= {"ok", "shed"}, statuses
            assert n_shed > 0, "overload never engaged the load-shedder"
            assert n_ok >= server.max_pending
            # Recovery: the flood is over, the same server serves again.
            after = [
                client.run(RunRequest(config=BASE.with_updates(seed=2000 + i),
                                      id=f"after-{i}"))
                for i in range(4)
            ]
            assert all(r.status == "ok" for r in after)
            snapshot = server.metrics_snapshot()
    assert snapshot["requests"]["by_status"]["shed"] == n_shed
    assert snapshot["queue"]["inflight"] == 0
    measurements["overload"] = {
        "n_flood_requests": len(flood),
        "max_pending": 8,
        "n_shed": n_shed,
        "n_ok_during_flood": n_ok,
        "recovered_after_flood": True,
    }
    dump_result(results_dir, "BENCH_serve", measurements)
