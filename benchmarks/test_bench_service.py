"""Simulation-service throughput — micro-batched vs per-request runs.

32 mixed-scenario requests (five scenarios, varying beam parameters,
seeds and ``extra``) arrive at a :class:`SimulationService`, which
coalesces them into ``ceil(32/16) = 2`` ensemble executions.  The bench
asserts the ISSUE's acceptance bar: at least a 3x throughput gain over
running the same 32 requests sequentially with ``TraditionalPIC``, with
every served result bitwise identical to its solo run, and a repeated
request served straight from the content-addressed store without
touching an engine.

The numeric outcome lands in ``.artifacts/results/BENCH_service.json``
and is uploaded as a CI artifact.  Runs in the CI benchmark smoke job
(not marked ``slow``): a full timing pass takes a few seconds on one
CPU core.
"""

import time

import numpy as np
from conftest import dump_result

from repro.config import SimulationConfig
from repro.pic.simulation import TraditionalPIC
from repro.service import ResultStore, SimulationService

N_REQUESTS = 32
N_STEPS = 100
MAX_BATCH = 16
BASE = SimulationConfig(
    n_cells=32, particles_per_cell=25, n_steps=N_STEPS, vth=0.01, seed=0
)

# A mixed workload: every scenario in the registry, varying physics
# knobs (including `extra`, which is part of the content address) —
# all structurally compatible, so the batcher may co-batch freely.
_SCENARIOS = [
    ("two_stream", {"v0": 0.2}),
    ("cold_beam", {"v0": 0.4}),
    ("landau_damping", {"vth": 0.05}),
    ("bump_on_tail", {"v0": 0.35, "extra": {"bump_fraction": 0.15}}),
    ("random_perturbation", {"vth": 0.03}),
]
CONFIGS = [
    BASE.with_updates(scenario=_SCENARIOS[i % 5][0], seed=i, **_SCENARIOS[i % 5][1])
    for i in range(N_REQUESTS)
]


def _run_sequential() -> list[tuple[dict, np.ndarray]]:
    """The 32 requests the pre-service way: one Python loop, one run each."""
    outputs = []
    for config in CONFIGS:
        sim = TraditionalPIC(config)
        history = sim.run(N_STEPS)
        outputs.append((history.as_arrays(), sim.efield.copy()))
    return outputs


def _run_served() -> list:
    """The same 32 requests through a fresh (cold-store) service."""
    with SimulationService(
        max_batch_size=MAX_BATCH, max_wait=0.005, store=ResultStore(capacity=64)
    ) as service:
        futures = [service.submit(config) for config in CONFIGS]
        return [future.result(timeout=300) for future in futures]


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_served_results_match_solo_runs_bitwise():
    """Micro-batching must not change a single bit of any request's run."""
    sequential = _run_sequential()
    served = _run_served()
    for (series, efield), result in zip(sequential, served):
        for name in ("time", "kinetic", "potential", "total", "momentum", "mode1"):
            np.testing.assert_array_equal(result.series[name], series[name])
        np.testing.assert_array_equal(result.efield, efield)


def test_repeated_request_served_from_store():
    """A repeat of a completed request must not reach an engine again."""
    with SimulationService(
        max_batch_size=MAX_BATCH, max_wait=0.005, store=ResultStore(capacity=64)
    ) as service:
        first = [service.submit(c) for c in CONFIGS]
        originals = [f.result(timeout=300) for f in first]
        executed = service.stats["executed_runs"]
        assert executed == N_REQUESTS
        again, status = service.submit_with_status(CONFIGS[7])
        assert status == "cached"
        assert again.result(timeout=0) is originals[7]
        assert service.stats["executed_runs"] == executed


def test_service_throughput(results_dir):
    # Warm-up (allocators, FFT plan caches, first-call costs).
    _run_sequential()
    _run_served()
    t_seq = _best_of(_run_sequential)
    t_srv = _best_of(_run_served)
    speedup = t_seq / t_srv
    print()
    print(f"  sequential: {t_seq * 1e3:8.1f} ms  "
          f"({N_REQUESTS / t_seq:6.1f} req/s)")
    print(f"  service:    {t_srv * 1e3:8.1f} ms  "
          f"({N_REQUESTS / t_srv:6.1f} req/s, max_batch={MAX_BATCH})")
    print(f"  speedup:    {speedup:8.2f}x  ({N_REQUESTS} mixed-scenario requests)")
    dump_result(
        results_dir,
        "BENCH_service",
        {
            "n_requests": N_REQUESTS,
            "n_steps": N_STEPS,
            "n_particles_per_run": BASE.n_particles,
            "max_batch_size": MAX_BATCH,
            "n_scenarios": len(_SCENARIOS),
            "t_sequential_s": t_seq,
            "t_service_s": t_srv,
            "requests_per_s_sequential": N_REQUESTS / t_seq,
            "requests_per_s_service": N_REQUESTS / t_srv,
            "speedup": speedup,
        },
    )
    assert speedup >= 3.0, (
        f"service only {speedup:.2f}x faster than {N_REQUESTS} sequential runs; "
        "acceptance bar is 3x"
    )
