"""Sec. VII follow-up study — spectral analysis of DL field errors.

"More studies, such as spectral analysis of errors in the electric
field values, are needed to gain more insight into the DL-based PIC
methods."  This bench performs that analysis on the trained medium MLP:
it decomposes the prediction error over test set I by Fourier mode and
reports where the network fails (long-wavelength physics vs
short-wavelength binning noise).
"""

import numpy as np
from conftest import dump_result

from repro.theory.spectral import solver_error_spectrum

import pytest

pytestmark = pytest.mark.slow  # needs the medium-preset trained solvers (~15 min cold)


def test_error_spectrum(solvers, results_dir, benchmark):
    spec = benchmark.pedantic(
        solver_error_spectrum, args=(solvers.mlp_solver, solvers.test),
        rounds=1, iterations=1,
    )
    print()
    print(f"  {'mode':>5} {'signal RMS':>12} {'error RMS':>12} {'error/signal':>13}")
    for m in range(min(9, spec.modes.size)):
        rel = spec.relative[m]
        print(f"  {m:>5} {spec.signal_amplitude[m]:>12.4e} "
              f"{spec.error_amplitude[m]:>12.4e} "
              f"{rel if np.isfinite(rel) else float('nan'):>13.3f}")
    low_k = spec.low_k_fraction(cutoff=4)
    print(f"  fraction of error energy in modes 1-4: {low_k:.1%}")

    dump_result(
        results_dir,
        "spectral_error",
        {
            "error_amplitude": spec.error_amplitude.tolist(),
            "signal_amplitude": spec.signal_amplitude.tolist(),
            "low_k_fraction": low_k,
            "dominant_error_mode": spec.dominant_error_mode,
        },
    )

    # The two-stream signal is concentrated in mode 1.
    assert spec.signal_amplitude[1] == spec.signal_amplitude[1:].max()
    # The network captures the dominant mode better (relatively) than
    # the high-k tail, where the histogram shot noise lives.
    high_k = spec.relative[8:][np.isfinite(spec.relative[8:])]
    assert spec.relative[1] < np.median(high_k)
    assert np.all(np.isfinite(spec.error_amplitude))
