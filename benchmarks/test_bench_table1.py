"""Table I — MAE and max error of the MLP and CNN on test sets I & II.

Paper reference values::

    Metric                Test Set   MLP       CNN
    Mean Absolute Error   I          0.0019    0.0020
    Max Error             I          0.06899   0.0463
    Mean Absolute Error   II         0.0015    0.0032
    Max Error             II         0.0286    0.073

Shape asserted here: both networks regress the field to a few times
1e-3 MAE (an order of magnitude below the ~0.1 field scale), and the
CNN's MAE degrades from set I to the unseen-parameter set II.
"""

from conftest import dump_result

from repro.experiments import format_table1, run_table1

import pytest

pytestmark = pytest.mark.slow  # needs the medium-preset trained solvers (~15 min cold)


def test_table1(solvers, results_dir, benchmark):
    rows = benchmark.pedantic(run_table1, args=(solvers,), rounds=1, iterations=1)
    table = {(r.network, r.test_set): r for r in rows}
    print()
    print(format_table1(rows))

    dump_result(
        results_dir,
        "table1",
        {f"{r.network}-{r.test_set}": {"mae": r.mae, "max_error": r.max_error} for r in rows},
    )

    # Both networks learn the regression: MAE well below the field scale (~0.1).
    for row in rows:
        assert row.mae < 0.02, f"{row.network}/{row.test_set} MAE {row.mae}"
        assert row.max_error < 0.3

    # Paper shape: the CNN degrades on unseen parameters (set II).
    assert table[("CNN", "II")].mae > table[("CNN", "I")].mae

    # MLP and CNN are comparable on set I (within a factor ~2, paper: 0.0019 vs 0.0020).
    assert table[("MLP", "I")].mae < 2.0 * table[("CNN", "I")].mae
