#!/usr/bin/env python3
"""Fig. 6: the cold-beam numerical instability comparison.

Two cold beams at ``v0 = +/-0.4`` are linearly *stable* — yet the
traditional momentum-conserving PIC develops non-physical phase-space
ripples (the finite-grid instability).  This example runs both methods
and quantifies the ripples (beam velocity spread) plus the energy and
momentum evolution of the paper's bottom panels.

Run:  python examples/cold_beam_stability.py [--preset fast|medium]
"""

import argparse

import numpy as np

from repro.experiments import fast_preset, medium_preset, run_fig6, train_solvers
from repro.theory import growth_rate_cold


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=["fast", "medium"], default="medium")
    args = parser.parse_args()
    preset = {"fast": fast_preset, "medium": medium_preset}[args.preset]()

    solvers = train_solvers(preset, cache_dir="./.artifacts", include_cnn=False)
    config = preset.coldbeam_config()

    k1 = 2 * np.pi / config.box_length
    print(f"Cold beams: v0 = {config.v0}, vth = 0, k1*v0 = {k1 * config.v0:.3f} > 1")
    print(f"Linear theory growth rate: {growth_rate_cold(k1, config.v0):.4f} "
          "(stable — the beams should stream forever)\n")

    result = run_fig6(solvers.mlp_solver, config)
    print(result.summary())

    print("\n  t      total E (trad)   total E (DL)   momentum (trad)  momentum (DL)")
    for i in range(0, len(result.time), 20):
        print(f"  {result.time[i]:5.1f}  {result.total_energy_traditional[i]:14.5f} "
              f"{result.total_energy_dl[i]:14.5f}  "
              f"{result.momentum_traditional[i]:+14.2e} {result.momentum_dl[i]:+14.2e}")

    print("\nPaper vs this run:")
    print("  traditional ripples + energy decrease: reproduced")
    print("  DL momentum variation grows:           reproduced")
    print("  DL phase-space cleanliness:            requires full-scale training")
    print("  (see EXPERIMENTS.md for the scale analysis)")


if __name__ == "__main__":
    main()
