#!/usr/bin/env python3
"""Sec. VII distributed-memory claim, made quantitative.

The paper argues the DL field solver needs no field-solve communication
on distributed-memory machines (the network is replicated).  This
example (1) sweeps the closed-form communication model over rank counts
and (2) actually executes both methods on simulated ranks, verifying
the distributed physics matches the serial run while counting bytes.

Run:  python examples/distributed_scaling.py
"""

import numpy as np

from repro.config import SimulationConfig
from repro.experiments import fast_preset, train_solvers
from repro.parallel import (
    communication_model,
    run_distributed_dl,
    run_distributed_traditional,
)
from repro.phasespace import PhaseSpaceGrid
from repro.pic import TraditionalPIC


def main() -> None:
    ps_grid = PhaseSpaceGrid(n_x=64, n_v=64)
    print("Per-step field-solve communication (closed-form model, 64 cells,")
    print("64x64 phase-space histogram, float64):\n")
    print(f"{'ranks':>6} | {'traditional B/step':>19} {'syncs':>6} | "
          f"{'DL B/step':>10} {'syncs':>6}")
    for ranks in (2, 4, 8, 16, 32, 64, 128):
        m = communication_model(ranks, 64, ps_grid)
        t, d = m["traditional"], m["dl"]
        print(f"{ranks:>6} | {t['bytes_per_step']:>19,.0f} {t['sync_points_per_step']:>6.0f} | "
              f"{d['bytes_per_step']:>10,.0f} {d['sync_points_per_step']:>6.0f}")
    print("\nThe DL solve always uses ONE synchronization point (a single")
    print("histogram allreduce) vs the traditional reduce+bcast pair; in 1D")
    print("it pays more bytes because the histogram is larger than rho.")

    # Actually run both methods on simulated ranks.
    print("\nExecuting 20 steps on 4 simulated ranks...")
    config = SimulationConfig(n_cells=64, particles_per_cell=100, n_steps=20, seed=3)
    serial = TraditionalPIC(config).run(20).as_arrays()
    dist = run_distributed_traditional(config, n_ranks=4, n_steps=20)
    diff = np.abs(dist.history.as_arrays()["total"] - serial["total"]).max()
    print(f"  traditional: {dist.bytes_per_step:,.0f} B/step, "
          f"{dist.sync_points_per_step:.1f} syncs/step, "
          f"|serial - distributed| total energy: {diff:.2e}")

    solvers = train_solvers(fast_preset(), cache_dir="./.artifacts", include_cnn=False)
    dl_config = solvers.preset.validation_config().with_updates(n_steps=20)
    dl = run_distributed_dl(dl_config, solvers.mlp_solver, n_ranks=4, n_steps=20)
    print(f"  DL-based:    {dl.bytes_per_step:,.0f} B/step, "
          f"{dl.sync_points_per_step:.1f} syncs/step "
          f"(single allreduce + particle migration)")


if __name__ == "__main__":
    main()
