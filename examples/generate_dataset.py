#!/usr/bin/env python3
"""Generate a training data set from traditional PIC runs (Sec. IV-A1).

Sweeps ``(v0, vth)`` combinations with several seeds each ("data
augmentation"), binning the phase space after every step and pairing it
with the solved electric field — the paper's Fig. 3 data.  Saves the
dataset to an ``.npz`` and prints its statistics.

Run:  python examples/generate_dataset.py [--out dataset.npz] [--workers N]
      python examples/generate_dataset.py --paper   # the full 40k sweep
"""

import argparse

import numpy as np

from repro.datagen import fast_campaign, paper_campaign, run_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="dataset.npz")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--paper", action="store_true",
                        help="run the paper's full 200-simulation campaign")
    args = parser.parse_args()

    campaign = paper_campaign() if args.paper else fast_campaign()
    print(f"Campaign: {len(campaign.v0_values)} beam speeds x "
          f"{len(campaign.vth_values)} thermal speeds x "
          f"{campaign.experiments_per_combo} seeds = "
          f"{campaign.n_simulations} simulations, {campaign.n_samples:,} samples")
    print(f"Phase-space grid: {campaign.ps_grid.shape}, binning: {campaign.binning}")

    data = run_campaign(campaign, n_workers=args.workers)
    path = data.save(args.out)

    print(f"\nSaved {len(data):,} (histogram, field) pairs to {path}")
    print(f"  inputs:  {data.inputs.shape}  counts in [{data.inputs.min():.0f}, "
          f"{data.inputs.max():.0f}]")
    print(f"  targets: {data.targets.shape}  E in [{data.targets.min():+.4f}, "
          f"{data.targets.max():+.4f}]")
    per_sample_mass = data.inputs.sum(axis=(1, 2))
    print(f"  histogram mass per sample: {per_sample_mass.min():.0f} "
          f"(= particle count, conserved)")
    e_rms = np.sqrt((data.targets**2).mean(axis=1))
    print(f"  field RMS across samples: median {np.median(e_rms):.4f}, "
          f"max {e_rms.max():.4f}")


if __name__ == "__main__":
    main()
