#!/usr/bin/env python3
"""Quickstart: run the paper's two-stream benchmark with traditional PIC.

Reproduces the physics baseline everything else builds on: the
``v0 = +/-0.2, vth = 0.025`` two-stream instability at the paper's full
resolution (64 cells, 1,000 electrons/cell, dt = 0.2, 200 steps), then
checks the measured growth rate against linear theory and reports the
conservation properties of Fig. 5.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.config import paper_validation_config
from repro.pic import TraditionalPIC
from repro.theory import fit_growth_rate, growth_rate_cold


def main() -> None:
    config = paper_validation_config(seed=1)
    print("Two-stream instability, traditional PIC")
    print(f"  box L = {config.box_length:.4f}  cells = {config.n_cells}  "
          f"particles = {config.n_particles:,}  dt = {config.dt}")

    sim = TraditionalPIC(config)
    history = sim.run()  # 200 steps
    series = history.as_arrays()

    gamma_theory = growth_rate_cold(2 * np.pi / config.box_length, config.v0)
    fit = fit_growth_rate(series["time"], series["mode1"])

    print("\nGrowth of the most unstable mode (Fig. 4 bottom panel):")
    print(f"  linear theory   gamma = {gamma_theory:.4f}")
    print(f"  measured        gamma = {fit.gamma:.4f}  "
          f"(rel. err. {fit.relative_error(gamma_theory):.1%}, r^2 = {fit.r_squared:.3f})")
    print(f"  E1: {series['mode1'][0]:.2e} -> max {series['mode1'].max():.2e}")

    print("\nConservation (Fig. 5):")
    print(f"  total energy    {series['total'][0]:.5f} -> {series['total'][-1]:.5f}  "
          f"(max variation {history.energy_variation():.2%})")
    print(f"  total momentum  drift {history.momentum_drift():+.2e}  (round-off)")

    spread = np.std(sim.particles.v[sim.particles.v > 0])
    print(f"\nPhase space: the +v0 beam's velocity spread grew from "
          f"{config.vth} to {spread:.3f} (phase-space hole formed).")


if __name__ == "__main__":
    main()
