#!/usr/bin/env python3
"""Render the paper's figure panels as ASCII and build the repro report.

Headless stand-in for the MATLAB plots: draws the Fig. 4 top panels
(phase-space holes) and bottom panel (E1 growth on a log axis) as text,
and — if the benchmark suite has been run — assembles the full
paper-vs-measured markdown report from `.artifacts/results/`.

Run:  python examples/render_report.py [--preset fast|medium]
"""

import argparse
from pathlib import Path

from repro.analysis import build_report, render_phase_space, render_series
from repro.experiments import fast_preset, medium_preset, run_fig4, train_solvers


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=["fast", "medium"], default="fast")
    args = parser.parse_args()
    preset = {"fast": fast_preset, "medium": medium_preset}[args.preset]()

    solvers = train_solvers(preset, cache_dir="./.artifacts", include_cnn=False)
    config = preset.validation_config()
    result = run_fig4(solvers.mlp_solver, config)

    print(render_phase_space(
        result.traditional.final_x, result.traditional.final_v,
        box_length=config.box_length, width=64, height=16,
        title=f"\nTraditional PIC phase space, t = {result.time[-1]:.0f} "
              f"(v0 = {config.v0}, vth = {config.vth})",
    ))
    print(render_phase_space(
        result.dl.final_x, result.dl.final_v,
        box_length=config.box_length, width=64, height=16,
        title=f"\nDL-based PIC phase space, t = {result.time[-1]:.0f}",
    ))
    print(render_series(
        result.time[1:], result.e1_traditional[1:], logscale=True,
        width=64, height=14, title="\nE1 amplitude, traditional PIC (log scale)",
    ))
    print(render_series(
        result.time[1:], result.e1_dl[1:], logscale=True,
        width=64, height=14, title="\nE1 amplitude, DL-based PIC (log scale)",
    ))
    print()
    print(result.summary())

    results_dir = Path(".artifacts/results")
    if results_dir.is_dir():
        report = build_report(results_dir)
        out = Path(".artifacts/report.md")
        out.write_text(report)
        print(f"\nFull paper-vs-measured report written to {out}")
    else:
        print("\n(no .artifacts/results yet — run `pytest benchmarks/ "
              "--benchmark-only` to enable the full report)")


if __name__ == "__main__":
    main()
