#!/usr/bin/env python3
"""End-to-end tracing smoke: serve, trace one request, render the waterfall.

Stands up the networked service with tracing on, sends one traced
request through ``Client.connect(url, tracing=True)``, then checks the
whole observability surface:

* the result's ``timings`` carry the canonical stage breakdown
  (``batch_wait_s`` / ``queue_wait_s`` / ``exec_s`` / ``store_s``) and
  a ``trace_id``;
* ``GET /v1/trace/<id>`` serves a valid span-tree JSON whose merged
  tree spans client -> server -> executor -> engine steps;
* the ``repro trace`` CLI renders that payload as a waterfall;
* ``GET /v1/metrics?format=prometheus`` parses as text exposition.

Run:  python examples/trace_smoke.py
Exits non-zero on any failed check (used as a CI smoke step).
"""

import json
import re
import sys
import urllib.request

from repro.api import Client, RunRequest
from repro.cli import main as repro_main
from repro.config import SimulationConfig
from repro.server import serve_in_thread

REQUIRED_SPANS = {
    "client.request", "client.http", "server.request", "service.submit",
    "executor.dispatch", "executor.worker_run", "engine.run", "engine.steps",
}
STAGE_KEYS = {"wall_s", "batch_wait_s", "queue_wait_s", "exec_s", "store_s"}
EXPOSITION_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.einf+-]+$"
)


def span_names(nodes, out=None):
    out = out if out is not None else set()
    for node in nodes:
        out.add(node["name"])
        span_names(node["children"], out)
    return out


def main() -> int:
    config = SimulationConfig(
        n_cells=32, particles_per_cell=20, n_steps=50, vth=0.01, seed=3
    )
    with serve_in_thread(max_batch_size=8, max_wait=0.005,
                         tracing=True) as server:
        print(f"serving with tracing on at {server.url}")
        with Client.connect(server.url, tracing=True) as client:
            result = client.run(RunRequest(config=config, id="smoke"))
        assert result.status == "ok", result.error
        assert STAGE_KEYS <= set(result.timings), sorted(result.timings)
        trace_id = result.timings["trace_id"]
        print(f"request ok; stage timings + trace id {trace_id}")

        with urllib.request.urlopen(
            f"{server.url}/v1/trace/{trace_id}"
        ) as response:
            payload = json.load(response)
        assert payload["trace_id"] == trace_id
        assert payload["complete"] is True
        names = span_names(payload["spans"])
        missing = REQUIRED_SPANS - names
        assert not missing, f"span tree is missing {sorted(missing)}"
        json.dumps(payload)  # the payload must be pure JSON
        print(f"trace JSON valid: {payload['n_spans']} spans across "
              f"{len(names)} distinct stages")

        code = repro_main(["trace", trace_id, "--url", server.url])
        assert code == 0, f"repro trace exited {code}"

        with urllib.request.urlopen(
            f"{server.url}/v1/metrics?format=prometheus"
        ) as response:
            text = response.read().decode()
        for line in text.strip().splitlines():
            if not line.startswith("#"):
                assert EXPOSITION_LINE.match(line), f"bad exposition: {line!r}"
        assert "repro_stage_duration_seconds_bucket" in text
        print("prometheus exposition valid")
    print("trace smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
