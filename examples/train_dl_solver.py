#!/usr/bin/env python3
"""Train the paper's DL electric-field solver end to end (Sec. IV).

Runs the full pipeline — traditional-PIC data campaign, shuffle/split,
Eq. 5 min-max normalization, Adam training of the MLP (and optionally
the CNN) — and prints Table I for the trained networks.  Artifacts are
cached under ``.artifacts/<preset>`` and reused by the other examples
and the benchmark suite.

Run:  python examples/train_dl_solver.py [--preset fast|medium|paper]
                                         [--no-cnn] [--workers N]
"""

import argparse

from repro.experiments import (
    fast_preset,
    format_table1,
    medium_preset,
    paper_preset,
    run_table1,
    train_solvers,
)

PRESETS = {"fast": fast_preset, "medium": medium_preset, "paper": paper_preset}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="fast",
                        help="pipeline scale (default: fast; the paper's exact "
                             "scale is 'paper' — hours on CPU)")
    parser.add_argument("--no-cnn", action="store_true", help="train only the MLP")
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel workers for the data campaign")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read/write the artifact cache")
    args = parser.parse_args()

    preset = PRESETS[args.preset]()
    campaign = preset.campaign
    print(f"Preset {preset.name!r}: {campaign.n_simulations} simulations, "
          f"{campaign.n_samples:,} samples, phase grid {campaign.ps_grid.shape}, "
          f"MLP {preset.mlp_hidden}x3 for {preset.mlp_epochs} epochs")

    solvers = train_solvers(
        preset,
        cache_dir=None if args.no_cache else "./.artifacts",
        include_cnn=not args.no_cnn,
        n_workers=args.workers,
        verbose=True,
    )

    print()
    print(format_table1(run_table1(solvers)))
    print("\nPaper values (full 40k-sample scale) for comparison:")
    print("  MAE  I: MLP 0.0019  CNN 0.0020  |  II: MLP 0.0015  CNN 0.0032")
    print("  Max  I: MLP 0.0690  CNN 0.0463  |  II: MLP 0.0286  CNN 0.0730")


if __name__ == "__main__":
    main()
