#!/usr/bin/env python3
"""Figs. 4-5: DL-based PIC vs traditional PIC on the two-stream test.

Loads (or trains) the medium-preset MLP solver, then runs the paper's
validation configuration ``v0 = +/-0.2, vth = 0.025`` — parameters the
network never saw — with both methods and prints the E1 growth
comparison against linear theory plus the energy/momentum histories.

Run:  python examples/two_stream_instability.py [--preset fast|medium]
"""

import argparse

from repro.experiments import (
    fast_preset,
    medium_preset,
    run_fig4,
    run_fig5,
    train_solvers,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=["fast", "medium"], default="medium")
    args = parser.parse_args()
    preset = {"fast": fast_preset, "medium": medium_preset}[args.preset]()

    print(f"Loading/training the {preset.name!r} solvers "
          f"(cached under ./.artifacts/{preset.name}) ...")
    solvers = train_solvers(preset, cache_dir="./.artifacts", include_cnn=False)

    config = preset.validation_config()
    print(f"\nValidation run: v0 = {config.v0}, vth = {config.vth} "
          f"(not in the training sweep), {config.n_steps} steps\n")

    fig4 = run_fig4(solvers.mlp_solver, config)
    print(fig4.summary())
    print("\n  t      E1 traditional   E1 DL-based")
    for i in range(0, len(fig4.time), 10):
        print(f"  {fig4.time[i]:5.1f}  {fig4.e1_traditional[i]:14.3e}  {fig4.e1_dl[i]:12.3e}")

    fig5 = run_fig5(solvers.mlp_solver, config)
    print()
    print(fig5.summary())
    print("\n  t      total E (trad)   total E (DL)   momentum (trad)  momentum (DL)")
    for i in range(0, len(fig5.time), 20):
        print(f"  {fig5.time[i]:5.1f}  {fig5.total_energy_traditional[i]:14.5f} "
              f"{fig5.total_energy_dl[i]:14.5f}  {fig5.momentum_traditional[i]:+14.2e} "
              f"{fig5.momentum_dl[i]:+14.2e}")


if __name__ == "__main__":
    main()
