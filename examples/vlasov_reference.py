#!/usr/bin/env python3
"""Noise-free Vlasov-Poisson reference run (the paper's future work).

Section VII: "more accurate training data sets can be obtained by
running Vlasov codes that are not affected by the PIC numerical noise."
This example runs the semi-Lagrangian Vlasov solver on the two-stream
problem, verifies the growth rate against linear theory, and harvests a
noise-free training dataset compatible with the DL pipeline.

Run:  python examples/vlasov_reference.py
"""

import numpy as np

from repro.phasespace import PhaseSpaceGrid
from repro.theory import fit_growth_rate, growth_rate_cold
from repro.vlasov import VlasovConfig, VlasovSimulation, harvest_vlasov_dataset


def main() -> None:
    config = VlasovConfig(n_x=64, n_v=128, dt=0.1, n_steps=300,
                          v0=0.2, vth=0.025, perturbation=1e-3)
    print(f"Vlasov-Poisson grid: {config.n_x} x {config.n_v}, dt = {config.dt}")

    sim = VlasovSimulation(config)
    series = sim.run()

    gamma_theory = growth_rate_cold(2 * np.pi / config.box_length, config.v0)
    fit = fit_growth_rate(series["time"], series["mode1"])
    print("\nTwo-stream growth (no particle noise):")
    print(f"  linear theory gamma = {gamma_theory:.4f}")
    print(f"  measured      gamma = {fit.gamma:.4f}  (r^2 = {fit.r_squared:.4f})")

    total = series["total"]
    print(f"\nConservation: mass drift {abs(sim.mass() - config.box_length) / config.box_length:.2e}, "
          f"energy variation {np.max(np.abs(total - total[0])) / total[0]:.2%}")

    # Harvest a DL-compatible dataset (expected counts of a 64k-particle PIC).
    ps_grid = PhaseSpaceGrid(n_x=64, n_v=64, box_length=config.box_length,
                             v_min=config.v_min, v_max=config.v_max)
    harvest_config = VlasovConfig(n_x=64, n_v=128, dt=0.2, n_steps=200,
                                  v0=0.2, vth=0.025, perturbation=1e-3)
    data = harvest_vlasov_dataset(harvest_config, ps_grid, n_particles=64_000)
    print(f"\nHarvested {len(data)} noise-free training pairs "
          f"({data.inputs.shape[1]}x{data.inputs.shape[2]} expected-count histograms).")
    print("These feed the exact same training pipeline as PIC data — see")
    print("benchmarks/test_bench_ablation.py::test_vlasov_training_data_ablation.")


if __name__ == "__main__":
    main()
