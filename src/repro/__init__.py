"""repro — reproduction of "A Deep Learning-Based Particle-in-Cell
Method for Plasma Simulations" (Aguilar & Markidis, CLUSTER 2021).

The package layers three systems:

* ``repro.pic`` — a traditional explicit electrostatic 1D PIC code
  (the paper's Fig. 1 cycle) with NGP/CIC/TSC interpolation and three
  interchangeable Poisson solvers;
* ``repro.nn`` + ``repro.models`` — a from-scratch NumPy deep-learning
  framework and the paper's MLP/CNN architectures;
* ``repro.dlpic`` — the paper's contribution: a PIC method whose field
  solve is a neural network mapping the binned electron phase space to
  the electric field (Fig. 2).

Supporting subsystems: ``repro.phasespace`` (binning + Eq. 5
normalization), ``repro.datagen`` (the Sec. IV-A1 training-data
campaign), ``repro.theory`` (two-stream linear theory, growth-rate
fitting, cold-beam ripple metrics), ``repro.parallel`` (domain
decomposition + communication-volume model for the Sec. VII claims),
``repro.vlasov`` (a noise-free Vlasov-Poisson reference solver, the
paper's future-work data source), ``repro.experiments`` (one entry
point per paper table/figure), ``repro.engines`` + ``repro.service``
(the unified batched engine registry behind a micro-batching
simulation service) and ``repro.api`` (the public v1
``RunRequest``/``RunResult`` envelope and ``Client`` façade every
consumer goes through).

Quickstart
----------
>>> from repro.config import paper_validation_config
>>> from repro.pic import TraditionalPIC
>>> sim = TraditionalPIC(paper_validation_config(seed=1))
>>> history = sim.run(200)
>>> history.energy_variation() < 0.02
True
"""

from repro import constants
from repro.config import (
    SimulationConfig,
    paper_coldbeam_config,
    paper_validation_config,
)

__version__ = "1.0.0"

__all__ = [
    "constants",
    "SimulationConfig",
    "paper_validation_config",
    "paper_coldbeam_config",
    "__version__",
]
