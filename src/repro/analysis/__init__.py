"""Post-processing: text rendering of figures and report generation.

The paper's figures are MATLAB plots; in a headless reproduction the
equivalents are (a) ASCII renderings of the phase-space panels and
amplitude series and (b) a markdown report assembling every measured
number next to its paper value.
"""

from repro.analysis.render import render_phase_space, render_series
from repro.analysis.report import build_report

__all__ = ["render_phase_space", "render_series", "build_report"]
