"""ASCII rendering of phase-space panels and time series.

Headless stand-ins for the paper's figure panels: a density-shaded
character raster of the ``(x, v)`` phase space (Figs. 4/6 top) and a
log/linear line chart of a scalar history (Figs. 4 bottom, 5, 6
bottom).
"""

from __future__ import annotations

import math

import numpy as np

from repro.phasespace.binning import PhaseSpaceGrid, bin_phase_space

#: Density ramp from empty to full.
_SHADES = " .:-=+*#%@"


def render_phase_space(
    x: np.ndarray,
    v: np.ndarray,
    grid: "PhaseSpaceGrid | None" = None,
    width: int = 64,
    height: int = 20,
    box_length: "float | None" = None,
    title: str = "",
) -> str:
    """Render particles as a density-shaded character raster.

    The vertical axis is velocity (increasing upward, like the paper's
    plots); shading is normalized to the densest cell.
    """
    if width < 2 or height < 2:
        raise ValueError(f"raster too small: {width}x{height}")
    if grid is None:
        v = np.asarray(v, dtype=np.float64)
        span = float(np.max(np.abs(v))) if v.size else 1.0
        span = span if span > 0 else 1.0
        if box_length is None:
            raise ValueError("either grid or box_length must be given")
        grid = PhaseSpaceGrid(
            n_x=width, n_v=height, box_length=box_length,
            v_min=-1.1 * span, v_max=1.1 * span,
        )
    hist = bin_phase_space(x, v, grid, order="ngp")
    peak = hist.max()
    lines = []
    if title:
        lines.append(title)
    for row in range(grid.n_v - 1, -1, -1):  # velocity increases upward
        chars = []
        for col in range(grid.n_x):
            frac = hist[row, col] / peak if peak > 0 else 0.0
            chars.append(_SHADES[min(int(frac * (len(_SHADES) - 1) + 0.5),
                                     len(_SHADES) - 1)])
        edge = grid.v_min + (row + 0.5) * grid.dv
        lines.append(f"{edge:+7.3f} |{''.join(chars)}|")
    lines.append(" " * 8 + "+" + "-" * grid.n_x + "+")
    lines.append(" " * 9 + f"x = 0 ... {grid.box_length:.3f}")
    return "\n".join(lines)


def render_series(
    t: np.ndarray,
    y: np.ndarray,
    width: int = 64,
    height: int = 16,
    logscale: bool = False,
    title: str = "",
) -> str:
    """Render ``y(t)`` as an ASCII line chart."""
    t = np.asarray(t, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if t.shape != y.shape or t.ndim != 1 or t.size < 2:
        raise ValueError(f"need equal-length 1D series of >= 2 points, got {t.shape}, {y.shape}")
    if width < 2 or height < 2:
        raise ValueError(f"chart too small: {width}x{height}")
    vals = y.copy()
    if logscale:
        if np.any(vals <= 0):
            raise ValueError("logscale requires positive values")
        vals = np.log10(vals)
    lo, hi = float(vals.min()), float(vals.max())
    if hi == lo:
        hi = lo + 1.0
    # Column-wise max over samples mapped into each column.
    cols = np.minimum(((t - t[0]) / (t[-1] - t[0]) * (width - 1)).astype(int), width - 1)
    raster = np.full((height, width), " ", dtype="<U1")
    for col in range(width):
        mask = cols == col
        if not np.any(mask):
            continue
        level = (vals[mask].mean() - lo) / (hi - lo)
        row = min(int(level * (height - 1) + 0.5), height - 1)
        raster[height - 1 - row, col] = "*"
    lines = []
    if title:
        lines.append(title)
    top = f"1e{hi:+.2f}" if logscale else f"{hi:.4g}"
    bottom = f"1e{lo:+.2f}" if logscale else f"{lo:.4g}"
    for i, row in enumerate(raster):
        label = top if i == 0 else (bottom if i == height - 1 else "")
        lines.append(f"{label:>10} |{''.join(row)}|")
    lines.append(" " * 11 + "+" + "-" * width + "+")
    lines.append(" " * 12 + f"t = {t[0]:.3g} ... {t[-1]:.3g}")
    return "\n".join(lines)
