"""Markdown report assembling every benchmark result.

Reads the ``.artifacts/results/*.json`` files the benchmark suite dumps
and builds a paper-vs-measured summary, so a complete reproduction
report can be regenerated with one call after ``pytest benchmarks/``.
"""

from __future__ import annotations

import json
from pathlib import Path

#: The paper's Table I values, for side-by-side comparison.
PAPER_TABLE1 = {
    "MLP-I": {"mae": 0.0019, "max_error": 0.06899},
    "CNN-I": {"mae": 0.0020, "max_error": 0.0463},
    "MLP-II": {"mae": 0.0015, "max_error": 0.0286},
    "CNN-II": {"mae": 0.0032, "max_error": 0.073},
}


def _load(results_dir: Path, name: str) -> "dict | None":
    path = results_dir / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def _table1_section(data: dict) -> list[str]:
    lines = [
        "## Table I — field-regression error",
        "",
        "| Network / set | MAE (paper) | MAE (measured) | Max (paper) | Max (measured) |",
        "|---|---|---|---|---|",
    ]
    for key in ("MLP-I", "CNN-I", "MLP-II", "CNN-II"):
        if key not in data:
            continue
        paper = PAPER_TABLE1[key]
        got = data[key]
        lines.append(
            f"| {key} | {paper['mae']:.4f} | {got['mae']:.5f} "
            f"| {paper['max_error']:.4f} | {got['max_error']:.5f} |"
        )
    return lines + [""]


def _fig4_section(data: dict) -> list[str]:
    return [
        "## Fig. 4 — two-stream growth rate",
        "",
        f"* linear theory: gamma = {data['gamma_theory']:.4f}",
        f"* traditional PIC: gamma = {data['gamma_traditional']:.4f} "
        f"(r² = {data['r2_traditional']:.3f})",
        f"* DL-based PIC: gamma = {data['gamma_dl']:.4f} "
        f"(r² = {data['r2_dl']:.3f})",
        f"* saturation E1: {data['e1_max_traditional']:.3f} (trad) / "
        f"{data['e1_max_dl']:.3f} (DL) — paper: ~0.1",
        "",
    ]


def _fig5_section(data: dict) -> list[str]:
    return [
        "## Fig. 5 — conservation (two-stream)",
        "",
        f"* energy variation: traditional {data['energy_variation_traditional']:.2%}, "
        f"DL {data['energy_variation_dl']:.2%} (paper: both ≲ 2 %)",
        f"* momentum drift: traditional {data['momentum_drift_traditional']:+.2e} "
        f"(conserved), DL {data['momentum_drift_dl']:+.2e} "
        "(paper: negative drift)",
        "",
    ]


def _fig6_section(data: dict) -> list[str]:
    return [
        "## Fig. 6 — cold-beam numerical instability",
        "",
        f"* traditional beam spread: {data['spread_traditional']:.2e} "
        f"(rippled: {data['rippled_traditional']}) — paper: rippled",
        f"* DL beam spread: {data['spread_dl']:.2e} "
        f"(rippled: {data['rippled_dl']}) — paper: clean at full scale",
        f"* energy variation: traditional {data['energy_variation_traditional']:.2%} "
        f"(paper ~2 %), DL {data['energy_variation_dl']:.2%}",
        "",
    ]


def _schemes_section(data: dict) -> list[str]:
    lines = [
        "## Scheme comparison (explicit / energy-conserving / DL)",
        "",
        "| Scheme | dE/E | dP | gamma rel. err |",
        "|---|---|---|---|",
    ]
    for name, r in data.items():
        lines.append(
            f"| {name} | {r['energy_variation']:.2e} | "
            f"{r['momentum_drift']:+.2e} | {r['gamma_rel_err']:.1%} |"
        )
    return lines + [""]


_SECTIONS = {
    "table1": _table1_section,
    "fig4": _fig4_section,
    "fig5": _fig5_section,
    "fig6": _fig6_section,
    "schemes": _schemes_section,
}


def build_report(results_dir: "str | Path", title: str = "Reproduction report") -> str:
    """Assemble a markdown report from whatever results exist.

    Missing result files are skipped, so partial benchmark runs still
    produce a (partial) report.
    """
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(f"results directory {results_dir} does not exist")
    lines = [f"# {title}", ""]
    found = 0
    for name, builder in _SECTIONS.items():
        data = _load(results_dir, name)
        if data is None:
            continue
        lines.extend(builder(data))
        found += 1
    if found == 0:
        raise ValueError(
            f"no benchmark results found in {results_dir}; "
            "run `pytest benchmarks/ --benchmark-only` first"
        )
    return "\n".join(lines)
