"""Public API v1 for the simulation service.

Everything outside the library core talks to the engines through this
package: build a :class:`RunRequest` (a versioned envelope around a
:class:`~repro.config.SimulationConfig` with per-request ``observables``
selection, ``dtype`` tier, metadata and tags), hand it to a
:class:`Client`, and consume the :class:`RunResult` (status, timings,
content-address key, cache-hit flag and the selected observable
arrays).  See ``README.md`` ("Public API") for the JSONL schema and a
quickstart.
"""

from repro.api.client import Client
from repro.api.envelope import (
    API_VERSION,
    ENVELOPE_KEYS,
    FAILURE_STATUSES,
    RESERVED_CONFIG_KEYS,
    RESULT_STATUSES,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    STATUS_TIMEOUT,
    SUPPORTED_VERSIONS,
    TIMING_KEYS,
    ApiError,
    RunRequest,
    RunResult,
)
from repro.api.transport import HttpTransport, InProcessTransport, Transport

__all__ = [
    "API_VERSION",
    "ENVELOPE_KEYS",
    "FAILURE_STATUSES",
    "RESERVED_CONFIG_KEYS",
    "RESULT_STATUSES",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_SHED",
    "STATUS_TIMEOUT",
    "SUPPORTED_VERSIONS",
    "TIMING_KEYS",
    "ApiError",
    "Client",
    "HttpTransport",
    "InProcessTransport",
    "RunRequest",
    "RunResult",
    "Transport",
]
