"""The ``Client`` façade: the one way into the simulation service.

A :class:`Client` accepts :class:`~repro.api.envelope.RunRequest`
objects (or bare :class:`~repro.config.SimulationConfig`, wrapped with
envelope defaults), routes them through a
:class:`~repro.service.service.SimulationService` and returns
:class:`~repro.api.envelope.RunResult` futures — status, timings,
store key, cache-hit flag and the selected observable arrays.

The client is transport-shaped: today the only transport is the
in-process service (owned by the client, or shared by passing
``service=``), but every consumer speaks ``submit()`` / ``run()`` /
``map()``, so a remote transport can slot in behind the same façade
without touching call sites.

Two execution modes:

* ``background=True`` (default) — the service runs its worker thread;
  futures resolve as micro-batches flush.
* ``background=False`` — fully synchronous: submissions queue until
  :meth:`flush` (which ``run()``/``map()`` call for you), then execute
  on the calling thread.  Deterministic and thread-free; the mode the
  experiment pipeline and the data campaigns use.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.api.envelope import RunRequest, RunResult, now
from repro.config import SimulationConfig

if TYPE_CHECKING:
    from repro.dlpic.solver import DLFieldSolver
    from repro.service.store import ResultStore, SimulationResult


class Client:
    """Submit v1 run requests, get v1 result futures.

    Parameters
    ----------
    service:
        An existing :class:`SimulationService` to speak to.  By default
        the client constructs (and owns, and closes) its own.
    max_batch_size, max_wait, store, dl_solver:
        Forwarded to the owned service (ignored when ``service=`` is
        passed).
    background:
        Service execution mode — see the module docstring.
    raise_on_error:
        With ``True`` (default) :meth:`run` and :meth:`map` raise
        :class:`~repro.api.envelope.ApiError` on failed requests; with
        ``False`` they return error-status results instead.  Futures
        from :meth:`submit` always resolve to a :class:`RunResult`
        (never raise) so one bad request cannot break a gather.
    """

    def __init__(
        self,
        service: "object | None" = None,
        *,
        max_batch_size: int = 16,
        max_wait: float = 0.02,
        store: "ResultStore | None" = None,
        dl_solver: "DLFieldSolver | None" = None,
        background: bool = True,
        raise_on_error: bool = True,
    ) -> None:
        from repro.service.service import SimulationService

        if service is None:
            service = SimulationService(
                max_batch_size=max_batch_size,
                max_wait=max_wait,
                store=store,
                dl_solver=dl_solver,
                start=background,
            )
            self._owns_service = True
        else:
            self._owns_service = False
        self.service = service
        self.raise_on_error = raise_on_error
        self._auto_id = 0

    # -- request intake ---------------------------------------------------
    def _as_request(self, request: "RunRequest | SimulationConfig") -> RunRequest:
        if isinstance(request, SimulationConfig):
            self._auto_id += 1
            request = RunRequest(config=request, id=f"run-{self._auto_id}")
        if not isinstance(request, RunRequest):
            raise TypeError(
                f"submit() takes a RunRequest or SimulationConfig, "
                f"got {type(request).__name__}"
            )
        if not request.id:
            self._auto_id += 1
            request = request.with_updates(id=f"run-{self._auto_id}")
        return request

    # -- the API ----------------------------------------------------------
    def submit(
        self, request: "RunRequest | SimulationConfig"
    ) -> "Future[RunResult]":
        """File one request; the future resolves to a :class:`RunResult`.

        The returned future never raises: execution errors come back as
        ``status="error"`` results carrying the message.
        """
        request = self._as_request(request)
        submitted = now()
        outer: "Future[RunResult]" = Future()
        try:
            inner, status = self.service.submit_with_status(
                request.config,
                observables=request.observables,
                phase_space=request.phase_space,
            )
        except (ValueError, RuntimeError) as exc:
            # Submit-time rejections (unservable config, closed service)
            # ride the same error-result path as execution failures, so
            # one bad request in a map() cannot break the gather.
            outer.set_result(RunResult.from_error(request, exc, wall_s=now() - submitted))
            return outer

        def _convert(done: "Future[SimulationResult]") -> None:
            wall = now() - submitted
            try:
                served = done.result()
            except BaseException as exc:  # noqa: BLE001 — travels in the result
                outer.set_result(RunResult.from_error(request, exc, status, wall))
            else:
                outer.set_result(
                    RunResult.from_service(request, served, status, wall)
                )

        inner.add_done_callback(_convert)
        return outer

    def run(self, request: "RunRequest | SimulationConfig") -> RunResult:
        """Submit one request and wait for its result."""
        future = self.submit(request)
        self._drain()
        result = future.result()
        if self.raise_on_error:
            result.raise_for_status()
        return result

    def map(
        self, requests: "Iterable[RunRequest | SimulationConfig]"
    ) -> "list[RunResult]":
        """Submit many requests, wait for all, preserve order."""
        futures = [self.submit(request) for request in requests]
        self._drain()
        results = [future.result() for future in futures]
        if self.raise_on_error:
            for result in results:
                result.raise_for_status()
        return results

    def submit_many(
        self, requests: "Sequence[RunRequest | SimulationConfig]"
    ) -> "list[Future[RunResult]]":
        """File many requests without waiting (order preserved)."""
        return [self.submit(request) for request in requests]

    def flush(self) -> None:
        """Execute everything pending now, on the calling thread."""
        self.service.flush()

    @property
    def stats(self) -> "dict[str, int]":
        """The underlying service's counters snapshot."""
        return self.service.stats

    # -- lifecycle --------------------------------------------------------
    def _drain(self) -> None:
        # A synchronous (thread-free) service only executes on flush;
        # a background service resolves futures on its own.
        if getattr(self.service, "_thread", None) is None:
            self.service.flush()

    def close(self) -> None:
        """Close the owned service (a shared one is left running)."""
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
