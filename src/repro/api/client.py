"""The ``Client`` façade: the one way into the simulation service.

A :class:`Client` accepts :class:`~repro.api.envelope.RunRequest`
objects (or bare :class:`~repro.config.SimulationConfig`, wrapped with
envelope defaults), routes them through a
:class:`~repro.api.transport.Transport` and returns
:class:`~repro.api.envelope.RunResult` futures — status, timings,
store key, cache-hit flag and the selected observable arrays.

The client is transport-generic:

* the default transport is an in-process
  :class:`~repro.service.service.SimulationService` (owned by the
  client, or shared by passing ``service=``) — the exact pre-transport
  behavior, bit for bit;
* :meth:`Client.connect` (or ``transport=HttpTransport(url)``) speaks
  the same v1 envelope to a ``repro serve --listen`` server over HTTP
  (:mod:`repro.server`), with remote results bitwise identical to
  in-process ones.

Two in-process execution modes:

* ``background=True`` (default) — the service runs its worker thread;
  futures resolve as micro-batches flush.
* ``background=False`` — fully synchronous: submissions queue until
  :meth:`flush` (which ``run()``/``map()`` call for you), then execute
  on the calling thread.  Deterministic and thread-free; the mode the
  experiment pipeline and the data campaigns use.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.api.envelope import RunRequest, RunResult
from repro.api.transport import HttpTransport, InProcessTransport, Transport
from repro.config import SimulationConfig

if TYPE_CHECKING:
    from repro.dlpic.solver import DLFieldSolver
    from repro.service.store import ResultStore


class Client:
    """Submit v1 run requests, get v1 result futures.

    Parameters
    ----------
    service:
        An existing :class:`SimulationService` to speak to.  By default
        the client constructs (and owns, and closes) its own.
    transport:
        An explicit :class:`~repro.api.transport.Transport` to route
        requests through instead — mutually exclusive with ``service=``
        and the owned-service kwargs.  The client closes it.
    max_batch_size, max_wait, store, dl_solver, workers, model_dir, tracing:
        Forwarded to the owned service (ignored when ``service=`` or
        ``transport=`` is passed).  ``workers > 1`` shards ready
        compatibility groups across spawned worker processes;
        ``model_dir`` lets those workers rehydrate the DL solver for
        ``solver="dl"`` requests; ``tracing=True`` records an
        end-to-end span timeline per request (``timings["trace_id"]``
        names it in ``client.service.tracer.buffer``).
    background:
        Service execution mode — see the module docstring.
    raise_on_error:
        With ``True`` (default) :meth:`run` and :meth:`map` raise
        :class:`~repro.api.envelope.ApiError` on failed requests
        (any terminal status: ``error``, ``shed``, ``timeout``); with
        ``False`` they return the failure-status results instead.
        Futures from :meth:`submit` always resolve to a
        :class:`RunResult` (never raise) so one bad request cannot
        break a gather.
    """

    def __init__(
        self,
        service: "object | None" = None,
        *,
        transport: "Transport | None" = None,
        max_batch_size: int = 16,
        max_wait: float = 0.02,
        store: "ResultStore | None" = None,
        dl_solver: "DLFieldSolver | None" = None,
        workers: int = 1,
        model_dir: "str | None" = None,
        background: bool = True,
        raise_on_error: bool = True,
        tracing: bool = False,
    ) -> None:
        if transport is not None:
            if service is not None:
                raise ValueError("pass either service= or transport=, not both")
            self.transport = transport
        elif service is not None:
            self.transport = InProcessTransport(service, owns_service=False)
        else:
            from repro.service.service import SimulationService

            self.transport = InProcessTransport(
                SimulationService(
                    max_batch_size=max_batch_size,
                    max_wait=max_wait,
                    store=store,
                    dl_solver=dl_solver,
                    workers=workers,
                    model_dir=model_dir,
                    start=background,
                    tracing=tracing,
                ),
                owns_service=True,
            )
        self.raise_on_error = raise_on_error
        self._auto_id = 0

    @classmethod
    def connect(
        cls,
        url: str,
        *,
        max_connections: int = 16,
        timeout: "float | None" = None,
        raise_on_error: bool = True,
        tracing: bool = False,
    ) -> "Client":
        """A client speaking to a ``repro serve --listen`` server.

        ``url`` is the server base URL (``"http://host:port"``);
        ``max_connections`` bounds the concurrent persistent
        connections the underlying :class:`HttpTransport` opens.
        ``tracing=True`` traces every request end to end: the trace id
        travels in the ``X-Repro-Trace-Id`` header, and against a
        ``--trace`` server the client ships its spans back so
        ``/v1/trace/<id>`` (and ``repro trace``) shows the merged
        client → server → worker timeline.
        """
        return cls(
            transport=HttpTransport(
                url,
                max_connections=max_connections,
                timeout=timeout,
                trace=tracing,
            ),
            raise_on_error=raise_on_error,
        )

    @property
    def service(self) -> object:
        """The in-process service behind this client, if there is one."""
        service = getattr(self.transport, "service", None)
        if service is None:
            raise AttributeError(
                f"a {type(self.transport).__name__} client has no in-process service"
            )
        return service

    # -- request intake ---------------------------------------------------
    def _as_request(self, request: "RunRequest | SimulationConfig") -> RunRequest:
        if isinstance(request, SimulationConfig):
            self._auto_id += 1
            request = RunRequest(config=request, id=f"run-{self._auto_id}")
        if not isinstance(request, RunRequest):
            raise TypeError(
                f"submit() takes a RunRequest or SimulationConfig, "
                f"got {type(request).__name__}"
            )
        if not request.id:
            self._auto_id += 1
            request = request.with_updates(id=f"run-{self._auto_id}")
        return request

    # -- the API ----------------------------------------------------------
    def submit(
        self, request: "RunRequest | SimulationConfig"
    ) -> "Future[RunResult]":
        """File one request; the future resolves to a :class:`RunResult`.

        The returned future never raises: execution errors come back as
        ``status="error"`` results carrying the message (a networked
        transport adds ``shed`` and ``timeout`` terminal statuses).
        """
        return self.transport.submit(self._as_request(request))

    def run(self, request: "RunRequest | SimulationConfig") -> RunResult:
        """Submit one request and wait for its result."""
        future = self.submit(request)
        self.transport.drain()
        result = future.result()
        if self.raise_on_error:
            result.raise_for_status()
        return result

    def map(
        self, requests: "Iterable[RunRequest | SimulationConfig]"
    ) -> "list[RunResult]":
        """Submit many requests, wait for all, preserve order."""
        futures = [self.submit(request) for request in requests]
        self.transport.drain()
        results = [future.result() for future in futures]
        if self.raise_on_error:
            for result in results:
                result.raise_for_status()
        return results

    def submit_many(
        self, requests: "Sequence[RunRequest | SimulationConfig]"
    ) -> "list[Future[RunResult]]":
        """File many requests without waiting (order preserved)."""
        return [self.submit(request) for request in requests]

    def flush(self) -> None:
        """Execute everything pending now (in-process transports)."""
        self.transport.flush()

    @property
    def stats(self) -> "dict[str, object]":
        """The serving side's counters snapshot."""
        return self.transport.stats

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        """Close the transport (an owned service is closed with it)."""
        self.transport.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
