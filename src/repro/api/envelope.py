"""Public API v1: the versioned ``RunRequest`` / ``RunResult`` envelope.

This module defines the one wire format every consumer of the
simulation service speaks — the CLI, the experiment pipeline, the data
campaigns and external JSONL clients all construct :class:`RunRequest`
objects and receive :class:`RunResult` objects (through
:class:`repro.api.Client`).

A v1 request envelope is a JSON object::

    {"api_version": "v1",
     "id": "my-run",                        # caller's correlation id
     "config": {"scenario": "two_stream",   # SimulationConfig payload
                "v0": 0.2, "seed": 3, "solver": "vlasov", ...},
     "observables": ["energies", "mode1"],  # optional selection
     "dtype": "float32",                    # optional tier shorthand
     "phase_space": true,                   # optional final-state flag
     "metadata": {"origin": "sweep-7"},     # optional, echoed back
     "tags": ["nightly"]}                   # optional, echoed back

``config`` holds *only* :meth:`SimulationConfig.to_dict` fields —
envelope keys (``id``, ``api_version``, ``observables``, ``metadata``,
``tags``, ``phase_space``) are **reserved** and rejected inside the
payload rather than silently shadowed.  ``observables`` entries resolve
against the observable registry
(:func:`repro.engines.observables.canonical_observables`): registered
names, ``"mode<k>"`` sugar or parameterized ``{"name": ..., **params}``
mappings.  ``dtype`` is shorthand for the config's numerical-tier field
(it is an error for the two to disagree); the tier is structural, so
float32 and float64 results live under different store keys.

:class:`RunResult` carries the selected observable series, the final
field (plus the final phase space when requested), the content-address
``key``, a ``cache_hit`` flag and wall-clock timings, with a stable
``to_dict`` JSON schema and an exact NPZ round trip
(:meth:`RunResult.save_npz` / :meth:`RunResult.load_npz`).
"""

from __future__ import annotations

import copy
import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from repro.config import SimulationConfig
from repro.engines.base import validate_engine_config
from repro.engines.observables import (
    canonical_observables,
    resolve_observables,
    selection_to_jsonable,
)
from repro.utils.io import load_npz_dict, save_npz_dict

if TYPE_CHECKING:
    from repro.service.store import SimulationResult

#: The current (and only) public API version.
API_VERSION = "v1"
SUPPORTED_VERSIONS = (API_VERSION,)

#: Envelope-level keys of a v1 request; reserved inside ``config``.
ENVELOPE_KEYS = (
    "api_version", "id", "config", "observables", "dtype",
    "phase_space", "metadata", "tags",
)
RESERVED_CONFIG_KEYS = tuple(k for k in ENVELOPE_KEYS if k != "dtype")

#: Result status values.  ``ok`` is the only success; the three
#: terminal failure statuses distinguish *why* a request died: an
#: execution/submit failure (``error``), load-shedding by an overloaded
#: server's admission queue (``shed``, HTTP 503) or a per-request
#: execution deadline expiring (``timeout``, HTTP 504).
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_SHED = "shed"
STATUS_TIMEOUT = "timeout"
RESULT_STATUSES = (STATUS_OK, STATUS_ERROR, STATUS_SHED, STATUS_TIMEOUT)
#: Non-ok terminal statuses; all carry an ``error`` message.
FAILURE_STATUSES = (STATUS_ERROR, STATUS_SHED, STATUS_TIMEOUT)

#: Keys a ``RunResult.to_dict`` envelope may carry (strictly checked by
#: :meth:`RunResult.from_dict`, like the request side).
RESULT_KEYS = (
    "api_version", "id", "status", "solver", "dtype", "key", "cache_hit",
    "submit_status", "timings", "config", "observables", "metadata", "tags",
    "error", "series", "efield", "final_x", "final_v", "final_f", "dtypes",
)

#: Keys a result's ``timings`` mapping may carry — the canonical stage
#: breakdown (all seconds, measured where the stage happens) plus the
#: request's trace id.  Explicit schema extension: ``from_dict``
#: rejects unknown timing keys exactly like unknown envelope keys, so
#: the breakdown can only grow deliberately.
#:
#: ``wall_s``       submit → resolution, observed by the client.
#: ``batch_wait_s`` submit → group dispatch (micro-batch coalescing).
#: ``queue_wait_s`` dispatch → execution start (executor queue + IPC).
#: ``exec_s``       the engine call itself (whole group, in-worker).
#: ``store_s``      result-store lookup + write-through.
TIMING_KEYS = (
    "wall_s", "batch_wait_s", "queue_wait_s", "exec_s", "store_s", "trace_id",
)


def _check_timings(timings: Any) -> "dict[str, Any]":
    """Validate a ``timings`` mapping (strict keys, finite values)."""
    if not isinstance(timings, Mapping):
        raise ValueError(
            f"result timings must be a JSON object, got {type(timings).__name__}"
        )
    unknown = sorted(set(timings) - set(TIMING_KEYS))
    if unknown:
        raise ValueError(
            f"unknown timing key(s) {', '.join(map(repr, unknown))}; "
            f"valid keys: {', '.join(TIMING_KEYS)}"
        )
    out: "dict[str, Any]" = {}
    for key, value in timings.items():
        if key == "trace_id":
            if not isinstance(value, str):
                raise ValueError(
                    f"timing key 'trace_id' must be a string, got "
                    f"{type(value).__name__}"
                )
            out[key] = value
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(
                f"timing key {key!r} must be a number, got {type(value).__name__}"
            )
        if not math.isfinite(value):
            raise ValueError(
                f"timing key {key!r} must be finite, got {value!r}"
            )
        out[key] = float(value)
    return out


def _check_api_version(version: object) -> str:
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"unknown api_version {version!r}; this build supports "
            f"{', '.join(SUPPORTED_VERSIONS)}"
        )
    return str(version)


def _check_reserved_config_keys(payload: Mapping[str, Any]) -> None:
    """Reject envelope keys smuggled into the config payload."""
    reserved = sorted(set(payload) & set(RESERVED_CONFIG_KEYS))
    if reserved:
        raise ValueError(
            f"reserved envelope key(s) {', '.join(map(repr, reserved))} may not "
            f"appear inside the config payload; put them at the top level of an "
            f"api_version={API_VERSION!r} request envelope"
        )


def _check_metadata(metadata: Any) -> dict[str, Any]:
    if not isinstance(metadata, Mapping):
        raise ValueError(
            f"metadata must be a JSON-style mapping, got {type(metadata).__name__}"
        )
    out = {}
    for key in metadata:
        if not isinstance(key, str):
            raise ValueError(f"metadata keys must be strings, got {key!r}")
        out[key] = copy.deepcopy(metadata[key])
    return out


def _check_tags(tags: Any) -> tuple[str, ...]:
    if isinstance(tags, str) or not isinstance(tags, Sequence):
        raise ValueError(f"tags must be a sequence of strings, got {tags!r}")
    out = []
    for tag in tags:
        if not isinstance(tag, str):
            raise ValueError(f"tags must be strings, got {tag!r}")
        out.append(tag)
    return tuple(out)


@dataclass(frozen=True)
class RunRequest:
    """One versioned run request: config payload + envelope fields.

    Construction validates everything a submit would: the engine family
    (via the registry), the observables selection (resolved against the
    family's state kind) and the envelope fields — a bad request fails
    here, with line/context information added by the JSONL parser, not
    inside a running engine.

    ``observables`` is stored canonicalized (sorted, deduplicated
    ``(name, params)`` pairs) or ``None`` for the family default, so
    two requests selecting the same measurements in any spelling
    compare equal and share one service batch and store key.
    """

    config: SimulationConfig
    id: str = ""
    api_version: str = API_VERSION
    observables: "tuple | None" = None
    phase_space: bool = False
    metadata: "dict[str, Any]" = field(default_factory=dict)
    tags: "tuple[str, ...]" = ()

    def __post_init__(self) -> None:
        if not isinstance(self.config, SimulationConfig):
            raise ValueError(
                f"config must be a SimulationConfig, got {type(self.config).__name__}"
            )
        object.__setattr__(self, "api_version", _check_api_version(self.api_version))
        object.__setattr__(self, "id", str(self.id))
        spec = validate_engine_config(self.config)
        if self.observables is not None:
            selection = canonical_observables(self.observables)
            resolve_observables(selection, spec.kind)  # family-compatible?
            object.__setattr__(self, "observables", selection)
        object.__setattr__(self, "metadata", _check_metadata(self.metadata))
        object.__setattr__(self, "tags", _check_tags(self.tags))
        if not isinstance(self.phase_space, bool):
            raise ValueError(
                f"phase_space must be a boolean, got {self.phase_space!r}"
            )

    # -- convenience views -----------------------------------------------
    @property
    def solver(self) -> str:
        """The engine family serving this request (``config.solver``)."""
        return self.config.solver

    @property
    def dtype(self) -> str:
        """The numerical tier of this request (``config.dtype``)."""
        return self.config.dtype

    def with_updates(self, **kwargs: Any) -> "RunRequest":
        """A copy with envelope fields (or ``config=``) replaced."""
        current = {
            "config": self.config,
            "id": self.id,
            "api_version": self.api_version,
            "observables": self.observables,
            "phase_space": self.phase_space,
            "metadata": self.metadata,
            "tags": self.tags,
        }
        current.update(kwargs)
        return RunRequest(**current)

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The JSON envelope form (exact round trip via :meth:`from_dict`)."""
        out: dict[str, Any] = {
            "api_version": self.api_version,
            "id": self.id,
            "config": self.config.to_dict(),
        }
        if self.observables is not None:
            out["observables"] = selection_to_jsonable(self.observables)
        if self.phase_space:
            out["phase_space"] = True
        if self.metadata:
            out["metadata"] = copy.deepcopy(self.metadata)
        if self.tags:
            out["tags"] = list(self.tags)
        return out

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any], index: int = 0) -> "RunRequest":
        """Parse a v1 envelope mapping.

        ``index`` (e.g. a 1-based JSONL line number) names requests
        without an explicit ``id``.  Unknown envelope keys, unknown
        versions, reserved keys inside the config payload, unknown
        observables and a ``dtype`` shorthand that contradicts the
        config payload are all rejected with specific errors.
        """
        if not isinstance(obj, Mapping):
            raise ValueError(
                f"request envelope must be a JSON object, got {type(obj).__name__}"
            )
        unknown = sorted(set(obj) - set(ENVELOPE_KEYS))
        if unknown:
            raise ValueError(
                f"unknown envelope key(s) {', '.join(map(repr, unknown))}; "
                f"valid keys: {', '.join(ENVELOPE_KEYS)}"
            )
        _check_api_version(obj.get("api_version"))
        payload = obj.get("config", {})
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"'config' must be a mapping of SimulationConfig fields, "
                f"got {type(payload).__name__}"
            )
        _check_reserved_config_keys(payload)
        config = SimulationConfig.from_dict(payload)
        dtype = obj.get("dtype")
        if dtype is not None:
            if "dtype" in payload and payload["dtype"] != dtype:
                raise ValueError(
                    f"envelope dtype {dtype!r} contradicts config payload dtype "
                    f"{payload['dtype']!r}"
                )
            config = config.with_updates(dtype=dtype)
        # Envelope values pass through raw: __post_init__ owns the
        # validation, so the wire path and programmatic construction
        # reject exactly the same inputs (a string for ``tags``, a
        # truthy non-boolean for ``phase_space``, ...).
        return cls(
            config=config,
            id=str(obj.get("id", f"request-{index}")),
            api_version=obj["api_version"],
            observables=obj.get("observables"),
            phase_space=obj.get("phase_space", False),
            metadata=obj.get("metadata", {}),
            tags=obj.get("tags", ()),
        )


def _jsonable_scalar(value: Any) -> Any:
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


@dataclass
class RunResult:
    """One served run in the public v1 result schema.

    ``series`` maps each recorded series name to its per-run array
    (``time`` is ``(n_records,)``; scalar observables are
    ``(n_records,)``; snapshot observables keep their trailing axes).
    ``status`` is ``"ok"`` or ``"error"`` (with ``error`` holding the
    message); ``submit_status`` reports how the service met the request
    (``queued`` / ``cached`` / ``inflight``) and ``cache_hit`` whether
    it was answered from the content-addressed store without executing.
    ``timings`` carries the canonical stage breakdown (``wall_s`` as
    observed by the client plus the service-side ``batch_wait_s`` /
    ``queue_wait_s`` / ``exec_s`` / ``store_s`` stages and, for traced
    requests, the ``trace_id``) — see :data:`TIMING_KEYS`.
    """

    id: str
    status: str
    solver: str = "traditional"
    config: "SimulationConfig | None" = None
    observables: "tuple | None" = None
    series: "dict[str, np.ndarray]" = field(default_factory=dict)
    efield: "np.ndarray | None" = None
    final_x: "np.ndarray | None" = None
    final_v: "np.ndarray | None" = None
    final_f: "np.ndarray | None" = None
    key: "str | None" = None
    cache_hit: bool = False
    submit_status: str = ""
    timings: "dict[str, float]" = field(default_factory=dict)
    metadata: "dict[str, Any]" = field(default_factory=dict)
    tags: "tuple[str, ...]" = ()
    error: "str | None" = None
    api_version: str = API_VERSION

    def __post_init__(self) -> None:
        _check_api_version(self.api_version)
        if self.status not in RESULT_STATUSES:
            raise ValueError(
                f"unknown result status {self.status!r}; valid statuses: "
                f"{', '.join(RESULT_STATUSES)}"
            )
        if self.status in FAILURE_STATUSES and not self.error:
            raise ValueError(f"{self.status} results need an error message")

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def __getitem__(self, name: str) -> np.ndarray:
        return self.series[name]

    @property
    def n_steps(self) -> int:
        return len(self.series["time"]) - 1

    def raise_for_status(self) -> "RunResult":
        """Raise :class:`ApiError` if this result carries a failure.

        Every non-``ok`` terminal status raises — ``error``, ``shed``
        (server load-shedding) and ``timeout`` (execution deadline) —
        with the status named in the message and the full result
        attached as :attr:`ApiError.result`.
        """
        if not self.ok:
            raise ApiError(
                f"request {self.id!r} failed with status {self.status!r}: "
                f"{self.error}",
                result=self,
            )
        return self

    # -- derived summaries (served series) -------------------------------
    def energy_variation(self) -> float:
        """Max relative deviation of total energy from its start."""
        total = np.asarray(self.series["total"], dtype=np.float64)
        if total.size == 0:
            raise ValueError("result series is empty")
        return float(np.max(np.abs(total - total[0])) / abs(total[0]))

    def momentum_drift(self) -> float:
        """Net momentum change over the run (signed)."""
        mom = np.asarray(self.series["momentum"], dtype=np.float64)
        if mom.size == 0:
            raise ValueError("result series is empty")
        return float(mom[-1] - mom[0])

    # -- stable serialization --------------------------------------------
    def to_dict(self, arrays: bool = True) -> dict[str, Any]:
        """The stable JSON result schema.

        With ``arrays=True`` (default) every series/field array is
        included as nested lists; ``arrays=False`` keeps only the
        scalar envelope (status, key, timings, ...) for manifests.
        """
        out: dict[str, Any] = {
            "api_version": self.api_version,
            "id": self.id,
            "status": self.status,
            "solver": self.solver,
            "dtype": self.config.dtype if self.config is not None else None,
            "key": self.key,
            "cache_hit": self.cache_hit,
            "submit_status": self.submit_status,
            "timings": {k: _jsonable_scalar(v) for k, v in self.timings.items()},
        }
        if self.config is not None:
            out["config"] = self.config.to_dict()
        if self.observables is not None:
            out["observables"] = selection_to_jsonable(self.observables)
        if self.metadata:
            out["metadata"] = copy.deepcopy(self.metadata)
        if self.tags:
            out["tags"] = list(self.tags)
        if self.error is not None:
            out["error"] = self.error
        if arrays:
            out["series"] = {
                name: np.asarray(values).tolist()
                for name, values in self.series.items()
            }
            if self.efield is not None:
                out["efield"] = np.asarray(self.efield).tolist()
            for name in ("final_x", "final_v", "final_f"):
                values = getattr(self, name)
                if values is not None:
                    out[name] = np.asarray(values).tolist()
            # Array dtypes ride along so the wire round trip is exact:
            # JSON floats restore float64 bit for bit (repr round trip)
            # and narrower tiers (float32 series) re-cast losslessly.
            dtypes: dict[str, Any] = {
                "series": {
                    name: str(np.asarray(values).dtype)
                    for name, values in self.series.items()
                }
            }
            for name in ("efield", "final_x", "final_v", "final_f"):
                values = getattr(self, name)
                if values is not None:
                    dtypes[name] = str(np.asarray(values).dtype)
            out["dtypes"] = dtypes
        return out

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "RunResult":
        """Parse a :meth:`to_dict` result envelope (exact round trip).

        The strict mirror of the request-side parser: unknown envelope
        keys, unknown api versions and unknown ``status`` values are
        all rejected with specific errors, and arrays are rebuilt with
        their recorded dtypes so a JSON round trip is bitwise exact.
        """
        if not isinstance(obj, Mapping):
            raise ValueError(
                f"result envelope must be a JSON object, got {type(obj).__name__}"
            )
        unknown = sorted(set(obj) - set(RESULT_KEYS))
        if unknown:
            raise ValueError(
                f"unknown result key(s) {', '.join(map(repr, unknown))}; "
                f"valid keys: {', '.join(RESULT_KEYS)}"
            )
        _check_api_version(obj.get("api_version"))
        status = obj.get("status")
        if status not in RESULT_STATUSES:
            raise ValueError(
                f"unknown result status {status!r}; valid statuses: "
                f"{', '.join(RESULT_STATUSES)}"
            )
        dtypes = obj.get("dtypes", {})
        series_dtypes = dtypes.get("series", {})
        series = {
            name: np.array(values, dtype=series_dtypes.get(name, "float64"))
            for name, values in obj.get("series", {}).items()
        }
        arrays = {}
        for name in ("efield", "final_x", "final_v", "final_f"):
            values = obj.get(name)
            arrays[name] = (
                None if values is None
                else np.array(values, dtype=dtypes.get(name, "float64"))
            )
        config = obj.get("config")
        observables = obj.get("observables")
        return cls(
            id=str(obj.get("id", "")),
            status=status,
            solver=obj.get("solver", "traditional"),
            config=SimulationConfig.from_dict(config) if config is not None else None,
            observables=(
                canonical_observables(observables) if observables is not None else None
            ),
            series=series,
            efield=arrays["efield"],
            final_x=arrays["final_x"],
            final_v=arrays["final_v"],
            final_f=arrays["final_f"],
            key=obj.get("key"),
            cache_hit=bool(obj.get("cache_hit", False)),
            submit_status=obj.get("submit_status", ""),
            timings=_check_timings(obj.get("timings", {})),
            metadata=dict(obj.get("metadata", {})),
            tags=tuple(obj.get("tags", ())),
            error=obj.get("error"),
            api_version=obj["api_version"],
        )

    def save_npz(self, path: "str | Any") -> None:
        """Write the exact result (raw array bytes) to a ``.npz``."""
        payload: dict[str, Any] = {
            "api_version": self.api_version,
            "id": self.id,
            "status": self.status,
            "solver": self.solver,
            "key": self.key,
            "cache_hit": self.cache_hit,
            "submit_status": self.submit_status,
            "timings": {k: _jsonable_scalar(v) for k, v in self.timings.items()},
            "metadata": self.metadata,
            "tags": list(self.tags),
            "error": self.error,
            "config": self.config.to_dict() if self.config is not None else None,
            "observables": (
                selection_to_jsonable(self.observables)
                if self.observables is not None else None
            ),
        }
        for name, values in self.series.items():
            payload[f"series_{name}"] = np.asarray(values)
        for name in ("efield", "final_x", "final_v", "final_f"):
            values = getattr(self, name)
            if values is not None:
                payload[name] = np.asarray(values)
        save_npz_dict(path, payload)

    @classmethod
    def load_npz(cls, path: "str | Any") -> "RunResult":
        """Exact inverse of :meth:`save_npz`."""
        payload = load_npz_dict(path)
        series = {
            name[len("series_"):]: values
            for name, values in payload.items()
            if name.startswith("series_")
        }
        config = payload.get("config")
        observables = payload.get("observables")
        return cls(
            id=payload["id"],
            status=payload["status"],
            solver=payload["solver"],
            config=SimulationConfig.from_dict(config) if config is not None else None,
            observables=(
                canonical_observables(observables) if observables is not None else None
            ),
            series=series,
            efield=payload.get("efield"),
            final_x=payload.get("final_x"),
            final_v=payload.get("final_v"),
            final_f=payload.get("final_f"),
            key=payload.get("key"),
            cache_hit=bool(payload.get("cache_hit", False)),
            submit_status=payload.get("submit_status", ""),
            timings=dict(payload.get("timings", {})),
            metadata=dict(payload.get("metadata", {})),
            tags=tuple(payload.get("tags", ())),
            error=payload.get("error"),
            api_version=payload.get("api_version", API_VERSION),
        )

    # -- construction ----------------------------------------------------
    @classmethod
    def from_service(
        cls,
        request: RunRequest,
        served: "SimulationResult",
        submit_status: str,
        wall_s: "float | None" = None,
    ) -> "RunResult":
        """Wrap a service-layer result in the public schema.

        The service's per-delivery stage breakdown (``batch_wait_s``,
        ``queue_wait_s``, ``exec_s``, ``store_s``, ``trace_id``) is
        carried over from ``served.timings``; ``wall_s`` — the only
        client-observed stage — is stamped on top.  DL results also
        carry the serving model's fingerprint as
        ``metadata["model_fingerprint"]`` — metadata rides the wire
        envelope, so remote clients see the exact model identity too.
        """
        timings = dict(getattr(served, "timings", None) or {})
        if wall_s is not None:
            timings["wall_s"] = wall_s
        metadata = dict(request.metadata)
        fingerprint = getattr(served, "model_fingerprint", None)
        if fingerprint:
            metadata["model_fingerprint"] = fingerprint
        return cls(
            id=request.id,
            status=STATUS_OK,
            solver=served.solver,
            config=served.config,
            observables=request.observables,
            series=dict(served.series),
            efield=served.efield,
            final_x=served.final_x,
            final_v=served.final_v,
            final_f=served.final_f,
            key=served.key,
            cache_hit=submit_status == "cached",
            submit_status=submit_status,
            timings=timings,
            metadata=metadata,
            tags=request.tags,
        )

    @classmethod
    def from_error(
        cls,
        request: RunRequest,
        exc: BaseException,
        submit_status: str = "",
        wall_s: "float | None" = None,
    ) -> "RunResult":
        """An error-status result for a failed request."""
        return cls(
            id=request.id,
            status=STATUS_ERROR,
            solver=request.solver,
            config=request.config,
            observables=request.observables,
            submit_status=submit_status,
            timings={"wall_s": wall_s} if wall_s is not None else {},
            metadata=dict(request.metadata),
            tags=request.tags,
            error=f"{type(exc).__name__}: {exc}",
        )

    @classmethod
    def from_failure(
        cls,
        request: RunRequest,
        status: str,
        message: str,
        wall_s: "float | None" = None,
    ) -> "RunResult":
        """A terminal failure result (``shed`` / ``timeout`` / ``error``)."""
        return cls(
            id=request.id,
            status=status,
            solver=request.solver,
            config=request.config,
            observables=request.observables,
            timings={"wall_s": wall_s} if wall_s is not None else {},
            metadata=dict(request.metadata),
            tags=request.tags,
            error=message,
        )


class ApiError(RuntimeError):
    """A request failed and the caller asked for exceptions.

    Carries the failed :class:`RunResult` as :attr:`result` (when one
    exists), so callers can branch on the terminal :attr:`status` —
    ``error``, ``shed`` or ``timeout`` — without parsing the message.
    """

    def __init__(self, message: str, result: "RunResult | None" = None) -> None:
        super().__init__(message)
        self.result = result

    @property
    def status(self) -> "str | None":
        """The failed result's terminal status, if a result is attached."""
        return self.result.status if self.result is not None else None


def now() -> float:
    """Monotonic clock used for client-side timings."""
    return time.perf_counter()
