"""Client transports: how a :class:`~repro.api.Client` reaches a service.

The :class:`Client` façade is transport-generic: every consumer speaks
``submit()`` / ``run()`` / ``map()`` against a :class:`Transport`, and
the transport decides where the work executes:

* :class:`InProcessTransport` — the default: requests go straight into
  a (possibly owned) :class:`~repro.service.service.SimulationService`
  in this process.  This is the exact pre-transport ``Client`` code
  path, bit for bit.
* :class:`HttpTransport` — requests travel as v1 JSON envelopes over
  ``POST /v1/run`` to a ``repro serve --listen`` server
  (:mod:`repro.server`); results come back as v1 result envelopes and
  are rebuilt with their exact array dtypes, so remote results are
  bitwise identical to in-process ones.

Every transport's ``submit()`` returns a ``Future[RunResult]`` that
**never raises**: submit-time rejections, connection failures and
server-side failures all travel as terminal-status results (``error``,
``shed``, ``timeout``), so one bad request cannot break a gather.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.parse
from concurrent.futures import Future, InvalidStateError, ThreadPoolExecutor
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.api.envelope import RunRequest, RunResult, now
from repro.obs.trace import NOOP_TRACER, PARENT_HEADER, TRACE_HEADER, Tracer

if TYPE_CHECKING:
    from repro.service.store import SimulationResult


@runtime_checkable
class Transport(Protocol):
    """The surface a :class:`~repro.api.Client` needs from a transport."""

    def submit(self, request: RunRequest) -> "Future[RunResult]":
        """File one request; the future resolves to a result, never raises."""
        ...

    def flush(self) -> None:
        """Execute/push everything pending now, if the transport buffers."""
        ...

    def drain(self) -> None:
        """Make sure already-submitted requests will complete."""
        ...

    def close(self) -> None:
        """Release the transport's resources."""
        ...

    @property
    def stats(self) -> "dict[str, object]":
        """A counters snapshot from the serving side."""
        ...


class InProcessTransport:
    """Requests execute in this process, through a ``SimulationService``.

    Parameters
    ----------
    service:
        The service to speak to.
    owns_service:
        Close the service when the transport closes (the ``Client``
        sets this when it constructed the service itself).
    """

    def __init__(self, service: object, owns_service: bool = False) -> None:
        self.service = service
        self._owns_service = owns_service

    def submit(
        self,
        request: RunRequest,
        *,
        trace: "object | None" = None,
        parent_id: "str | None" = None,
    ) -> "Future[RunResult]":
        submitted = now()
        outer: "Future[RunResult]" = Future()
        # When the service has tracing on and no caller-provided trace
        # context arrives (the HTTP server passes its own), the client
        # side of the trace starts here: a ``client.request`` root span
        # that every service span nests under.
        root = None
        if trace is None:
            tracer = getattr(self.service, "tracer", None) or NOOP_TRACER
            if tracer.enabled:
                trace = tracer.start_trace("request")
                root = trace.start_span("client.request")
                parent_id = root.span_id
        try:
            inner, status = self.service.submit_with_status(
                request.config,
                observables=request.observables,
                phase_space=request.phase_space,
                trace=trace,
                parent_id=parent_id,
            )
        except (ValueError, RuntimeError) as exc:
            # Submit-time rejections (unservable config, closed service)
            # ride the same error-result path as execution failures, so
            # one bad request in a map() cannot break the gather.
            if root:
                root.set_attribute("error", f"{type(exc).__name__}: {exc}").finish()
            if trace:
                trace.finish()
            outer.set_result(RunResult.from_error(request, exc, wall_s=now() - submitted))
            return outer

        def _convert(done: "Future[SimulationResult]") -> None:
            wall = now() - submitted
            try:
                served = done.result()
            except BaseException as exc:  # noqa: BLE001 — travels in the result
                result = RunResult.from_error(request, exc, status, wall)
                if root:
                    root.set_attribute("error", f"{type(exc).__name__}: {exc}")
            else:
                result = RunResult.from_service(request, served, status, wall)
            if root:
                root.finish()
            if trace:
                # A deduplicated requester receives a result executed
                # under another request's trace; its own trace id wins
                # in its copy of the envelope.
                result.timings["trace_id"] = trace.trace_id
                trace.finish()
            try:
                outer.set_result(result)
            except InvalidStateError:
                # The requester walked away (e.g. a server-side
                # execution timeout cancelled the future); the run
                # still landed in the store.
                pass

        inner.add_done_callback(_convert)
        return outer

    def flush(self) -> None:
        self.service.flush()

    def drain(self) -> None:
        # A synchronous (thread-free) service only executes on flush;
        # a background service resolves futures on its own.
        if getattr(self.service, "_thread", None) is None:
            self.service.flush()

    def close(self) -> None:
        if self._owns_service:
            self.service.close()

    @property
    def stats(self) -> "dict[str, object]":
        return self.service.stats


class HttpTransport:
    """Requests travel to a ``repro serve --listen`` server over HTTP.

    A pool of ``max_connections`` worker threads each keeps one
    persistent (keep-alive) HTTP/1.1 connection to the server, so N
    concurrently submitted requests arrive on up to N parallel
    connections — exactly the arrival pattern the server's
    micro-batcher coalesces into batched engine executions.

    Parameters
    ----------
    url:
        The server base URL, e.g. ``"http://127.0.0.1:8787"``.
    max_connections:
        Concurrent connections (= worker threads) this transport opens.
    timeout:
        Client-side socket timeout per request (seconds); ``None``
        waits indefinitely.  Distinct from the *server's* per-request
        execution timeout, which returns a ``timeout``-status result.
    trace:
        Trace every request end to end (default off).  The transport
        opens a client-side trace, forwards its id in the
        ``X-Repro-Trace-Id`` header so a ``--trace`` server adopts it,
        and after the response ships its client-side spans to the
        server (``POST /v1/trace/<id>/spans``) so ``/v1/trace/<id>``
        renders the merged client + server + worker span tree.  The
        client half is also buffered locally in ``transport.tracer``.
    """

    def __init__(
        self,
        url: str,
        *,
        max_connections: int = 16,
        timeout: "float | None" = None,
        trace: bool = False,
    ) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(
                f"HttpTransport needs an http://host:port URL, got {url!r}"
            )
        if parsed.path not in ("", "/") or parsed.query:
            raise ValueError(f"the server URL takes no path or query, got {url!r}")
        if max_connections < 1:
            raise ValueError(f"max_connections must be >= 1, got {max_connections}")
        self.url = f"http://{parsed.hostname}:{parsed.port or 80}"
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._timeout = timeout
        self.tracer = Tracer() if trace else NOOP_TRACER
        self._local = threading.local()
        self._closed = False
        self._conns: "set[http.client.HTTPConnection]" = set()
        self._conns_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=max_connections, thread_name_prefix="repro-http"
        )

    # -- connection management -------------------------------------------
    def _connection(self, fresh: bool = False) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None or fresh:
            if conn is not None:
                conn.close()
                with self._conns_lock:
                    self._conns.discard(conn)
            conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
            self._local.conn = conn
            with self._conns_lock:
                self._conns.add(conn)
        return conn

    def request(
        self,
        method: str,
        path: str,
        body: "bytes | None" = None,
        headers: "dict[str, str] | None" = None,
    ) -> "tuple[int, bytes]":
        """One HTTP round trip on this thread's persistent connection.

        Retries once on a fresh connection when the kept-alive socket
        turns out to be stale (server closed it between requests).
        """
        merged = {"Content-Type": "application/json"} if body is not None else {}
        if headers:
            merged.update(headers)
        headers = merged
        for attempt in (0, 1):
            conn = self._connection(fresh=attempt > 0)
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                if response.will_close:
                    conn.close()
                    self._local.conn = None
                return response.status, data
            except (ConnectionError, http.client.HTTPException, OSError):
                conn.close()
                self._local.conn = None
                if attempt:
                    raise
        raise AssertionError("unreachable")

    # -- the transport surface -------------------------------------------
    def _roundtrip(self, request: RunRequest, submitted: float) -> RunResult:
        body = json.dumps(request.to_dict()).encode()
        trace = (
            self.tracer.start_trace("request") if self.tracer.enabled else None
        )
        root = trace.start_span("client.request") if trace else None
        headers = None
        http_span = None
        if trace:
            http_span = trace.start_span("client.http", parent_id=root.span_id)
            headers = {
                TRACE_HEADER: trace.trace_id,
                PARENT_HEADER: http_span.span_id,
            }
        try:
            status, data = self.request("POST", "/v1/run", body, headers=headers)
            if http_span:
                http_span.finish()
            payload = json.loads(data)
            if not isinstance(payload, dict) or "status" not in payload:
                raise ValueError(
                    f"server returned HTTP {status} with a non-result body"
                )
            result = RunResult.from_dict(payload)
        except Exception as exc:  # noqa: BLE001 — travels in the result
            if trace:
                if http_span:
                    http_span.finish()
                root.set_attribute("error", f"{type(exc).__name__}: {exc}").finish()
                trace.finish()
            return RunResult.from_error(request, exc, wall_s=now() - submitted)
        if trace:
            root.finish()
            result.timings["trace_id"] = trace.trace_id
            self._ship_spans(trace)
            trace.finish()
        return result

    def _ship_spans(self, trace: object) -> None:
        """Best-effort: send the client half of a trace to the server.

        Spans go in wire format with ``start_s`` relative to the
        client root span's start; the server re-anchors them against
        its own ``server.request`` span (which the ``X-Repro-*``
        headers linked under our ``client.http`` span) and merges them
        into the buffered trace, so ``GET /v1/trace/<id>`` shows the
        full client → server → worker timeline.
        """
        spans = trace.span_dicts()
        if not spans:
            return
        try:
            self.request(
                "POST",
                f"/v1/trace/{trace.trace_id}/spans",
                json.dumps({"spans": spans}).encode(),
            )
        except (OSError, ValueError, http.client.HTTPException):
            pass  # telemetry must never fail a request

    def submit(self, request: RunRequest) -> "Future[RunResult]":
        submitted = now()
        outer: "Future[RunResult]" = Future()

        def _run() -> None:
            outer.set_result(self._roundtrip(request, submitted))

        try:
            self._executor.submit(_run)
        except RuntimeError as exc:  # executor shut down
            outer.set_result(RunResult.from_error(request, exc))
        return outer

    def flush(self) -> None:
        """No-op: HTTP requests are pushed as they are submitted."""

    def drain(self) -> None:
        """No-op: the server resolves responses on its own."""

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
        with self._conns_lock:
            for conn in self._conns:
                conn.close()
            self._conns.clear()

    @property
    def stats(self) -> "dict[str, object]":
        """The server's ``GET /v1/metrics`` snapshot (empty on failure)."""
        try:
            status, data = self.request("GET", "/v1/metrics")
            if status != 200:
                return {}
            return json.loads(data)
        except (OSError, ValueError, http.client.HTTPException):
            return {}

    def __enter__(self) -> "HttpTransport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
