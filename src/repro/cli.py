"""Command-line interface.

Ten subcommands mirror the library's main workflows::

    python -m repro.cli simulate   # run a traditional PIC two-stream sim
    python -m repro.cli sweep      # run a batched ensemble of scenarios
    python -m repro.cli serve      # drain JSONL requests through the service
    python -m repro.cli trace      # render a recorded request trace
    python -m repro.cli scenarios  # list registered initial conditions
    python -m repro.cli campaign   # run/resume/inspect a streaming data campaign
    python -m repro.cli dataset    # deprecated alias: one-shot campaign to .npz
    python -m repro.cli models     # inspect the content-addressed model registry
    python -m repro.cli train      # train the DL solvers (Sec. IV pipeline)
    python -m repro.cli reproduce  # regenerate a paper table/figure

All numeric output also lands in ``--out`` npz/json files so results
can be post-processed without re-running.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

import numpy as np


def _add_simulate(sub: "argparse._SubParsersAction") -> None:
    p = sub.add_parser("simulate", help="run a traditional PIC two-stream simulation")
    p.add_argument("--v0", type=float, default=0.2, help="beam drift speed")
    p.add_argument("--vth", type=float, default=0.025, help="thermal spread")
    p.add_argument("--cells", type=int, default=64)
    p.add_argument("--ppc", type=int, default=1000, help="particles per cell")
    p.add_argument("--steps", type=int, default=200)
    p.add_argument("--dt", type=float, default=0.2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--interpolation", choices=["ngp", "cic", "tsc"], default="cic")
    p.add_argument("--poisson", choices=["spectral", "fd", "direct"], default="spectral")
    p.add_argument("--out", default=None, help="save the history to this .npz")


def _parse_floats(text: str) -> list[float]:
    """Parse a comma-separated list of floats (CLI sweep axes)."""
    try:
        values = [float(part) for part in text.split(",") if part.strip() != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated floats, got {text!r}")
    if not values:
        raise argparse.ArgumentTypeError(f"expected at least one value, got {text!r}")
    return values


def _add_sweep(sub: "argparse._SubParsersAction") -> None:
    p = sub.add_parser(
        "sweep",
        help="run a batched ensemble sweep over scenarios, beam parameters and seeds",
        description=(
            "Cross comma-separated --v0/--vth value lists with --runs seeds per "
            "combination and advance every run at once through the batched "
            "ensemble PIC engine."
        ),
    )
    p.add_argument("--scenario", default="two_stream",
                   help="registered scenario name (see repro.pic.scenarios)")
    p.add_argument("--v0", type=_parse_floats, default=[0.2],
                   help="comma-separated beam drift speeds")
    p.add_argument("--vth", type=_parse_floats, default=[0.025],
                   help="comma-separated thermal spreads")
    p.add_argument("--runs", type=int, default=4,
                   help="seeded runs per (v0, vth) combination")
    p.add_argument("--cells", type=int, default=64)
    p.add_argument("--ppc", type=int, default=200, help="particles per cell")
    p.add_argument("--steps", type=int, default=200)
    p.add_argument("--dt", type=float, default=0.2)
    p.add_argument("--seed", type=int, default=0, help="base seed (run b uses seed+b)")
    p.add_argument("--interpolation", choices=["ngp", "cic", "tsc"], default="cic")
    p.add_argument("--poisson", choices=["spectral", "fd", "direct"], default="spectral")
    p.add_argument("--solver", choices=["traditional", "dl", "vlasov", "energy", "mpi"],
                   default="traditional",
                   help="engine family: classic deposit+Poisson PIC, a trained neural "
                        "solver, the noise-free semi-Lagrangian Vlasov ensemble, or "
                        "the energy-conserving implicit-midpoint PIC")
    p.add_argument("--dtype", choices=["float64", "float32"], default="float64",
                   help="numerical tier: float64 (bitwise-reproducible, default) or "
                        "float32 (faster; parity-band accuracy) — each engine "
                        "family declares its tiers in the registry, and "
                        "unsupported combinations fail with the supporting "
                        "families named")
    p.add_argument("--backend", choices=["numpy", "threaded", "numba"],
                   default="numpy",
                   help="kernel backend tier: numpy (reference, default), threaded "
                        "(chunk batch rows across a shared thread pool) or numba "
                        "(JIT deposit/gather; falls back to the reference kernels "
                        "when the optional dependency is missing) — every backend "
                        "reproduces the numpy float64 results bit for bit")
    p.add_argument("--model-dir", default=None,
                   help="directory saved by DLFieldSolver.save, or a registry "
                        "reference registry:<fingerprint-prefix> (required with "
                        "--solver dl)")
    p.add_argument("--nv", type=int, default=None,
                   help="Vlasov velocity-grid cells (solver=vlasov; default 128)")
    p.add_argument("--out", default=None, help="save the batched histories to this .npz")


def _add_serve(sub: "argparse._SubParsersAction") -> None:
    p = sub.add_parser(
        "serve",
        help="serve API v1 requests: drain a JSONL stream, or listen on HTTP",
        description=(
            "Serve API v1 request envelopes ({'api_version': 'v1', 'id': ..., "
            "'config': {...}, 'observables': [...], 'dtype': ...}) through the "
            "micro-batching simulation service.  Default mode drains a JSONL "
            "file/stdin and exits; with --listen HOST:PORT the service stays up "
            "behind an HTTP server (POST /v1/run, POST /v1/batch, GET /v1/health, "
            "GET /v1/metrics) with bounded admission + load-shedding, per-request "
            "execution timeouts, connection limits and graceful drain on "
            "SIGTERM/SIGINT."
        ),
    )
    p.add_argument("--requests", default="-",
                   help="JSONL request file, or '-' for stdin (default; drain mode)")
    p.add_argument("--listen", default=None, metavar="HOST:PORT",
                   help="listen mode: serve the v1 HTTP endpoints on this address "
                        "(PORT 0 picks a free port) instead of draining --requests")
    p.add_argument("--store", default=None,
                   help="directory for the on-disk result store (<key>.npz per run)")
    p.add_argument("--manifest", default=None,
                   help="write a JSON manifest mapping request ids to result keys/files")
    p.add_argument("--max-batch", type=int, default=16,
                   help="flush a compatibility group at this many requests")
    p.add_argument("--max-wait", type=float, default=0.02,
                   help="deadline (s) after which a partial group flushes anyway")
    p.add_argument("--capacity", type=int, default=256,
                   help="in-memory LRU slots of the result store")
    p.add_argument("--model-dir", default=None,
                   help="DLFieldSolver.save directory — or a registry reference "
                        "registry:<fingerprint-prefix> (see 'repro models') — "
                        "backing requests with solver=dl")
    p.add_argument("--workers", type=int, default=1,
                   help="execution parallelism: 1 (default) runs groups inline on the "
                        "service thread; N > 1 shards compatibility groups across N "
                        "spawned worker processes (both drain and --listen modes)")
    p.add_argument("--max-pending", type=int, default=256,
                   help="listen mode: admitted-but-unresolved request bound; past it "
                        "requests are shed with HTTP 503 (status 'shed')")
    p.add_argument("--request-timeout", type=float, default=None,
                   help="listen mode: per-request execution deadline in seconds; an "
                        "expired request answers HTTP 504 (status 'timeout')")
    p.add_argument("--max-connections", type=int, default=128,
                   help="listen mode: concurrent-connection bound (excess get 503)")
    p.add_argument("--trace", action="store_true",
                   help="record an end-to-end span timeline per request; inspect "
                        "with 'repro trace' (listen mode serves GET /v1/trace/<id>, "
                        "drain mode saves the timelines into --manifest)")


def _add_trace(sub: "argparse._SubParsersAction") -> None:
    p = sub.add_parser(
        "trace",
        help="render a recorded request trace as a span waterfall",
        description=(
            "Render the span timeline of one traced request — which stages "
            "(client HTTP, server, batching, executor queue, engine steps) the "
            "wall-clock went to.  Traces come from a 'repro serve --listen "
            "--trace' server (fetched live from GET /v1/trace/<id>) or from a "
            "'repro serve --trace --manifest' drain manifest."
        ),
    )
    p.add_argument("trace_id", nargs="?", default=None,
                   help="the trace id (a result's timings['trace_id']); omitted "
                        "= the most recently completed trace")
    p.add_argument("--url", default=None, metavar="URL",
                   help="base URL of a live --trace server "
                        "(default http://127.0.0.1:8787)")
    p.add_argument("--manifest", default=None,
                   help="read the trace from this drain-mode manifest instead "
                        "of a live server")
    p.add_argument("--json", action="store_true",
                   help="print the raw span-tree JSON instead of the waterfall")


def _add_scenarios(sub: "argparse._SubParsersAction") -> None:
    sub.add_parser(
        "scenarios",
        help="list registered initial-condition scenarios",
        description="One line per registry entry: name + first docstring line.",
    )


def _add_campaign(sub: "argparse._SubParsersAction") -> None:
    p = sub.add_parser(
        "campaign",
        help="run, resume or inspect a streaming (sharded, resumable) data campaign",
        description=(
            "Stream a training-data campaign through the public client as "
            "sharded npz files plus a resumable manifest.  'run' executes "
            "missing shards (adopting intact durable ones by content hash), "
            "'resume' is the same action named explicitly, and 'status' "
            "reports manifest progress without executing anything.  "
            "Concatenated shards are bitwise identical to the one-shot "
            "'repro dataset' output."
        ),
    )
    p.add_argument("action", nargs="?", choices=["run", "resume", "status"],
                   default="run",
                   help="run/resume the campaign (default) or report progress")
    p.add_argument("--preset", choices=["fast", "medium", "paper"], default="fast")
    p.add_argument("--dir", default="campaign",
                   help="output directory (shard-*.npz + manifest.json)")
    p.add_argument("--shard-size", type=int, default=8,
                   help="simulations per shard (the durability granularity)")
    p.add_argument("--prefetch", type=int, default=2,
                   help="shards in flight at once; peak memory is bounded by "
                        "shard-size x prefetch runs")
    p.add_argument("--workers", type=int, default=1,
                   help="executor parallelism of the streaming client")
    p.add_argument("--fresh", action="store_true",
                   help="ignore any existing manifest and start over")
    p.add_argument("--export", default=None, metavar="NPZ",
                   help="also concatenate every shard into this single .npz")


def _add_dataset(sub: "argparse._SubParsersAction") -> None:
    p = sub.add_parser(
        "dataset",
        help="[deprecated] one-shot campaign to a single .npz; use 'repro campaign'",
        description=(
            "Deprecated alias for 'repro campaign run --export <out>': streams "
            "the campaign into <out>.shards/ and concatenates the shards into "
            "--out.  Prefer 'repro campaign' directly — it exposes shard size, "
            "prefetch depth and resumable status."
        ),
    )
    p.add_argument("--preset", choices=["fast", "medium", "paper"], default="fast")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--out", default="dataset.npz")


def _add_models(sub: "argparse._SubParsersAction") -> None:
    p = sub.add_parser(
        "models",
        help="inspect the content-addressed model registry",
        description=(
            "List, show, verify or garbage-collect checkpoints in the "
            "content-addressed model registry.  Registered models are "
            "addressed by DLFieldSolver fingerprint; any consumer taking a "
            "model directory (repro sweep/serve --model-dir, Client, "
            "SimulationService) also accepts registry:<fingerprint-prefix> "
            "references."
        ),
    )
    p.add_argument("action", nargs="?", choices=["list", "show", "verify", "gc"],
                   default="list")
    p.add_argument("ref", nargs="?", default=None,
                   help="fingerprint prefix (required for 'show'; 'verify' "
                        "checks every model when omitted)")
    p.add_argument("--registry", default=None, metavar="DIR",
                   help="registry root (default $REPRO_REGISTRY_DIR or "
                        ".artifacts/registry)")


def _add_train(sub: "argparse._SubParsersAction") -> None:
    p = sub.add_parser("train", help="run the Sec. IV training pipeline")
    p.add_argument("--preset", choices=["fast", "medium", "paper"], default="fast")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--cache", default=".artifacts")
    p.add_argument("--no-cnn", action="store_true")


def _add_reproduce(sub: "argparse._SubParsersAction") -> None:
    p = sub.add_parser("reproduce", help="regenerate a paper table/figure")
    p.add_argument("artifact", choices=["table1", "fig4", "fig5", "fig6"])
    p.add_argument("--preset", choices=["fast", "medium"], default="medium")
    p.add_argument("--cache", default=".artifacts")
    p.add_argument("--out", default=None, help="save the result summary to this .json")


def build_parser() -> argparse.ArgumentParser:
    """Top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the DL-based PIC method (CLUSTER 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_simulate(sub)
    _add_sweep(sub)
    _add_serve(sub)
    _add_trace(sub)
    _add_scenarios(sub)
    _add_campaign(sub)
    _add_dataset(sub)
    _add_models(sub)
    _add_train(sub)
    _add_reproduce(sub)
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.api import Client, RunRequest
    from repro.config import SimulationConfig
    from repro.theory import fit_growth_rate, growth_rate_cold
    from repro.utils.io import save_npz_dict

    config = SimulationConfig(
        n_cells=args.cells, particles_per_cell=args.ppc, n_steps=args.steps,
        dt=args.dt, v0=args.v0, vth=args.vth, seed=args.seed,
        interpolation=args.interpolation, poisson_solver=args.poisson,
    )
    with Client(background=False) as client:
        result = client.run(RunRequest(config=config, id="simulate"))
    series = result.series
    gamma_theory = growth_rate_cold(2 * np.pi / config.box_length, config.v0)
    print(f"ran {args.steps} steps: E1 {series['mode1'][0]:.2e} -> "
          f"max {series['mode1'].max():.2e}")
    print(f"energy variation {result.energy_variation():.2%}, "
          f"momentum drift {result.momentum_drift():+.2e}")
    if gamma_theory > 0:
        fit = fit_growth_rate(series["time"], series["mode1"])
        print(f"growth rate: measured {fit.gamma:.4f} vs theory {gamma_theory:.4f}")
    else:
        print("configuration is linearly stable (k1*v0 >= 1)")
    if args.out:
        save_npz_dict(args.out, {k: np.asarray(v) for k, v in series.items()})
        print(f"history saved to {args.out}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.api import ApiError, Client, RunRequest
    from repro.config import SimulationConfig
    from repro.engines import vlasov_grid_params
    from repro.pic.scenarios import available_scenarios
    from repro.utils.io import save_npz_dict

    if args.runs < 1:
        print(f"error: --runs must be >= 1, got {args.runs}", file=sys.stderr)
        return 2
    if args.scenario not in available_scenarios():
        print(
            f"error: unknown scenario {args.scenario!r}; "
            f"available: {', '.join(available_scenarios())}",
            file=sys.stderr,
        )
        return 2
    if args.solver == "dl" and args.model_dir is None:
        print("error: --solver dl requires --model-dir (a DLFieldSolver.save directory)",
              file=sys.stderr)
        return 2
    extra = {"n_v": args.nv} if args.nv is not None else {}
    try:
        base = SimulationConfig(
            n_cells=args.cells, particles_per_cell=args.ppc, n_steps=args.steps,
            dt=args.dt, scenario=args.scenario, solver=args.solver, extra=extra,
            interpolation=args.interpolation, poisson_solver=args.poisson,
            dtype=args.dtype, backend=args.backend,
        )
        requests = [
            RunRequest(
                config=base.with_updates(v0=v0, vth=vth, seed=args.seed + rep),
                id=f"sweep-{i}",
            )
            for i, (v0, vth, rep) in enumerate(
                (v0, vth, rep)
                for v0 in args.v0
                for vth in args.vth
                for rep in range(args.runs)
            )
        ]
    except ValueError as exc:
        print(f"error: solver incompatible with the sweep configuration: {exc}",
              file=sys.stderr)
        return 2
    dl_solver = None
    if args.solver == "dl":
        from repro.dlpic import DLFieldSolver

        try:
            dl_solver = DLFieldSolver.load_auto(args.model_dir)
        except (OSError, KeyError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: cannot load a DL solver from {args.model_dir!r}: {exc}",
                  file=sys.stderr)
            return 2
    if args.solver == "vlasov":
        n_v, v_min, v_max = vlasov_grid_params(base)
        size = f"{n_v}x{base.n_cells} phase-space cells in [{v_min}, {v_max}]"
    else:
        size = f"{base.n_particles} particles"
    tier = args.dtype if args.backend == "numpy" else f"{args.dtype}/{args.backend}"
    print(f"sweeping {len(requests)} runs of scenario {args.scenario!r} "
          f"with the {args.solver} solver ({tier} tier, "
          f"{args.steps} steps, {size} each)...")
    try:
        with Client(background=False, max_batch_size=len(requests),
                    dl_solver=dl_solver) as client:
            results = client.map(requests)
    except (ApiError, ValueError) as exc:
        print(f"error: solver incompatible with the sweep configuration: {exc}",
              file=sys.stderr)
        return 2
    print(f"{'v0':>7} {'vth':>7} {'seed':>6} {'max E1':>10} {'dE/E':>8}")
    for request, result in zip(requests, results):
        cfg = request.config
        print(f"{cfg.v0:>7.3f} {cfg.vth:>7.3f} {cfg.seed:>6d} "
              f"{np.asarray(result.series['mode1']).max():>10.2e} "
              f"{result.energy_variation():>8.2%}")
    if args.out:
        payload: dict = {"time": np.asarray(results[0].series["time"])}
        for name in results[0].series:
            if name != "time":
                payload[name] = np.stack(
                    [np.asarray(r.series[name]) for r in results], axis=1
                )
        payload["v0"] = np.array([r.config.v0 for r in requests])
        payload["vth"] = np.array([r.config.vth for r in requests])
        payload["seed"] = np.array([float(r.config.seed) for r in requests])
        save_npz_dict(args.out, payload)
        print(f"histories saved to {args.out}")
    return 0


#: Shared header of the per-request result tables: drain mode and
#: listen mode print the same columns.
_SERVE_HEADER = (f"{'id':>16} {'scenario':>20} {'solver':>12} {'status':>9} "
                 f"{'max E1':>10} {'dE/E':>8} {'wall ms':>9}")


def _serve_row(request, result) -> "tuple[str, dict]":
    """One per-request table row + its manifest summary scalars.

    The wall-clock column comes from the result's own ``timings``
    (submit-to-resolution as observed by the serving side), so drain
    mode and listen mode report identical per-request numbers instead
    of one aggregate elapsed split evenly.
    """
    entry = result.to_dict(arrays=False)
    scenario = request.config.scenario if request is not None else "-"
    solver = result.solver if request is not None else "-"
    entry["scenario"] = scenario
    entry.pop("config", None)  # the request stream already has it
    wall_s = result.timings.get("wall_s")
    wall_col = f"{wall_s * 1e3:>9.1f}" if wall_s is not None else f"{'-':>9}"
    if not result.ok:
        row = (f"{result.id:>16} {scenario:>20} {solver:>12} "
               f"{result.status.upper():>9} {'-':>10} {'-':>8} {wall_col}  "
               f"{result.error}")
        return row, entry
    mode1_col = f"{'-':>10}"
    energy_col = f"{'-':>8}"
    # The summary columns exist only when the request's observables
    # selection recorded them.
    if "mode1" in result.series:
        max_mode1 = float(np.asarray(result.series["mode1"]).max())
        entry["max_mode1"] = max_mode1
        mode1_col = f"{max_mode1:>10.2e}"
    if "total" in result.series:
        energy_var = result.energy_variation()
        entry["energy_variation"] = energy_var
        energy_col = f"{energy_var:>8.2%}"
    status = result.submit_status or result.status
    row = (f"{result.id:>16} {scenario:>20} {solver:>12} "
           f"{status:>9} {mode1_col} {energy_col} {wall_col}")
    return row, entry


def _load_dl_solver(model_dir: str):
    """Load a DLFieldSolver for serve modes; (solver, error_message)."""
    from repro.dlpic import DLFieldSolver

    try:
        return DLFieldSolver.load_auto(model_dir), None
    except (OSError, KeyError, ValueError, json.JSONDecodeError) as exc:
        return None, f"cannot load a DL solver from {model_dir!r}: {exc}"


def _cmd_serve(args: argparse.Namespace) -> int:
    import os.path
    import time

    from repro.api import Client
    from repro.service import ResultStore, read_requests

    if args.listen is not None:
        return _cmd_serve_listen(args)
    if args.requests == "-":
        lines = sys.stdin.read().splitlines()
    else:
        try:
            with open(args.requests) as fh:
                lines = fh.read().splitlines()
        except OSError as exc:
            print(f"error: cannot read {args.requests!r}: {exc}", file=sys.stderr)
            return 2
    try:
        requests = read_requests(lines)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not requests:
        print("error: no requests in the input stream", file=sys.stderr)
        return 2
    ids = [req.id for req in requests]
    if len(set(ids)) != len(ids):
        print("error: duplicate request ids in the input stream", file=sys.stderr)
        return 2
    dl_solver = None
    if any(req.solver == "dl" for req in requests):
        if args.model_dir is None:
            print("error: requests with solver=dl need --model-dir", file=sys.stderr)
            return 2
        dl_solver, error = _load_dl_solver(args.model_dir)
        if error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    store = ResultStore(capacity=args.capacity, directory=args.store)
    start = time.perf_counter()
    with Client(
        max_batch_size=args.max_batch, max_wait=args.max_wait,
        store=store, dl_solver=dl_solver, raise_on_error=False,
        workers=args.workers, model_dir=args.model_dir,
        tracing=args.trace,
    ) as client:
        try:
            results = client.map(requests)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        stats = client.stats
        traces = []
        if args.trace:
            buffer = client.service.tracer.buffer
            traces = [
                trace.to_payload()
                for trace in map(buffer.get, buffer.ids())
                if trace is not None
            ]
    elapsed = time.perf_counter() - start
    entries = []
    n_failed = 0
    print(_SERVE_HEADER)
    for req, result in zip(requests, results):
        row, entry = _serve_row(req, result)
        entry["n_steps"] = req.config.n_steps
        if not result.ok:
            n_failed += 1
        # Record the archive only if the write-through actually
        # landed (a full disk degrades the store to a cache
        # miss, not a lying manifest).
        elif args.store and os.path.exists(
            os.path.join(args.store, f"{result.key}.npz")
        ):
            entry["file"] = f"{result.key}.npz"
        print(row)
        entries.append(entry)
    print(f"served {len(requests)} requests in {elapsed * 1e3:.0f} ms "
          f"({len(requests) / elapsed:.1f} req/s): "
          f"{stats['batches']} engine batches, {stats['executed_runs']} runs executed, "
          f"{stats['cache_hits']} store hits, {stats['dedup_hits']} in-flight dedups")
    if stats["store_errors"]:
        print(f"warning: {stats['store_errors']} result(s) could not be written "
              f"to the store", file=sys.stderr)
    if args.manifest:
        manifest = {
            "api_version": "v1",
            "requests": entries,
            "stats": {**stats, "elapsed_s": elapsed},
            "store_directory": args.store,
        }
        if args.trace:
            # Full span timelines per request; 'repro trace --manifest'
            # renders them as waterfalls offline.
            manifest["traces"] = traces
        with open(args.manifest, "w") as fh:
            json.dump(manifest, fh, indent=2)
        print(f"manifest saved to {args.manifest}")
    return 1 if n_failed else 0


def _parse_listen_address(text: str) -> "tuple[str, int]":
    """Split a ``HOST:PORT`` listen address (raises ValueError)."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"--listen takes HOST:PORT (e.g. 127.0.0.1:8787), got {text!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"--listen port must be an integer, got {port_text!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"--listen port must be in [0, 65535], got {port}")
    return host, port


def _cmd_serve_listen(args: argparse.Namespace) -> int:
    from repro.server import SimulationServer
    from repro.service import ResultStore

    try:
        host, port = _parse_listen_address(args.listen)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    dl_solver = None
    if args.model_dir is not None:
        dl_solver, error = _load_dl_solver(args.model_dir)
        if error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    store = ResultStore(capacity=args.capacity, directory=args.store)

    def on_ready(server: "SimulationServer") -> None:
        timeout = (f"{args.request_timeout:g}s" if args.request_timeout is not None
                   else "none")
        endpoints = "POST /v1/run, POST /v1/batch, GET /v1/health, GET /v1/metrics"
        if args.trace:
            endpoints += ", GET /v1/trace/<id>"
        print(f"listening on {server.url}  ({endpoints})")
        print(f"max_batch={args.max_batch} max_wait={args.max_wait:g}s "
              f"workers={args.workers} "
              f"max_pending={args.max_pending} request_timeout={timeout} "
              f"max_connections={args.max_connections} "
              f"trace={'on' if args.trace else 'off'}")
        print(_SERVE_HEADER, flush=True)

    def on_result(request, result) -> None:
        row, _ = _serve_row(request, result)
        print(row, flush=True)

    server = SimulationServer(
        host=host, port=port,
        max_pending=args.max_pending,
        request_timeout=args.request_timeout,
        max_connections=args.max_connections,
        max_batch_size=args.max_batch, max_wait=args.max_wait,
        store=store, dl_solver=dl_solver,
        workers=args.workers, model_dir=args.model_dir,
        tracing=args.trace,
        on_result=on_result, on_ready=on_ready,
    )
    try:
        server.run()
    except OSError as exc:  # e.g. address already in use
        print(f"error: cannot listen on {args.listen!r}: {exc}", file=sys.stderr)
        return 2
    stats = server.service.stats
    print(f"drained: served {server.metrics.requests_total} requests "
          f"({stats['batches']} engine batches, {stats['executed_runs']} runs "
          f"executed, {stats['cache_hits']} store hits, "
          f"{stats['dedup_hits']} in-flight dedups)")
    return 0


def _trace_from_manifest(args: argparse.Namespace) -> "dict | None":
    """Pick the requested trace payload out of a drain-mode manifest."""
    try:
        with open(args.manifest) as fh:
            manifest = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read manifest {args.manifest!r}: {exc}",
              file=sys.stderr)
        return None
    traces = manifest.get("traces") or []
    if not traces:
        print("error: the manifest records no traces "
              "(drain with 'repro serve --trace --manifest ...')", file=sys.stderr)
        return None
    if args.trace_id is None:
        return traces[-1]
    by_id = {trace.get("trace_id"): trace for trace in traces}
    payload = by_id.get(args.trace_id)
    if payload is None:
        print(f"error: trace {args.trace_id!r} is not in the manifest "
              f"({len(traces)} trace(s) recorded)", file=sys.stderr)
    return payload


def _trace_from_server(args: argparse.Namespace) -> "dict | None":
    """Fetch the requested trace from a live ``--trace`` server."""
    import urllib.error
    import urllib.request

    url = args.url or "http://127.0.0.1:8787"
    if "://" not in url:
        url = f"http://{url}"
    target = f"{url.rstrip('/')}/v1/trace/{args.trace_id or 'last'}"
    try:
        with urllib.request.urlopen(target) as response:
            return json.load(response)
    except urllib.error.HTTPError as exc:
        body = exc.read()
        try:
            message = json.loads(body)["error"]
        except (ValueError, KeyError, TypeError):
            message = body.decode(errors="replace").strip()
        print(f"error: server answered HTTP {exc.code}: {message}", file=sys.stderr)
    except (OSError, ValueError) as exc:
        print(f"error: cannot fetch {target!r}: {exc} "
              f"(is a 'repro serve --listen ... --trace' server up?)",
              file=sys.stderr)
    return None


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import render_waterfall

    if args.manifest is not None and args.url is not None:
        print("error: pass either --manifest or --url, not both", file=sys.stderr)
        return 2
    if args.manifest is not None:
        payload = _trace_from_manifest(args)
    else:
        payload = _trace_from_server(args)
    if payload is None:
        return 2
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_waterfall(payload))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.pic.scenarios import available_scenarios, has_distribution, scenario_summaries

    summaries = scenario_summaries()
    width = max(len(name) for name in summaries)
    particle_names = set(available_scenarios())
    for name, doc in summaries.items():
        # A particle factory serves the PIC families; a registered
        # noise-free f0 counterpart serves the Vlasov family.
        if name in particle_names and has_distribution(name):
            families = "pic+vlasov"
        elif name in particle_names:
            families = "pic"
        else:
            families = "vlasov"
        print(f"{name:<{width}}  [{families:<10}]  {doc}")
    return 0


def _campaign_preset(name: str):
    from repro.datagen import fast_campaign, medium_campaign, paper_campaign

    return {"fast": fast_campaign, "medium": medium_campaign,
            "paper": paper_campaign}[name]()


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.datagen import CampaignStream, FieldDataset

    campaign = _campaign_preset(args.preset)
    try:
        stream = CampaignStream(
            campaign, args.dir,
            shard_size=args.shard_size, prefetch_depth=args.prefetch,
            workers=args.workers, resume=not args.fresh,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.action == "status":
        status = stream.status()
        print(f"campaign {status['campaign_hash'][:12]} in {status['out_dir']}: "
              f"{status['shards_intact']}/{status['n_shards']} shards intact "
              f"({status['n_runs']} simulations total)")
        for key in ("shards_recorded", "shards_missing", "complete"):
            print(f"  {key}: {status[key]}")
        return 0
    print(f"streaming {campaign.n_simulations} simulations into {args.dir} "
          f"({len(stream.plan())} shards of {args.shard_size}, "
          f"prefetch {args.prefetch}, {args.workers} worker(s))...")
    shards = []
    try:
        for shard in stream:
            print(f"  shard {shard.index:05d} [{shard.status:>8}] "
                  f"{shard.n_runs} runs, {shard.n_samples:,} samples "
                  f"-> {shard.path.name}")
            shards.append(shard)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stats = stream.stats
    print(f"done: {stats['shards_executed']} executed, "
          f"{stats['shards_verified']} verified, "
          f"{stats['shards_repaired']} repaired "
          f"({stats['runs_executed']} runs executed, "
          f"{stats['runs_skipped']} skipped)")
    if args.export:
        data = FieldDataset.concatenate([shard.load() for shard in shards])
        data.save(args.export)
        print(f"exported {len(data):,} pairs to {args.export}")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    # Deprecated alias for 'repro campaign run --export': same streaming
    # pipeline, shards parked next to the output file.
    from repro.datagen import CampaignStream

    campaign = _campaign_preset(args.preset)
    print(f"running {campaign.n_simulations} simulations "
          f"({campaign.n_samples:,} samples)...")
    print("note: 'repro dataset' is a deprecated alias for 'repro campaign'")
    stream = CampaignStream(
        campaign, f"{args.out}.shards", workers=args.workers,
    )
    data = stream.dataset()
    data.save(args.out)
    print(f"saved {len(data):,} pairs to {args.out}")
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    from repro.registry import ModelRegistry

    registry = ModelRegistry(args.registry)
    if args.action == "gc":
        removed = registry.gc()
        print(f"collected {len(removed)} entr{'y' if len(removed) == 1 else 'ies'} "
              f"from {registry.root}")
        for name in removed:
            print(f"  removed {name}")
        return 0
    if args.action == "show":
        if args.ref is None:
            print("error: 'repro models show' needs a fingerprint prefix",
                  file=sys.stderr)
            return 2
        try:
            model = registry.get(args.ref)
        except (KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(json.dumps({"fingerprint": model.fingerprint,
                          "path": str(model.path), **model.meta}, indent=2))
        return 0
    if args.action == "verify":
        refs = [args.ref] if args.ref else [m.fingerprint for m in registry.list()]
        if not refs:
            print(f"no models registered in {registry.root}")
            return 0
        failed = 0
        for ref in refs:
            try:
                ok = registry.verify(ref)
            except (KeyError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            print(f"  {ref[:16]:<16} {'ok' if ok else 'CORRUPT'}")
            failed += 0 if ok else 1
        return 1 if failed else 0
    models = registry.list()
    if not models:
        print(f"no models registered in {registry.root}")
        return 0
    print(f"{len(models)} model(s) in {registry.root}:")
    for model in models:
        lineage = model.lineage
        campaign = lineage.get("campaign_manifest_hash") or "-"
        print(f"  {model.fingerprint[:16]}  campaign={str(campaign)[:12]}  "
              f"(use --model-dir registry:{model.fingerprint[:12]})")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.experiments import (
        fast_preset, format_table1, medium_preset, paper_preset,
        run_table1, train_solvers,
    )

    preset = {"fast": fast_preset, "medium": medium_preset,
              "paper": paper_preset}[args.preset]()
    solvers = train_solvers(preset, cache_dir=args.cache,
                            include_cnn=not args.no_cnn,
                            n_workers=args.workers, verbose=True)
    print(format_table1(run_table1(solvers)))
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments import (
        fast_preset, format_table1, medium_preset,
        run_fig4, run_fig5, run_fig6, run_table1, train_solvers,
    )

    preset = {"fast": fast_preset, "medium": medium_preset}[args.preset]()
    solvers = train_solvers(preset, cache_dir=args.cache, include_cnn=True)
    payload: dict
    if args.artifact == "table1":
        rows = run_table1(solvers)
        print(format_table1(rows))
        payload = {f"{r.network}-{r.test_set}": {"mae": r.mae, "max_error": r.max_error}
                   for r in rows}
    elif args.artifact == "fig4":
        r4 = run_fig4(solvers.mlp_solver, preset.validation_config())
        print(r4.summary())
        payload = {"gamma_theory": r4.gamma_theory,
                   "gamma_traditional": r4.fit_traditional.gamma,
                   "gamma_dl": r4.fit_dl.gamma}
    elif args.artifact == "fig5":
        r5 = run_fig5(solvers.mlp_solver, preset.validation_config())
        print(r5.summary())
        payload = {"energy_variation_traditional": r5.energy_variation_traditional,
                   "energy_variation_dl": r5.energy_variation_dl,
                   "momentum_drift_traditional": r5.momentum_drift_traditional,
                   "momentum_drift_dl": r5.momentum_drift_dl}
    else:
        r6 = run_fig6(solvers.mlp_solver, preset.coldbeam_config())
        print(r6.summary())
        payload = {"spread_traditional": r6.metrics_traditional.max_spread,
                   "spread_dl": r6.metrics_dl.max_spread,
                   "rippled_traditional": r6.metrics_traditional.rippled,
                   "rippled_dl": r6.metrics_dl.rippled}
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"summary saved to {args.out}")
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "scenarios": _cmd_scenarios,
    "campaign": _cmd_campaign,
    "dataset": _cmd_dataset,
    "models": _cmd_models,
    "train": _cmd_train,
    "reproduce": _cmd_reproduce,
}


def main(argv: "Sequence[str] | None" = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
