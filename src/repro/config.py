"""Simulation configuration dataclasses.

:class:`SimulationConfig` captures every knob of a single 1D
electrostatic PIC run.  The defaults reproduce the paper's setup
(Sec. III): ``L = 2*pi/3.06``, 64 cells, 1,000 electrons per cell,
``dt = 0.2`` and the validation beams ``v0 = +/-0.2``, ``vth = 0.025``.
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

import numpy as np

from repro import constants


def _canonical(value: Any) -> Any:
    """Order-independent, hashable canonical form of an ``extra`` value.

    Dicts become sorted ``(key, value)`` tuples, sequences become
    tuples, scalars pass through — so two configs whose ``extra`` dicts
    hold the same content in different insertion order (or with lists
    vs tuples) compare and hash equal.
    """
    if isinstance(value, Mapping):
        return ("__map__",) + tuple(
            sorted((str(k), _canonical(v)) for k, v in value.items())
        )
    if isinstance(value, (list, tuple)):
        return ("__seq__",) + tuple(_canonical(v) for v in value)
    return value


def _check_string_keys(value: Any) -> None:
    """Require string keys in ``extra`` (recursively).

    JSON only has string keys, and allowing e.g. ``1`` alongside
    ``"1"`` would let two unequal configs serialize to the same cache
    key — the one collision the content-addressed store must never
    have.
    """
    if isinstance(value, Mapping):
        for k, v in value.items():
            if not isinstance(k, str):
                raise ValueError(
                    f"extra keys must be strings, got {k!r} ({type(k).__name__})"
                )
            _check_string_keys(v)
    elif isinstance(value, (list, tuple)):
        for v in value:
            _check_string_keys(v)


def _json_ready(value: Any) -> Any:
    """JSON-safe form whose serialization matches python equality.

    Python compares ``True == 1 == 1.0``, so numbers that equal an
    integer collapse to that integer (bools first: ``bool`` is an
    ``int`` subclass) and mapping keys become strings — two configs
    that compare equal always serialize, and therefore cache-key, the
    same.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, Mapping):
        return {str(k): _json_ready(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_ready(v) for v in value]
    return value


@dataclass(frozen=True, eq=False)
class SimulationConfig:
    """Parameters of a single two-stream PIC simulation.

    Attributes
    ----------
    box_length:
        Periodic domain size ``L``.
    n_cells:
        Number of grid cells (and grid nodes, the grid is periodic).
    particles_per_cell:
        Electron macro-particles per cell; total is ``n_cells * ppc``.
    dt:
        Time step.
    n_steps:
        Default number of PIC cycles for :meth:`run`.
    v0:
        Beam drift speed; the two beams move at ``+v0`` and ``-v0``.
    vth:
        Thermal spread (standard deviation of the Gaussian velocity
        perturbation added to each beam).
    qm:
        Charge-to-mass ratio of the electrons (sign included).
    interpolation:
        Particle-grid shape function: ``"ngp"``, ``"cic"`` or ``"tsc"``.
        Used for both gather and deposit (momentum-conserving pairing).
    poisson_solver:
        ``"spectral"`` (exact ``k**2``), ``"fd"`` (FFT-diagonalized
        second-order finite differences) or ``"direct"`` (banded LU).
    gradient:
        How ``E = -grad(phi)`` is discretized: ``"central"`` or
        ``"spectral"``.
    loading:
        ``"random"`` (paper: uniform random positions) or ``"quiet"``
        (evenly spaced positions per beam, optionally perturbed).
    perturbation:
        Relative amplitude of a sinusoidal density perturbation of mode
        ``perturbation_mode`` applied at loading (0 disables it; the
        paper relies on particle noise, so the default is 0).
    perturbation_mode:
        Mode number of the seeded perturbation.
    seed:
        RNG seed for particle loading.
    scenario:
        Name of the registered initial-condition scenario to load
        (``repro.pic.scenarios``): ``"two_stream"`` (the paper's
        setup, the default), ``"cold_beam"``, ``"landau_damping"``,
        ``"bump_on_tail"`` or ``"random_perturbation"``.  Membership is
        validated against the registry at load time so user-registered
        scenarios round-trip through the config unhindered.
    solver:
        Engine family that runs this config (``repro.engines``):
        ``"traditional"`` (the default explicit PIC cycle), ``"dl"``
        (neural field solve), ``"vlasov"`` (noise-free
        semi-Lagrangian phase-space solve; reads its velocity-grid
        knobs ``n_v``/``v_min``/``v_max`` from ``extra``) or
        ``"energy"`` (energy-conserving implicit-midpoint PIC).
        Validated against the engine registry at build time, so
        user-registered engines round-trip through the config
        unhindered.
    dtype:
        Numerical tier of the run: ``"float64"`` (the default; every
        engine guarantees bitwise-reproducible results) or
        ``"float32"`` (half-cost serving for requests that opt out of
        the bitwise guarantee; supported by the ``traditional``,
        ``vlasov`` and ``dl`` families — each engine family declares
        its tiers in the registry (``EngineSpec.dtypes``) — and
        regression-gated by a documented parity band against
        float64).  The tier is a
        *structural* field: it is part of the engine compatibility key
        and of every cache/store key, so float32 results can never be
        served for a float64 request or vice versa.
    backend:
        Kernel backend executing the hot numerical paths
        (``repro.kernels``): ``"numpy"`` (the default; the reference
        vectorized kernels, the bitwise parity oracle), ``"threaded"``
        (independent batch rows of each kernel call chunked across a
        shared thread pool — bitwise identical to ``"numpy"`` in every
        dtype tier) or ``"numba"`` (JIT-compiled scatter/gather behind
        the optional ``numba`` dependency, falling back to the
        reference kernels when it is absent).  Like ``dtype`` this is a
        *structural* field — part of the engine compatibility key and
        of every cache/store key — and family support is declared in
        the engine registry (``EngineSpec.backends``).
    extra:
        Free-form scenario parameters (e.g. ``bump_fraction`` for
        ``bump_on_tail``).  Must be a JSON-style dict; it participates
        in equality, hashing and :meth:`cache_key` through a
        canonicalized (order-independent) form, so two configs that
        differ only in ``extra`` are *different* runs.
    """

    box_length: float = constants.TWO_STREAM_BOX_LENGTH
    n_cells: int = constants.PAPER_N_CELLS
    particles_per_cell: int = constants.PAPER_PARTICLES_PER_CELL
    dt: float = constants.PAPER_DT
    n_steps: int = constants.PAPER_N_STEPS
    v0: float = constants.PAPER_VALIDATION_V0
    vth: float = constants.PAPER_VALIDATION_VTH
    qm: float = constants.ELECTRON_QM
    interpolation: str = "cic"
    poisson_solver: str = "spectral"
    gradient: str = "central"
    loading: str = "random"
    perturbation: float = 0.0
    perturbation_mode: int = 1
    seed: int = 0
    scenario: str = "two_stream"
    solver: str = "traditional"
    dtype: str = "float64"
    backend: str = "numpy"
    # Identity (eq/hash/cache_key) is hand-rolled below so the mutable
    # extra dict can participate through its canonicalized form.
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.box_length <= 0:
            raise ValueError(f"box_length must be positive, got {self.box_length}")
        if self.n_cells < 2:
            raise ValueError(f"n_cells must be >= 2, got {self.n_cells}")
        if self.particles_per_cell < 1:
            raise ValueError(f"particles_per_cell must be >= 1, got {self.particles_per_cell}")
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        if self.n_steps < 0:
            raise ValueError(f"n_steps must be non-negative, got {self.n_steps}")
        if self.vth < 0:
            raise ValueError(f"vth must be non-negative, got {self.vth}")
        if self.interpolation not in ("ngp", "cic", "tsc"):
            raise ValueError(f"unknown interpolation {self.interpolation!r}")
        if self.poisson_solver not in ("spectral", "fd", "direct"):
            raise ValueError(f"unknown poisson_solver {self.poisson_solver!r}")
        if self.gradient not in ("central", "spectral"):
            raise ValueError(f"unknown gradient {self.gradient!r}")
        if self.loading not in ("random", "quiet"):
            raise ValueError(f"unknown loading {self.loading!r}")
        if not isinstance(self.scenario, str) or not self.scenario:
            raise ValueError(f"scenario must be a non-empty string, got {self.scenario!r}")
        if not isinstance(self.solver, str) or not self.solver:
            raise ValueError(f"solver must be a non-empty string, got {self.solver!r}")
        if self.dtype not in ("float32", "float64"):
            raise ValueError(
                f"unknown dtype {self.dtype!r}; expected 'float32' or 'float64'"
            )
        # Mirrors repro.kernels.KERNEL_BACKEND_NAMES (kept literal so the
        # config module stays a leaf; a unit test pins the two together).
        if self.backend not in ("numpy", "threaded", "numba"):
            raise ValueError(
                f"unknown backend {self.backend!r}; expected 'numpy', "
                f"'threaded' or 'numba'"
            )
        if not isinstance(self.extra, dict):
            raise ValueError(f"extra must be a dict, got {type(self.extra).__name__}")
        _check_string_keys(self.extra)

    # -- identity --------------------------------------------------------
    def _identity(self) -> tuple:
        """Value tuple that defines equality/hashing (canonical ``extra``)."""
        vals = tuple(
            getattr(self, f.name) for f in fields(self) if f.name != "extra"
        )
        return vals + (_canonical(self.extra),)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self._identity() == other._identity()

    def __hash__(self) -> int:
        return hash(self._identity())

    @property
    def np_dtype(self) -> "np.dtype":
        """The numpy dtype of this config's numerical tier."""
        return np.dtype(np.float32 if self.dtype == "float32" else np.float64)

    @property
    def n_particles(self) -> int:
        """Total number of electron macro-particles."""
        return self.n_cells * self.particles_per_cell

    @property
    def dx(self) -> float:
        """Grid spacing."""
        return self.box_length / self.n_cells

    @property
    def particle_charge(self) -> float:
        """Macro-particle charge; mean electron density is exactly -1."""
        return -self.box_length / self.n_particles

    @property
    def particle_mass(self) -> float:
        """Macro-particle mass, consistent with ``qm``."""
        return self.particle_charge / self.qm

    def with_updates(self, **kwargs: Any) -> "SimulationConfig":
        """Return a copy with the given fields replaced.

        ``extra`` is always deep-copied into the new config (whether
        inherited or passed in), so no two configs ever alias the same
        mutable dict — mutating one run's scenario parameters cannot
        silently retag another's.
        """
        kwargs["extra"] = copy.deepcopy(kwargs.get("extra", self.extra))
        return replace(self, **kwargs)

    # -- canonical serialization ----------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """All fields as a JSON-style dict (``extra`` deep-copied).

        Together with :meth:`from_dict` this is an exact round trip:
        ``SimulationConfig.from_dict(cfg.to_dict()) == cfg`` for every
        valid config.  This is the service request format and the basis
        of :meth:`cache_key`.
        """
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["extra"] = copy.deepcopy(self.extra)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationConfig":
        """Build a config from a :meth:`to_dict`-style mapping.

        Missing fields take their defaults; unknown keys are rejected
        (a typo like ``nsteps`` must not silently produce the default
        run).  The provided ``extra`` dict is deep-copied.
        """
        names = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - names)
        if unknown:
            raise ValueError(
                f"unknown config key(s) {', '.join(map(repr, unknown))}; "
                f"valid keys: {', '.join(sorted(names))}"
            )
        kwargs = dict(data)
        if "extra" in kwargs:
            if not isinstance(kwargs["extra"], Mapping):
                raise ValueError(
                    f"extra must be a mapping, got {type(kwargs['extra']).__name__}"
                )
            kwargs["extra"] = copy.deepcopy(dict(kwargs["extra"]))
        return cls(**kwargs)

    def cache_key(self) -> str:
        """Content hash of the canonical serialization (hex sha256).

        Two equal configs map to the same key, and any field difference
        — including ``extra`` — changes it, so a result store keyed by
        ``cache_key`` can never serve the wrong run.  Requires ``extra``
        to be JSON-serializable.
        """
        try:
            payload = json.dumps(
                _json_ready(self.to_dict()), sort_keys=True, separators=(",", ":")
            )
        except TypeError as exc:
            raise ValueError(
                f"config.extra is not JSON-serializable, cannot build a cache key: {exc}"
            ) from None
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def paper_validation_config(seed: int = 0, **overrides: Any) -> SimulationConfig:
    """Configuration of Figs. 4-5: ``v0 = 0.2``, ``vth = 0.025``."""
    cfg = SimulationConfig(
        v0=constants.PAPER_VALIDATION_V0,
        vth=constants.PAPER_VALIDATION_VTH,
        seed=seed,
    )
    return cfg.with_updates(**overrides) if overrides else cfg


def paper_coldbeam_config(seed: int = 0, **overrides: Any) -> SimulationConfig:
    """Configuration of Fig. 6: ``v0 = 0.4``, ``vth = 0`` (cold beams)."""
    cfg = SimulationConfig(
        v0=constants.PAPER_COLDBEAM_V0,
        vth=constants.PAPER_COLDBEAM_VTH,
        seed=seed,
    )
    return cfg.with_updates(**overrides) if overrides else cfg
