"""Simulation configuration dataclasses.

:class:`SimulationConfig` captures every knob of a single 1D
electrostatic PIC run.  The defaults reproduce the paper's setup
(Sec. III): ``L = 2*pi/3.06``, 64 cells, 1,000 electrons per cell,
``dt = 0.2`` and the validation beams ``v0 = +/-0.2``, ``vth = 0.025``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro import constants


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of a single two-stream PIC simulation.

    Attributes
    ----------
    box_length:
        Periodic domain size ``L``.
    n_cells:
        Number of grid cells (and grid nodes, the grid is periodic).
    particles_per_cell:
        Electron macro-particles per cell; total is ``n_cells * ppc``.
    dt:
        Time step.
    n_steps:
        Default number of PIC cycles for :meth:`run`.
    v0:
        Beam drift speed; the two beams move at ``+v0`` and ``-v0``.
    vth:
        Thermal spread (standard deviation of the Gaussian velocity
        perturbation added to each beam).
    qm:
        Charge-to-mass ratio of the electrons (sign included).
    interpolation:
        Particle-grid shape function: ``"ngp"``, ``"cic"`` or ``"tsc"``.
        Used for both gather and deposit (momentum-conserving pairing).
    poisson_solver:
        ``"spectral"`` (exact ``k**2``), ``"fd"`` (FFT-diagonalized
        second-order finite differences) or ``"direct"`` (banded LU).
    gradient:
        How ``E = -grad(phi)`` is discretized: ``"central"`` or
        ``"spectral"``.
    loading:
        ``"random"`` (paper: uniform random positions) or ``"quiet"``
        (evenly spaced positions per beam, optionally perturbed).
    perturbation:
        Relative amplitude of a sinusoidal density perturbation of mode
        ``perturbation_mode`` applied at loading (0 disables it; the
        paper relies on particle noise, so the default is 0).
    perturbation_mode:
        Mode number of the seeded perturbation.
    seed:
        RNG seed for particle loading.
    scenario:
        Name of the registered initial-condition scenario to load
        (``repro.pic.scenarios``): ``"two_stream"`` (the paper's
        setup, the default), ``"cold_beam"``, ``"landau_damping"``,
        ``"bump_on_tail"`` or ``"random_perturbation"``.  Membership is
        validated against the registry at load time so user-registered
        scenarios round-trip through the config unhindered.
    """

    box_length: float = constants.TWO_STREAM_BOX_LENGTH
    n_cells: int = constants.PAPER_N_CELLS
    particles_per_cell: int = constants.PAPER_PARTICLES_PER_CELL
    dt: float = constants.PAPER_DT
    n_steps: int = constants.PAPER_N_STEPS
    v0: float = constants.PAPER_VALIDATION_V0
    vth: float = constants.PAPER_VALIDATION_VTH
    qm: float = constants.ELECTRON_QM
    interpolation: str = "cic"
    poisson_solver: str = "spectral"
    gradient: str = "central"
    loading: str = "random"
    perturbation: float = 0.0
    perturbation_mode: int = 1
    seed: int = 0
    scenario: str = "two_stream"
    extra: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.box_length <= 0:
            raise ValueError(f"box_length must be positive, got {self.box_length}")
        if self.n_cells < 2:
            raise ValueError(f"n_cells must be >= 2, got {self.n_cells}")
        if self.particles_per_cell < 1:
            raise ValueError(f"particles_per_cell must be >= 1, got {self.particles_per_cell}")
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        if self.n_steps < 0:
            raise ValueError(f"n_steps must be non-negative, got {self.n_steps}")
        if self.vth < 0:
            raise ValueError(f"vth must be non-negative, got {self.vth}")
        if self.interpolation not in ("ngp", "cic", "tsc"):
            raise ValueError(f"unknown interpolation {self.interpolation!r}")
        if self.poisson_solver not in ("spectral", "fd", "direct"):
            raise ValueError(f"unknown poisson_solver {self.poisson_solver!r}")
        if self.gradient not in ("central", "spectral"):
            raise ValueError(f"unknown gradient {self.gradient!r}")
        if self.loading not in ("random", "quiet"):
            raise ValueError(f"unknown loading {self.loading!r}")
        if not isinstance(self.scenario, str) or not self.scenario:
            raise ValueError(f"scenario must be a non-empty string, got {self.scenario!r}")

    @property
    def n_particles(self) -> int:
        """Total number of electron macro-particles."""
        return self.n_cells * self.particles_per_cell

    @property
    def dx(self) -> float:
        """Grid spacing."""
        return self.box_length / self.n_cells

    @property
    def particle_charge(self) -> float:
        """Macro-particle charge; mean electron density is exactly -1."""
        return -self.box_length / self.n_particles

    @property
    def particle_mass(self) -> float:
        """Macro-particle mass, consistent with ``qm``."""
        return self.particle_charge / self.qm

    def with_updates(self, **kwargs: Any) -> "SimulationConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def paper_validation_config(seed: int = 0, **overrides: Any) -> SimulationConfig:
    """Configuration of Figs. 4-5: ``v0 = 0.2``, ``vth = 0.025``."""
    cfg = SimulationConfig(
        v0=constants.PAPER_VALIDATION_V0,
        vth=constants.PAPER_VALIDATION_VTH,
        seed=seed,
    )
    return cfg.with_updates(**overrides) if overrides else cfg


def paper_coldbeam_config(seed: int = 0, **overrides: Any) -> SimulationConfig:
    """Configuration of Fig. 6: ``v0 = 0.4``, ``vth = 0`` (cold beams)."""
    cfg = SimulationConfig(
        v0=constants.PAPER_COLDBEAM_V0,
        vth=constants.PAPER_COLDBEAM_VTH,
        seed=seed,
    )
    return cfg.with_updates(**overrides) if overrides else cfg
