"""Physical and numerical constants for the dimensionless PIC system.

The paper (Sec. III) works in dimensionless units: the vacuum
permittivity is 1, the electron plasma frequency is 1, and the electron
charge-to-mass ratio has magnitude 1.  The box length is fixed to
``2*pi/3.06`` so that the fundamental mode ``k1 = 3.06`` sits at the
maximum-growth point of the two-stream instability for beams drifting
at ``v0 = +/-0.2`` (``k1*v0 = sqrt(3/8)``).
"""

from __future__ import annotations

import math

#: Vacuum permittivity in dimensionless units.
EPSILON_0: float = 1.0

#: Magnitude of the electron charge-to-mass ratio (paper: "q/m equal to one").
QM_MAGNITUDE: float = 1.0

#: Electron charge-to-mass ratio with its physical sign.
ELECTRON_QM: float = -1.0

#: Electron plasma frequency implied by the unit system.
PLASMA_FREQUENCY: float = 1.0

#: Box length used throughout the paper: ``L = 2*pi/3.06``.
TWO_STREAM_BOX_LENGTH: float = 2.0 * math.pi / 3.06

#: Fundamental wavenumber of the paper's box, ``k1 = 2*pi/L = 3.06``.
TWO_STREAM_K1: float = 3.06

#: Number of grid cells used in every experiment of the paper.
PAPER_N_CELLS: int = 64

#: Electrons per cell used in the paper.
PAPER_PARTICLES_PER_CELL: int = 1000

#: Simulation time step used in the paper.
PAPER_DT: float = 0.2

#: Number of PIC cycles per training simulation (Sec. IV-A1).
PAPER_N_STEPS: int = 200

#: Beam drift speeds used to build the paper's training campaign.
PAPER_TRAINING_V0: tuple[float, ...] = (0.05, 0.15, 0.18, 0.1, 0.3)

#: Thermal speeds used to build the paper's training campaign.
PAPER_TRAINING_VTH: tuple[float, ...] = (0.0, 0.01, 0.001, 0.005)

#: Seeds-per-combination ("10 experiments ... as a way of data augmentation").
PAPER_EXPERIMENTS_PER_COMBO: int = 10

#: Validation configuration of Figs. 4-5 (not present in the training sweep).
PAPER_VALIDATION_V0: float = 0.2
PAPER_VALIDATION_VTH: float = 0.025

#: Cold-beam (numerically unstable for traditional PIC) run of Fig. 6.
PAPER_COLDBEAM_V0: float = 0.4
PAPER_COLDBEAM_VTH: float = 0.0

#: Maximum growth rate of the symmetric cold two-stream instability,
#: ``gamma_max = omega_pe / (2*sqrt(2))``, attained at ``k*v0 = sqrt(3/8)``.
MAX_TWO_STREAM_GROWTH_RATE: float = 1.0 / (2.0 * math.sqrt(2.0))

#: ``k*v0`` at which the two-stream growth rate is maximal.
MOST_UNSTABLE_KV0: float = math.sqrt(3.0 / 8.0)

#: ``k*v0`` above which the symmetric cold two-stream system is stable.
TWO_STREAM_STABILITY_THRESHOLD_KV0: float = 1.0
