"""Training-data generation from traditional PIC simulations (Sec. IV-A1)."""

from repro.datagen.dataset import FieldDataset
from repro.datagen.campaign import (
    CampaignConfig,
    dataset_from_result,
    harvest_ensemble,
    harvest_simulation,
    harvest_via_client,
    run_campaign,
    run_test_set_ii,
)
from repro.datagen.presets import fast_campaign, medium_campaign, paper_campaign
from repro.datagen.stream import (
    CampaignStream,
    CompletedShard,
    ShardSpec,
    campaign_hash,
    stream_campaign,
)

__all__ = [
    "FieldDataset",
    "CampaignConfig",
    "CampaignStream",
    "CompletedShard",
    "ShardSpec",
    "campaign_hash",
    "dataset_from_result",
    "harvest_ensemble",
    "harvest_simulation",
    "harvest_via_client",
    "run_campaign",
    "run_test_set_ii",
    "stream_campaign",
    "fast_campaign",
    "medium_campaign",
    "paper_campaign",
]
