"""Sweep of traditional PIC simulations producing training data.

Section IV-A1 of the paper: 20 combinations of ``(v0, vth)``, 10
seeded "experiments" per combination (data augmentation), 200 steps
per run, one (histogram, field) pair per step — 40,000 pairs total.

The runs are embarrassingly parallel.  The serial path submits them as
public-API run requests — each config becomes a
:class:`~repro.api.RunRequest` selecting the ``training_pairs`` +
``fields`` observables, and a synchronous :class:`~repro.api.Client`
micro-batches compatible requests into vectorized ensembles (chunked
by a total-particle budget), which amortizes the per-step interpreter
and FFT overhead across the whole sweep while producing bit-for-bit
the same dataset as the per-run ``harvest_simulation``.
``run_campaign`` can still fan runs out over a ``multiprocessing``
pool (the closest stand-in for the paper's HPC batch generation that
works on one node); both paths agree exactly.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import SimulationConfig
from repro.datagen.dataset import FieldDataset
from repro.engines.base import make_engine
from repro.phasespace.binning import PhaseSpaceGrid, bin_phase_space, bin_phase_space_batch
from repro.pic.simulation import TraditionalPIC
from repro.utils.rng import spawn_seeds

# The serial path batches runs into ensembles of at most this many
# macro-particles so the stacked (batch, n) state stays cache- and
# memory-friendly even for the paper-scale 200-run campaign.
_ENSEMBLE_PARTICLE_BUDGET = 8_000_000


@dataclass(frozen=True)
class CampaignConfig:
    """Specification of a data-generation sweep.

    ``v0_values`` x ``vth_values`` x ``experiments_per_combo`` seeded
    traditional PIC runs of ``base_config.n_steps`` steps each.
    """

    v0_values: tuple[float, ...]
    vth_values: tuple[float, ...]
    experiments_per_combo: int
    base_config: SimulationConfig
    ps_grid: PhaseSpaceGrid
    binning: str = "ngp"
    include_initial_state: bool = True
    master_seed: int = 12345

    def __post_init__(self) -> None:
        if not self.v0_values or not self.vth_values:
            raise ValueError("campaign needs at least one v0 and one vth value")
        if self.experiments_per_combo < 1:
            raise ValueError(
                f"experiments_per_combo must be >= 1, got {self.experiments_per_combo}"
            )
        if any(v <= 0 for v in self.v0_values):
            raise ValueError("beam speeds must be positive")
        if any(v < 0 for v in self.vth_values):
            raise ValueError("thermal speeds must be non-negative")

    @property
    def n_simulations(self) -> int:
        """Total number of PIC runs in the sweep."""
        return len(self.v0_values) * len(self.vth_values) * self.experiments_per_combo

    @property
    def n_samples(self) -> int:
        """Total number of (histogram, field) pairs produced."""
        per_run = self.base_config.n_steps + (1 if self.include_initial_state else 0)
        return self.n_simulations * per_run

    def simulation_specs(self) -> list[tuple[float, float, int]]:
        """Deterministic ``(v0, vth, seed)`` list for every run."""
        seeds = spawn_seeds(self.master_seed, self.n_simulations)
        specs = []
        i = 0
        for v0 in self.v0_values:
            for vth in self.vth_values:
                for _ in range(self.experiments_per_combo):
                    specs.append((v0, vth, seeds[i]))
                    i += 1
        return specs

    def run_configs(self) -> "list[SimulationConfig]":
        """One :class:`SimulationConfig` per run, in spec order."""
        return [
            self.base_config.with_updates(v0=v0, vth=vth, seed=seed)
            for v0, vth, seed in self.simulation_specs()
        ]

    def to_canonical_dict(self) -> dict:
        """JSON-stable description of the sweep (the campaign identity).

        Two campaigns with equal canonical dicts produce bitwise-equal
        datasets; the streaming pipeline hashes this to decide whether
        an existing manifest belongs to the same campaign.
        """
        return {
            "v0_values": list(self.v0_values),
            "vth_values": list(self.vth_values),
            "experiments_per_combo": self.experiments_per_combo,
            "base_config": self.base_config.to_dict(),
            "ps_grid": {
                "n_x": self.ps_grid.n_x,
                "n_v": self.ps_grid.n_v,
                "box_length": self.ps_grid.box_length,
                "v_min": self.ps_grid.v_min,
                "v_max": self.ps_grid.v_max,
            },
            "binning": self.binning,
            "include_initial_state": self.include_initial_state,
            "master_seed": self.master_seed,
        }


def harvest_simulation(
    config: SimulationConfig,
    ps_grid: PhaseSpaceGrid,
    binning: str = "ngp",
    include_initial_state: bool = True,
) -> FieldDataset:
    """Run one traditional PIC simulation and harvest training pairs.

    Pairs mirror exactly what the DL solver sees at runtime: the
    histogram is binned from the *current* particle state (positions at
    integer time, velocities at the trailing half step) and the target
    is the field the traditional solver produced for that state.
    """
    sim = TraditionalPIC(config)
    inputs: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    steps: list[int] = []

    if include_initial_state:
        # At t=0 velocities are still at integer time, matching how the
        # DL-PIC computes its very first field.
        hist0 = bin_phase_space(sim.particles.x, sim.v_at_integer_time, ps_grid, order=binning)
        inputs.append(hist0)
        targets.append(sim.efield.copy())
        steps.append(0)

    def collect(s: TraditionalPIC) -> None:
        inputs.append(bin_phase_space(s.particles.x, s.particles.v, ps_grid, order=binning))
        targets.append(s.efield.copy())
        steps.append(s.step_index)

    sim.run(config.n_steps, callback=collect)
    n = len(inputs)
    params = np.column_stack(
        [
            np.full(n, config.v0),
            np.full(n, config.vth),
            np.full(n, float(config.seed)),
            np.asarray(steps, dtype=np.float64),
        ]
    )
    return FieldDataset(
        inputs=np.stack(inputs), targets=np.stack(targets), params=params, ps_grid=ps_grid
    )


def harvest_ensemble(
    configs: Sequence[SimulationConfig],
    ps_grid: PhaseSpaceGrid,
    binning: str = "ngp",
    include_initial_state: bool = True,
) -> FieldDataset:
    """Harvest training pairs from one vectorized ensemble of runs.

    All ``configs`` advance together as a single batched traditional
    engine from the registry (``repro.engines``) — one
    gather/push/deposit/Poisson call per step for the whole batch.  The
    harvested pairs are identical (bitwise) to running
    :func:`harvest_simulation` per config, and are returned in the same
    run-major order (all pairs of run 0, then all pairs of run 1, ...),
    so the vectorized and per-run paths are interchangeable.
    """
    configs = list(configs)
    if not configs:
        raise ValueError("ensemble harvest needs at least one configuration")
    n_steps = configs[0].n_steps
    if any(cfg.n_steps != n_steps for cfg in configs):
        raise ValueError("ensemble harvest needs a uniform n_steps across configs")
    sim = make_engine([cfg.with_updates(solver="traditional") for cfg in configs])
    batch = sim.batch
    inputs: list[list[np.ndarray]] = [[] for _ in range(batch)]
    targets: list[list[np.ndarray]] = [[] for _ in range(batch)]
    steps: list[int] = []

    def collect(x: np.ndarray, v: np.ndarray) -> None:
        # One fused scatter bins the whole ensemble; per-row results are
        # bitwise identical to per-run bin_phase_space calls.
        hists = bin_phase_space_batch(x, v, ps_grid, order=binning)
        for b in range(batch):
            inputs[b].append(hists[b])
            targets[b].append(sim.efield[b].copy())

    if include_initial_state:
        # At t=0 velocities are still at integer time, matching how the
        # DL-PIC computes its very first field.
        collect(sim.particles.x, sim.v_at_integer_time)
        steps.append(0)
    for _ in range(n_steps):
        sim.step()
        # Positions at integer time, velocities at the trailing half
        # step — exactly what the DL solver sees at runtime.
        collect(sim.particles.x, sim.particles.v)
        steps.append(sim.step_index)

    step_col = np.asarray(steps, dtype=np.float64)
    n_pairs = step_col.size
    parts = [
        FieldDataset(
            inputs=np.stack(inputs[b]),
            targets=np.stack(targets[b]),
            params=np.column_stack(
                [
                    np.full(n_pairs, cfg.v0),
                    np.full(n_pairs, cfg.vth),
                    np.full(n_pairs, float(cfg.seed)),
                    step_col,
                ]
            ),
            ps_grid=ps_grid,
        )
        for b, cfg in enumerate(configs)
    ]
    return FieldDataset.concatenate(parts)


def _worker(args: tuple) -> FieldDataset:
    """Picklable worker for the multiprocessing pool."""
    config, ps_grid, binning, include_initial = args
    return harvest_simulation(config, ps_grid, binning, include_initial)


def _harvest_observables(ps_grid: PhaseSpaceGrid, binning: str) -> "list[object]":
    """The v1 observables selection producing (histogram, field) pairs."""
    return [
        {
            "name": "training_pairs",
            "n_x": ps_grid.n_x, "n_v": ps_grid.n_v,
            "v_min": ps_grid.v_min, "v_max": ps_grid.v_max,
            "box_length": ps_grid.box_length, "order": binning,
        },
        "fields",
    ]


def dataset_from_result(
    config: SimulationConfig,
    result: "object",
    ps_grid: PhaseSpaceGrid,
    include_initial_state: bool = True,
) -> FieldDataset:
    """Assemble one run's harvested pairs from its served result.

    ``result`` is any object with a ``series`` mapping holding the
    ``training_pairs`` observables output (``histograms`` + ``fields``)
    — a :class:`~repro.api.RunResult` or a service-layer result.  The
    one assembly path shared by the materializing harvest
    (:func:`harvest_via_client`) and the streaming campaign
    (:mod:`repro.datagen.stream`), so the two are bitwise
    interchangeable by construction.
    """
    first = 0 if include_initial_state else 1
    hists = np.asarray(result.series["histograms"])[first:]
    fields = np.asarray(result.series["fields"])[first:]
    n_pairs = hists.shape[0]
    params = np.column_stack(
        [
            np.full(n_pairs, config.v0),
            np.full(n_pairs, config.vth),
            np.full(n_pairs, float(config.seed)),
            np.arange(first, first + n_pairs, dtype=np.float64),
        ]
    )
    return FieldDataset(inputs=hists, targets=fields, params=params, ps_grid=ps_grid)


def harvest_via_client(
    configs: Sequence[SimulationConfig],
    ps_grid: PhaseSpaceGrid,
    binning: str = "ngp",
    include_initial_state: bool = True,
    max_batch_size: int = 16,
) -> FieldDataset:
    """Harvest training pairs through the public API.

    Each config is one :class:`~repro.api.RunRequest` selecting the
    ``training_pairs`` and ``fields`` observables; a synchronous
    :class:`~repro.api.Client` coalesces compatible requests into
    ensembles of up to ``max_batch_size``.  The pairs are bitwise
    identical to :func:`harvest_simulation` per config (the batched
    binning preserves per-row bit patterns) and returned in request
    order, so this path, the per-run path and the pool path are all
    interchangeable.  Results are streamed straight into the dataset —
    the client's store is disabled (campaign outputs are huge and
    single-use).
    """
    from repro.api import Client, RunRequest
    from repro.service.store import ResultStore

    configs = list(configs)
    if not configs:
        raise ValueError("ensemble harvest needs at least one configuration")
    selection = _harvest_observables(ps_grid, binning)
    requests = [
        RunRequest(
            config=cfg.with_updates(solver="traditional"),
            id=f"harvest-{i}",
            observables=selection,
        )
        for i, cfg in enumerate(configs)
    ]
    with Client(
        background=False,
        max_batch_size=max_batch_size,
        store=ResultStore(capacity=0),
    ) as client:
        results = client.map(requests)

    parts = [
        dataset_from_result(cfg, result, ps_grid, include_initial_state)
        for cfg, result in zip(configs, results)
    ]
    return FieldDataset.concatenate(parts)


def run_campaign(campaign: CampaignConfig, n_workers: int = 1) -> FieldDataset:
    """Execute the whole sweep and concatenate the harvested pairs.

    The serial path (``n_workers == 1``) submits every run through the
    public API (:func:`harvest_via_client`): the client's micro-batcher
    groups them into vectorized ensembles chunked by a total-particle
    budget.  ``n_workers > 1`` distributes individual simulations over
    a process pool instead.  Both paths are deterministic and bitwise
    identical because the per-run seeds are fixed by
    :meth:`CampaignConfig.simulation_specs`, results are ordered in
    spec order, and the batched kernels reproduce single runs exactly.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    run_configs = campaign.run_configs()
    if n_workers == 1:
        chunk = max(1, _ENSEMBLE_PARTICLE_BUDGET // campaign.base_config.n_particles)
        return harvest_via_client(
            run_configs,
            campaign.ps_grid,
            campaign.binning,
            campaign.include_initial_state,
            max_batch_size=chunk,
        )
    else:
        jobs = [
            (cfg, campaign.ps_grid, campaign.binning, campaign.include_initial_state)
            for cfg in run_configs
        ]
        with multiprocessing.get_context("fork").Pool(n_workers) as pool:
            results = pool.map(_worker, jobs)
    return FieldDataset.concatenate(results)


def run_test_set_ii(
    campaign: CampaignConfig,
    v0_values: Sequence[float],
    vth_values: Sequence[float],
    n_samples: int,
    seed: int = 777,
) -> FieldDataset:
    """Build the paper's "Test Set II" from *unseen* parameters.

    Runs one simulation per unseen ``(v0, vth)`` combination and keeps
    a random subsample of ``n_samples`` pairs, mimicking the paper's
    1,000-sample held-out set from parameters "not included in the
    initial data set".
    """
    overlap = set(v0_values) & set(campaign.v0_values)
    overlap_vth = set(vth_values) & set(campaign.vth_values)
    if overlap and overlap_vth:
        raise ValueError(
            f"test-set-II parameters overlap the training sweep: v0 {overlap}, vth {overlap_vth}"
        )
    seeds = spawn_seeds(seed, len(v0_values) * len(vth_values))
    cfgs = [
        campaign.base_config.with_updates(v0=v0, vth=vth, seed=seeds[i])
        for i, (v0, vth) in enumerate(
            (v0, vth) for v0 in v0_values for vth in vth_values
        )
    ]
    full = harvest_via_client(
        cfgs, campaign.ps_grid, campaign.binning, campaign.include_initial_state
    )
    if n_samples >= len(full):
        return full
    order = np.random.default_rng(seed).permutation(len(full))[:n_samples]
    return full.subset(order)
