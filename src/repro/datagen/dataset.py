"""Container for (phase-space histogram, electric field) sample pairs."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.phasespace.binning import PhaseSpaceGrid
from repro.utils.io import load_npz_dict, save_npz_dict
from repro.utils.rng import as_generator


@dataclass
class FieldDataset:
    """Paired inputs/targets for the DL electric-field solver.

    Attributes
    ----------
    inputs:
        Raw (unnormalized) histograms, shape ``(n, n_v, n_x)``.
    targets:
        Electric field on the grid, shape ``(n, n_cells)``.
    params:
        Per-sample ``(v0, vth, seed, step)`` provenance, shape ``(n, 4)``.
    ps_grid:
        The phase-space discretization the histograms were binned on.
    """

    inputs: np.ndarray
    targets: np.ndarray
    params: np.ndarray
    ps_grid: PhaseSpaceGrid

    def __post_init__(self) -> None:
        # Preserve a float32 pair tier (the raw-speed kernels emit
        # float32 and casting up would fake precision + double memory);
        # everything else — ints from histogram binning included —
        # still normalizes to float64.  Provenance params are always
        # float64: they are labels, not data.
        self.inputs = self._as_float(self.inputs)
        self.targets = self._as_float(self.targets)
        self.params = np.asarray(self.params, dtype=np.float64)
        n = self.inputs.shape[0]
        if self.targets.shape[0] != n or self.params.shape[0] != n:
            raise ValueError(
                f"inconsistent sample counts: inputs {n}, targets {self.targets.shape[0]}, "
                f"params {self.params.shape[0]}"
            )
        if self.inputs.ndim != 3 or self.inputs.shape[1:] != self.ps_grid.shape:
            raise ValueError(
                f"inputs shape {self.inputs.shape} does not match phase-space grid "
                f"{self.ps_grid.shape}"
            )

    @staticmethod
    def _as_float(values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        if values.dtype == np.float32:
            return values
        return np.asarray(values, dtype=np.float64)

    def __len__(self) -> int:
        return self.inputs.shape[0]

    @property
    def n_cells(self) -> int:
        """Field grid size (the network's output width)."""
        return self.targets.shape[1]

    def flat_inputs(self) -> np.ndarray:
        """Histograms flattened for MLP consumption, ``(n, n_v*n_x)``."""
        return self.inputs.reshape(len(self), -1)

    def image_inputs(self) -> np.ndarray:
        """Histograms as single-channel images, ``(n, 1, n_v, n_x)``."""
        return self.inputs.reshape(len(self), 1, *self.ps_grid.shape)

    def subset(self, indices: np.ndarray) -> "FieldDataset":
        """New dataset restricted to ``indices`` (copies)."""
        idx = np.asarray(indices)
        return FieldDataset(
            inputs=self.inputs[idx].copy(),
            targets=self.targets[idx].copy(),
            params=self.params[idx].copy(),
            ps_grid=self.ps_grid,
        )

    def shuffled(self, rng: "int | np.random.Generator | None" = None) -> "FieldDataset":
        """Jointly shuffled copy (the paper shuffles before splitting)."""
        order = as_generator(rng).permutation(len(self))
        return self.subset(order)

    def split(
        self, n_val: int, n_test: int, rng: "int | np.random.Generator | None" = None
    ) -> tuple["FieldDataset", "FieldDataset", "FieldDataset"]:
        """Shuffle and split into (train, val, test) like Sec. IV-A1."""
        if n_val < 0 or n_test < 0 or n_val + n_test >= len(self):
            raise ValueError(f"cannot carve {n_val}+{n_test} samples out of {len(self)}")
        shuffled = self.shuffled(rng)
        test = shuffled.subset(np.arange(0, n_test))
        val = shuffled.subset(np.arange(n_test, n_test + n_val))
        train = shuffled.subset(np.arange(n_test + n_val, len(self)))
        return train, val, test

    @staticmethod
    def concatenate(datasets: "list[FieldDataset]") -> "FieldDataset":
        """Stack several datasets binned on the same phase-space grid."""
        if not datasets:
            raise ValueError("no datasets to concatenate")
        grid = datasets[0].ps_grid
        for d in datasets[1:]:
            if d.ps_grid != grid:
                raise ValueError("datasets use different phase-space grids")
        return FieldDataset(
            inputs=np.concatenate([d.inputs for d in datasets], axis=0),
            targets=np.concatenate([d.targets for d in datasets], axis=0),
            params=np.concatenate([d.params for d in datasets], axis=0),
            ps_grid=grid,
        )

    # -- persistence -----------------------------------------------------
    def save(self, path: "str | Path") -> Path:
        """Write the dataset (arrays + grid metadata) to ``.npz``."""
        return save_npz_dict(
            path,
            {
                "inputs": self.inputs,
                "targets": self.targets,
                "params": self.params,
                "n_x": self.ps_grid.n_x,
                "n_v": self.ps_grid.n_v,
                "box_length": self.ps_grid.box_length,
                "v_min": self.ps_grid.v_min,
                "v_max": self.ps_grid.v_max,
            },
        )

    @classmethod
    def load(cls, path: "str | Path") -> "FieldDataset":
        """Inverse of :meth:`save`."""
        data = load_npz_dict(path)
        grid = PhaseSpaceGrid(
            n_x=int(data["n_x"]),
            n_v=int(data["n_v"]),
            box_length=float(data["box_length"]),
            v_min=float(data["v_min"]),
            v_max=float(data["v_max"]),
        )
        return cls(inputs=data["inputs"], targets=data["targets"], params=data["params"], ps_grid=grid)
