"""Campaign presets: the paper's full sweep and scaled-down variants.

The paper's campaign (40,000 samples from 200 runs at 64,000 particles
each, then 150/100 training epochs) took ~18 min (MLP) / ~2 h (CNN) on
a Tesla K80.  On pure-CPU NumPy the full preset is available but slow;
the ``fast`` and ``medium`` presets keep the identical pipeline
(sweep structure, binning, normalization, split protocol) at reduced
scale so the shape of every paper result can be regenerated in minutes.
The knobs that shrink are sample count, particles-per-cell, phase-space
resolution and network width — never the physics setup.
"""

from __future__ import annotations

from repro import constants
from repro.config import SimulationConfig
from repro.datagen.campaign import CampaignConfig
from repro.phasespace.binning import PhaseSpaceGrid


def paper_campaign(master_seed: int = 12345) -> CampaignConfig:
    """The full Sec. IV-A1 sweep: 20 combos x 10 seeds x 200 steps."""
    return CampaignConfig(
        v0_values=constants.PAPER_TRAINING_V0,
        vth_values=constants.PAPER_TRAINING_VTH,
        experiments_per_combo=constants.PAPER_EXPERIMENTS_PER_COMBO,
        base_config=SimulationConfig(n_steps=constants.PAPER_N_STEPS),
        ps_grid=PhaseSpaceGrid(n_x=64, n_v=64),
        binning="ngp",
        master_seed=master_seed,
    )


def medium_campaign(master_seed: int = 12345) -> CampaignConfig:
    """Reduced sweep used by the benchmark harness.

    Keeps all five beam speeds (the sweep structure that makes
    ``v0 = 0.2`` an interpolation test), two thermal speeds, two seeds
    per combo and 400 particles per cell: 10 combos x 2 seeds x 200
    steps = 4,020 samples on a 32x64 phase-space grid.  Calibrated so
    the trained MLP reproduces the Fig. 4 growth rate within ~10%.
    """
    return CampaignConfig(
        v0_values=constants.PAPER_TRAINING_V0,
        vth_values=(0.0, 0.005),
        experiments_per_combo=2,
        base_config=SimulationConfig(n_steps=constants.PAPER_N_STEPS, particles_per_cell=400),
        ps_grid=PhaseSpaceGrid(n_x=64, n_v=32),
        binning="ngp",
        master_seed=master_seed,
    )


def fast_campaign(master_seed: int = 12345) -> CampaignConfig:
    """Tiny sweep for tests/CI: 4 combos x 1 seed x 60 steps."""
    return CampaignConfig(
        v0_values=(0.15, 0.3),
        vth_values=(0.0, 0.005),
        experiments_per_combo=1,
        base_config=SimulationConfig(n_steps=60, particles_per_cell=50),
        ps_grid=PhaseSpaceGrid(n_x=32, n_v=16),
        binning="ngp",
        master_seed=master_seed,
    )
