"""Streaming data campaigns: bounded-memory, sharded, resumable.

:class:`CampaignStream` rebuilds the materializing harvest of
``repro.datagen.campaign`` as a producer/consumer pipeline:

* the **producer** submits each shard's runs as public-API
  :class:`~repro.api.RunRequest` batches through a background
  :class:`~repro.api.Client` (so micro-batching, the executor pool and
  the result store all apply), keeping at most ``prefetch_depth``
  shards in flight;
* the **consumer** iterates completed shards head-of-line: each shard's
  results are assembled into a :class:`FieldDataset` via the same
  :func:`~repro.datagen.campaign.dataset_from_result` path the
  materializing harvest uses (bitwise interchangeable by construction),
  written to ``shard-00042.npz`` through a temp file + ``os.replace``,
  content-hashed, recorded in the ``manifest.json`` and yielded.

Peak memory is bounded by ``shard_size × prefetch_depth`` runs —
campaign size never enters the bound.  A killed campaign restarts from
its manifest: durable shards are verified by file hash and adopted
without recomputation, truncated/corrupt/missing shards are
re-requested (status ``repaired``), and the repaired output is bitwise
identical to an uninterrupted run because every run's content is fixed
by its config + seed, independent of batch composition.
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import json
import os
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.config import SimulationConfig
from repro.datagen.campaign import (
    CampaignConfig,
    _ENSEMBLE_PARTICLE_BUDGET,
    _harvest_observables,
    dataset_from_result,
)
from repro.datagen.dataset import FieldDataset
from repro.obs.metrics import record_campaign_shard
from repro.obs.trace import NOOP_TRACER

if TYPE_CHECKING:
    from repro.api.client import Client

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

# Same unique-temp-name scheme as the result store: pid + counter, so
# concurrent writers can never interleave into one temp file.
_TMP_COUNTER = itertools.count()


def campaign_hash(campaign: CampaignConfig, shard_size: int) -> str:
    """Content identity of a sharded campaign (sweep + shard plan)."""
    payload = {
        "campaign": campaign.to_canonical_dict(),
        "shard_size": int(shard_size),
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


def _sha256_file(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


@dataclass(frozen=True)
class ShardSpec:
    """One shard of the deterministic run plan."""

    index: int
    start: int  # index of the shard's first run in spec order
    configs: "tuple[SimulationConfig, ...]"

    @property
    def n_runs(self) -> int:
        return len(self.configs)

    @property
    def filename(self) -> str:
        return f"shard-{self.index:05d}.npz"


@dataclass
class CompletedShard:
    """A durable shard the stream has yielded.

    ``status`` is ``"executed"`` (ran through the client this session),
    ``"verified"`` (an intact shard adopted from a previous session —
    its data stays on disk, call :meth:`load` to read it) or
    ``"repaired"`` (a corrupt/missing shard that was re-executed).
    ``dataset`` holds the in-memory pairs only for shards executed this
    session; verified shards keep the memory bound by not reloading.
    """

    index: int
    path: Path
    sha256: str
    n_runs: int
    n_samples: int
    status: str
    dataset: "FieldDataset | None" = field(default=None, repr=False)

    def load(self) -> FieldDataset:
        """The shard's pairs (from memory if executed, else from disk)."""
        if self.dataset is not None:
            return self.dataset
        return FieldDataset.load(self.path)


class CampaignStream:
    """Producer/consumer pipeline over a sharded data campaign.

    Parameters
    ----------
    campaign:
        The sweep to run.
    out_dir:
        Directory receiving ``shard-*.npz`` + ``manifest.json``.
    shard_size:
        Runs per shard (the yield granularity).
    prefetch_depth:
        Maximum shards in flight at once; together with ``shard_size``
        this bounds peak memory at ``shard_size × prefetch_depth`` runs.
    client:
        An existing :class:`~repro.api.Client` to submit through (kept
        open).  By default the stream owns a background client sized to
        the campaign (``workers``/``max_batch_size`` apply only then).
    workers:
        Executor parallelism of the owned client (``N > 1`` shards
        compatibility groups across spawned worker processes).
    max_batch_size:
        Micro-batch bound of the owned client; defaults to the
        campaign's particle-budget chunk (the materializing harvest's
        ensembles), capped at ``shard_size``.
    resume:
        Verify and adopt durable shards from an existing manifest
        (default).  ``resume=False`` ignores (and overwrites) any
        previous progress.

    Iterating the stream yields one :class:`CompletedShard` per shard,
    in plan order; ``stats`` accumulates shard/run accounting
    (``max_inflight_runs`` is the observed memory bound).
    """

    def __init__(
        self,
        campaign: CampaignConfig,
        out_dir: "str | os.PathLike[str]",
        *,
        shard_size: int = 8,
        prefetch_depth: int = 2,
        client: "Client | None" = None,
        workers: int = 1,
        max_batch_size: "int | None" = None,
        resume: bool = True,
    ) -> None:
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        if prefetch_depth < 1:
            raise ValueError(f"prefetch_depth must be >= 1, got {prefetch_depth}")
        self.campaign = campaign
        self.out_dir = Path(out_dir)
        self.shard_size = shard_size
        self.prefetch_depth = prefetch_depth
        self.resume = resume
        self._client = client
        self._owns_client = client is None
        self._workers = workers
        if max_batch_size is None:
            chunk = max(
                1, _ENSEMBLE_PARTICLE_BUDGET // campaign.base_config.n_particles
            )
            max_batch_size = min(shard_size, chunk)
        self._max_batch_size = max_batch_size
        self.campaign_hash = campaign_hash(campaign, shard_size)
        self.stats = {
            "shards_total": len(self.plan()),
            "shards_executed": 0,
            "shards_verified": 0,
            "shards_repaired": 0,
            "runs_executed": 0,
            "runs_skipped": 0,
            "inflight_runs": 0,
            "max_inflight_runs": 0,
        }

    # -- the plan ---------------------------------------------------------
    def plan(self) -> "list[ShardSpec]":
        """The deterministic shard plan (spec order, fixed shard size)."""
        configs = self.campaign.run_configs()
        return [
            ShardSpec(
                index=i,
                start=start,
                configs=tuple(configs[start:start + self.shard_size]),
            )
            for i, start in enumerate(range(0, len(configs), self.shard_size))
        ]

    # -- manifest ---------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.out_dir / MANIFEST_NAME

    def _load_manifest(self) -> dict:
        """Read (or initialize) the manifest, checking campaign identity."""
        if self.resume and self.manifest_path.exists():
            try:
                manifest = json.loads(self.manifest_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise ValueError(
                    f"unreadable campaign manifest {self.manifest_path}: {exc}; "
                    f"pass resume=False to start over"
                ) from None
            found = manifest.get("campaign_hash")
            if found != self.campaign_hash:
                raise ValueError(
                    f"manifest in {self.out_dir} belongs to a different campaign "
                    f"(hash {str(found)[:12]}... != {self.campaign_hash[:12]}...); "
                    f"use a fresh out_dir or pass resume=False to overwrite"
                )
            manifest.setdefault("shards", {})
            return manifest
        return {
            "version": MANIFEST_VERSION,
            "campaign_hash": self.campaign_hash,
            "campaign": self.campaign.to_canonical_dict(),
            "shard_size": self.shard_size,
            "n_shards": len(self.plan()),
            "shards": {},
        }

    def _write_manifest(self, manifest: dict) -> None:
        """Atomically replace the manifest (temp file + ``os.replace``)."""
        tmp = self.manifest_path.with_name(
            f".tmp-{os.getpid()}-{next(_TMP_COUNTER)}-{MANIFEST_NAME}"
        )
        try:
            tmp.write_text(json.dumps(manifest, indent=2))
            os.replace(tmp, self.manifest_path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    def _verify_durable(self, spec: ShardSpec, manifest: dict) -> "CompletedShard | None":
        """Adopt an intact durable shard; ``None`` means re-execute."""
        entry = manifest["shards"].get(str(spec.index))
        if entry is None:
            return None
        path = self.out_dir / entry.get("file", spec.filename)
        if not path.exists() or _sha256_file(path) != entry.get("sha256"):
            return None  # truncated, corrupt or deleted — re-request
        return CompletedShard(
            index=spec.index,
            path=path,
            sha256=entry["sha256"],
            n_runs=int(entry.get("n_runs", spec.n_runs)),
            n_samples=int(entry.get("n_samples", 0)),
            status="verified",
        )

    # -- execution --------------------------------------------------------
    def _make_client(self) -> "Client":
        from repro.api.client import Client
        from repro.service.store import ResultStore

        # Background mode: prefetched shards execute on the service
        # worker while the consumer assembles/writes the head shard.
        # Campaign outputs are huge and single-use — store disabled.
        return Client(
            background=True,
            max_batch_size=self._max_batch_size,
            max_wait=0.005,
            store=ResultStore(capacity=0),
            workers=self._workers,
        )

    def _submit_shard(self, client: "Client", spec: ShardSpec) -> list:
        """File one shard's run requests (does not wait)."""
        from repro.api.envelope import RunRequest

        selection = _harvest_observables(self.campaign.ps_grid, self.campaign.binning)
        futures = [
            client.submit(
                RunRequest(
                    config=cfg.with_updates(solver="traditional"),
                    id=f"campaign-{spec.index:05d}-{row}",
                    observables=selection,
                )
            )
            for row, cfg in enumerate(spec.configs)
        ]
        self.stats["inflight_runs"] += spec.n_runs
        self.stats["max_inflight_runs"] = max(
            self.stats["max_inflight_runs"], self.stats["inflight_runs"]
        )
        return futures

    def _write_shard(
        self, spec: ShardSpec, dataset: FieldDataset, manifest: dict, status: str
    ) -> CompletedShard:
        """Durably publish one executed shard and record it."""
        path = self.out_dir / spec.filename
        tmp = path.with_name(f".tmp-{os.getpid()}-{next(_TMP_COUNTER)}-{path.name}")
        try:
            dataset.save(tmp)
            digest = _sha256_file(tmp)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        manifest["shards"][str(spec.index)] = {
            "file": spec.filename,
            "sha256": digest,
            "n_runs": spec.n_runs,
            "n_samples": len(dataset),
        }
        self._write_manifest(manifest)
        return CompletedShard(
            index=spec.index,
            path=path,
            sha256=digest,
            n_runs=spec.n_runs,
            n_samples=len(dataset),
            status=status,
            dataset=dataset,
        )

    def __iter__(self) -> "Iterator[CompletedShard]":
        """Yield every shard in plan order, executing what is missing."""
        self.out_dir.mkdir(parents=True, exist_ok=True)
        manifest = self._load_manifest()
        self._write_manifest(manifest)  # durable before the first run
        plan = self.plan()
        client = self._client if self._client is not None else self._make_client()
        service = getattr(getattr(client, "transport", None), "service", None)
        tracer = getattr(service, "tracer", NOOP_TRACER)
        trace = tracer.start_trace("campaign") if tracer.enabled else None
        try:
            # (spec, adopted | None, futures | None, recorded): at most
            # prefetch_depth entries holding result data at any moment.
            inflight: "deque[tuple[ShardSpec, CompletedShard | None, list | None, bool]]"
            inflight = deque()
            next_index = 0
            while next_index < len(plan) or inflight:
                while next_index < len(plan) and len(inflight) < self.prefetch_depth:
                    spec = plan[next_index]
                    next_index += 1
                    recorded = str(spec.index) in manifest["shards"]
                    durable = self._verify_durable(spec, manifest)
                    if durable is not None:
                        inflight.append((spec, durable, None, recorded))
                    else:
                        inflight.append(
                            (spec, None, self._submit_shard(client, spec), recorded)
                        )
                spec, durable, futures, recorded = inflight.popleft()
                span = trace.start_span("campaign.shard") if trace else None
                if durable is not None:
                    self.stats["shards_verified"] += 1
                    self.stats["runs_skipped"] += durable.n_runs
                    record_campaign_shard("verified")
                    shard = durable
                else:
                    results = [f.result() for f in futures]
                    for result in results:
                        result.raise_for_status()
                    dataset = FieldDataset.concatenate([
                        dataset_from_result(
                            cfg,
                            result,
                            self.campaign.ps_grid,
                            self.campaign.include_initial_state,
                        )
                        for cfg, result in zip(spec.configs, results)
                    ])
                    # A shard the manifest recorded but that failed hash
                    # verification was lost/corrupt: that re-execution is
                    # a repair; never-recorded shards are first runs.
                    status = "repaired" if recorded else "executed"
                    shard = self._write_shard(spec, dataset, manifest, status)
                    self.stats["inflight_runs"] -= spec.n_runs
                    self.stats[f"shards_{status}"] += 1
                    self.stats["runs_executed"] += spec.n_runs
                    record_campaign_shard(status)
                if span:
                    span.set_attribute("shard", spec.index)
                    span.set_attribute("status", shard.status)
                    span.set_attribute("n_runs", shard.n_runs)
                    span.finish()
                yield shard
        finally:
            if trace:
                trace.finish()
            if self._owns_client:
                client.close()

    # -- conveniences -----------------------------------------------------
    def run(self) -> "dict[str, object]":
        """Drive the stream to completion; returns the stats snapshot."""
        for _ in self:
            pass
        return dict(self.stats)

    def dataset(self) -> FieldDataset:
        """Run (or resume) the campaign and concatenate every shard.

        This is the materializing endpoint — the result is bitwise
        identical to :func:`~repro.datagen.campaign.run_campaign` on
        the same campaign, whatever mix of executed/verified/repaired
        shards produced it.
        """
        return FieldDataset.concatenate([shard.load() for shard in self])

    def status(self) -> "dict[str, object]":
        """Progress summary from the durable manifest (no execution)."""
        plan = self.plan()
        manifest: dict = {"shards": {}}
        if self.manifest_path.exists():
            manifest = self._load_manifest()
        done = intact = 0
        for spec in plan:
            entry = manifest["shards"].get(str(spec.index))
            if entry is None:
                continue
            done += 1
            if self._verify_durable(spec, manifest) is not None:
                intact += 1
        return {
            "out_dir": str(self.out_dir),
            "campaign_hash": self.campaign_hash,
            "n_shards": len(plan),
            "shards_recorded": done,
            "shards_intact": intact,
            "shards_missing": len(plan) - intact,
            "n_runs": self.campaign.n_simulations,
            "complete": intact == len(plan),
        }


def stream_campaign(
    campaign: CampaignConfig,
    out_dir: "str | os.PathLike[str]",
    **kwargs: object,
) -> CampaignStream:
    """Build a :class:`CampaignStream` (keyword args forwarded)."""
    return CampaignStream(campaign, out_dir, **kwargs)
