"""The paper's contribution: the DL-based PIC method (Fig. 2)."""

from repro.dlpic.solver import DLFieldSolver
from repro.dlpic.simulation import DLEnsemble, DLPIC

__all__ = ["DLEnsemble", "DLFieldSolver", "DLPIC"]
