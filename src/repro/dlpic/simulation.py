"""The DL-based PIC method: the full cycle of the paper's Fig. 2.

Identical to the traditional cycle except that the field-solver stage
(charge deposition + Poisson solve) is replaced by phase-space binning
and a neural-network prediction.  The interpolation of the field to
particle positions and the Newton/leapfrog mover are retained verbatim.
"""

from __future__ import annotations

import numpy as np

from repro.config import SimulationConfig
from repro.dlpic.solver import DLFieldSolver
from repro.pic.simulation import PICSimulation


class DLPIC(PICSimulation):
    """PIC simulation whose field solve is a trained neural network."""

    def __init__(
        self,
        config: SimulationConfig,
        solver: DLFieldSolver,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        if abs(solver.ps_grid.box_length - config.box_length) > 1e-12 * config.box_length:
            raise ValueError(
                f"solver was trained for box length {solver.ps_grid.box_length}, "
                f"simulation uses {config.box_length}"
            )
        super().__init__(config, solver, rng)

    @property
    def dl_solver(self) -> DLFieldSolver:
        """The neural field solver driving this run."""
        solver = self.field_solver
        assert isinstance(solver, DLFieldSolver)
        return solver

    @property
    def last_histogram(self) -> "np.ndarray | None":
        """Phase-space histogram from the most recent field prediction."""
        return self.dl_solver.last_histogram
