"""The DL-based PIC method: the full cycle of the paper's Fig. 2.

Identical to the traditional cycle except that the field-solver stage
(charge deposition + Poisson solve) is replaced by phase-space binning
and a neural-network prediction.  The interpolation of the field to
particle positions and the Newton/leapfrog mover are retained verbatim.

:class:`DLEnsemble` extends the batched ensemble engine to the DL
path: every member's histogram is built by one fused binning call and
all fields come from ONE network forward per step, with each row
bitwise identical to the corresponding single :class:`DLPIC` run.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import SimulationConfig
from repro.dlpic.solver import DLFieldSolver
from repro.kernels import resolve_backend
from repro.pic.simulation import EnsembleSimulation, PICSimulation


def _check_box_length(solver: DLFieldSolver, config: SimulationConfig) -> None:
    """The solver's frozen phase-space grid must match the simulation box."""
    if abs(solver.ps_grid.box_length - config.box_length) > 1e-12 * config.box_length:
        raise ValueError(
            f"solver was trained for box length {solver.ps_grid.box_length}, "
            f"simulation uses {config.box_length}"
        )


class DLEnsemble(EnsembleSimulation):
    """Batched DL-PIC: a whole sweep through one network per step.

    The traditional ensemble engine drives the neural field solver
    natively (``DLFieldSolver.supports_batch``): at each cycle the
    stacked ``(batch, n)`` phase spaces are binned by one fused
    ``bincount``, normalized in one pass and pushed through ONE network
    forward, so the most expensive stage of the DL cycle is amortized
    across the ensemble exactly like the Poisson solve is for
    traditional sweeps.  Row ``b`` reproduces
    ``DLPIC(configs[b], solver)`` bit for bit.
    """

    def __init__(
        self,
        configs: "SimulationConfig | Sequence[SimulationConfig]",
        field_solver: DLFieldSolver,
        rngs: "Sequence[int | np.random.Generator | None] | None" = None,
    ) -> None:
        if not isinstance(field_solver, DLFieldSolver):
            raise TypeError(
                f"DLEnsemble needs a DLFieldSolver, got {type(field_solver).__name__}"
            )
        if isinstance(configs, SimulationConfig):
            configs = (configs,)
        configs = tuple(configs)
        if configs:
            _check_box_length(field_solver, configs[0])
            # Thread the ensemble's kernel backend into the solver's
            # evaluation GEMMs before the initial field solve runs.
            field_solver.set_kernel_backend(resolve_backend(configs[0].backend))
        super().__init__(configs, field_solver=field_solver, rngs=rngs)

    @classmethod
    def from_config(  # type: ignore[override]
        cls,
        config: SimulationConfig,
        batch: int,
        field_solver: DLFieldSolver,
        seeds: "Sequence[int] | None" = None,
    ) -> "DLEnsemble":
        """Replicate ``config`` over ``batch`` seeded members (seed+b)."""
        return super().from_config(config, batch, seeds=seeds, field_solver=field_solver)

    @property
    def dl_solver(self) -> DLFieldSolver:
        """The neural field solver driving this ensemble."""
        solver = self.field_solver
        assert isinstance(solver, DLFieldSolver)
        return solver

    @property
    def last_histograms(self) -> "np.ndarray | None":
        """Stacked ``(batch, n_v, n_x)`` histograms of the latest step."""
        return self.dl_solver.last_histograms


class DLPIC(PICSimulation):
    """PIC simulation whose field solve is a trained neural network."""

    def __init__(
        self,
        config: SimulationConfig,
        solver: DLFieldSolver,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        _check_box_length(solver, config)
        super().__init__(config, solver, rng)

    @property
    def dl_solver(self) -> DLFieldSolver:
        """The neural field solver driving this run."""
        solver = self.field_solver
        assert isinstance(solver, DLFieldSolver)
        return solver

    @property
    def last_histogram(self) -> "np.ndarray | None":
        """Phase-space histogram from the most recent field prediction."""
        return self.dl_solver.last_histogram
