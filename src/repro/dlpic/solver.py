"""The DL electric-field solver (grey boxes of the paper's Fig. 2).

At every PIC cycle the solver (1) bins the particle phase space onto a
2D grid, (2) min-max normalizes the histogram with the statistics
*frozen at training time* (Eq. 5), and (3) evaluates the trained
network to predict the electric field on the 64 grid nodes.  No charge
deposition and no Poisson solve take place.

The solver is batch-native: an ensemble of runs hands it stacked
``(batch, n)`` phase spaces and the whole stage — binning, frozen
normalization, network evaluation — executes once per step for the
entire batch (:meth:`DLFieldSolver.fields`).  One fused ``bincount``
builds every histogram, one normalization pass rescales the stack, and
ONE network forward predicts all fields.  The single-run
:meth:`DLFieldSolver.field` is a batch-of-one view of the same path,
and the inference stack guarantees each batched row is bitwise
identical to the corresponding single run (see ``repro.nn.layers``).
"""

from __future__ import annotations

import copy
import hashlib
import json
from pathlib import Path

import numpy as np

from repro.nn.network import Sequential
from repro.phasespace.binning import PhaseSpaceGrid, bin_phase_space_batch
from repro.phasespace.normalization import MinMaxNormalizer

_INPUT_KINDS = ("flat", "image")


class DLFieldSolver:
    """Predicts ``E`` on the grid from the particle phase space.

    Parameters
    ----------
    model:
        A trained network mapping normalized histograms to the field.
    ps_grid:
        Phase-space discretization used at training time (must match).
    normalizer:
        The min-max scaler fitted on the training inputs.
    input_kind:
        ``"flat"`` feeds histograms as ``(N, n_v*n_x)`` vectors (MLP);
        ``"image"`` as ``(N, 1, n_v, n_x)`` tensors (CNN).
    binning:
        Phase-space binning order, ``"ngp"`` (paper) or ``"cic"``.

    The object satisfies the ``FieldSolver`` protocol of
    ``repro.pic.simulation`` and plugs directly into the PIC cycle —
    natively batched (``supports_batch``), so an
    :class:`~repro.pic.simulation.EnsembleSimulation` drives it without
    any row-by-row lifting.
    """

    supports_batch = True

    def __init__(
        self,
        model: Sequential,
        ps_grid: PhaseSpaceGrid,
        normalizer: MinMaxNormalizer,
        input_kind: str = "flat",
        binning: str = "ngp",
    ) -> None:
        if input_kind not in _INPUT_KINDS:
            raise ValueError(f"unknown input_kind {input_kind!r}; expected one of {_INPUT_KINDS}")
        if not normalizer.fitted:
            raise ValueError("normalizer must be fitted before building a DLFieldSolver")
        self.model = model
        self.ps_grid = ps_grid
        self.normalizer = normalizer
        self.input_kind = input_kind
        self.binning = binning
        self.last_histograms: "np.ndarray | None" = None
        # The float32 serving tier: a deep copy of the model with the
        # weights cast down, built lazily on the first float32 call
        # (weights are frozen at serving time — call
        # :meth:`invalidate_float32_cache` after mutating them).
        self._model_f32: "Sequential | None" = None
        # Kernel backend threaded into evaluation-mode Dense GEMMs.
        self._kernel_backend = None

    def set_kernel_backend(self, backend) -> None:
        """Route this solver's evaluation GEMMs through ``backend``.

        ``backend`` is a ``repro.kernels`` backend or ``None`` (the
        reference block loop).  Applied to both the float64 model and
        the lazily built float32 copy.
        """
        self._kernel_backend = backend
        self.model.set_eval_backend(backend)
        if self._model_f32 is not None:
            self._model_f32.set_eval_backend(backend)

    def invalidate_float32_cache(self) -> None:
        """Drop the float32 weight copy (call after mutating weights)."""
        self._model_f32 = None

    def _eval_model(self, dtype: np.dtype) -> Sequential:
        """The model matching an input dtype (float32 copy built lazily)."""
        if dtype != np.float32:
            return self.model
        if self._model_f32 is None:
            model = copy.deepcopy(self.model)
            for layer in model.layers:
                for key, value in layer.params.items():
                    layer.params[key] = value.astype(np.float32)
            model.set_eval_backend(self._kernel_backend)
            self._model_f32 = model
        return self._model_f32

    @property
    def last_histogram(self) -> "np.ndarray | None":
        """Histogram of the most recent batch-of-one prediction.

        ``None`` before any prediction, and for true ensembles
        (``batch > 1``) — read :attr:`last_histograms` there.
        """
        if self.last_histograms is None or self.last_histograms.shape[0] != 1:
            return None
        return self.last_histograms[0]

    def prepare_inputs(self, histograms: np.ndarray) -> np.ndarray:
        """Normalize stacked histograms and shape them for the network.

        ``histograms`` is ``(batch, n_v, n_x)``; one normalization pass
        covers the whole stack.  Returns ``(batch, n_v*n_x)`` for
        ``"flat"`` models or ``(batch, 1, n_v, n_x)`` for ``"image"``.
        """
        histograms = np.asarray(histograms)
        if histograms.dtype != np.float32:
            histograms = np.asarray(histograms, dtype=np.float64)
        if histograms.ndim != 3 or histograms.shape[1:] != self.ps_grid.shape:
            raise ValueError(
                f"histograms {histograms.shape} do not match "
                f"(batch, {self.ps_grid.n_v}, {self.ps_grid.n_x})"
            )
        norm = self.normalizer.transform(histograms)
        if self.input_kind == "flat":
            return norm.reshape(histograms.shape[0], -1)
        return norm.reshape(histograms.shape[0], 1, *self.ps_grid.shape)

    def prepare_input(self, histogram: np.ndarray) -> np.ndarray:
        """Normalize a single histogram and shape it for the network."""
        histogram = np.asarray(histogram, dtype=np.float64)
        if histogram.shape != self.ps_grid.shape:
            raise ValueError(f"histogram {histogram.shape} does not match grid {self.ps_grid.shape}")
        return self.prepare_inputs(histogram[None])

    def predict_from_histograms(self, histograms: np.ndarray) -> np.ndarray:
        """One network forward over stacked raw histograms.

        float32 histograms are evaluated by the float32 weight copy
        (single-precision GEMMs end to end); anything else runs the
        float64 reference model unchanged.
        """
        prepared = self.prepare_inputs(histograms)
        return self._eval_model(prepared.dtype).predict(prepared)

    def predict_from_histogram(self, histogram: np.ndarray) -> np.ndarray:
        """Network prediction for one raw (unnormalized) histogram."""
        return self.model.predict(self.prepare_input(histogram))[0]

    def fields(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Predict every ensemble member's field in one fused pass.

        ``x`` and ``v`` are stacked ``(batch, n)`` phase spaces; the
        result is ``(batch, n_cells)``.  The entire DL field-solve
        stage — binning, normalization, network forward — runs once for
        the whole batch, and row ``b`` is bitwise identical to a
        single-run :meth:`field` call on ``(x[b], v[b])``.
        """
        hists = bin_phase_space_batch(x, v, self.ps_grid, order=self.binning, dtype=x.dtype)
        self.last_histograms = hists
        return self.predict_from_histograms(hists)

    def field(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        """``FieldSolver`` protocol entry point used by the PIC cycle.

        Accepts either a single ``(n,)`` phase space (returning
        ``(n_cells,)``) or a stacked ``(batch, n)`` ensemble (returning
        ``(batch, n_cells)``); the single-run form is a batch-of-one
        view of :meth:`fields`.
        """
        x = np.asarray(x)
        if x.dtype != np.float32:
            x = np.asarray(x, dtype=np.float64)
        v = np.asarray(v, dtype=x.dtype)
        if x.ndim == 2:
            return self.fields(x, v)
        return self.fields(x[None], v[None])[0]

    def fingerprint(self) -> str:
        """Content hash of the solver (architecture + weights + preprocessing).

        Two solvers with the same fingerprint predict identical fields
        for identical inputs, so the simulation service folds this into
        the result-store key of DL runs — results produced by one model
        can never be served for a request against another.
        """
        h = hashlib.sha256()
        h.update(json.dumps([repr(layer) for layer in self.model.layers]).encode("utf-8"))
        state = self.model.state_dict()
        for key in sorted(state):
            h.update(key.encode("utf-8"))
            h.update(np.ascontiguousarray(state[key]).tobytes())
        meta = {
            "input_kind": self.input_kind,
            "binning": self.binning,
            "normalizer": self.normalizer.to_dict(),
            "ps_grid": {
                "n_x": self.ps_grid.n_x,
                "n_v": self.ps_grid.n_v,
                "box_length": self.ps_grid.box_length,
                "v_min": self.ps_grid.v_min,
                "v_max": self.ps_grid.v_max,
            },
        }
        h.update(json.dumps(meta, sort_keys=True).encode("utf-8"))
        return h.hexdigest()

    # -- persistence -----------------------------------------------------
    def save(self, directory: "str | Path") -> Path:
        """Write ``model.npz`` + ``solver.json`` into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.model.save(directory / "model.npz")
        meta = {
            "input_kind": self.input_kind,
            "binning": self.binning,
            "normalizer": self.normalizer.to_dict(),
            "ps_grid": {
                "n_x": self.ps_grid.n_x,
                "n_v": self.ps_grid.n_v,
                "box_length": self.ps_grid.box_length,
                "v_min": self.ps_grid.v_min,
                "v_max": self.ps_grid.v_max,
            },
        }
        (directory / "solver.json").write_text(json.dumps(meta, indent=2))
        return directory

    @classmethod
    def load(cls, directory: "str | Path", model: Sequential) -> "DLFieldSolver":
        """Rebuild a solver; ``model`` must have the saved architecture.

        The caller constructs the (untrained) architecture — e.g. via
        ``repro.models.build_mlp`` — and this method loads the weights
        and the frozen preprocessing state into it.
        """
        directory = Path(directory)
        meta = json.loads((directory / "solver.json").read_text())
        model.load(directory / "model.npz")
        return cls(
            model=model,
            ps_grid=PhaseSpaceGrid(**meta["ps_grid"]),
            normalizer=MinMaxNormalizer.from_dict(meta["normalizer"]),
            input_kind=meta["input_kind"],
            binning=meta["binning"],
        )

    @classmethod
    def load_auto(cls, directory: "str | Path") -> "DLFieldSolver":
        """Rebuild a solver from a saved directory or registry reference.

        Unlike :meth:`load` no pre-built architecture is needed: the
        checkpoint's layer fingerprint reconstructs the network
        (:meth:`Sequential.from_saved`).  This is what lets the CLI run
        ``repro sweep --solver dl --model-dir <dir>`` against any saved
        solver.  ``registry:<fingerprint-prefix>`` (and
        ``registry:<root>:<prefix>``) references resolve through the
        content-addressed model registry (:mod:`repro.registry`) — and
        because every ``model_dir`` consumer funnels through this
        method, registry refs work identically for the CLI, an
        in-process service and spawned executor workers.
        """
        if str(directory).startswith("registry:"):
            # Lazy import: the registry depends on this module.
            from repro.registry import resolve_model_dir

            directory = resolve_model_dir(directory)
        directory = Path(directory)
        return cls.load(directory, Sequential.from_saved(directory / "model.npz"))
