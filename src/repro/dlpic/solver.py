"""The DL electric-field solver (grey boxes of the paper's Fig. 2).

At every PIC cycle the solver (1) bins the particle phase space onto a
2D grid, (2) min-max normalizes the histogram with the statistics
*frozen at training time* (Eq. 5), and (3) evaluates the trained
network to predict the electric field on the 64 grid nodes.  No charge
deposition and no Poisson solve take place.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.network import Sequential
from repro.phasespace.binning import PhaseSpaceGrid, bin_phase_space
from repro.phasespace.normalization import MinMaxNormalizer

_INPUT_KINDS = ("flat", "image")


class DLFieldSolver:
    """Predicts ``E`` on the grid from the particle phase space.

    Parameters
    ----------
    model:
        A trained network mapping normalized histograms to the field.
    ps_grid:
        Phase-space discretization used at training time (must match).
    normalizer:
        The min-max scaler fitted on the training inputs.
    input_kind:
        ``"flat"`` feeds histograms as ``(N, n_v*n_x)`` vectors (MLP);
        ``"image"`` as ``(N, 1, n_v, n_x)`` tensors (CNN).
    binning:
        Phase-space binning order, ``"ngp"`` (paper) or ``"cic"``.

    The object satisfies the ``FieldSolver`` protocol of
    ``repro.pic.simulation`` and plugs directly into the PIC cycle.
    """

    def __init__(
        self,
        model: Sequential,
        ps_grid: PhaseSpaceGrid,
        normalizer: MinMaxNormalizer,
        input_kind: str = "flat",
        binning: str = "ngp",
    ) -> None:
        if input_kind not in _INPUT_KINDS:
            raise ValueError(f"unknown input_kind {input_kind!r}; expected one of {_INPUT_KINDS}")
        if not normalizer.fitted:
            raise ValueError("normalizer must be fitted before building a DLFieldSolver")
        self.model = model
        self.ps_grid = ps_grid
        self.normalizer = normalizer
        self.input_kind = input_kind
        self.binning = binning
        self.last_histogram: "np.ndarray | None" = None

    def prepare_input(self, histogram: np.ndarray) -> np.ndarray:
        """Normalize a single histogram and shape it for the network."""
        histogram = np.asarray(histogram, dtype=np.float64)
        if histogram.shape != self.ps_grid.shape:
            raise ValueError(f"histogram {histogram.shape} does not match grid {self.ps_grid.shape}")
        norm = self.normalizer.transform(histogram)
        if self.input_kind == "flat":
            return norm.reshape(1, -1)
        return norm.reshape(1, 1, *self.ps_grid.shape)

    def predict_from_histogram(self, histogram: np.ndarray) -> np.ndarray:
        """Network prediction for one raw (unnormalized) histogram."""
        return self.model.predict(self.prepare_input(histogram))[0]

    def field(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        """``FieldSolver`` protocol entry point used by the PIC cycle."""
        hist = bin_phase_space(x, v, self.ps_grid, order=self.binning)
        self.last_histogram = hist
        return self.predict_from_histogram(hist)

    # -- persistence -----------------------------------------------------
    def save(self, directory: "str | Path") -> Path:
        """Write ``model.npz`` + ``solver.json`` into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.model.save(directory / "model.npz")
        meta = {
            "input_kind": self.input_kind,
            "binning": self.binning,
            "normalizer": self.normalizer.to_dict(),
            "ps_grid": {
                "n_x": self.ps_grid.n_x,
                "n_v": self.ps_grid.n_v,
                "box_length": self.ps_grid.box_length,
                "v_min": self.ps_grid.v_min,
                "v_max": self.ps_grid.v_max,
            },
        }
        (directory / "solver.json").write_text(json.dumps(meta, indent=2))
        return directory

    @classmethod
    def load(cls, directory: "str | Path", model: Sequential) -> "DLFieldSolver":
        """Rebuild a solver; ``model`` must have the saved architecture.

        The caller constructs the (untrained) architecture — e.g. via
        ``repro.models.build_mlp`` — and this method loads the weights
        and the frozen preprocessing state into it.
        """
        directory = Path(directory)
        meta = json.loads((directory / "solver.json").read_text())
        model.load(directory / "model.npz")
        return cls(
            model=model,
            ps_grid=PhaseSpaceGrid(**meta["ps_grid"]),
            normalizer=MinMaxNormalizer.from_dict(meta["normalizer"]),
            input_kind=meta["input_kind"],
            binning=meta["binning"],
        )
