"""Unified engine layer: one registry, one observables pipeline.

Every solver family — the batched PIC ensemble, the DL-PIC ensemble and
the semi-Lagrangian Vlasov ensemble — is constructed through
:func:`make_engine` from a ``SimulationConfig`` whose ``solver`` field
names the family, and records diagnostics through the shared streaming
:class:`Observables` pipeline.  See ``repro.engines.base`` for the
registry and ``repro.engines.observables`` for the pipeline.

``VlasovEnsemble`` is re-exported lazily (it pulls in the Vlasov
numerics); everything else is import-light.
"""

from repro.engines.base import (
    STRUCTURAL_FIELDS,
    Engine,
    EngineSpec,
    available_engines,
    engine_group_key,
    get_engine_spec,
    make_engine,
    register_engine,
    structural_key,
    validate_engine_config,
    vlasov_grid_params,
)
from repro.engines.observables import (
    DEFAULT_OBSERVABLES,
    FieldSnapshot,
    Frame,
    ModeAmplitude,
    Observable,
    ObservableSpec,
    Observables,
    ParticleEnergyMomentum,
    PhaseSpaceSnapshot,
    TrainingHistograms,
    VlasovEnergyMomentum,
    available_observables,
    canonical_observables,
    observables_token,
    pic_observables,
    register_observable,
    resolve_observables,
    selection_to_jsonable,
    vlasov_observables,
)

__all__ = [
    "STRUCTURAL_FIELDS",
    "Engine",
    "EngineSpec",
    "available_engines",
    "engine_group_key",
    "get_engine_spec",
    "make_engine",
    "register_engine",
    "structural_key",
    "validate_engine_config",
    "vlasov_grid_params",
    "DEFAULT_OBSERVABLES",
    "FieldSnapshot",
    "Frame",
    "ModeAmplitude",
    "Observable",
    "ObservableSpec",
    "Observables",
    "ParticleEnergyMomentum",
    "PhaseSpaceSnapshot",
    "TrainingHistograms",
    "VlasovEnergyMomentum",
    "available_observables",
    "canonical_observables",
    "observables_token",
    "pic_observables",
    "register_observable",
    "resolve_observables",
    "selection_to_jsonable",
    "vlasov_observables",
    "VlasovEnsemble",
]


def __getattr__(name: str):
    # Lazy: the Vlasov ensemble imports the solver numerics, which in
    # turn import the diagnostics shims that import this package.
    if name == "VlasovEnsemble":
        from repro.vlasov.ensemble import VlasovEnsemble

        return VlasovEnsemble
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
