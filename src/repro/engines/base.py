"""The engine registry: one abstraction over every solver family.

An *engine* advances a batch of independent runs and records shared
:class:`~repro.engines.observables.Observables`.  The built-in
families, selected by ``SimulationConfig.solver``:

``traditional``
    The batched explicit PIC cycle
    (:class:`~repro.pic.simulation.EnsembleSimulation`).
``dl``
    The DL-based PIC cycle with one network forward per ensemble step
    (:class:`~repro.dlpic.simulation.DLEnsemble`); needs a
    ``dl_solver``.
``vlasov``
    The noise-free semi-Lagrangian Vlasov-Poisson ensemble
    (:class:`~repro.vlasov.ensemble.VlasovEnsemble`).
``energy``
    The energy-conserving implicit-midpoint PIC
    (:class:`~repro.pic.energy_conserving.EnergyConservingEnsemble`).
``mpi``
    The simulated-MPI domain-decomposed traditional PIC
    (:class:`~repro.parallel.picparallel.MPIEnsemble`; ``n_ranks``
    via ``config.extra``).

Every consumer — the micro-batching service, the CLI, the experiment
pipeline, the data campaigns — builds engines exclusively through
:func:`make_engine`, so registering a new family here makes it
servable, sweepable and harvestable everywhere at once.  Each family
also publishes its *structural-compatibility key*: the config fields a
batched engine requires to agree across an ensemble, used both to
validate mixed-config batches and (plus ``n_steps``) to bucket service
requests — see :func:`engine_group_key`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.config import SimulationConfig

if TYPE_CHECKING:
    from repro.engines.observables import Observables

# Config fields that must agree across every member of a PIC ensemble
# (the batched kernels share one grid, one time step and one
# charge/mass).  The DL family inherits these; the Vlasov family has
# its own key below.
STRUCTURAL_FIELDS = (
    "box_length",
    "n_cells",
    "particles_per_cell",
    "dt",
    "qm",
    "interpolation",
    "poisson_solver",
    "gradient",
    "dtype",
    "backend",
)

# Phase-space grid knobs of the Vlasov family, read from
# ``config.extra`` (they have no meaning for particle engines, and
# ``extra`` already participates in equality and cache keys).
VLASOV_DEFAULT_N_V = 128
VLASOV_DEFAULT_V_MIN = -0.5
VLASOV_DEFAULT_V_MAX = 0.5

# Fields of the Vlasov structural key that are plain config attributes;
# the grid knobs from ``extra`` are appended by the key function.
VLASOV_STRUCTURAL_FIELDS = (
    "box_length",
    "n_cells",
    "dt",
    "qm",
    "poisson_solver",
    "gradient",
    "dtype",
    "backend",
)


# Rank count of the simulated-MPI family, read from ``config.extra``
# (``extra`` participates in equality and cache keys, so runs over
# different decompositions never share a store slot).
MPI_DEFAULT_N_RANKS = 4


def mpi_rank_params(config: SimulationConfig) -> int:
    """``n_ranks`` of a config's simulated-MPI decomposition.

    Read from ``config.extra["n_ranks"]`` (default
    :data:`MPI_DEFAULT_N_RANKS`); malformed or non-positive values
    raise ``ValueError`` so every entry point rejects them at
    parse/submit time.
    """
    value = config.extra.get("n_ranks", MPI_DEFAULT_N_RANKS)
    try:
        as_number = float(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"malformed n_ranks in config.extra (must be an integer), got {value!r}"
        ) from None
    n_ranks = int(as_number)
    if n_ranks != as_number:
        raise ValueError(
            f"malformed n_ranks in config.extra (must be an integer), got {value!r}"
        )
    if n_ranks < 1:
        raise ValueError(f"solver='mpi' needs n_ranks >= 1, got {n_ranks}")
    return n_ranks


def vlasov_grid_params(config: SimulationConfig) -> "tuple[int, float, float]":
    """``(n_v, v_min, v_max)`` of a config's Vlasov velocity grid.

    Malformed ``extra`` values raise ``ValueError`` (never ``TypeError``)
    so every entry point — request parsing, service submission, engine
    construction — rejects them through one exception type.
    """
    try:
        n_v = int(config.extra.get("n_v", VLASOV_DEFAULT_N_V))
        v_min = float(config.extra.get("v_min", VLASOV_DEFAULT_V_MIN))
        v_max = float(config.extra.get("v_max", VLASOV_DEFAULT_V_MAX))
    except (TypeError, ValueError) as exc:
        raise ValueError(
            f"malformed Vlasov grid knobs in config.extra "
            f"(n_v/v_min/v_max must be numeric): {exc}"
        ) from None
    return n_v, v_min, v_max


@runtime_checkable
class Engine(Protocol):
    """What every registered engine family provides.

    ``configs`` holds one :class:`SimulationConfig` per batched member
    (``config`` is the structural reference, ``batch`` the count);
    ``efield`` is the current ``(batch, n_cells)`` field.  ``step``
    advances one cycle; ``run`` advances ``n_steps`` cycles recording
    into an :class:`Observables` (the initial state included, so a run
    yields ``n_steps + 1`` records); ``observables`` builds this
    engine's default recorder.
    """

    configs: "tuple[SimulationConfig, ...]"
    config: SimulationConfig
    batch: int
    efield: np.ndarray

    def step(self) -> None:
        """Advance every member one cycle."""
        ...

    def run(
        self,
        n_steps: "int | None" = None,
        history: "Observables | None" = None,
        callback: "Callable | None" = None,
    ) -> "Observables":
        """Run ``n_steps`` cycles, recording observables each step."""
        ...

    def observables(self) -> "Observables":
        """A fresh default observables recorder for this engine."""
        ...


@dataclass(frozen=True)
class EngineSpec:
    """One registered engine family.

    ``build`` constructs the engine from a config sequence (plus the
    keyword context :func:`make_engine` forwards: ``dl_solver``,
    ``rngs``); ``structural_key`` maps a config to the hashable tuple
    every co-batched member must share; ``validate`` fails fast on a
    config the family cannot run (called at service submit time).
    ``kind`` names the family's state representation — ``"pic"``
    (particle frames) or ``"vlasov"`` (phase-space density frames) —
    and picks the right measurement for kind-dependent observables
    (see :func:`repro.engines.observables.resolve_observables`).

    ``dtypes`` and ``backends`` declare the numerical tiers and kernel
    backends the family can run; :func:`require_tier` rejects anything
    else at submit time with a message derived from the registry, so
    the error always names which families *do* support the requested
    tier (and never goes stale as tiers expand).
    """

    name: str
    build: "Callable[..., Engine]"
    structural_key: "Callable[[SimulationConfig], Hashable]"
    validate: "Callable[[SimulationConfig], None] | None" = None
    kind: str = "pic"
    dtypes: "tuple[str, ...]" = ("float64",)
    backends: "tuple[str, ...]" = ("numpy",)


_ENGINES: "dict[str, EngineSpec]" = {}


def register_engine(spec: EngineSpec) -> EngineSpec:
    """Register an engine family under ``spec.name``."""
    if spec.name in _ENGINES:
        raise ValueError(f"engine {spec.name!r} is already registered")
    _ENGINES[spec.name] = spec
    return spec


def available_engines() -> "tuple[str, ...]":
    """Sorted names of every registered engine family."""
    return tuple(sorted(_ENGINES))


def get_engine_spec(name: str) -> EngineSpec:
    """Look up a registered family; unknown names raise ``ValueError``."""
    try:
        return _ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown solver {name!r}; available: {', '.join(available_engines())}"
        ) from None


def validate_engine_config(config: SimulationConfig) -> EngineSpec:
    """Fail fast if ``config`` cannot be served by its solver family."""
    spec = get_engine_spec(config.solver)
    if spec.validate is not None:
        spec.validate(config)
    return spec


def structural_key(config: SimulationConfig) -> Hashable:
    """The structural-compatibility tuple of ``config``'s engine family."""
    return get_engine_spec(config.solver).structural_key(config)


def engine_group_key(config: SimulationConfig) -> Hashable:
    """Compatibility bucket of a run request (hashable tuple).

    Two configs may share one engine execution exactly when their
    group keys match: same solver family, same structural fields and
    the same ``n_steps`` (one ``run()`` call per batch).
    """
    return (config.solver, structural_key(config), config.n_steps)


def make_engine(
    configs: "SimulationConfig | Sequence[SimulationConfig]",
    dl_solver: "object | None" = None,
    rngs: "Sequence[int | np.random.Generator | None] | None" = None,
) -> Engine:
    """Build the engine named by the configs' ``solver`` field.

    ``configs`` may be a single config (a batch of one) or a sequence
    of structurally compatible configs that advance together.  Every
    member must name the same solver family; ``dl_solver`` backs the
    ``dl`` family and is ignored by the others.  The returned engine's
    row ``b`` is bitwise identical to running ``configs[b]`` alone.
    """
    if isinstance(configs, SimulationConfig):
        configs = (configs,)
    configs = tuple(configs)
    if not configs:
        raise ValueError("make_engine needs at least one configuration")
    solver = configs[0].solver
    for i, cfg in enumerate(configs[1:], 1):
        if cfg.solver != solver:
            raise ValueError(
                f"engine member {i} names solver {cfg.solver!r}, member 0 names "
                f"{solver!r}; one engine serves one family"
            )
    spec = get_engine_spec(solver)
    return spec.build(configs, dl_solver=dl_solver, rngs=rngs)


# ----------------------------------------------------------------------
# Built-in families (engine classes import lazily: this module stays a
# leaf so config/diagnostics shims can import it without cycles)


def _pic_structural_key(config: SimulationConfig) -> Hashable:
    return tuple(getattr(config, name) for name in STRUCTURAL_FIELDS)


def _families_supporting(field: str, value: str) -> "tuple[str, ...]":
    """Registered families whose ``dtypes``/``backends`` include ``value``."""
    return tuple(
        name for name in available_engines()
        if value in getattr(_ENGINES[name], field)
    )


def require_tier(config: SimulationConfig) -> None:
    """Reject dtype/backend tiers the config's family does not declare.

    The error message is derived from the registry: it names the tiers
    the family *does* support and the families that support the
    requested one, so it stays accurate as the support matrix grows.
    """
    spec = get_engine_spec(config.solver)
    if config.dtype not in spec.dtypes:
        supporters = _families_supporting("dtypes", config.dtype)
        raise ValueError(
            f"solver={config.solver!r} supports dtype tier(s) "
            f"{', '.join(spec.dtypes)}, got dtype={config.dtype!r} "
            f"(dtype={config.dtype!r} is available for: "
            f"{', '.join(supporters) if supporters else 'no registered family'})"
        )
    if config.backend not in spec.backends:
        supporters = _families_supporting("backends", config.backend)
        raise ValueError(
            f"solver={config.solver!r} supports kernel backend(s) "
            f"{', '.join(spec.backends)}, got backend={config.backend!r} "
            f"(backend={config.backend!r} is available for: "
            f"{', '.join(supporters) if supporters else 'no registered family'})"
        )


def _pic_validate(config: SimulationConfig) -> None:
    from repro.pic.scenarios import get_scenario

    require_tier(config)
    get_scenario(config.scenario)


def _build_traditional(
    configs: "tuple[SimulationConfig, ...]",
    dl_solver: "object | None" = None,
    rngs: "Sequence[int | np.random.Generator | None] | None" = None,
) -> Engine:
    from repro.pic.simulation import EnsembleSimulation

    return EnsembleSimulation(configs, rngs=rngs)


def _dl_validate(config: SimulationConfig) -> None:
    _pic_validate(config)


def _build_dl(
    configs: "tuple[SimulationConfig, ...]",
    dl_solver: "object | None" = None,
    rngs: "Sequence[int | np.random.Generator | None] | None" = None,
) -> Engine:
    from repro.dlpic.simulation import DLEnsemble

    if dl_solver is None:
        raise ValueError(
            "solver='dl' needs a DLFieldSolver; pass dl_solver=... to make_engine"
        )
    return DLEnsemble(configs, dl_solver, rngs=rngs)


def _energy_validate(config: SimulationConfig) -> None:
    _pic_validate(config)


def _build_energy(
    configs: "tuple[SimulationConfig, ...]",
    dl_solver: "object | None" = None,
    rngs: "Sequence[int | np.random.Generator | None] | None" = None,
) -> Engine:
    from repro.pic.energy_conserving import EnergyConservingEnsemble

    return EnergyConservingEnsemble(configs, rngs=rngs)


def _mpi_validate(config: SimulationConfig) -> None:
    _pic_validate(config)
    mpi_rank_params(config)


def _build_mpi(
    configs: "tuple[SimulationConfig, ...]",
    dl_solver: "object | None" = None,
    rngs: "Sequence[int | np.random.Generator | None] | None" = None,
) -> Engine:
    from repro.parallel.picparallel import MPIEnsemble

    return MPIEnsemble(configs, rngs=rngs)


def _vlasov_structural_key(config: SimulationConfig) -> Hashable:
    return tuple(
        getattr(config, name) for name in VLASOV_STRUCTURAL_FIELDS
    ) + vlasov_grid_params(config)


def _vlasov_validate(config: SimulationConfig) -> None:
    from repro.pic.scenarios import get_distribution

    require_tier(config)
    get_distribution(config.scenario)
    if config.vth <= 0:
        raise ValueError(
            f"solver='vlasov' needs vth > 0 (a cold delta beam is not representable "
            f"on a velocity grid), got {config.vth}"
        )
    # Fail fast on a malformed velocity grid: the same checks the
    # distribution loader enforces, surfaced at parse/submit time.
    n_v, v_min, v_max = vlasov_grid_params(config)
    if n_v < 2:
        raise ValueError(f"velocity grid too small: n_v={n_v}")
    if v_max <= v_min:
        raise ValueError(f"empty velocity window [{v_min}, {v_max}]")


def _build_vlasov(
    configs: "tuple[SimulationConfig, ...]",
    dl_solver: "object | None" = None,
    rngs: "Sequence[int | np.random.Generator | None] | None" = None,
) -> Engine:
    from repro.vlasov.ensemble import VlasovEnsemble

    return VlasovEnsemble(configs)


register_engine(EngineSpec(
    name="traditional",
    build=_build_traditional,
    structural_key=_pic_structural_key,
    validate=_pic_validate,
    dtypes=("float64", "float32"),
    backends=("numpy", "threaded", "numba"),
))
register_engine(EngineSpec(
    name="dl",
    build=_build_dl,
    structural_key=_pic_structural_key,
    validate=_dl_validate,
    dtypes=("float64", "float32"),
    backends=("numpy", "threaded"),
))
register_engine(EngineSpec(
    name="vlasov",
    build=_build_vlasov,
    structural_key=_vlasov_structural_key,
    validate=_vlasov_validate,
    kind="vlasov",
    dtypes=("float64", "float32"),
    backends=("numpy", "threaded"),
))
register_engine(EngineSpec(
    name="energy",
    build=_build_energy,
    structural_key=_pic_structural_key,
    validate=_energy_validate,
))
register_engine(EngineSpec(
    name="mpi",
    build=_build_mpi,
    structural_key=_pic_structural_key,
    validate=_mpi_validate,
))
