"""The streaming observables pipeline shared by every engine.

Historically each engine family recorded diagnostics its own way: the
single-run PIC cycle appended scalars to ``History`` lists, the batched
ensemble appended ``(batch,)`` vectors to ``EnsembleHistory`` lists and
the Vlasov solver kept a private dict of Python lists.  This module
replaces all three with one pipeline:

* an :class:`Observable` is a pluggable per-step measurement — it
  receives a :class:`Frame` (the engine state at one record point) and
  emits one or more named ``(batch, ...)`` values;
* :class:`Observables` drives a set of observables and streams their
  values into preallocated ``(n_records, batch, ...)`` buffers (engines
  call :meth:`Observables.reserve` with ``n_steps + 1`` before a run,
  so the steady-state cost per record is pure numpy writes — no Python
  list appends, no reallocation);
* the *observable registry* at the bottom exposes pluggable, named
  measurements (``"energies"``, ``"mode<k>"``, ``"fields"``,
  ``"phase_space"``, ``"training_pairs"``) that public API v1 requests
  select per run; :func:`resolve_observables` builds a pipeline from a
  selection for any engine family.

Every default series produced here is bitwise identical to what the
pre-pipeline recorders produced: the measurements below are the exact
functions the old recorders called, in the same order, and the paper
monitors them in Figs. 4-6 (fundamental mode amplitude ``E1``, total
energy, total momentum).  The deprecated ``History`` /
``EnsembleHistory`` wrapper classes were retired after one release;
build an :class:`Observables` (or take one from
``engine.observables()``) instead.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Protocol, Sequence

import numpy as np

from repro import constants

if TYPE_CHECKING:
    from repro.pic.grid import Grid1D
    from repro.pic.particles import ParticleSet

SCALAR_SERIES = ("kinetic", "potential", "total", "momentum", "mode1")


# ----------------------------------------------------------------------
# Scalar diagnostics (single run)


def kinetic_energy(particles: "ParticleSet", v: "np.ndarray | None" = None) -> float:
    """Total kinetic energy ``sum(m v^2 / 2)``.

    ``v`` overrides the stored velocities (used to evaluate energy at
    integer time from time-centered leapfrog velocities).
    """
    vel = particles.v if v is None else v
    return float(0.5 * particles.mass * np.sum(vel * vel))


def field_energy(grid: "Grid1D", e: np.ndarray, eps0: float = constants.EPSILON_0) -> float:
    """Electrostatic field energy ``(eps0/2) * integral(E^2 dx)``."""
    e = np.asarray(e, dtype=np.float64)
    if e.shape != (grid.n_cells,):
        raise ValueError(f"E has shape {e.shape}, expected ({grid.n_cells},)")
    return float(0.5 * eps0 * np.sum(e * e) * grid.dx)


def total_momentum(particles: "ParticleSet", v: "np.ndarray | None" = None) -> float:
    """Total mechanical momentum ``sum(m v)``."""
    vel = particles.v if v is None else v
    return float(particles.mass * np.sum(vel))


def mode_amplitude(e: np.ndarray, mode: int = 1) -> float:
    """Amplitude of Fourier mode ``mode`` of a grid field.

    Normalized so a field ``A*sin(k_m x)`` returns ``A``; this is the
    ``E1`` series plotted in the paper's Fig. 4 (bottom panel).
    """
    e = np.asarray(e, dtype=np.float64)
    n = e.shape[0]
    if not 0 <= mode <= n // 2:
        raise ValueError(f"mode {mode} out of range for {n} cells")
    coeff = np.fft.rfft(e)[mode]
    if mode == 0 or (n % 2 == 0 and mode == n // 2):
        return float(abs(coeff)) / n
    return float(2.0 * abs(coeff) / n)


def mode_spectrum(e: np.ndarray) -> np.ndarray:
    """Amplitudes of all resolvable modes ``0..n//2`` (same norm)."""
    e = np.asarray(e, dtype=np.float64)
    n = e.shape[0]
    coeff = np.abs(np.fft.rfft(e)) / n
    coeff[1:] *= 2.0
    if n % 2 == 0:
        coeff[-1] /= 2.0
    return coeff


# ----------------------------------------------------------------------
# Row diagnostics (batched ensembles; row b bitwise equals the scalar
# function applied to member b alone)


def kinetic_energy_rows(particles: "ParticleSet", v: "np.ndarray | None" = None) -> np.ndarray:
    """Per-run kinetic energy of a (possibly batched) particle set.

    Returns shape ``(batch,)``; for a 1-D set this is ``(1,)`` and the
    single entry is bitwise equal to :func:`kinetic_energy`.
    """
    vel = np.atleast_2d(particles.v if v is None else v)
    return 0.5 * particles.mass * np.sum(vel * vel, axis=-1)


def field_energy_rows(
    grid: "Grid1D", e: np.ndarray, eps0: float = constants.EPSILON_0
) -> np.ndarray:
    """Per-run electrostatic energy of ``(batch, n_cells)`` fields.

    Dtype-following: float32 fields (the reduced-precision serving
    tier) are measured — and recorded — in float32; everything else is
    coerced to float64 exactly as before, so float64 output is bitwise
    unchanged.
    """
    e = np.atleast_2d(np.asarray(e))
    if e.dtype != np.float32:
        e = np.asarray(e, dtype=np.float64)
    if e.shape[-1] != grid.n_cells:
        raise ValueError(f"E has shape {e.shape}, expected (batch, {grid.n_cells})")
    return 0.5 * eps0 * np.sum(e * e, axis=-1) * grid.dx


def total_momentum_rows(particles: "ParticleSet", v: "np.ndarray | None" = None) -> np.ndarray:
    """Per-run mechanical momentum, shape ``(batch,)``."""
    vel = np.atleast_2d(particles.v if v is None else v)
    return particles.mass * np.sum(vel, axis=-1)


def mode_amplitude_rows(e: np.ndarray, mode: int = 1) -> np.ndarray:
    """Per-run Fourier-mode amplitude of ``(batch, n_cells)`` fields.

    Same normalization as :func:`mode_amplitude` (``A*sin(k_m x)``
    returns ``A`` in every row).  Fully vectorized: the FFT batches
    along the last axis and the magnitude is ``hypot(re, im)`` — the
    same libm call Python's scalar complex ``abs`` makes — so every row
    stays bitwise equal to the scalar :func:`mode_amplitude` (the
    guarantee the ensemble engine documents; the regression test pits
    this against the historical per-row Python loop).

    Dtype-following like :func:`field_energy_rows`: float32 fields run
    a single-precision FFT (complex64) and return float32 amplitudes.
    """
    e = np.atleast_2d(np.asarray(e))
    if e.dtype != np.float32:
        e = np.asarray(e, dtype=np.float64)
    n = e.shape[-1]
    if not 0 <= mode <= n // 2:
        raise ValueError(f"mode {mode} out of range for {n} cells")
    coeff = np.fft.rfft(e, axis=-1)[..., mode]
    amp = np.hypot(coeff.real, coeff.imag)
    if mode == 0 or (n % 2 == 0 and mode == n // 2):
        return amp / n
    return 2.0 * amp / n


# ----------------------------------------------------------------------
# Frames and observables


class Frame:
    """One engine state handed to the observables at a record point.

    A frame is engine-agnostic: PIC engines populate ``particles`` and
    ``v_center``, the Vlasov engines populate the phase-space density
    ``f`` with its velocity grid.  ``efield`` is always present —
    ``(batch, n_cells)`` stacked, or 1-D for single-run recorders —
    and every observable reads only the attributes it needs.
    """

    __slots__ = (
        "step", "time", "grid", "efield", "particles", "v_center",
        "f", "v_centers", "dx", "dv",
    )

    def __init__(
        self,
        step: int,
        time: float,
        grid: "Grid1D",
        efield: np.ndarray,
        particles: "ParticleSet | None" = None,
        v_center: "np.ndarray | None" = None,
        f: "np.ndarray | None" = None,
        v_centers: "np.ndarray | None" = None,
        dx: "float | None" = None,
        dv: "float | None" = None,
    ) -> None:
        self.step = step
        self.time = time
        self.grid = grid
        self.efield = efield
        self.particles = particles
        self.v_center = v_center
        self.f = f
        self.v_centers = v_centers
        self.dx = dx
        self.dv = dv

    @property
    def batch(self) -> int:
        """Number of stacked runs in this frame (1 for 1-D fields)."""
        return self.efield.shape[0] if self.efield.ndim == 2 else 1


class Observable(Protocol):
    """A pluggable per-step measurement.

    ``names`` lists the series this observable emits; ``measure``
    returns one ``(batch, ...)`` array per name — as a mapping keyed by
    name, as a tuple aligned with ``names``, or (for single-series
    observables) as the bare array.  The aligned forms skip a dict
    construction per record, which matters on the streaming hot path.
    Emitting several series from one call lets related quantities share
    intermediate results (e.g. ``total = kinetic + potential`` reuses
    both energies) exactly like the legacy recorders did.
    """

    names: tuple[str, ...]

    def measure(
        self, frame: Frame
    ) -> "dict[str, np.ndarray] | tuple[np.ndarray, ...] | np.ndarray":
        """Measure this observable on one frame."""
        ...


def _as_named(obs: "Observable", values: object) -> "dict[str, np.ndarray]":
    """Normalize any legal ``measure`` return into a name-keyed dict."""
    if isinstance(values, dict):
        return values
    if len(obs.names) == 1 and not isinstance(values, (tuple, list)):
        return {obs.names[0]: values}
    return dict(zip(obs.names, values))


class ParticleEnergyMomentum:
    """Kinetic/field/total energy and momentum of a PIC frame."""

    names = ("kinetic", "potential", "total", "momentum")

    def __init__(self, eps0: float = constants.EPSILON_0) -> None:
        self.eps0 = eps0

    def measure(self, frame: Frame) -> "tuple[np.ndarray, ...]":
        ke = kinetic_energy_rows(frame.particles, v=frame.v_center)
        fe = field_energy_rows(frame.grid, frame.efield, eps0=self.eps0)
        return ke, fe, ke + fe, total_momentum_rows(frame.particles, v=frame.v_center)


class VlasovEnergyMomentum:
    """Energy and momentum moments of a Vlasov phase-space frame.

    Same formulas (and the same numpy reduction order per member) as
    the original solo ``VlasovSimulation`` bookkeeping: kinetic energy
    ``integral(v^2/2 f dx dv)``, field energy ``(1/2) integral(E^2 dx)``
    and momentum ``integral(v f dx dv)`` with electron mass 1.
    """

    names = ("kinetic", "potential", "total", "momentum")

    def measure(self, frame: Frame) -> "tuple[np.ndarray, ...]":
        f = frame.f if frame.f.ndim == 3 else frame.f[None]
        e = np.atleast_2d(frame.efield)
        v = frame.v_centers
        dx, dv = frame.dx, frame.dv
        ke = 0.5 * np.sum(f * (v**2)[:, None], axis=(1, 2)) * dx * dv
        fe = 0.5 * np.sum(e * e, axis=-1) * dx
        return ke, fe, ke + fe, np.sum(f * v[:, None], axis=(1, 2)) * dx * dv


class ModeAmplitude:
    """Fourier-mode amplitude of the field (``mode1`` by default)."""

    def __init__(self, mode: int = 1, name: "str | None" = None) -> None:
        self.mode = mode
        self.names = (name if name is not None else f"mode{mode}",)

    def measure(self, frame: Frame) -> np.ndarray:
        return mode_amplitude_rows(frame.efield, mode=self.mode)


class FieldSnapshot:
    """Per-record copy of the full grid field (memory-hungry; opt-in)."""

    names = ("fields",)

    def measure(self, frame: Frame) -> np.ndarray:
        return np.array(np.atleast_2d(frame.efield), copy=True)


class PhaseSpaceSnapshot:
    """Per-record copy of the Vlasov distribution ``f`` (opt-in)."""

    names = ("f",)

    def measure(self, frame: Frame) -> np.ndarray:
        f = frame.f if frame.f.ndim == 3 else frame.f[None]
        return np.array(f, copy=True)


class StepTimer:
    """Wall-clock time between consecutive records (tracing hook).

    Appended *last* to a pipeline by the tracing layer so the
    inter-record interval covers one full engine step (every other
    observable included).  Emits a shape-``(1,)`` series independent of
    the ensemble batch — per-series buffer shapes follow each
    observable's own output.  The first record (pre-step state) times
    the interval since construction, i.e. effectively 0.  Never
    registered in the observable registry: requests cannot select it,
    and the service pops the ``step_s`` series before results are
    built, so traced results stay bitwise identical to untraced ones.
    """

    names = ("step_s",)

    def __init__(self) -> None:
        self._last = time.perf_counter()

    def measure(self, frame: Frame) -> np.ndarray:
        now = time.perf_counter()
        elapsed, self._last = now - self._last, now
        return np.array([elapsed])


class TrainingHistograms:
    """Per-record phase-space histograms in the DL training layout.

    Bins every member's ``(x, v)`` phase space on a fixed
    :class:`~repro.phasespace.binning.PhaseSpaceGrid` exactly like the
    data-generation harvest: positions at integer time with the
    trailing half-step velocities — except at the initial record, where
    velocities are still synchronized and the time-centered
    ``frame.v_center`` is used (matching how the DL-PIC computes its
    very first field).  Selecting this observable together with
    ``"fields"`` through the service yields the campaign's
    (histogram, field) training pairs per request.
    """

    names = ("histograms",)

    def __init__(
        self,
        n_x: int,
        n_v: int,
        v_min: float,
        v_max: float,
        box_length: float,
        order: str = "ngp",
    ) -> None:
        from repro.phasespace.binning import PhaseSpaceGrid

        self.ps_grid = PhaseSpaceGrid(
            n_x=int(n_x), n_v=int(n_v), v_min=float(v_min), v_max=float(v_max),
            box_length=float(box_length),
        )
        self.order = order

    def measure(self, frame: Frame) -> np.ndarray:
        from repro.phasespace.binning import bin_phase_space_batch

        v = frame.particles.v
        if frame.step == 0 and frame.v_center is not None:
            v = frame.v_center
        x = np.atleast_2d(frame.particles.x)
        return bin_phase_space_batch(x, np.atleast_2d(v), self.ps_grid, order=self.order)


def pic_observables(record_fields: bool = False) -> "list[Observable]":
    """The default PIC pipeline (energies, momentum and ``mode1``)."""
    obs: "list[Observable]" = [ParticleEnergyMomentum(), ModeAmplitude(mode=1)]
    if record_fields:
        obs.append(FieldSnapshot())
    return obs


def vlasov_observables(
    record_fields: bool = False, record_distribution: bool = False
) -> "list[Observable]":
    """The default Vlasov pipeline (same scalar series as PIC)."""
    obs: "list[Observable]" = [VlasovEnergyMomentum(), ModeAmplitude(mode=1)]
    if record_fields:
        obs.append(FieldSnapshot())
    if record_distribution:
        obs.append(PhaseSpaceSnapshot())
    return obs


# ----------------------------------------------------------------------
# The observable registry: named, per-request-selectable measurements
#
# The public API's ``observables: [...]`` request field resolves here.
# A selection entry is a registered name (``"energies"``), a
# parameterized form (``{"name": "mode", "mode": 3}``) or the
# ``"mode<k>"`` string sugar for it; :func:`canonical_observables`
# normalizes any of these into a sorted, deduplicated tuple of
# ``(name, ((param, value), ...))`` pairs — the form folded into
# service group keys and result-store addresses — and
# :func:`resolve_observables` builds the pipeline for an engine family.


def _build_energies(kind: str) -> Observable:
    return VlasovEnergyMomentum() if kind == "vlasov" else ParticleEnergyMomentum()


def _build_mode(kind: str, mode: int = 1) -> Observable:
    return ModeAmplitude(mode=int(mode))


def _build_fields(kind: str) -> Observable:
    return FieldSnapshot()


def _build_phase_space(kind: str) -> Observable:
    if kind != "vlasov":
        raise ValueError(
            "observable 'phase_space' records the Vlasov distribution f(x, v) "
            f"and is only available for solver kind 'vlasov', not {kind!r}"
        )
    return PhaseSpaceSnapshot()


def _build_training_pairs(
    kind: str,
    n_x: int = 64,
    n_v: int = 64,
    v_min: float = -0.5,
    v_max: float = 0.5,
    box_length: float = constants.TWO_STREAM_BOX_LENGTH,
    order: str = "ngp",
) -> Observable:
    if kind != "pic":
        raise ValueError(
            "observable 'training_pairs' bins particle phase space and is only "
            f"available for particle engine families, not kind {kind!r}"
        )
    return TrainingHistograms(
        n_x=n_x, n_v=n_v, v_min=v_min, v_max=v_max, box_length=box_length, order=order
    )


@dataclass(frozen=True)
class ObservableSpec:
    """One registered, per-request-selectable observable.

    ``build(kind, **params)`` constructs the measurement for an engine
    family's state ``kind`` (``"pic"`` or ``"vlasov"``, see
    :class:`repro.engines.base.EngineSpec`); it raises ``ValueError``
    for families it cannot measure and ``TypeError`` for unknown
    parameters — both surfaced at request-parse/submit time.
    """

    name: str
    build: "Callable[..., Observable]"
    description: str = ""


_OBSERVABLE_SPECS: "dict[str, ObservableSpec]" = {}

#: The selection applied when a request names no observables — exactly
#: the historical default recorders (energies, momentum, ``mode1``).
DEFAULT_OBSERVABLES = ("energies", "mode1")

_MODE_SUGAR = re.compile(r"^mode(\d+)$")


def register_observable(spec: ObservableSpec) -> ObservableSpec:
    """Register a selectable observable under ``spec.name``."""
    if spec.name in _OBSERVABLE_SPECS:
        raise ValueError(f"observable {spec.name!r} is already registered")
    _OBSERVABLE_SPECS[spec.name] = spec
    return spec


def available_observables() -> "tuple[str, ...]":
    """Sorted names of every registered observable."""
    return tuple(sorted(_OBSERVABLE_SPECS))


def canonical_observables(
    selection: "Sequence[object] | None",
) -> "tuple[tuple[str, tuple[tuple[str, object], ...]], ...]":
    """Normalize a request's observables selection.

    ``None`` means :data:`DEFAULT_OBSERVABLES`.  Entries may be
    registered names, ``"mode<k>"`` sugar, or ``{"name": ..., **params}``
    mappings.  The result is sorted and deduplicated — two requests
    selecting the same measurements in any order or spelling share one
    canonical form (and therefore one cache key and one service batch).
    Unknown names raise ``ValueError``.
    """
    entries = []
    for entry in (DEFAULT_OBSERVABLES if selection is None else selection):
        params: "dict[str, object]" = {}
        if isinstance(entry, str):
            name = entry
            sugar = _MODE_SUGAR.match(entry)
            if sugar is not None:
                name, params = "mode", {"mode": int(sugar.group(1))}
        elif isinstance(entry, Mapping):
            params = {str(k): v for k, v in entry.items()}
            name = params.pop("name", None)
            if not isinstance(name, str):
                raise ValueError(
                    f"observable mapping needs a string 'name' field, got {entry!r}"
                )
        elif (
            isinstance(entry, tuple)
            and len(entry) == 2
            and isinstance(entry[0], str)
            and isinstance(entry[1], tuple)
        ):
            # Already-canonical (name, ((param, value), ...)) pair —
            # canonicalization is idempotent.
            name, params = entry[0], dict(entry[1])
        else:
            raise ValueError(
                f"observables entries must be names or mappings, got {entry!r}"
            )
        if name not in _OBSERVABLE_SPECS:
            raise ValueError(
                f"unknown observable {name!r}; available: "
                f"{', '.join(available_observables())} (plus 'mode<k>' sugar)"
            )
        for key, value in params.items():
            if not isinstance(value, (str, int, float, bool)) and value is not None:
                raise ValueError(
                    f"observable {name!r} parameter {key!r} must be a JSON "
                    f"scalar, got {type(value).__name__}"
                )
        entries.append((name, tuple(sorted(params.items()))))
    if not entries:
        raise ValueError("observables selection must not be empty")
    try:
        return tuple(sorted(set(entries)))
    except TypeError as exc:
        # Mixed param value types in one selection (e.g. 3 vs "3").
        raise ValueError(f"observables selection is not orderable: {exc}") from None


def selection_to_jsonable(
    canonical: "Sequence[tuple[str, tuple[tuple[str, object], ...]]]",
) -> "list[object]":
    """The JSON request form of a canonical selection (round-trips)."""
    out: "list[object]" = []
    for name, params in canonical:
        if not params:
            out.append(name)
        elif name == "mode" and len(params) == 1:
            out.append(f"mode{params[0][1]}")
        else:
            out.append({"name": name, **dict(params)})
    return out


def observables_token(
    canonical: "Sequence[tuple[str, tuple[tuple[str, object], ...]]]",
) -> str:
    """Deterministic string form of a selection (cache-key component)."""
    return json.dumps(selection_to_jsonable(canonical), sort_keys=True,
                      separators=(",", ":"))


def resolve_observables(
    selection: "Sequence[object] | None", kind: str = "pic"
) -> "list[Observable]":
    """Build the pipeline for a selection and an engine-state kind.

    Accepts any selection form (:func:`canonical_observables` runs
    first), so callers can validate a request by resolving it — a bad
    name, an unsupported family or an unknown parameter all raise
    ``ValueError`` here instead of inside a running engine.
    """
    built: "list[Observable]" = []
    for name, params in canonical_observables(selection):
        spec = _OBSERVABLE_SPECS[name]
        try:
            built.append(spec.build(kind, **dict(params)))
        except TypeError as exc:
            raise ValueError(
                f"bad parameters for observable {name!r}: {exc}"
            ) from None
    return built


register_observable(ObservableSpec(
    name="energies",
    build=_build_energies,
    description="kinetic/potential/total energy and momentum per record",
))
register_observable(ObservableSpec(
    name="mode",
    build=_build_mode,
    description="Fourier mode amplitude of the field (params: mode; sugar 'mode<k>')",
))
register_observable(ObservableSpec(
    name="fields",
    build=_build_fields,
    description="full grid field snapshot per record (memory-hungry)",
))
register_observable(ObservableSpec(
    name="phase_space",
    build=_build_phase_space,
    description="Vlasov distribution f(x, v) snapshot per record (vlasov only)",
))
register_observable(ObservableSpec(
    name="training_pairs",
    build=_build_training_pairs,
    description="phase-space histograms in the DL training layout (pic only; "
                "params: n_x, n_v, v_min, v_max, box_length, order)",
))


# ----------------------------------------------------------------------
# The pipeline


class Observables:
    """Streams per-step observable values into preallocated buffers.

    Parameters
    ----------
    observables:
        The measurements to run at every record point.  Defaults to the
        standard PIC scalar set (energies, momentum, ``mode1``).
    squeeze:
        With ``True`` (the single-run recorders) ``as_arrays`` drops
        the batch axis — series come back ``(n_records,)`` like the
        legacy ``History``; requires batch 1.  With ``False`` series
        are ``(n_records, batch)`` like ``EnsembleHistory``.
    expected_records:
        Initial buffer capacity.  Engines pass ``n_steps + 1`` through
        :meth:`reserve` so a run never reallocates; incremental users
        (record without a known length) grow by doubling.

    ``as_arrays`` returns trimmed views of the buffers (no copies);
    treat them as read-only or copy before mutating.
    """

    def __init__(
        self,
        observables: "Sequence[Observable] | None" = None,
        squeeze: bool = False,
        expected_records: "int | None" = None,
    ) -> None:
        self.observables: "tuple[Observable, ...]" = tuple(
            observables if observables is not None else pic_observables()
        )
        names: "list[str]" = []
        for obs in self.observables:
            for name in obs.names:
                if name in names:
                    raise ValueError(f"duplicate observable series {name!r}")
                names.append(name)
        self.names: tuple[str, ...] = tuple(names)
        self.squeeze = squeeze
        self.batch: "int | None" = None
        self._n = 0
        self._capacity = 0
        self._reserved = int(expected_records) if expected_records else 0
        self._time: "np.ndarray | None" = None
        self._buffers: "dict[str, np.ndarray]" = {}

    # -- capacity management --------------------------------------------
    def reserve(self, n_records: int) -> None:
        """Size the buffers for ``n_records`` total records up front."""
        if n_records > self._reserved:
            self._reserved = int(n_records)
        if self.batch is not None and self._capacity < self._reserved:
            self._grow(self._reserved)

    def _allocate(self, measured: "dict[str, np.ndarray]", batch: int) -> None:
        self.batch = batch
        self._capacity = max(self._reserved, 64)
        self._time = np.empty(self._capacity, dtype=np.float64)
        for name, values in measured.items():
            self._buffers[name] = np.empty(
                (self._capacity,) + values.shape, dtype=values.dtype
            )
        self._rebuild_write_plan()

    def _grow(self, capacity: int) -> None:
        capacity = max(capacity, 2 * self._capacity)
        time = np.empty(capacity, dtype=self._time.dtype)
        time[: self._n] = self._time[: self._n]
        self._time = time
        for name, buf in self._buffers.items():
            grown = np.empty((capacity,) + buf.shape[1:], dtype=buf.dtype)
            grown[: self._n] = buf[: self._n]
            self._buffers[name] = grown
        self._capacity = capacity
        self._rebuild_write_plan()

    def _rebuild_write_plan(self) -> None:
        """Pre-bind each observable's target buffers for the record loop."""
        self._write_plan = [
            (obs, obs.names, [self._buffers[name] for name in obs.names])
            for obs in self.observables
        ]

    # -- recording -------------------------------------------------------
    def record_frame(self, frame: Frame) -> None:
        """Measure every observable on ``frame`` and append one record."""
        if self.batch is None:
            measured: "dict[str, np.ndarray]" = {}
            for obs in self.observables:
                measured.update(_as_named(obs, obs.measure(frame)))
            batch = next(iter(measured.values())).shape[0] if measured else frame.batch
            if self.squeeze and batch != 1:
                raise ValueError(
                    f"squeezed (single-run) recorder got a batch of {batch}"
                )
            self._allocate(measured, batch)
            self._time[0] = frame.time
            for name, values in measured.items():
                self._buffers[name][0] = values
            self._n = 1
            return
        if self._n == self._capacity:
            self._grow(self._n + 1)
        i = self._n
        self._time[i] = frame.time
        for obs, names, bufs in self._write_plan:
            values = obs.measure(frame)
            if isinstance(values, dict):
                for name, buf in zip(names, bufs):
                    buf[i] = values[name]
            elif isinstance(values, (tuple, list)):
                for buf, vals in zip(bufs, values):
                    buf[i] = vals
            else:
                bufs[0][i] = values
        self._n = i + 1

    # -- views -----------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def n_records(self) -> int:
        """Number of records streamed so far."""
        return self._n

    def _series(self, name: str) -> np.ndarray:
        """Trimmed (and, if configured, squeezed) view of one buffer."""
        if name == "time":
            if self._time is None:
                return np.empty(0, dtype=np.float64)
            return self._time[: self._n]
        try:
            buf = self._buffers[name]
        except KeyError:
            if self.batch is None and name in self.names:
                return np.empty(0, dtype=np.float64)
            raise KeyError(
                f"unknown series {name!r}; recorded: {('time',) + self.names}"
            ) from None
        view = buf[: self._n]
        return view[:, 0] if self.squeeze else view

    def as_arrays(self) -> "dict[str, np.ndarray]":
        """All series keyed by name — the shared engine output schema.

        ``time`` is always ``(n_records,)``; every other series is
        ``(n_records, batch, ...)``, or ``(n_records, ...)`` when this
        recorder squeezes — exactly the legacy ``History`` /
        ``EnsembleHistory`` layouts.
        """
        out = {"time": self._series("time")}
        for name in self.names:
            out[name] = self._series(name)
        return out

    def __getitem__(self, name: str) -> np.ndarray:
        return self._series(name)

    def __contains__(self, name: str) -> bool:
        return name == "time" or name in self.names

    def member(self, b: int) -> "dict[str, np.ndarray]":
        """One run's series, keyed like a squeezed ``as_arrays``."""
        out: "dict[str, np.ndarray]" = {"time": self._series("time")}
        for name in self.names:
            buf = self._buffers[name][: self._n]
            out[name] = buf[:, b]
        return out

    # -- derived summaries ----------------------------------------------
    def energy_variation(self) -> "float | np.ndarray":
        """Max relative deviation of total energy from its initial value.

        The paper reports ~2% for both methods on the two-stream run.
        Per-run ``(batch,)`` vector, or a float when squeezing.
        """
        total = self._series("total")
        if total.size == 0:
            raise ValueError("history is empty")
        if self.squeeze:
            return float(np.max(np.abs(total - total[0])) / abs(total[0]))
        return np.max(np.abs(total - total[0]), axis=0) / np.abs(total[0])

    def momentum_drift(self) -> "float | np.ndarray":
        """Net momentum change over the run (signed)."""
        mom = self._series("momentum")
        if mom.size == 0:
            raise ValueError("history is empty")
        if self.squeeze:
            return float(mom[-1] - mom[0])
        return mom[-1] - mom[0]

