"""Experiment harness: one entry point per paper table/figure.

* :mod:`repro.experiments.pipeline` — dataset generation + network
  training shared by all experiments (with on-disk caching so the
  benchmark suite trains each preset once);
* :mod:`repro.experiments.table1` — Table I (MAE / max error);
* :mod:`repro.experiments.fig4` — Fig. 4 (growth-rate validation);
* :mod:`repro.experiments.fig5` — Fig. 5 (energy/momentum);
* :mod:`repro.experiments.fig6` — Fig. 6 (cold-beam stability).
"""

from repro.experiments.pipeline import (
    ExperimentPreset,
    TrainedSolvers,
    fast_preset,
    medium_preset,
    paper_preset,
    train_solvers,
)
from repro.experiments.table1 import Table1Row, run_table1, format_table1
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.fig6 import Fig6Result, run_fig6

__all__ = [
    "ExperimentPreset",
    "TrainedSolvers",
    "fast_preset",
    "medium_preset",
    "paper_preset",
    "train_solvers",
    "Table1Row",
    "run_table1",
    "format_table1",
    "Fig4Result",
    "run_fig4",
    "Fig5Result",
    "run_fig5",
    "Fig6Result",
    "run_fig6",
]
