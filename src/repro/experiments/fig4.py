"""Fig. 4: two-stream instability validation of the DL-based PIC.

Runs the ``v0 = +/-0.2, vth = 0.025`` configuration (absent from the
training sweep) with both methods, extracts the fundamental-mode
amplitude history ``E1(t)``, fits the exponential growth rate of each
method and compares with the analytic cold-beam prediction.  The paper
finds both methods match the linear-theory slope.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SimulationConfig
from repro.dlpic.solver import DLFieldSolver
from repro.experiments.runs import MethodRun, run_pair
from repro.theory.dispersion import growth_rate_cold
from repro.theory.growth import GrowthFit, fit_growth_rate


@dataclass
class Fig4Result:
    """Everything behind the three panels of Fig. 4."""

    time: np.ndarray
    e1_traditional: np.ndarray
    e1_dl: np.ndarray
    gamma_theory: float
    fit_traditional: GrowthFit
    fit_dl: GrowthFit
    traditional: MethodRun
    dl: MethodRun

    @property
    def traditional_relative_error(self) -> float:
        """|gamma_fit - gamma_theory| / gamma_theory for traditional PIC."""
        return self.fit_traditional.relative_error(self.gamma_theory)

    @property
    def dl_relative_error(self) -> float:
        """|gamma_fit - gamma_theory| / gamma_theory for DL-based PIC."""
        return self.fit_dl.relative_error(self.gamma_theory)

    def summary(self) -> str:
        """Printable comparison of fitted and analytic growth rates."""
        return "\n".join(
            [
                "FIG 4 — E1 growth during the two-stream instability",
                f"  linear theory   gamma = {self.gamma_theory:.4f}",
                f"  traditional PIC gamma = {self.fit_traditional.gamma:.4f} "
                f"(rel. err. {self.traditional_relative_error:.1%}, "
                f"r^2 = {self.fit_traditional.r_squared:.3f})",
                f"  DL-based PIC    gamma = {self.fit_dl.gamma:.4f} "
                f"(rel. err. {self.dl_relative_error:.1%}, "
                f"r^2 = {self.fit_dl.r_squared:.3f})",
            ]
        )


def run_fig4(
    solver: DLFieldSolver,
    config: SimulationConfig,
    n_steps: "int | None" = None,
    fit_window: "tuple[float, float] | None" = None,
) -> Fig4Result:
    """Regenerate the Fig. 4 comparison for a trained solver.

    ``fit_window`` optionally pins the (t_start, t_end) of both
    exponential fits; by default each series gets an automatically
    detected linear-phase window.
    """
    trad, dl = run_pair(config, solver, n_steps)
    gamma_theory = growth_rate_cold(
        k=2.0 * np.pi / config.box_length, v0=config.v0
    )
    kwargs = {}
    if fit_window is not None:
        kwargs = {"t_start": fit_window[0], "t_end": fit_window[1]}
    fit_trad = fit_growth_rate(trad.series["time"], trad.series["mode1"], **kwargs)
    fit_dl = fit_growth_rate(dl.series["time"], dl.series["mode1"], **kwargs)
    return Fig4Result(
        time=trad.series["time"],
        e1_traditional=trad.series["mode1"],
        e1_dl=dl.series["mode1"],
        gamma_theory=gamma_theory,
        fit_traditional=fit_trad,
        fit_dl=fit_dl,
        traditional=trad,
        dl=dl,
    )
