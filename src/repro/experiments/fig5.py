"""Fig. 5: total energy and momentum conservation on the two-stream run.

Paper findings: neither method conserves total energy exactly (both
within ~2%); the traditional PIC conserves momentum essentially
exactly while the DL-based PIC's momentum drifts (negative, order
1e-3 in the paper's units by t = 40).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SimulationConfig
from repro.dlpic.solver import DLFieldSolver
from repro.experiments.runs import MethodRun, run_pair


@dataclass
class Fig5Result:
    """Energy/momentum series and drift metrics for both methods."""

    time: np.ndarray
    total_energy_traditional: np.ndarray
    total_energy_dl: np.ndarray
    momentum_traditional: np.ndarray
    momentum_dl: np.ndarray
    energy_variation_traditional: float
    energy_variation_dl: float
    momentum_drift_traditional: float
    momentum_drift_dl: float
    traditional: MethodRun
    dl: MethodRun

    def summary(self) -> str:
        """Printable conservation comparison."""
        return "\n".join(
            [
                "FIG 5 — conservation during the two-stream instability",
                f"  energy variation: traditional {self.energy_variation_traditional:.2%}, "
                f"DL {self.energy_variation_dl:.2%}",
                f"  momentum drift:   traditional {self.momentum_drift_traditional:+.2e}, "
                f"DL {self.momentum_drift_dl:+.2e}",
            ]
        )


def run_fig5(
    solver: DLFieldSolver,
    config: SimulationConfig,
    n_steps: "int | None" = None,
) -> Fig5Result:
    """Regenerate the Fig. 5 conservation comparison."""
    trad, dl = run_pair(config, solver, n_steps)
    return _result_from_runs(trad, dl)


def _result_from_runs(trad: MethodRun, dl: MethodRun) -> Fig5Result:
    """Assemble a result from two completed runs (reused by benches)."""
    return Fig5Result(
        time=trad.series["time"],
        total_energy_traditional=trad.series["total"],
        total_energy_dl=dl.series["total"],
        momentum_traditional=trad.series["momentum"],
        momentum_dl=dl.series["momentum"],
        energy_variation_traditional=trad.energy_variation,
        energy_variation_dl=dl.energy_variation,
        momentum_drift_traditional=trad.momentum_drift,
        momentum_drift_dl=dl.momentum_drift,
        traditional=trad,
        dl=dl,
    )
