"""Fig. 6: cold-beam numerical-instability comparison.

Two cold beams at ``v0 = +/-0.4`` are *linearly stable*
(``k1 v0 = 1.224 > omega_pe``): physically the beams should stream
forever.  The traditional momentum-conserving PIC nevertheless develops
non-physical phase-space ripples (the finite-grid cold-beam
instability) visible as growing beam velocity spread and total-energy
change; the paper's DL-based PIC stays clean while its momentum
variation grows over the run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SimulationConfig
from repro.dlpic.solver import DLFieldSolver
from repro.experiments.runs import MethodRun, run_pair
from repro.theory.coldbeam import ColdBeamMetrics, coldbeam_ripple_metrics


@dataclass
class Fig6Result:
    """Ripple metrics plus energy/momentum series for both methods."""

    time: np.ndarray
    metrics_traditional: ColdBeamMetrics
    metrics_dl: ColdBeamMetrics
    total_energy_traditional: np.ndarray
    total_energy_dl: np.ndarray
    momentum_traditional: np.ndarray
    momentum_dl: np.ndarray
    traditional: MethodRun
    dl: MethodRun

    def summary(self) -> str:
        """Printable cold-beam comparison."""
        mt, md = self.metrics_traditional, self.metrics_dl
        return "\n".join(
            [
                "FIG 6 — cold-beam numerical instability (v0 = 0.4, vth = 0)",
                f"  traditional PIC: beam spread {mt.max_spread:.2e} "
                f"(rippled={mt.rippled}), energy variation {mt.energy_variation:.2%}",
                f"  DL-based PIC:    beam spread {md.max_spread:.2e} "
                f"(rippled={md.rippled}), energy variation {md.energy_variation:.2%}",
            ]
        )


def run_fig6(
    solver: DLFieldSolver,
    config: SimulationConfig,
    n_steps: "int | None" = None,
    ripple_threshold: float = 1e-3,
) -> Fig6Result:
    """Regenerate the Fig. 6 cold-beam comparison."""
    if config.vth != 0.0:
        raise ValueError(f"Fig. 6 requires cold beams, got vth={config.vth}")
    trad, dl = run_pair(config, solver, n_steps)
    return Fig6Result(
        time=trad.series["time"],
        metrics_traditional=coldbeam_ripple_metrics(
            trad.final_v, trad.series["total"], config.vth, ripple_threshold
        ),
        metrics_dl=coldbeam_ripple_metrics(
            dl.final_v, dl.series["total"], config.vth, ripple_threshold
        ),
        total_energy_traditional=trad.series["total"],
        total_energy_dl=dl.series["total"],
        momentum_traditional=trad.series["momentum"],
        momentum_dl=dl.series["momentum"],
        traditional=trad,
        dl=dl,
    )
