"""Shared dataset-generation + training pipeline with on-disk caching.

All paper experiments need the same expensive prerequisite: a training
campaign and two trained networks.  :func:`train_solvers` runs the full
Sec. IV pipeline (sweep -> shuffle/split -> Eq. 5 normalization -> Adam
training of the MLP and CNN) and caches every artifact under a preset-
named directory, so the benchmark suite pays the cost once.

Three presets scale the identical pipeline: ``paper`` (full 40k-sample
sweep, 1024-wide networks, 150/100 epochs — hours on CPU), ``medium``
(the benchmark default — minutes) and ``fast`` (seconds, for tests).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro import constants
from repro.config import SimulationConfig
from repro.datagen.campaign import CampaignConfig, run_campaign, run_test_set_ii
from repro.datagen.dataset import FieldDataset
from repro.datagen.presets import fast_campaign, medium_campaign, paper_campaign
from repro.dlpic.solver import DLFieldSolver
from repro.models.architectures import build_cnn, build_mlp
from repro.nn.losses import MSELoss
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam
from repro.nn.training import Trainer, TrainingHistory
from repro.phasespace.normalization import MinMaxNormalizer

#: Default artifact cache location (created on demand).
DEFAULT_CACHE = Path(__file__).resolve().parents[3] / ".artifacts"


@dataclass(frozen=True)
class ExperimentPreset:
    """Scale knobs of the shared pipeline (physics is never changed)."""

    name: str
    campaign: CampaignConfig
    mlp_hidden: int
    mlp_epochs: int
    cnn_channels: tuple[int, int]
    cnn_hidden: int
    cnn_epochs: int
    batch_size: int = 64
    learning_rate: float = 1e-4
    n_val: int = 1000
    n_test: int = 1000
    test2_v0: tuple[float, ...] = (0.2, 0.25)
    test2_vth: tuple[float, ...] = (0.0025, 0.025)
    n_test2: int = 1000
    train_seed: int = 2021

    def validation_config(self, seed: int = 9001) -> SimulationConfig:
        """Figs. 4-5 run derived from the campaign's base config.

        Must share ``particles_per_cell`` with the campaign: histogram
        counts scale with particle number and the normalizer is frozen
        on training statistics.
        """
        return self.campaign.base_config.with_updates(
            v0=constants.PAPER_VALIDATION_V0,
            vth=constants.PAPER_VALIDATION_VTH,
            seed=seed,
        )

    def coldbeam_config(self, seed: int = 9002) -> SimulationConfig:
        """Fig. 6 cold-beam run derived from the campaign's base config."""
        return self.campaign.base_config.with_updates(
            v0=constants.PAPER_COLDBEAM_V0,
            vth=constants.PAPER_COLDBEAM_VTH,
            seed=seed,
        )


def paper_preset() -> ExperimentPreset:
    """The paper's exact configuration (expensive on CPU)."""
    return ExperimentPreset(
        name="paper",
        campaign=paper_campaign(),
        mlp_hidden=1024,
        mlp_epochs=150,
        cnn_channels=(16, 32),
        cnn_hidden=1024,
        cnn_epochs=100,
    )


def medium_preset() -> ExperimentPreset:
    """Benchmark-scale preset: same pipeline, minutes of CPU."""
    return ExperimentPreset(
        name="medium",
        campaign=medium_campaign(),
        mlp_hidden=512,
        mlp_epochs=120,
        cnn_channels=(8, 16),
        cnn_hidden=256,
        cnn_epochs=15,
        learning_rate=2e-4,
        n_val=250,
        n_test=250,
        test2_v0=(0.2, 0.12),
        test2_vth=(0.0025,),
        n_test2=400,
    )


def fast_preset() -> ExperimentPreset:
    """Test-scale preset: seconds of CPU."""
    return ExperimentPreset(
        name="fast",
        campaign=fast_campaign(),
        mlp_hidden=64,
        mlp_epochs=8,
        cnn_channels=(2, 4),
        cnn_hidden=32,
        cnn_epochs=3,
        learning_rate=1e-3,
        n_val=20,
        n_test=20,
        test2_v0=(0.2,),
        test2_vth=(0.0025,),
        n_test2=60,
    )


@dataclass
class TrainedSolvers:
    """Everything downstream experiments need, post-training."""

    preset: ExperimentPreset
    mlp_solver: DLFieldSolver
    cnn_solver: "DLFieldSolver | None"
    train: FieldDataset
    val: FieldDataset
    test: FieldDataset
    test2: FieldDataset
    mlp_history: "TrainingHistory | None" = None
    cnn_history: "TrainingHistory | None" = None


def _build_mlp_for(preset: ExperimentPreset, rng: "int | None" = None) -> Sequential:
    grid = preset.campaign.ps_grid
    return build_mlp(
        input_size=grid.size,
        output_size=preset.campaign.base_config.n_cells,
        hidden_size=preset.mlp_hidden,
        rng=preset.train_seed if rng is None else rng,
    )


def _build_cnn_for(preset: ExperimentPreset, rng: "int | None" = None) -> Sequential:
    grid = preset.campaign.ps_grid
    return build_cnn(
        input_shape=(1, grid.n_v, grid.n_x),
        output_size=preset.campaign.base_config.n_cells,
        channels=preset.cnn_channels,
        hidden_size=preset.cnn_hidden,
        rng=preset.train_seed + 1 if rng is None else rng,
    )


def _train_network(
    model: Sequential,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    epochs: int,
    preset: ExperimentPreset,
    verbose: bool,
) -> TrainingHistory:
    trainer = Trainer(model, MSELoss(), Adam(lr=preset.learning_rate))
    return trainer.fit(
        x_train,
        y_train,
        epochs=epochs,
        batch_size=preset.batch_size,
        validation=(x_val, y_val),
        rng=preset.train_seed,
        verbose=verbose,
    )


def train_solvers(
    preset: ExperimentPreset,
    cache_dir: "str | Path | None" = DEFAULT_CACHE,
    include_cnn: bool = True,
    n_workers: int = 1,
    verbose: bool = False,
) -> TrainedSolvers:
    """Run (or load from cache) the full Sec. IV pipeline for ``preset``.

    Caching: datasets and trained solver bundles are stored under
    ``cache_dir / preset.name``; a subsequent call with the same preset
    name loads everything instead of recomputing.  Pass
    ``cache_dir=None`` to force a fresh in-memory run.
    """
    cache = None if cache_dir is None else Path(cache_dir) / preset.name
    if cache is not None and (cache / "complete.json").exists():
        return _load_cached(preset, cache, include_cnn)

    # 1. Data generation (Sec. IV-A1).
    full = run_campaign(preset.campaign, n_workers=n_workers)
    test2 = run_test_set_ii(
        preset.campaign, preset.test2_v0, preset.test2_vth, preset.n_test2
    )
    train, val, test = full.split(preset.n_val, preset.n_test, rng=preset.train_seed)

    # 2. Input normalization (Eq. 5), fitted on the training inputs only.
    normalizer = MinMaxNormalizer().fit(train.inputs)
    xt_flat = normalizer.transform(train.flat_inputs())
    xv_flat = normalizer.transform(val.flat_inputs())

    # 3. Train the MLP (Sec. IV-A: 3x1024 ReLU + 64 linear).
    mlp = _build_mlp_for(preset)
    mlp_history = _train_network(
        mlp, xt_flat, train.targets, xv_flat, val.targets, preset.mlp_epochs, preset, verbose
    )
    mlp_solver = DLFieldSolver(
        mlp, preset.campaign.ps_grid, normalizer, input_kind="flat",
        binning=preset.campaign.binning,
    )

    # 4. Train the CNN (2 x [conv, conv, maxpool] + MLP head).
    cnn_solver = None
    cnn_history = None
    if include_cnn:
        xt_img = normalizer.transform(train.image_inputs())
        xv_img = normalizer.transform(val.image_inputs())
        cnn = _build_cnn_for(preset)
        cnn_history = _train_network(
            cnn, xt_img, train.targets, xv_img, val.targets, preset.cnn_epochs, preset, verbose
        )
        cnn_solver = DLFieldSolver(
            cnn, preset.campaign.ps_grid, normalizer, input_kind="image",
            binning=preset.campaign.binning,
        )

    result = TrainedSolvers(
        preset=preset,
        mlp_solver=mlp_solver,
        cnn_solver=cnn_solver,
        train=train,
        val=val,
        test=test,
        test2=test2,
        mlp_history=mlp_history,
        cnn_history=cnn_history,
    )
    if cache is not None:
        _save_cached(result, cache)
    return result


def _save_cached(result: TrainedSolvers, cache: Path) -> None:
    cache.mkdir(parents=True, exist_ok=True)
    result.train.save(cache / "train.npz")
    result.val.save(cache / "val.npz")
    result.test.save(cache / "test.npz")
    result.test2.save(cache / "test2.npz")
    result.mlp_solver.save(cache / "mlp")
    meta = {"include_cnn": result.cnn_solver is not None}
    if result.cnn_solver is not None:
        result.cnn_solver.save(cache / "cnn")
    (cache / "complete.json").write_text(json.dumps(meta))


def _load_cached(preset: ExperimentPreset, cache: Path, include_cnn: bool) -> TrainedSolvers:
    meta = json.loads((cache / "complete.json").read_text())
    train = FieldDataset.load(cache / "train.npz")
    val = FieldDataset.load(cache / "val.npz")
    test = FieldDataset.load(cache / "test.npz")
    test2 = FieldDataset.load(cache / "test2.npz")
    mlp_solver = DLFieldSolver.load(cache / "mlp", _build_mlp_for(preset))
    cnn_solver = None
    if include_cnn and meta.get("include_cnn"):
        cnn_solver = DLFieldSolver.load(cache / "cnn", _build_cnn_for(preset))
    return TrainedSolvers(
        preset=preset,
        mlp_solver=mlp_solver,
        cnn_solver=cnn_solver,
        train=train,
        val=val,
        test=test,
        test2=test2,
    )
