"""Shared run helpers: execute a (traditional, DL) simulation pair."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SimulationConfig
from repro.dlpic.simulation import DLPIC
from repro.dlpic.solver import DLFieldSolver
from repro.pic.diagnostics import History
from repro.pic.simulation import TraditionalPIC


@dataclass
class MethodRun:
    """Diagnostics of one finished simulation."""

    label: str
    config: SimulationConfig
    series: dict[str, np.ndarray]
    final_x: np.ndarray
    final_v: np.ndarray
    energy_variation: float
    momentum_drift: float


def _execute(sim, label: str, n_steps: "int | None") -> MethodRun:
    history: History = sim.run(n_steps)
    return MethodRun(
        label=label,
        config=sim.config,
        series=history.as_arrays(),
        final_x=sim.particles.x.copy(),
        final_v=sim.v_at_integer_time.copy(),
        energy_variation=history.energy_variation(),
        momentum_drift=history.momentum_drift(),
    )


def run_traditional(config: SimulationConfig, n_steps: "int | None" = None) -> MethodRun:
    """Run the traditional PIC method for ``config``."""
    return _execute(TraditionalPIC(config), "Traditional PIC", n_steps)


def run_dl(
    config: SimulationConfig, solver: DLFieldSolver, n_steps: "int | None" = None
) -> MethodRun:
    """Run the DL-based PIC method with a trained field solver."""
    return _execute(DLPIC(config, solver), "DL-based PIC", n_steps)


def run_pair(
    config: SimulationConfig,
    solver: DLFieldSolver,
    n_steps: "int | None" = None,
) -> tuple[MethodRun, MethodRun]:
    """Run both methods from identically loaded particles."""
    return run_traditional(config, n_steps), run_dl(config, solver, n_steps)
