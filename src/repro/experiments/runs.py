"""Shared run helpers: execute engine runs through the registry.

Every experiment run — traditional, DL or Vlasov — is built by
:func:`repro.engines.make_engine` as a batch-of-one engine, so the
experiment pipeline picks up new engine families for free.  Series are
extracted in the single-run :class:`History` layout (bitwise identical
to the pre-registry per-run simulations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SimulationConfig
from repro.dlpic.solver import DLFieldSolver
from repro.engines.base import Engine, make_engine


@dataclass
class MethodRun:
    """Diagnostics of one finished simulation.

    ``final_x``/``final_v`` hold the final particle phase space of the
    PIC families; the grid-based Vlasov family records neither (None).
    """

    label: str
    config: SimulationConfig
    series: dict[str, np.ndarray]
    final_x: "np.ndarray | None"
    final_v: "np.ndarray | None"
    energy_variation: float
    momentum_drift: float


def _execute(
    engine: Engine, label: str, n_steps: "int | None",
    config: "SimulationConfig | None" = None,
) -> MethodRun:
    history = engine.run(n_steps)
    particles = getattr(engine, "particles", None)
    return MethodRun(
        label=label,
        # Report the caller's config: a (traditional, dl) pair ran the
        # same physical configuration even though the engines were
        # built from solver-retagged copies.
        config=config if config is not None else engine.config,
        series=history.member(0),
        final_x=particles.x[0].copy() if particles is not None else None,
        final_v=(
            engine.v_at_integer_time[0].copy() if particles is not None else None
        ),
        energy_variation=float(history.energy_variation()[0]),
        momentum_drift=float(history.momentum_drift()[0]),
    )


def run_engine(
    config: SimulationConfig,
    dl_solver: "DLFieldSolver | None" = None,
    label: "str | None" = None,
    n_steps: "int | None" = None,
) -> MethodRun:
    """Run ``config`` through its registered engine family."""
    engine = make_engine(config, dl_solver=dl_solver)
    return _execute(engine, label if label is not None else config.solver, n_steps)


def run_traditional(config: SimulationConfig, n_steps: "int | None" = None) -> MethodRun:
    """Run the traditional PIC method for ``config``."""
    engine = make_engine(config.with_updates(solver="traditional"))
    return _execute(engine, "Traditional PIC", n_steps, config=config)


def run_dl(
    config: SimulationConfig, solver: DLFieldSolver, n_steps: "int | None" = None
) -> MethodRun:
    """Run the DL-based PIC method with a trained field solver."""
    engine = make_engine(config.with_updates(solver="dl"), dl_solver=solver)
    return _execute(engine, "DL-based PIC", n_steps, config=config)


def run_pair(
    config: SimulationConfig,
    solver: DLFieldSolver,
    n_steps: "int | None" = None,
) -> tuple[MethodRun, MethodRun]:
    """Run both methods from identically loaded particles."""
    return run_traditional(config, n_steps), run_dl(config, solver, n_steps)
