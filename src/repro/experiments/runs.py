"""Shared run helpers: execute experiment runs through the public API.

Every experiment run — traditional, DL, Vlasov or energy-conserving —
is a :class:`~repro.api.RunRequest` served by a synchronous
:class:`~repro.api.Client` (in-process service, thread-free), so the
experiment pipeline exercises the exact contract external callers use
and picks up new engine families for free.  Results carry the
single-run series layout plus the final phase space
(``phase_space=True``), bitwise identical to the pre-API per-run
simulations for float64 configs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api import Client, RunRequest, RunResult
from repro.config import SimulationConfig
from repro.dlpic.solver import DLFieldSolver


@dataclass
class MethodRun:
    """Diagnostics of one finished simulation.

    ``final_x``/``final_v`` hold the final particle phase space of the
    PIC families; the grid-based Vlasov family records neither (None).
    """

    label: str
    config: SimulationConfig
    series: dict[str, np.ndarray]
    final_x: "np.ndarray | None"
    final_v: "np.ndarray | None"
    energy_variation: float
    momentum_drift: float


def _method_run(
    result: RunResult, label: str, config: SimulationConfig
) -> MethodRun:
    return MethodRun(
        label=label,
        # Report the caller's config: a (traditional, dl) pair ran the
        # same physical configuration even though the requests were
        # built from solver-retagged copies.
        config=config,
        series={name: np.asarray(values) for name, values in result.series.items()},
        final_x=None if result.final_x is None else np.asarray(result.final_x),
        final_v=None if result.final_v is None else np.asarray(result.final_v),
        energy_variation=result.energy_variation(),
        momentum_drift=result.momentum_drift(),
    )


def run_engine(
    config: SimulationConfig,
    dl_solver: "DLFieldSolver | None" = None,
    label: "str | None" = None,
    n_steps: "int | None" = None,
) -> MethodRun:
    """Run ``config`` through its registered engine family via the API."""
    run_config = config if n_steps is None else config.with_updates(n_steps=n_steps)
    with Client(background=False, dl_solver=dl_solver) as client:
        result = client.run(RunRequest(config=run_config, phase_space=True))
    return _method_run(result, label if label is not None else config.solver, config)


def run_traditional(config: SimulationConfig, n_steps: "int | None" = None) -> MethodRun:
    """Run the traditional PIC method for ``config``."""
    run = run_engine(config.with_updates(solver="traditional"), n_steps=n_steps,
                     label="Traditional PIC")
    run.config = config
    return run


def run_dl(
    config: SimulationConfig, solver: DLFieldSolver, n_steps: "int | None" = None
) -> MethodRun:
    """Run the DL-based PIC method with a trained field solver."""
    run = run_engine(config.with_updates(solver="dl"), dl_solver=solver,
                     n_steps=n_steps, label="DL-based PIC")
    run.config = config
    return run


def run_pair(
    config: SimulationConfig,
    solver: DLFieldSolver,
    n_steps: "int | None" = None,
) -> tuple[MethodRun, MethodRun]:
    """Run both methods from identically loaded particles."""
    return run_traditional(config, n_steps), run_dl(config, solver, n_steps)
