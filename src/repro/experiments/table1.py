"""Table I: MAE and max error of the MLP and CNN on test sets I & II.

Test Set I is the random 1,000-sample split of the training sweep;
Test Set II contains samples from simulations whose ``(v0, vth)`` were
never seen during training.  Paper values for reference::

    Metric                Test Set   MLP       CNN
    Mean Absolute Error   I          0.0019    0.0020
    Max Error             I          0.06899   0.0463
    Mean Absolute Error   II         0.0015    0.0032
    Max Error             II         0.0286    0.073

The headline *shape*: MLP and CNN are comparable on set I, and the MLP
generalizes to unseen parameters at least as well as on set I while the
CNN degrades (its set-II MAE/max error grow).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.dataset import FieldDataset
from repro.dlpic.solver import DLFieldSolver
from repro.experiments.pipeline import TrainedSolvers
from repro.nn.metrics import max_absolute_error, mean_absolute_error


@dataclass(frozen=True)
class Table1Row:
    """One (network, test-set) evaluation."""

    network: str
    test_set: str
    mae: float
    max_error: float


def _evaluate(solver: DLFieldSolver, dataset: FieldDataset) -> tuple[float, float]:
    """Predict every histogram in ``dataset`` and compare to the targets."""
    raw = dataset.flat_inputs() if solver.input_kind == "flat" else dataset.image_inputs()
    x = solver.normalizer.transform(raw)
    pred = solver.model.predict(x)
    return mean_absolute_error(pred, dataset.targets), max_absolute_error(pred, dataset.targets)


def run_table1(solvers: TrainedSolvers) -> list[Table1Row]:
    """Evaluate every trained network on both test sets."""
    rows: list[Table1Row] = []
    networks: list[tuple[str, DLFieldSolver]] = [("MLP", solvers.mlp_solver)]
    if solvers.cnn_solver is not None:
        networks.append(("CNN", solvers.cnn_solver))
    for set_name, dataset in (("I", solvers.test), ("II", solvers.test2)):
        for net_name, solver in networks:
            mae, max_err = _evaluate(solver, dataset)
            rows.append(Table1Row(network=net_name, test_set=set_name, mae=mae, max_error=max_err))
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Render rows in the paper's Table I layout."""
    lines = [
        "TABLE I — MAE AND MAXIMUM ERROR WITH EACH NETWORK",
        f"{'Metric':<22}{'Test Set':<10}{'MLP':>12}{'CNN':>12}",
    ]
    by_key = {(r.network, r.test_set): r for r in rows}
    for set_name in ("I", "II"):
        for metric, attr in (("Mean Absolute Error", "mae"), ("Max Error", "max_error")):
            mlp = by_key.get(("MLP", set_name))
            cnn = by_key.get(("CNN", set_name))
            mlp_val = f"{getattr(mlp, attr):.5f}" if mlp else "-"
            cnn_val = f"{getattr(cnn, attr):.5f}" if cnn else "-"
            lines.append(f"{metric:<22}{set_name:<10}{mlp_val:>12}{cnn_val:>12}")
    return "\n".join(lines)
