"""Pluggable kernel backends for the hot numerical paths.

The engines compute one ensemble step through a handful of hot kernels
— particle-grid deposit/gather, the leapfrog pushers, the Vlasov
advection stencils and the evaluation-mode GEMM blocks.  Every one of
those kernels is *row-independent*: row ``b`` of a batched result is a
function of row ``b`` of the inputs alone, and the engines already
guarantee it is bitwise identical to running member ``b`` solo.  A
kernel backend exploits exactly that property: it decides *how* the
independent rows of one kernel call execute, never *what* they compute.

Three backends are registered (``SimulationConfig.backend``):

``numpy``
    The reference path — the exact vectorized kernels the seed shipped,
    one slab covering the whole batch.  This is the parity oracle:
    every other backend must reproduce it bit for bit in float64.
``threaded``
    Chunks the batch rows of each kernel call across a shared thread
    pool.  The hot numpy ufuncs and BLAS calls release the GIL, so
    independent row chunks genuinely overlap; because each chunk runs
    the unmodified reference arithmetic on its own rows, the result is
    bitwise identical to ``numpy`` in *every* dtype tier.
``numba``
    JIT-compiled scatter/gather loops (behind an optional ``numba``
    dependency) whose accumulation order replicates ``np.add.at``
    exactly.  When ``numba`` is not importable the backend degrades
    gracefully to the reference kernels — results are unchanged either
    way, only the speed differs (see :func:`backend_available`).

``backend`` is a *structural* config field: it participates in the
engine compatibility keys and in every cache/store key, so runs on
different backends never share an engine batch or a store slot even
though their float64 results are bitwise equal.
"""

from repro.kernels.backends import (
    KERNEL_BACKEND_NAMES,
    KernelBackend,
    NumbaBackend,
    ThreadedBackend,
    available_backends,
    backend_available,
    backend_unavailable_reason,
    get_backend,
    resolve_backend,
)

__all__ = [
    "KERNEL_BACKEND_NAMES",
    "KernelBackend",
    "NumbaBackend",
    "ThreadedBackend",
    "available_backends",
    "backend_available",
    "backend_unavailable_reason",
    "get_backend",
    "resolve_backend",
]
