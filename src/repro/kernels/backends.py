"""The kernel-backend registry and the three built-in backends.

A backend's contract is one method, :meth:`KernelBackend.run_rows`:
given a slab function ``fn(lo, hi)`` that computes rows ``[lo, hi)`` of
one kernel call, the backend decides how the row range ``[0, n_rows)``
is executed.  The reference backend runs one full slab; the threaded
backend splits the range into contiguous chunks over a shared thread
pool.  Because every routed kernel writes disjoint output rows and
reads its inputs immutably, chunked execution is race-free and — the
engines' per-row bitwise invariance — produces the identical bit
pattern in every dtype tier.

The optional ``multiple`` argument pins chunk boundaries to a row
granularity (the evaluation GEMM's fixed ``GEMM_BLOCK`` row blocks must
never be split, or the BLAS reduction order — and hence the bits —
would change).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

__all__ = [
    "KERNEL_BACKEND_NAMES",
    "KernelBackend",
    "ThreadedBackend",
    "NumbaBackend",
    "available_backends",
    "backend_available",
    "backend_unavailable_reason",
    "get_backend",
    "resolve_backend",
]

#: Every selectable ``SimulationConfig.backend`` value, in registry
#: order.  ``repro.config`` validates against the same triple (a unit
#: test pins the two lists together).
KERNEL_BACKEND_NAMES = ("numpy", "threaded", "numba")


def _usable_cores() -> int:
    """CPU cores this process may run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class KernelBackend:
    """The ``numpy`` reference backend: one slab, the unmodified kernels.

    Also the base class of every other backend — subclasses override
    :meth:`run_rows` (and may expose JIT kernels via attributes) but
    inherit the do-nothing defaults, so routing sites can hold any
    backend behind one interface.
    """

    name = "numpy"
    #: True when run_rows may execute chunks concurrently.
    parallel = False

    def run_rows(
        self, n_rows: int, fn: "Callable[[int, int], None]", multiple: int = 1
    ) -> None:
        """Execute ``fn`` over the whole row range as one slab."""
        fn(0, n_rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


# One process-wide pool shared by every ThreadedBackend instance: the
# kernels it runs are short, so pool reuse (no per-call thread spawn)
# is what makes intra-step chunking worthwhile at all.
_POOL: "ThreadPoolExecutor | None" = None
_POOL_LOCK = threading.Lock()


def _shared_pool(workers: int) -> ThreadPoolExecutor:
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-kernels"
            )
        return _POOL


class ThreadedBackend(KernelBackend):
    """Chunk independent batch rows across a shared thread pool.

    The chunk count adapts to the smaller of the worker count and the
    row count; single-row calls (and single-core hosts) fall straight
    through to the reference slab, so selecting ``threaded`` is never
    slower than ``numpy`` by more than the cost of a pool round trip.
    """

    name = "threaded"
    parallel = True

    def __init__(self, max_workers: "int | None" = None) -> None:
        self.workers = int(max_workers) if max_workers else _usable_cores()
        if self.workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")

    def run_rows(
        self, n_rows: int, fn: "Callable[[int, int], None]", multiple: int = 1
    ) -> None:
        """Run ``fn`` over ``[0, n_rows)`` in parallel contiguous chunks.

        Chunk boundaries are always a multiple of ``multiple`` (except
        the final bound, ``n_rows`` itself), so granular kernels keep
        their internal block structure.  Worker exceptions propagate to
        the caller.
        """
        units = -(-n_rows // multiple) if n_rows > 0 else 0
        chunks = min(self.workers, units)
        if chunks < 2:
            fn(0, n_rows)
            return
        per = -(-units // chunks) * multiple
        bounds = [
            (lo, min(lo + per, n_rows)) for lo in range(0, n_rows, per)
        ]
        pool = _shared_pool(self.workers)
        futures = [pool.submit(fn, lo, hi) for lo, hi in bounds]
        for future in futures:
            future.result()


class NumbaBackend(KernelBackend):
    """JIT scatter/gather loops; reference kernels when numba is absent.

    The compiled kernels live in :mod:`repro.kernels.numba_kernels` and
    cover the float64 particle deposit/gather — the paths where
    ``np.add.at``'s generic inner loop leaves the most on the table.
    Everything else (the float32 tier, the Vlasov stencils, the GEMM
    blocks) runs the reference slab unchanged, which keeps the bitwise
    float64 parity guarantee trivially intact.  When the optional
    dependency is missing the backend *is* the reference backend under
    another name: selection still validates, results are identical,
    and :func:`backend_available` reports the degraded state.
    """

    name = "numba"
    parallel = False

    def __init__(self) -> None:
        from repro.kernels import numba_kernels

        self.jit = numba_kernels if numba_kernels.NUMBA_AVAILABLE else None


_BACKENDS: "dict[str, Callable[[], KernelBackend]]" = {
    "numpy": KernelBackend,
    "threaded": ThreadedBackend,
    "numba": NumbaBackend,
}
_INSTANCES: "dict[str, KernelBackend]" = {}
_INSTANCE_LOCK = threading.Lock()


def available_backends() -> "tuple[str, ...]":
    """Every registered backend name, in registry order."""
    return tuple(_BACKENDS)


def get_backend(name: str) -> KernelBackend:
    """The shared backend instance for ``name`` (built lazily once)."""
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None
    with _INSTANCE_LOCK:
        backend = _INSTANCES.get(name)
        if backend is None:
            backend = _INSTANCES[name] = factory()
        return backend


def resolve_backend(spec: "str | KernelBackend | None") -> KernelBackend:
    """Coerce a config field / instance / None to a backend object.

    ``None`` means the reference backend — callers that never heard of
    backends keep the historical numpy path with zero lookups.
    """
    if spec is None:
        return get_backend("numpy")
    if isinstance(spec, KernelBackend):
        return spec
    return get_backend(spec)


def backend_available(name: str) -> bool:
    """Whether ``name`` runs at full speed on this host.

    Every registered name is *selectable* (the numba backend degrades
    to the reference kernels rather than failing); this reports whether
    the backend's accelerated path is actually live — benchmarks use it
    to skip speedup gates that cannot hold.
    """
    if name == "numba":
        from repro.kernels import numba_kernels

        return numba_kernels.NUMBA_AVAILABLE
    if name == "threaded":
        return _usable_cores() > 1
    return name in _BACKENDS


def backend_unavailable_reason(name: str) -> "str | None":
    """Human-readable reason :func:`backend_available` is False, else None."""
    if backend_available(name):
        return None
    if name == "numba":
        return "the optional 'numba' dependency is not installed"
    if name == "threaded":
        return "only one usable CPU core"
    return f"unknown kernel backend {name!r}"
