"""Optional numba JIT kernels (float64 particle deposit/gather).

Import-gated: when the optional ``numba`` dependency is missing this
module still imports cleanly with ``NUMBA_AVAILABLE = False`` and the
``numba`` backend falls back to the reference numpy kernels.

Bitwise contract
----------------
Every kernel here replicates the reference path's floating-point
operation order *exactly*, so float64 results are bit-for-bit equal to
``backend="numpy"``:

* ``np.add.at`` accumulates contributions in raveled index order, and
  the reference deposit issues one ``add.at`` per shape-function arm
  (left, then center, then right).  Output rows are disjoint per batch
  member, so looping ``row -> arm -> particle`` reproduces each cell's
  accumulation sequence exactly.
* Squared weights are written as explicit products (numpy lowers
  ``x ** 2`` to a multiplication; libm ``pow`` is not guaranteed to).
* Index wrapping copies the reference's power-of-two bit-mask fast
  path and falls back to the sign-of-divisor modulo both numpy and
  numba inherit from Python.

The kernels cover the float64 tier only — float32 numba runs use the
reference kernels (NEP-50 scalar-promotion behavior differs between
numpy expressions and jitted scalar code, and replicating it is not
worth a second kernel set for the tier that exists to trade exactness
for speed).
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the only path on bare hosts
    numba = None
    NUMBA_AVAILABLE = False


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True)
    def deposit_rows(out, x, w, dx, order_code):
        """Scatter ``w`` onto ``out`` rows; order_code 0=ngp 1=cic 2=tsc.

        ``out`` is a zeroed ``(batch, n_cells)`` slab; the caller
        divides by ``dx`` afterwards (matching the reference deposit).
        """
        batch, n = x.shape
        n_cells = out.shape[1]
        mask = n_cells - 1
        pow2 = (n_cells & mask) == 0
        for b in range(batch):
            if order_code == 0:  # ngp: one arm
                for p in range(n):
                    j = np.int64(np.floor(x[b, p] / dx + 0.5))
                    jw = (j & mask) if pow2 else (j % n_cells)
                    out[b, jw] += w[b, p]
            elif order_code == 1:  # cic: left arm, then right arm
                for p in range(n):
                    s = x[b, p] / dx
                    j = np.int64(np.floor(s))
                    jl = (j & mask) if pow2 else (j % n_cells)
                    out[b, jl] += w[b, p] * (1.0 - (s - j))
                for p in range(n):
                    s = x[b, p] / dx
                    j = np.int64(np.floor(s))
                    jr = ((j + 1) & mask) if pow2 else ((j + 1) % n_cells)
                    out[b, jr] += w[b, p] * (s - j)
            else:  # tsc: left, center, right arms
                for p in range(n):
                    s = x[b, p] / dx
                    j = np.int64(np.floor(s + 0.5))
                    d = s - j
                    hl = 0.5 - d
                    jl = ((j - 1) & mask) if pow2 else ((j - 1) % n_cells)
                    out[b, jl] += w[b, p] * (0.5 * (hl * hl))
                for p in range(n):
                    s = x[b, p] / dx
                    j = np.int64(np.floor(s + 0.5))
                    d = s - j
                    jc = (j & mask) if pow2 else (j % n_cells)
                    out[b, jc] += w[b, p] * (0.75 - d * d)
                for p in range(n):
                    s = x[b, p] / dx
                    j = np.int64(np.floor(s + 0.5))
                    d = s - j
                    hr = 0.5 + d
                    jr = ((j + 1) & mask) if pow2 else ((j + 1) % n_cells)
                    out[b, jr] += w[b, p] * (0.5 * (hr * hr))

    @numba.njit(cache=True)
    def gather_rows(out, field, x, dx, order_code):
        """Interpolate per-row ``field`` to ``x``; order_code 0/1/2."""
        batch, n = x.shape
        n_cells = field.shape[1]
        mask = n_cells - 1
        pow2 = (n_cells & mask) == 0
        for b in range(batch):
            for p in range(n):
                s = x[b, p] / dx
                if order_code == 0:
                    j = np.int64(np.floor(s + 0.5))
                    jw = (j & mask) if pow2 else (j % n_cells)
                    out[b, p] = field[b, jw]
                elif order_code == 1:
                    j = np.int64(np.floor(s))
                    frac = s - j
                    jl = (j & mask) if pow2 else (j % n_cells)
                    jr = ((j + 1) & mask) if pow2 else ((j + 1) % n_cells)
                    out[b, p] = field[b, jl] * (1.0 - frac) + field[b, jr] * frac
                else:
                    j = np.int64(np.floor(s + 0.5))
                    d = s - j
                    hl = 0.5 - d
                    hr = 0.5 + d
                    jl = ((j - 1) & mask) if pow2 else ((j - 1) % n_cells)
                    jc = (j & mask) if pow2 else (j % n_cells)
                    jr = ((j + 1) & mask) if pow2 else ((j + 1) % n_cells)
                    out[b, p] = (
                        field[b, jl] * (0.5 * (hl * hl))
                        + field[b, jc] * (0.75 - d * d)
                        + field[b, jr] * (0.5 * (hr * hr))
                    )

else:
    deposit_rows = None
    gather_rows = None

#: Shape-function order -> the integer code the jitted kernels take.
ORDER_CODES = {"ngp": 0, "cic": 1, "tsc": 2}
