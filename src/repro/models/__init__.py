"""The paper's two network architectures (Sec. IV-A)."""

from repro.models.architectures import build_cnn, build_mlp

__all__ = ["build_mlp", "build_cnn"]
