"""Factory functions for the paper's MLP and CNN (Sec. IV-A).

* **MLP** — three fully connected hidden layers of 1,024 ReLU neurons
  and a 64-neuron linear output ("because we want to learn a
  multi-variate regression function of the electric field on 64
  cells").
* **CNN** — two blocks of [Conv, Conv, MaxPool] followed by the same
  three 1,024-neuron ReLU layers and the 64-neuron linear output.  The
  paper does not state channel counts or kernel sizes; we use 3x3
  kernels with 16 and 32 channels (the standard small-image choice)
  and expose them as parameters.

Both factories accept reduced widths/resolutions so the test suite and
the fast benchmark preset can train cheap variants of the *same*
architecture family.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.network import Sequential
from repro.utils.rng import as_generator


def build_mlp(
    input_size: int = 64 * 64,
    output_size: int = 64,
    hidden_size: int = 1024,
    n_hidden: int = 3,
    rng: "int | np.random.Generator | None" = 0,
) -> Sequential:
    """The paper's MLP: ``n_hidden`` ReLU layers + linear output."""
    if n_hidden < 1:
        raise ValueError(f"n_hidden must be >= 1, got {n_hidden}")
    rng = as_generator(rng)
    layers: list = []
    size = input_size
    for _ in range(n_hidden):
        layers.append(Dense(size, hidden_size, rng=rng))
        layers.append(ReLU())
        size = hidden_size
    layers.append(Dense(size, output_size, rng=rng))  # linear activation
    return Sequential(layers)


def build_cnn(
    input_shape: tuple[int, int, int] = (1, 64, 64),
    output_size: int = 64,
    channels: tuple[int, int] = (16, 32),
    kernel_size: int = 3,
    hidden_size: int = 1024,
    n_hidden: int = 3,
    rng: "int | np.random.Generator | None" = 0,
) -> Sequential:
    """The paper's CNN: 2 x [Conv, Conv, MaxPool] + MLP head.

    ``input_shape`` is channels-first ``(C, H, W)``; ``H`` and ``W``
    must be divisible by 4 (two 2x2 pools).
    """
    c, h, w = input_shape
    if h % 4 or w % 4:
        raise ValueError(f"spatial size {(h, w)} must be divisible by 4 (two maxpools)")
    if n_hidden < 1:
        raise ValueError(f"n_hidden must be >= 1, got {n_hidden}")
    rng = as_generator(rng)
    c1, c2 = channels
    layers: list = [
        Conv2D(c, c1, kernel_size, padding="same", rng=rng),
        ReLU(),
        Conv2D(c1, c1, kernel_size, padding="same", rng=rng),
        ReLU(),
        MaxPool2D(2),
        Conv2D(c1, c2, kernel_size, padding="same", rng=rng),
        ReLU(),
        Conv2D(c2, c2, kernel_size, padding="same", rng=rng),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
    ]
    flat = c2 * (h // 4) * (w // 4)
    size = flat
    for _ in range(n_hidden):
        layers.append(Dense(size, hidden_size, rng=rng))
        layers.append(ReLU())
        size = hidden_size
    layers.append(Dense(size, output_size, rng=rng))  # linear activation
    return Sequential(layers)
