"""A from-scratch NumPy deep-learning framework.

This subpackage replaces the paper's TensorFlow/Keras dependency (not
installable in this offline environment) with a minimal but complete
deep-learning stack: layers with exact analytic backprop, losses,
SGD/Adam optimizers, a ``Sequential`` container with npz checkpoints, a
``DataLoader`` and a ``Trainer``.  Layer gradients are verified against
finite differences in the test suite.
"""

from repro.nn.initializers import glorot_uniform, he_normal, zeros_init
from repro.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import HuberLoss, MAELoss, MSELoss
from repro.nn.metrics import (
    max_absolute_error,
    mean_absolute_error,
    mean_squared_error,
)
from repro.nn.network import Sequential
from repro.nn.optimizers import SGD, Adam, RMSProp
from repro.nn.data import DataLoader, train_val_test_split
from repro.nn.training import Trainer

__all__ = [
    "glorot_uniform",
    "he_normal",
    "zeros_init",
    "Layer",
    "Dense",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "Flatten",
    "Conv2D",
    "MaxPool2D",
    "MSELoss",
    "MAELoss",
    "HuberLoss",
    "Sequential",
    "SGD",
    "Adam",
    "RMSProp",
    "DataLoader",
    "train_val_test_split",
    "Trainer",
    "mean_absolute_error",
    "max_absolute_error",
    "mean_squared_error",
]
