"""Mini-batch iteration and dataset splitting.

The paper shuffles its 40,000 samples and splits 38,000/1,000/1,000
into train/validation/test (Sec. IV-A1); ``train_val_test_split``
implements exactly that protocol.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.utils.rng import as_generator


class DataLoader:
    """Iterates ``(X, y)`` mini-batches, optionally reshuffling each epoch.

    ``X`` and ``y`` must share their first (sample) dimension.  When
    ``shuffle=True`` a new permutation is drawn from ``rng`` at every
    iteration, so epochs see different batch compositions.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch_size: int = 64,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        x = np.asarray(x)
        y = np.asarray(y)
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"X has {x.shape[0]} samples but y has {y.shape[0]}")
        if x.shape[0] == 0:
            raise ValueError("empty dataset")
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.x = x
        self.y = y
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = as_generator(rng)

    @property
    def n_samples(self) -> int:
        """Number of samples in the underlying arrays."""
        return self.x.shape[0]

    def __len__(self) -> int:
        """Number of batches per epoch."""
        if self.drop_last:
            return self.n_samples // self.batch_size
        return (self.n_samples + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        order = (
            self.rng.permutation(self.n_samples)
            if self.shuffle
            else np.arange(self.n_samples)
        )
        stop = len(self) * self.batch_size if self.drop_last else self.n_samples
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and idx.shape[0] < self.batch_size:
                break
            yield self.x[idx], self.y[idx]


def train_val_test_split(
    x: np.ndarray,
    y: np.ndarray,
    n_val: int,
    n_test: int,
    rng: "int | np.random.Generator | None" = None,
) -> tuple[tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Shuffle jointly, then split off ``n_val`` and ``n_test`` samples.

    Returns ``(train, val, test)`` tuples of ``(X, y)``; the train split
    receives everything left over (38,000 in the paper's setup).
    """
    x = np.asarray(x)
    y = np.asarray(y)
    n = x.shape[0]
    if y.shape[0] != n:
        raise ValueError(f"X has {n} samples but y has {y.shape[0]}")
    if n_val < 0 or n_test < 0:
        raise ValueError("split sizes must be non-negative")
    if n_val + n_test >= n:
        raise ValueError(f"cannot carve {n_val}+{n_test} samples out of {n}")
    order = as_generator(rng).permutation(n)
    test_idx = order[:n_test]
    val_idx = order[n_test : n_test + n_val]
    train_idx = order[n_test + n_val :]
    return (
        (x[train_idx], y[train_idx]),
        (x[val_idx], y[val_idx]),
        (x[test_idx], y[test_idx]),
    )
