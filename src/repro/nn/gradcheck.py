"""Finite-difference gradient verification utilities (used by tests)."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.layers import Layer


def numerical_gradient(
    f: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f(x)
        flat[i] = orig - eps
        fm = f(x)
        flat[i] = orig
        gflat[i] = (fp - fm) / (2.0 * eps)
    return grad


def check_layer_input_gradient(
    layer: Layer, x: np.ndarray, eps: float = 1e-6, seed: int = 0
) -> float:
    """Max abs difference between analytic and numeric input gradients.

    Projects the layer output onto a fixed random direction to obtain a
    scalar loss ``L = sum(R * layer(x))``; the analytic gradient is then
    ``backward(R)``.
    """
    rng = np.random.default_rng(seed)
    # training=True: backward state is only cached by training forwards.
    y = layer.forward(np.array(x, copy=True), training=True)
    direction = rng.normal(size=y.shape)

    def scalar_loss(inp: np.ndarray) -> float:
        return float(np.sum(direction * layer.forward(inp, training=True)))

    layer.forward(np.array(x, copy=True), training=True)
    analytic = layer.backward(direction)
    numeric = numerical_gradient(scalar_loss, np.array(x, copy=True), eps=eps)
    return float(np.max(np.abs(analytic - numeric)))


def check_layer_param_gradients(
    layer: Layer, x: np.ndarray, eps: float = 1e-6, seed: int = 0
) -> dict[str, float]:
    """Max abs analytic-vs-numeric difference for each parameter array."""
    rng = np.random.default_rng(seed)
    # training=True: backward state is only cached by training forwards.
    y = layer.forward(np.array(x, copy=True), training=True)
    direction = rng.normal(size=y.shape)
    layer.zero_grad()
    layer.forward(np.array(x, copy=True), training=True)
    layer.backward(direction)
    analytic = {k: g.copy() for k, g in layer.grads.items()}

    errors: dict[str, float] = {}
    for name, param in layer.params.items():

        def scalar_loss(p: np.ndarray, _name: str = name) -> float:
            saved = layer.params[_name].copy()
            layer.params[_name][...] = p
            out = float(np.sum(direction * layer.forward(np.array(x, copy=True), training=True)))
            layer.params[_name][...] = saved
            return out

        numeric = numerical_gradient(scalar_loss, param.copy(), eps=eps)
        errors[name] = float(np.max(np.abs(analytic[name] - numeric)))
    return errors
