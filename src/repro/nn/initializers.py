"""Weight initializers.

Keras defaults (what the paper's code would have used) are Glorot
uniform for both Dense and Conv2D kernels; He normal is provided as the
usual alternative for ReLU stacks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import as_generator


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Fan-in/fan-out for dense ``(in, out)`` and conv ``(O, C, kh, kw)``."""
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def glorot_uniform(
    shape: tuple[int, ...], rng: "int | np.random.Generator | None" = None
) -> np.ndarray:
    """Glorot/Xavier uniform: U(-limit, limit), limit = sqrt(6/(fi+fo))."""
    rng = as_generator(rng)
    fan_in, fan_out = _fan_in_out(shape)
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(
    shape: tuple[int, ...], rng: "int | np.random.Generator | None" = None
) -> np.ndarray:
    """He normal: N(0, sqrt(2/fan_in)), suited to ReLU activations."""
    rng = as_generator(rng)
    fan_in, _ = _fan_in_out(shape)
    return rng.normal(0.0, math.sqrt(2.0 / fan_in), size=shape)


def zeros_init(shape: tuple[int, ...], rng: "int | np.random.Generator | None" = None) -> np.ndarray:
    """All-zeros (biases)."""
    return np.zeros(shape, dtype=np.float64)


INITIALIZERS = {
    "glorot_uniform": glorot_uniform,
    "he_normal": he_normal,
    "zeros": zeros_init,
}


def get_initializer(name: str):
    """Look up an initializer by name."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        raise ValueError(f"unknown initializer {name!r}; expected one of {sorted(INITIALIZERS)}")
