"""Neural-network layers with exact analytic backprop.

Every layer implements ``forward(x, training)`` and ``backward(grad)``
where ``backward`` consumes the gradient of the loss with respect to
the layer output and returns the gradient with respect to the input,
accumulating parameter gradients in ``layer.grads``.  All gradients are
verified against central finite differences in ``tests/test_gradcheck``.
``backward`` requires a preceding ``forward(..., training=True)``:
evaluation-mode forwards are an inference fast path that caches no
backward state (inputs, masks, argmaxes) at all.

Conventions: dense inputs are ``(N, features)``; convolutional inputs
are channels-first ``(N, C, H, W)`` (a phase-space histogram enters the
paper's CNN as ``(N, 1, n_v, n_x)``).

Inference determinism
---------------------
BLAS picks different micro-kernels (and therefore different summation
orders) depending on the row count of a matmul, so ``x[0:1] @ W`` is
*not* bitwise equal to row 0 of ``x @ W`` in general.  The batched
DL-PIC ensemble engine promises bitwise parity between a batch-``B``
run and ``B`` single runs, so evaluation-mode :class:`Dense` forwards
route every matmul through fixed-width row blocks of ``GEMM_BLOCK``
(padding short blocks with zero rows).  Every inference GEMM then uses
the identical kernel and reduction order regardless of the caller's
batch size, making each output row a function of its input row alone.
The padding is effectively free: a skinny ``(GEMM_BLOCK, F) @ (F, O)``
product is bound by streaming ``W`` from memory, which a 1-row product
pays in full anyway.

Evaluation dtype tier
---------------------
Training always runs in float64 (gradients are checked against central
finite differences at double precision).  Evaluation-mode forwards are
dtype-following instead: float32 inputs flow through float32 kernels
(the DL serving tier casts a frozen copy of the weights down, see
``repro.dlpic.DLFieldSolver``), everything else is coerced to float64
exactly as before.  Evaluation ``Dense`` GEMMs additionally accept a
kernel backend (``Dense.eval_backend``): the block loop is expressed
over row ranges, so a parallel backend runs whole ``GEMM_BLOCK`` blocks
concurrently — never splitting a block, hence never changing a bit.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.kernels import KernelBackend
from repro.nn.initializers import get_initializer
from repro.utils.rng import as_generator


def _eval_dtype(x: np.ndarray) -> np.ndarray:
    """Evaluation coercion: float32 passes through, the rest to float64."""
    x = np.asarray(x)
    if x.dtype != np.float32:
        x = np.asarray(x, dtype=np.float64)
    return x

# Fixed row-block width for evaluation-mode Dense matmuls (see module
# docstring).  16 matches the reference ensemble batch size, so a
# batch-16 DL sweep runs exact full blocks with zero padding waste.
GEMM_BLOCK = 16


def blocked_gemm(
    x: np.ndarray,
    w: np.ndarray,
    out: "np.ndarray | None" = None,
    backend: "KernelBackend | None" = None,
) -> np.ndarray:
    """``x @ w`` computed in fixed ``GEMM_BLOCK``-row blocks.

    Row ``i`` of the result is bitwise identical for every possible row
    count of ``x`` (short final blocks are zero-padded up to the block
    width), which is what makes batched network inference reproduce
    single-run inference exactly.  Full blocks are written straight
    into ``out`` (allocated here if not supplied) without temporaries.
    The output dtype follows the operands (float64 inputs keep the
    historical float64 GEMM bit for bit; the float32 serving tier runs
    single-precision BLAS blocks).

    Applying the blocks to *every* evaluation matmul (not only the
    DL-ensemble path) trades ~1.5x on very large-batch products (the
    BLAS can no longer cache-block across thousands of rows) for
    predictions that are reproducible under any dataset chunking; the
    expensive training forwards keep the unblocked ``x @ W``.

    A parallel ``backend`` runs contiguous runs of whole blocks
    concurrently — block boundaries are pinned via
    ``run_rows(..., multiple=GEMM_BLOCK)``, so the per-block GEMMs (and
    their bits) are unchanged.
    """
    n = x.shape[0]
    if out is None:
        out = np.empty((n, w.shape[1]), dtype=np.promote_types(x.dtype, w.dtype))

    def run(lo: int, hi: int) -> None:
        for start in range(lo, hi, GEMM_BLOCK):
            stop = min(start + GEMM_BLOCK, n)
            if stop - start == GEMM_BLOCK:
                np.matmul(x[start:stop], w, out=out[start:stop])
            else:
                padded = np.zeros((GEMM_BLOCK, x.shape[1]), dtype=x.dtype)
                padded[: stop - start] = x[start:stop]
                out[start:stop] = np.matmul(padded, w)[: stop - start]

    if backend is not None and backend.parallel:
        backend.run_rows(n, run, multiple=GEMM_BLOCK)
    else:
        run(0, n)
    return out


class Layer:
    """Base class: parameter-free identity layer."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output (caching whatever backward needs)."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate ``dL/dy`` to ``dL/dx``; accumulate ``self.grads``."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset accumulated parameter gradients."""
        for key, g in self.grads.items():
            g[...] = 0.0

    @property
    def n_parameters(self) -> int:
        """Total number of trainable scalars."""
        return int(sum(p.size for p in self.params.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        weight_init: str = "glorot_uniform",
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError(f"invalid Dense shape ({in_features}, {out_features})")
        self.in_features = in_features
        self.out_features = out_features
        init = get_initializer(weight_init)
        self.params = {
            "W": init((in_features, out_features), rng).astype(np.float64),
            "b": np.zeros(out_features, dtype=np.float64),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._x: "np.ndarray | None" = None
        #: Optional kernel backend for evaluation-mode GEMMs (set by
        #: ``Sequential.set_eval_backend``); None = reference loop.
        self.eval_backend: "KernelBackend | None" = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            x = np.asarray(x, dtype=np.float64)
        else:
            x = _eval_dtype(x)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(f"Dense expected (N, {self.in_features}), got {x.shape}")
        if training:
            self._x = x
            return x @ self.params["W"] + self.params["b"]
        # Inference fast path: no backward cache, batch-size-invariant
        # fixed-width GEMM, bias added in place into the output buffer.
        self._x = None
        out = blocked_gemm(x, self.params["W"], backend=self.eval_backend)
        out += self.params["b"]
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        grad = np.asarray(grad, dtype=np.float64)
        self.grads["W"] += self._x.T @ grad
        self.grads["b"] += grad.sum(axis=0)
        return grad @ self.params["W"].T

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dense({self.in_features}, {self.out_features})"


class ReLU(Layer):
    """Rectified linear activation (the paper's hidden activation)."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: "np.ndarray | None" = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training:
            x = _eval_dtype(x)
            self._mask = None
            return np.where(x > 0.0, x, 0.0)
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0.0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad, 0.0)


class Tanh(Layer):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._y: "np.ndarray | None" = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64) if training else _eval_dtype(x)
        y = np.tanh(x)
        self._y = y if training else None
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad * (1.0 - self._y**2)


class Sigmoid(Layer):
    """Logistic activation."""

    def __init__(self) -> None:
        super().__init__()
        self._y: "np.ndarray | None" = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64) if training else _eval_dtype(x)
        y = 0.5 * (1.0 + np.tanh(0.5 * x))  # numerically stable sigmoid
        self._y = y if training else None
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad * self._y * (1.0 - self._y)


class Dropout(Layer):
    """Inverted dropout; active only when ``training=True``."""

    def __init__(self, rate: float, rng: "int | np.random.Generator | None" = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = as_generator(rng)
        self._mask: "np.ndarray | None" = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64) if training else _eval_dtype(x)
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return np.asarray(grad, dtype=np.float64)
        return grad * self._mask


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: "tuple[int, ...] | None" = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64) if training else _eval_dtype(x)
        self._shape = x.shape if training else None
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad, dtype=np.float64).reshape(self._shape)


class Conv2D(Layer):
    """2D convolution (cross-correlation), stride 1, zero padding.

    Kernel weights have shape ``(out_channels, in_channels, kh, kw)``.
    ``padding="same"`` preserves spatial size for odd kernels;
    ``padding="valid"`` applies none.  The forward pass uses
    ``sliding_window_view`` + ``tensordot`` (an im2col formulation
    without the explicit copy); the input gradient is computed as a
    full correlation with the flipped kernels, which keeps backward at
    the same BLAS-bound cost as forward.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: "int | tuple[int, int]" = 3,
        padding: str = "same",
        weight_init: str = "glorot_uniform",
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        super().__init__()
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        kh, kw = kernel_size
        if kh < 1 or kw < 1 or in_channels < 1 or out_channels < 1:
            raise ValueError("invalid Conv2D configuration")
        if padding not in ("same", "valid"):
            raise ValueError(f"unknown padding {padding!r}")
        if padding == "same" and (kh % 2 == 0 or kw % 2 == 0):
            raise ValueError("'same' padding requires odd kernel sizes")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.padding = padding
        init = get_initializer(weight_init)
        self.params = {
            "W": init((out_channels, in_channels, kh, kw), rng).astype(np.float64),
            "b": np.zeros(out_channels, dtype=np.float64),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._x_padded: "np.ndarray | None" = None
        self._x_shape: "tuple[int, ...] | None" = None

    def _pad_amounts(self) -> tuple[int, int]:
        if self.padding == "valid":
            return 0, 0
        kh, kw = self.kernel_size
        return kh // 2, kw // 2

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64) if training else _eval_dtype(x)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        kh, kw = self.kernel_size
        ph, pw = self._pad_amounts()
        if x.shape[2] + 2 * ph < kh or x.shape[3] + 2 * pw < kw:
            raise ValueError(f"input {x.shape} smaller than kernel {self.kernel_size}")
        xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if (ph or pw) else x
        if not training:
            # Inference fast path: no backward cache, and one tensordot
            # per sample so the underlying GEMM shape — hence the
            # floating-point reduction order — is identical for every
            # caller batch size (cf. the module docstring; the batch
            # dimension would otherwise fold into the GEMM rows).
            self._x_padded = None
            self._x_shape = None
            h_out = xp.shape[2] - kh + 1
            w_out = xp.shape[3] - kw + 1
            out = np.empty(
                (x.shape[0], self.out_channels, h_out, w_out),
                dtype=np.promote_types(x.dtype, self.params["W"].dtype),
            )
            for i in range(x.shape[0]):
                windows = sliding_window_view(xp[i], (kh, kw), axis=(1, 2))
                y = np.tensordot(windows, self.params["W"], axes=([0, 3, 4], [1, 2, 3]))
                out[i] = y.transpose(2, 0, 1)
            out += self.params["b"][None, :, None, None]
            return out
        self._x_padded = xp
        self._x_shape = x.shape
        # windows: (N, C, H_out, W_out, kh, kw)
        windows = sliding_window_view(xp, (kh, kw), axis=(2, 3))
        y = np.tensordot(windows, self.params["W"], axes=([1, 4, 5], [1, 2, 3]))
        # y: (N, H_out, W_out, O) -> (N, O, H_out, W_out)
        y = np.ascontiguousarray(y.transpose(0, 3, 1, 2))
        return y + self.params["b"][None, :, None, None]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x_padded is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        grad = np.asarray(grad, dtype=np.float64)
        kh, kw = self.kernel_size
        ph, pw = self._pad_amounts()
        xp = self._x_padded
        n, _, h_in, w_in = self._x_shape

        # dL/db
        self.grads["b"] += grad.sum(axis=(0, 2, 3))

        # dL/dW: correlate input windows with the output gradient.
        windows = sliding_window_view(xp, (kh, kw), axis=(2, 3))
        # windows (N, C, Ho, Wo, kh, kw); grad (N, O, Ho, Wo)
        gw = np.tensordot(grad, windows, axes=([0, 2, 3], [0, 2, 3]))
        self.grads["W"] += gw  # (O, C, kh, kw)

        # dL/dx: full correlation of grad with flipped kernels.
        gp = np.pad(grad, ((0, 0), (0, 0), (kh - 1, kh - 1), (kw - 1, kw - 1)))
        gwin = sliding_window_view(gp, (kh, kw), axis=(2, 3))
        w_flip = self.params["W"][:, :, ::-1, ::-1]
        gx_padded = np.tensordot(gwin, w_flip, axes=([1, 4, 5], [0, 2, 3]))
        gx_padded = gx_padded.transpose(0, 3, 1, 2)  # (N, C, Hp, Wp)
        if ph or pw:
            return np.ascontiguousarray(
                gx_padded[:, :, ph : ph + h_in, pw : pw + w_in]
            )
        return np.ascontiguousarray(gx_padded)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Conv2D({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, padding={self.padding!r})"
        )


class MaxPool2D(Layer):
    """Non-overlapping max pooling (pool size = stride).

    Requires spatial dimensions divisible by the pool size (the paper's
    64x64 inputs halve cleanly twice).  Backward routes each gradient
    to the first-occurring maximum within its window (argmax), exactly
    matching the forward pass even under ties.
    """

    def __init__(self, pool_size: "int | tuple[int, int]" = 2) -> None:
        super().__init__()
        if isinstance(pool_size, int):
            pool_size = (pool_size, pool_size)
        if pool_size[0] < 1 or pool_size[1] < 1:
            raise ValueError(f"invalid pool size {pool_size}")
        self.pool_size = pool_size
        self._x_shape: "tuple[int, ...] | None" = None
        self._argmax: "np.ndarray | None" = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64) if training else _eval_dtype(x)
        if x.ndim != 4:
            raise ValueError(f"MaxPool2D expected (N, C, H, W), got {x.shape}")
        ph, pw = self.pool_size
        n, c, h, w = x.shape
        if h % ph or w % pw:
            raise ValueError(f"spatial size {(h, w)} not divisible by pool {self.pool_size}")
        blocks = x.reshape(n, c, h // ph, ph, w // pw, pw).transpose(0, 1, 2, 4, 3, 5)
        flat = blocks.reshape(n, c, h // ph, w // pw, ph * pw)
        if not training:
            # Inference: a plain max, no argmax routing table to keep.
            self._x_shape = None
            self._argmax = None
            return flat.max(axis=-1)
        self._x_shape = x.shape
        self._argmax = flat.argmax(axis=-1)
        return np.take_along_axis(flat, self._argmax[..., None], axis=-1)[..., 0]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x_shape is None or self._argmax is None:
            raise RuntimeError("backward called before forward")
        grad = np.asarray(grad, dtype=np.float64)
        ph, pw = self.pool_size
        n, c, h, w = self._x_shape
        flat = np.zeros((n, c, h // ph, w // pw, ph * pw), dtype=np.float64)
        np.put_along_axis(flat, self._argmax[..., None], grad[..., None], axis=-1)
        blocks = flat.reshape(n, c, h // ph, w // pw, ph, pw).transpose(0, 1, 2, 4, 3, 5)
        return blocks.reshape(n, c, h, w)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MaxPool2D({self.pool_size})"
