"""Regression losses.

The paper trains with the standard regression setup (Keras default MSE)
and *evaluates* with MAE (Table I); both are provided, plus Huber as
the usual robust alternative.
"""

from __future__ import annotations

import numpy as np


class Loss:
    """Interface: ``forward`` returns a scalar, ``backward`` its gradient."""

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        """Gradient of the most recent ``forward`` w.r.t. the prediction."""
        raise NotImplementedError

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return self.forward(prediction, target)

    @staticmethod
    def _validate(prediction: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        p = np.asarray(prediction, dtype=np.float64)
        t = np.asarray(target, dtype=np.float64)
        if p.shape != t.shape:
            raise ValueError(f"prediction {p.shape} and target {t.shape} differ")
        if p.size == 0:
            raise ValueError("empty loss input")
        return p, t


class MSELoss(Loss):
    """Mean squared error over all elements."""

    def __init__(self) -> None:
        self._diff: "np.ndarray | None" = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        p, t = self._validate(prediction, target)
        self._diff = p - t
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size


class MAELoss(Loss):
    """Mean absolute error over all elements (paper's Table I metric)."""

    def __init__(self) -> None:
        self._diff: "np.ndarray | None" = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        p, t = self._validate(prediction, target)
        self._diff = p - t
        return float(np.mean(np.abs(self._diff)))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return np.sign(self._diff) / self._diff.size


class HuberLoss(Loss):
    """Huber loss: quadratic near zero, linear beyond ``delta``."""

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = delta
        self._diff: "np.ndarray | None" = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        p, t = self._validate(prediction, target)
        self._diff = p - t
        a = np.abs(self._diff)
        quad = 0.5 * a**2
        lin = self.delta * (a - 0.5 * self.delta)
        return float(np.mean(np.where(a <= self.delta, quad, lin)))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        clipped = np.clip(self._diff, -self.delta, self.delta)
        return clipped / self._diff.size
