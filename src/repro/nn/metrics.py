"""Evaluation metrics for the field-regression task.

Table I of the paper reports the Mean Absolute Error (its Eq. 6) and
the Max Error of each network on two test sets.
"""

from __future__ import annotations

import numpy as np


def _validate(prediction: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(prediction, dtype=np.float64)
    t = np.asarray(target, dtype=np.float64)
    if p.shape != t.shape:
        raise ValueError(f"prediction {p.shape} and target {t.shape} differ")
    if p.size == 0:
        raise ValueError("empty metric input")
    return p, t


def mean_absolute_error(prediction: np.ndarray, target: np.ndarray) -> float:
    """Paper Eq. 6: mean of |E_pred - E| over all samples and cells."""
    p, t = _validate(prediction, target)
    return float(np.mean(np.abs(p - t)))


def max_absolute_error(prediction: np.ndarray, target: np.ndarray) -> float:
    """Table I "Max Error": the largest absolute cell error in the set."""
    p, t = _validate(prediction, target)
    return float(np.max(np.abs(p - t)))


def mean_squared_error(prediction: np.ndarray, target: np.ndarray) -> float:
    """Mean of squared errors over all elements."""
    p, t = _validate(prediction, target)
    return float(np.mean((p - t) ** 2))


def per_sample_mae(prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
    """MAE per sample (mean over every non-batch axis)."""
    p, t = _validate(prediction, target)
    axes = tuple(range(1, p.ndim))
    return np.mean(np.abs(p - t), axis=axes)
