"""``Sequential`` model container with npz checkpointing."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.nn.layers import Layer


class Sequential:
    """A plain feed-forward stack of :class:`Layer` objects.

    >>> model = Sequential([Dense(4, 8, rng=0), ReLU(), Dense(8, 2, rng=1)])
    >>> y = model.forward(x)                         # doctest: +SKIP
    >>> model.backward(grad_y)                       # doctest: +SKIP
    """

    def __init__(self, layers: "Sequence[Layer] | None" = None) -> None:
        self.layers: list[Layer] = list(layers) if layers is not None else []
        for layer in self.layers:
            self._check_layer(layer)

    @staticmethod
    def _check_layer(layer: Layer) -> None:
        if not isinstance(layer, Layer):
            raise TypeError(f"expected a Layer, got {type(layer).__name__}")

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer; returns self for chaining."""
        self._check_layer(layer)
        self.layers.append(layer)
        return self

    # -- forward / backward --------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the full stack."""
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the stack (reverse order)."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Inference in evaluation mode, batched to bound memory."""
        x = np.asarray(x, dtype=np.float64)
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if x.shape[0] <= batch_size:
            return self.forward(x, training=False)
        chunks = [
            self.forward(x[i : i + batch_size], training=False)
            for i in range(0, x.shape[0], batch_size)
        ]
        return np.concatenate(chunks, axis=0)

    # -- parameters ------------------------------------------------------
    def param_grad_pairs(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Stable-ordered (parameter, gradient) array pairs for optimizers."""
        pairs: list[tuple[np.ndarray, np.ndarray]] = []
        for layer in self.layers:
            for name in sorted(layer.params):
                pairs.append((layer.params[name], layer.grads[name]))
        return pairs

    def zero_grad(self) -> None:
        """Reset every accumulated gradient to zero."""
        for layer in self.layers:
            layer.zero_grad()

    @property
    def n_parameters(self) -> int:
        """Total trainable scalar count."""
        return sum(layer.n_parameters for layer in self.layers)

    def summary(self) -> str:
        """Human-readable architecture listing."""
        lines = [f"Sequential with {len(self.layers)} layers, {self.n_parameters:,} parameters"]
        for i, layer in enumerate(self.layers):
            lines.append(f"  [{i:2d}] {layer!r:60s} params={layer.n_parameters:,}")
        return "\n".join(lines)

    # -- persistence -----------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping ``"{layer_index}.{param_name}" -> array``."""
        state: dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for name, value in layer.params.items():
                state[f"{i}.{name}"] = value
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Copy arrays into the existing parameters (shape-checked)."""
        expected = self.state_dict()
        missing = sorted(set(expected) - set(state))
        extra = sorted(set(state) - set(expected))
        if missing or extra:
            raise ValueError(f"state mismatch: missing={missing}, unexpected={extra}")
        for key, current in expected.items():
            new = np.asarray(state[key], dtype=np.float64)
            if new.shape != current.shape:
                raise ValueError(f"shape mismatch for {key}: {new.shape} vs {current.shape}")
            current[...] = new

    def save(self, path: "str | Path") -> Path:
        """Serialize parameters (and a layer fingerprint) to ``.npz``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arch = json.dumps([repr(layer) for layer in self.layers])
        arrays = {k: v for k, v in self.state_dict().items()}
        arrays["__architecture__"] = np.frombuffer(arch.encode("utf-8"), dtype=np.uint8)
        np.savez_compressed(path, **arrays)
        return path

    def load(self, path: "str | Path") -> "Sequential":
        """Load parameters saved by :meth:`save` into this model."""
        with np.load(Path(path), allow_pickle=False) as archive:
            state = {k: archive[k] for k in archive.files if k != "__architecture__"}
        self.load_state_dict(state)
        return self
