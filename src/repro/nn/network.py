"""``Sequential`` model container with npz checkpointing."""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.nn.layers import Layer

# Layer constructors a checkpoint fingerprint may name (Sequential.from_saved).
_FINGERPRINT_LAYERS = ("Dense", "ReLU", "Tanh", "Sigmoid", "Flatten", "Conv2D", "MaxPool2D")


def _layer_from_fingerprint(text: str) -> Layer:
    """Instantiate a whitelisted layer from its ``repr`` string.

    Accepts exactly one call of a registry layer with literal
    positional/keyword arguments (``Dense(128, 64)``,
    ``Conv2D(1, 16, kernel_size=(3, 3), padding='same')``); anything
    else — attribute access, nested calls, names as arguments — is
    rejected, so untrusted checkpoints cannot smuggle code through the
    fingerprint.
    """
    from repro.nn import layers as _layers

    node = ast.parse(text, mode="eval").body
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
        raise ValueError(f"fingerprint is not a plain layer call: {text!r}")
    if node.func.id not in _FINGERPRINT_LAYERS:
        raise ValueError(f"layer {node.func.id!r} is not reconstructable from a fingerprint")
    args = [ast.literal_eval(arg) for arg in node.args]
    kwargs = {kw.arg: ast.literal_eval(kw.value) for kw in node.keywords if kw.arg is not None}
    return getattr(_layers, node.func.id)(*args, **kwargs)


class Sequential:
    """A plain feed-forward stack of :class:`Layer` objects.

    >>> model = Sequential([Dense(4, 8, rng=0), ReLU(), Dense(8, 2, rng=1)])
    >>> y = model.forward(x)                         # doctest: +SKIP
    >>> model.backward(grad_y)                       # doctest: +SKIP
    """

    def __init__(self, layers: "Sequence[Layer] | None" = None) -> None:
        self.layers: list[Layer] = list(layers) if layers is not None else []
        for layer in self.layers:
            self._check_layer(layer)

    @staticmethod
    def _check_layer(layer: Layer) -> None:
        if not isinstance(layer, Layer):
            raise TypeError(f"expected a Layer, got {type(layer).__name__}")

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer; returns self for chaining."""
        self._check_layer(layer)
        self.layers.append(layer)
        return self

    # -- forward / backward --------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the full stack."""
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the stack (reverse order)."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def set_eval_backend(self, backend) -> "Sequential":
        """Route evaluation-mode Dense GEMMs through a kernel backend.

        ``backend`` is a ``repro.kernels`` backend instance or ``None``
        (the reference block loop).  Training is unaffected.  Returns
        self for chaining.
        """
        for layer in self.layers:
            if hasattr(layer, "eval_backend"):
                layer.eval_backend = backend
        return self

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Inference in evaluation mode, batched to bound memory.

        Chunks are written straight into one preallocated output array
        (sized from the first chunk) instead of the list-append +
        concatenate pattern, so large predictions cost one output
        allocation and no final copy.  float32 inputs stay float32 end
        to end (the serving tier); anything else is coerced to float64
        exactly as before.
        """
        x = np.asarray(x)
        if x.dtype != np.float32:
            x = np.asarray(x, dtype=np.float64)
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        n = x.shape[0]
        if n <= batch_size:
            return self.forward(x, training=False)
        first = self.forward(x[:batch_size], training=False)
        out = np.empty((n, *first.shape[1:]), dtype=first.dtype)
        out[:batch_size] = first
        for i in range(batch_size, n, batch_size):
            out[i : i + batch_size] = self.forward(x[i : i + batch_size], training=False)
        return out

    # -- parameters ------------------------------------------------------
    def param_grad_pairs(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Stable-ordered (parameter, gradient) array pairs for optimizers."""
        pairs: list[tuple[np.ndarray, np.ndarray]] = []
        for layer in self.layers:
            for name in sorted(layer.params):
                pairs.append((layer.params[name], layer.grads[name]))
        return pairs

    def zero_grad(self) -> None:
        """Reset every accumulated gradient to zero."""
        for layer in self.layers:
            layer.zero_grad()

    @property
    def n_parameters(self) -> int:
        """Total trainable scalar count."""
        return sum(layer.n_parameters for layer in self.layers)

    def summary(self) -> str:
        """Human-readable architecture listing."""
        lines = [f"Sequential with {len(self.layers)} layers, {self.n_parameters:,} parameters"]
        for i, layer in enumerate(self.layers):
            lines.append(f"  [{i:2d}] {layer!r:60s} params={layer.n_parameters:,}")
        return "\n".join(lines)

    # -- persistence -----------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping ``"{layer_index}.{param_name}" -> array``."""
        state: dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for name, value in layer.params.items():
                state[f"{i}.{name}"] = value
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Copy arrays into the existing parameters (shape-checked)."""
        expected = self.state_dict()
        missing = sorted(set(expected) - set(state))
        extra = sorted(set(state) - set(expected))
        if missing or extra:
            raise ValueError(f"state mismatch: missing={missing}, unexpected={extra}")
        for key, current in expected.items():
            new = np.asarray(state[key], dtype=np.float64)
            if new.shape != current.shape:
                raise ValueError(f"shape mismatch for {key}: {new.shape} vs {current.shape}")
            current[...] = new

    def save(self, path: "str | Path") -> Path:
        """Serialize parameters (and a layer fingerprint) to ``.npz``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arch = json.dumps([repr(layer) for layer in self.layers])
        arrays = {k: v for k, v in self.state_dict().items()}
        arrays["__architecture__"] = np.frombuffer(arch.encode("utf-8"), dtype=np.uint8)
        np.savez_compressed(path, **arrays)
        return path

    def load(self, path: "str | Path") -> "Sequential":
        """Load parameters saved by :meth:`save` into this model."""
        with np.load(Path(path), allow_pickle=False) as archive:
            state = {k: archive[k] for k in archive.files if k != "__architecture__"}
        self.load_state_dict(state)
        return self

    @classmethod
    def from_saved(cls, path: "str | Path") -> "Sequential":
        """Rebuild architecture *and* weights from a :meth:`save` file.

        The checkpoint's layer fingerprint (the ``repr`` of every
        layer) is parsed — never evaluated — against a whitelist of
        layer constructors with literal arguments, then the saved
        parameters are loaded into the rebuilt stack.  A checkpoint is
        data, not code: like the ``allow_pickle=False`` loads, a
        hostile ``model.npz`` must not be able to run anything.  Works
        for every layer whose ``repr`` round-trips (Dense, activations,
        Flatten, Conv2D, MaxPool2D); layers that do not (e.g. Dropout)
        raise with a pointer to constructing the model explicitly.
        """
        path = Path(path)
        with np.load(path, allow_pickle=False) as archive:
            if "__architecture__" not in archive.files:
                raise ValueError(f"{path} has no architecture fingerprint")
            reprs = json.loads(bytes(archive["__architecture__"]).decode("utf-8"))
        stack: list[Layer] = []
        for text in reprs:
            try:
                stack.append(_layer_from_fingerprint(text))
            except Exception as exc:
                raise ValueError(
                    f"cannot rebuild layer from fingerprint {text!r}; construct the "
                    "architecture explicitly and use load() instead"
                ) from exc
        return cls(stack).load(path)
