"""Gradient-descent optimizers.

The paper uses Adam with learning rate 1e-4 and batch size 64
(Sec. IV-A).  Implementations follow the canonical update rules
(Kingma & Ba 2015 for Adam, with bias correction); state is kept per
parameter slot, indexed by position in the parameter list, which is
stable because architectures are fixed during training.
"""

from __future__ import annotations

import numpy as np

ParamGradPairs = "list[tuple[np.ndarray, np.ndarray]]"


class Optimizer:
    """Interface: ``step`` applies one in-place update per parameter."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def step(self, param_grad_pairs: "list[tuple[np.ndarray, np.ndarray]]") -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: "list[np.ndarray] | None" = None

    def step(self, param_grad_pairs: "list[tuple[np.ndarray, np.ndarray]]") -> None:
        if self.momentum == 0.0:
            for p, g in param_grad_pairs:
                p -= self.lr * g
            return
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p, _ in param_grad_pairs]
        if len(self._velocity) != len(param_grad_pairs):
            raise ValueError("parameter list changed between optimizer steps")
        for v, (p, g) in zip(self._velocity, param_grad_pairs):
            v *= self.momentum
            v -= self.lr * g
            p += v


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates."""

    def __init__(
        self,
        lr: float = 1e-4,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got ({beta1}, {beta2})")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.t = 0
        self._m: "list[np.ndarray] | None" = None
        self._v: "list[np.ndarray] | None" = None

    def step(self, param_grad_pairs: "list[tuple[np.ndarray, np.ndarray]]") -> None:
        if self._m is None:
            self._m = [np.zeros_like(p) for p, _ in param_grad_pairs]
            self._v = [np.zeros_like(p) for p, _ in param_grad_pairs]
        assert self._v is not None
        if len(self._m) != len(param_grad_pairs):
            raise ValueError("parameter list changed between optimizer steps")
        self.t += 1
        bc1 = 1.0 - self.beta1**self.t
        bc2 = 1.0 - self.beta2**self.t
        for m, v, (p, g) in zip(self._m, self._v, param_grad_pairs):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


class RMSProp(Optimizer):
    """RMSProp with exponentially decaying squared-gradient average."""

    def __init__(self, lr: float = 1e-3, rho: float = 0.9, eps: float = 1e-8) -> None:
        super().__init__(lr)
        if not 0.0 <= rho < 1.0:
            raise ValueError(f"rho must be in [0, 1), got {rho}")
        self.rho = rho
        self.eps = eps
        self._cache: "list[np.ndarray] | None" = None

    def step(self, param_grad_pairs: "list[tuple[np.ndarray, np.ndarray]]") -> None:
        if self._cache is None:
            self._cache = [np.zeros_like(p) for p, _ in param_grad_pairs]
        if len(self._cache) != len(param_grad_pairs):
            raise ValueError("parameter list changed between optimizer steps")
        for c, (p, g) in zip(self._cache, param_grad_pairs):
            c *= self.rho
            c += (1.0 - self.rho) * g * g
            p -= self.lr * g / (np.sqrt(c) + self.eps)
