"""Training loop.

Reproduces the paper's protocol: mini-batch Adam (batch 64, lr 1e-4)
for a fixed number of epochs with a validation set monitored each
epoch.  Early stopping is available but off by default (the paper
trains a fixed 150/100 epochs).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.nn.data import DataLoader
from repro.nn.losses import Loss, MSELoss
from repro.nn.metrics import mean_absolute_error
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam, Optimizer
from repro.utils.rng import as_generator


@dataclass
class TrainingHistory:
    """Per-epoch series recorded during :meth:`Trainer.fit`."""

    loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_mae: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)

    @property
    def n_epochs(self) -> int:
        return len(self.loss)

    def best_epoch(self) -> int:
        """Index of the epoch with the lowest validation loss."""
        if not self.val_loss:
            raise ValueError("no validation history recorded")
        return int(np.argmin(self.val_loss))


class Trainer:
    """Binds a model, a loss and an optimizer into a fit/evaluate API."""

    def __init__(
        self,
        model: Sequential,
        loss: "Loss | None" = None,
        optimizer: "Optimizer | None" = None,
    ) -> None:
        self.model = model
        self.loss = loss if loss is not None else MSELoss()
        self.optimizer = optimizer if optimizer is not None else Adam(lr=1e-4)

    def train_step(self, xb: np.ndarray, yb: np.ndarray) -> float:
        """One mini-batch update; returns the batch loss."""
        self.model.zero_grad()
        pred = self.model.forward(xb, training=True)
        value = self.loss.forward(pred, yb)
        self.model.backward(self.loss.backward())
        self.optimizer.step(self.model.param_grad_pairs())
        return value

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        batch_size: int = 64,
        validation: "tuple[np.ndarray, np.ndarray] | None" = None,
        rng: "int | np.random.Generator | None" = None,
        patience: "int | None" = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` epochs; optionally early-stop on val loss.

        ``patience`` (if set) stops training after that many epochs
        without a new validation-loss minimum; the best weights are NOT
        restored (matching simple Keras usage without checkpointing).
        """
        if epochs < 0:
            raise ValueError(f"epochs must be non-negative, got {epochs}")
        if patience is not None and validation is None:
            raise ValueError("early stopping requires a validation set")
        loader = DataLoader(x, y, batch_size=batch_size, shuffle=True, rng=as_generator(rng))
        history = TrainingHistory()
        best_val = np.inf
        stale = 0
        for epoch in range(epochs):
            start = time.perf_counter()
            batch_losses = [self.train_step(xb, yb) for xb, yb in loader]
            history.loss.append(float(np.mean(batch_losses)))
            history.epoch_seconds.append(time.perf_counter() - start)
            if validation is not None:
                val_pred = self.model.predict(validation[0])
                history.val_loss.append(self.loss.forward(val_pred, validation[1]))
                history.val_mae.append(mean_absolute_error(val_pred, validation[1]))
            if verbose:
                msg = f"epoch {epoch + 1:3d}/{epochs}  loss={history.loss[-1]:.3e}"
                if validation is not None:
                    msg += f"  val_loss={history.val_loss[-1]:.3e}  val_mae={history.val_mae[-1]:.3e}"
                print(msg)
            if patience is not None:
                if history.val_loss[-1] < best_val - 1e-12:
                    best_val = history.val_loss[-1]
                    stale = 0
                else:
                    stale += 1
                    if stale >= patience:
                        break
        return history

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> dict[str, float]:
        """Loss + MAE/max-error metrics on a held-out set."""
        from repro.nn.metrics import max_absolute_error  # local to avoid cycle noise

        pred = self.model.predict(x)
        return {
            "loss": self.loss.forward(pred, np.asarray(y, dtype=np.float64)),
            "mae": mean_absolute_error(pred, y),
            "max_error": max_absolute_error(pred, y),
        }
