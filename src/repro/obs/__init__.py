"""Observability: end-to-end request tracing + telemetry rendering.

Stdlib-only (no third-party dependencies, no numpy) so every layer of
the stack — client transports, the asyncio server, the service worker
thread and spawned executor workers — can import it without cost.

Three pieces:

* :mod:`repro.obs.trace` — the ``Trace``/``Span`` API: context-manager
  spans with monotonic timings, nested parent ids and bounded per-span
  attributes, collected per trace and kept in a process-wide bounded
  :class:`TraceBuffer` ring.  The module-level :data:`NOOP_TRACER` is
  the zero-cost default; a real :class:`Tracer` is switched in via
  ``SimulationService(tracing=True)`` / ``repro serve --trace``.
* :mod:`repro.obs.prometheus` — bounded duration histograms plus a
  renderer turning the server's ``/v1/metrics`` JSON snapshot into
  Prometheus text exposition format.
* :mod:`repro.obs.waterfall` — the ``repro trace`` inspector's span
  timeline rendering (per-span bars, durations and percentages).
* :mod:`repro.obs.metrics` — process-global counters for the data
  campaign pipeline and model registry, folded into the server's
  metrics snapshot.
"""

from repro.obs.metrics import (
    campaign_snapshot,
    record_campaign_shard,
    registry_snapshot,
    set_registry_models,
)
from repro.obs.prometheus import DurationHistogram, render_prometheus
from repro.obs.trace import (
    NOOP_TRACE,
    NOOP_TRACER,
    PARENT_HEADER,
    TRACE_HEADER,
    NoopTracer,
    Span,
    Trace,
    TraceBuffer,
    Tracer,
    new_span_id,
    new_trace_id,
    span_tree,
    spans_from_wire,
)
from repro.obs.waterfall import render_waterfall

__all__ = [
    "NOOP_TRACE",
    "NOOP_TRACER",
    "PARENT_HEADER",
    "TRACE_HEADER",
    "DurationHistogram",
    "NoopTracer",
    "Span",
    "Trace",
    "TraceBuffer",
    "Tracer",
    "campaign_snapshot",
    "new_span_id",
    "new_trace_id",
    "record_campaign_shard",
    "registry_snapshot",
    "render_prometheus",
    "set_registry_models",
    "render_waterfall",
    "span_tree",
    "spans_from_wire",
]
