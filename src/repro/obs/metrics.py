"""Process-global campaign + registry telemetry counters.

The streaming data-campaign pipeline (:mod:`repro.datagen.stream`) and
the content-addressed model registry (:mod:`repro.registry`) run both
inside and outside a server process, so their counters live here as
process-wide state rather than on any one service object.  The server's
``/v1/metrics`` snapshot reads them through :func:`campaign_snapshot` /
:func:`registry_snapshot`, and ``render_prometheus`` turns them into
the ``repro_campaign_shards_total{status=...}`` counter and the
``repro_registry_models`` gauge.

Stdlib-only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import threading

__all__ = [
    "campaign_snapshot",
    "record_campaign_shard",
    "registry_snapshot",
    "reset_metrics",
    "set_registry_models",
]

#: Shard completion statuses recorded by the campaign stream:
#: ``executed`` (ran through the client), ``verified`` (an intact
#: durable shard was adopted without recomputation) and ``repaired``
#: (a corrupt/truncated shard was detected and re-executed).
SHARD_STATUSES = ("executed", "verified", "repaired")

_lock = threading.Lock()
_shards_by_status: "dict[str, int]" = {}
_registry_models = 0


def record_campaign_shard(status: str, n: int = 1) -> None:
    """Count ``n`` campaign shards completed with ``status``."""
    with _lock:
        _shards_by_status[status] = _shards_by_status.get(status, 0) + n


def set_registry_models(count: int) -> None:
    """Record the current number of models in the registry (a gauge)."""
    global _registry_models
    with _lock:
        _registry_models = int(count)


def campaign_snapshot() -> "dict[str, object]":
    """JSON-friendly campaign counters for ``/v1/metrics``."""
    with _lock:
        by_status = dict(_shards_by_status)
    return {
        "shards_total": sum(by_status.values()),
        "shards_by_status": by_status,
    }


def registry_snapshot() -> "dict[str, object]":
    """JSON-friendly registry gauges for ``/v1/metrics``."""
    with _lock:
        return {"models": _registry_models}


def reset_metrics() -> None:
    """Zero all counters (test isolation)."""
    global _registry_models
    with _lock:
        _shards_by_status.clear()
        _registry_models = 0
