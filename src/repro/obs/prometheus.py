"""Duration histograms and Prometheus text exposition rendering.

:class:`DurationHistogram` is a fixed-log-bucket, thread-safe duration
accumulator used by the server for per-stage timing distributions.
:func:`render_prometheus` turns the server's ``/v1/metrics`` JSON
snapshot into Prometheus text exposition format (version 0.0.4) — the
JSON snapshot stays the canonical schema; this is a pure rendering of
it, so the two can never drift apart.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping

__all__ = ["DEFAULT_BUCKETS", "DurationHistogram", "render_prometheus"]

#: Log-spaced duration buckets (seconds) covering sub-ms engine steps
#: through multi-second queue waits.  Upper bounds, cumulative, +Inf
#: bucket implied.
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class DurationHistogram:
    """Cumulative-bucket duration histogram (Prometheus semantics)."""

    def __init__(self, buckets=DEFAULT_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("DurationHistogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf overflow
        self.count = 0
        self.sum_s = 0.0
        self.max_s = 0.0
        self._lock = threading.Lock()

    def observe(self, value):
        value = float(value)
        if value < 0.0 or value != value:  # negative or NaN: not a duration
            return
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.sum_s += value
            if value > self.max_s:
                self.max_s = value

    def snapshot(self):
        """JSON-friendly cumulative view: ``{"0.001": n, ..., "inf": n}``."""

        with self._lock:
            counts = list(self._counts)
            total, sum_s, max_s = self.count, self.sum_s, self.max_s
        buckets = {}
        running = 0
        for bound, n in zip(self.bounds, counts):
            running += n
            buckets[format(bound, "g")] = running
        buckets["inf"] = total
        return {"count": total, "sum_s": sum_s, "max_s": max_s, "buckets": buckets}


def _escape_label(value) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _num(value):
    """Format a metric value; returns None for non-numeric input."""

    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return repr(float(value)) if isinstance(value, float) else str(value)


class _Writer:
    def __init__(self):
        self.lines = []

    def header(self, name, kind, help_text):
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name, value, labels=None):
        rendered = _num(value)
        if rendered is None:
            return
        if labels:
            inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels.items())
            self.lines.append(f"{name}{{{inner}}} {rendered}")
        else:
            self.lines.append(f"{name} {rendered}")

    def text(self):
        return "\n".join(self.lines) + "\n"


def _flat_gauges(writer, prefix, mapping, help_text):
    """Emit each numeric leaf of ``mapping`` as ``<prefix>_<key>``."""

    for key, value in mapping.items():
        if _num(value) is None:
            continue
        name = f"{prefix}_{key}"
        writer.header(name, "gauge", f"{help_text} ({key}).")
        writer.sample(name, value)


def render_prometheus(snapshot: Mapping) -> str:
    """Render a ``/v1/metrics`` JSON snapshot as Prometheus text."""

    w = _Writer()

    requests = snapshot.get("requests", {})
    w.header("repro_requests_total", "counter", "Run requests received.")
    w.sample("repro_requests_total", requests.get("total", 0))
    by_endpoint = requests.get("by_endpoint", {})
    if by_endpoint:
        w.header(
            "repro_requests_by_endpoint_total", "counter", "Run requests per endpoint."
        )
        for endpoint, count in sorted(by_endpoint.items()):
            w.sample(
                "repro_requests_by_endpoint_total", count, {"endpoint": endpoint}
            )
    by_status = requests.get("by_status", {})
    if by_status:
        w.header(
            "repro_requests_by_status_total", "counter", "Run requests per outcome."
        )
        for status, count in sorted(by_status.items()):
            w.sample("repro_requests_by_status_total", count, {"status": status})

    parse_failures = snapshot.get("parse_failures", {})
    w.header(
        "repro_parse_failures_total",
        "counter",
        "Requests rejected before execution (unparseable payloads).",
    )
    w.sample("repro_parse_failures_total", parse_failures.get("total", 0))
    by_endpoint = parse_failures.get("by_endpoint", {})
    if by_endpoint:
        w.header(
            "repro_parse_failures_by_endpoint_total",
            "counter",
            "Parse failures per endpoint.",
        )
        for endpoint, count in sorted(by_endpoint.items()):
            w.sample(
                "repro_parse_failures_by_endpoint_total",
                count,
                {"endpoint": endpoint},
            )

    http = snapshot.get("http_responses", {})
    if http:
        w.header("repro_http_responses_total", "counter", "HTTP responses per code.")
        for code, count in sorted(http.items()):
            w.sample("repro_http_responses_total", count, {"code": code})

    connections = snapshot.get("connections", {})
    if connections:
        _flat_gauges(w, "repro_connections", connections, "Connection gauge")
    queue = snapshot.get("queue", {})
    if queue:
        _flat_gauges(w, "repro_queue", queue, "Admission queue gauge")

    if _num(snapshot.get("cache_hit_ratio")) is not None:
        w.header("repro_cache_hit_ratio", "gauge", "Result-store hit ratio.")
        w.sample("repro_cache_hit_ratio", snapshot["cache_hit_ratio"])

    batches = snapshot.get("batch_size_histogram", {})
    if batches:
        w.header(
            "repro_batch_size_total", "counter", "Executed batches per batch size."
        )
        for size, count in sorted(batches.items(), key=lambda kv: int(kv[0])):
            w.sample("repro_batch_size_total", count, {"size": size})

    latency = snapshot.get("latency", {})
    if latency:
        w.header(
            "repro_request_latency_seconds",
            "summary",
            "Executed-request latency quantiles.",
        )
        for key, quantile in (("p50_s", "0.5"), ("p90_s", "0.9"), ("p99_s", "0.99")):
            if _num(latency.get(key)) is not None:
                w.sample(
                    "repro_request_latency_seconds",
                    latency[key],
                    {"quantile": quantile},
                )
        w.sample("repro_request_latency_seconds_count", latency.get("count", 0))
        if _num(latency.get("max_s")) is not None:
            w.header(
                "repro_request_latency_seconds_max",
                "gauge",
                "Executed-request latency max over the reservoir window.",
            )
            w.sample("repro_request_latency_seconds_max", latency["max_s"])

    stages = snapshot.get("stages", {})
    if stages:
        w.header(
            "repro_stage_duration_seconds",
            "histogram",
            "Per-request stage durations (seconds).",
        )
    for stage, hist in sorted(stages.items()):
        if not isinstance(hist, Mapping):
            continue
        name = "repro_stage_duration_seconds"
        for le, count in hist.get("buckets", {}).items():
            label_le = "+Inf" if le == "inf" else le
            w.sample(f"{name}_bucket", count, {"stage": stage, "le": label_le})
        w.sample(f"{name}_sum", hist.get("sum_s", 0.0), {"stage": stage})
        w.sample(f"{name}_count", hist.get("count", 0), {"stage": stage})

    service = snapshot.get("service", {})
    if isinstance(service, Mapping):
        _flat_gauges(w, "repro_service", service, "Service gauge")
        tiers = service.get("runs_by_tier", {})
        if isinstance(tiers, Mapping) and tiers:
            w.header(
                "repro_service_runs_by_tier_total",
                "counter",
                "Executed engine runs per dtype/kernel-backend tier.",
            )
            for tier, count in sorted(tiers.items()):
                dtype, _, backend = str(tier).partition("/")
                w.sample(
                    "repro_service_runs_by_tier_total",
                    count,
                    {"dtype": dtype, "backend": backend},
                )
    pool = snapshot.get("pool", {})
    if isinstance(pool, Mapping):
        _flat_gauges(w, "repro_pool", pool, "Executor pool gauge")
    traces = snapshot.get("traces", {})
    if isinstance(traces, Mapping):
        _flat_gauges(w, "repro_traces", traces, "Trace buffer gauge")

    campaign = snapshot.get("campaign", {})
    if isinstance(campaign, Mapping) and campaign:
        w.header(
            "repro_campaign_shards_total",
            "counter",
            "Data-campaign shards completed per status.",
        )
        by_status = campaign.get("shards_by_status", {})
        if isinstance(by_status, Mapping):
            for status, count in sorted(by_status.items()):
                w.sample(
                    "repro_campaign_shards_total", count, {"status": status}
                )

    registry = snapshot.get("registry", {})
    if isinstance(registry, Mapping) and registry:
        w.header(
            "repro_registry_models",
            "gauge",
            "Checkpoints in the content-addressed model registry.",
        )
        w.sample("repro_registry_models", registry.get("models", 0))

    return w.text()
