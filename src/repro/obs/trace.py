"""Trace/Span primitives for end-to-end request tracing.

A :class:`Trace` collects :class:`Span` records for one request as it
crosses the stack: client transport → HTTP server → service →
executor worker → engine steps.  Spans time themselves with
``time.perf_counter`` (monotonic, sub-microsecond) and record absolute
perf-counter instants; on the wire and in rendered payloads every
instant is expressed relative to a base so traces survive process
boundaries.

Cross-process spans (executor workers, remote clients) are measured in
their own process — whose perf-counter epoch is unrelated — shipped as
*relative* span dicts (``start_s`` relative to their own window), and
re-anchored into the adopting trace's timeline with
:meth:`Trace.adopt`.

Everything here is stdlib-only and thread-safe.  The zero-cost default
is :data:`NOOP_TRACER`: its traces and spans are falsy singletons whose
methods do nothing, so hot paths guard with ``if trace:`` and pay one
attribute lookup when tracing is off.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import OrderedDict
from collections.abc import Iterable, Mapping, Sequence

__all__ = [
    "NOOP_TRACE",
    "NOOP_TRACER",
    "PARENT_HEADER",
    "TRACE_HEADER",
    "MAX_ATTRIBUTES_PER_SPAN",
    "MAX_SPANS_PER_TRACE",
    "NoopTracer",
    "Span",
    "Trace",
    "TraceBuffer",
    "Tracer",
    "new_span_id",
    "new_trace_id",
    "span_tree",
    "spans_from_wire",
]

#: HTTP header carrying the trace id from client transports to the server.
TRACE_HEADER = "X-Repro-Trace-Id"
#: HTTP header carrying the client-side parent span id, so the server's
#: root span nests under the client's HTTP span in the merged tree.
PARENT_HEADER = "X-Repro-Parent-Span"

#: Per-span attribute cap: spans are telemetry, not a payload channel.
MAX_ATTRIBUTES_PER_SPAN = 16
#: Per-trace span cap; excess spans are counted in ``Trace.dropped``.
MAX_SPANS_PER_TRACE = 512

_SCALARS = (str, int, float, bool)


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""

    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-char span id."""

    return uuid.uuid4().hex[:16]


def _clean_attr(value):
    if value is None or isinstance(value, _SCALARS):
        return value
    return str(value)


class Span:
    """One timed operation inside a trace.

    Use as a context manager (via :meth:`Trace.span`) or call
    :meth:`finish` explicitly.  ``start`` / ``end`` are absolute
    ``time.perf_counter`` instants in this process; rendering converts
    them to offsets from the trace base.
    """

    __slots__ = ("attributes", "end", "name", "parent_id", "span_id", "start", "_trace")

    def __init__(self, name, *, trace=None, parent_id=None, start=None, span_id=None):
        self.name = str(name)
        self.span_id = span_id if span_id is not None else new_span_id()
        self.parent_id = parent_id
        self.start = time.perf_counter() if start is None else float(start)
        self.end = None
        self.attributes = {}
        self._trace = trace

    @property
    def duration_s(self):
        """Span duration in seconds, or ``None`` while still open."""

        if self.end is None:
            return None
        return self.end - self.start

    def set_attribute(self, key, value):
        """Attach a JSON-scalar attribute (bounded per span)."""

        if len(self.attributes) >= MAX_ATTRIBUTES_PER_SPAN and key not in self.attributes:
            return self
        self.attributes[str(key)] = _clean_attr(value)
        return self

    def finish(self, *, end=None):
        """Close the span (idempotent) and hand it to its trace."""

        if self.end is not None:
            return self
        self.end = time.perf_counter() if end is None else float(end)
        trace, self._trace = self._trace, None
        if trace is not None:
            trace.add_span(self)
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            self.set_attribute("error", f"{exc_type.__name__}: {exc}")
        self.finish()
        return False

    def to_dict(self, base=0.0):
        """Serialize with ``start_s`` relative to ``base``."""

        end = self.end if self.end is not None else self.start
        out = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start - base,
            "duration_s": end - self.start,
        }
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        return out

    def __repr__(self):  # pragma: no cover - debugging aid
        dur = self.duration_s
        state = f"{dur * 1e3:.3f}ms" if dur is not None else "open"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


def spans_from_wire(spans: Iterable[Mapping]) -> list[dict]:
    """Validate a list of wire-format span dicts (raises ``ValueError``).

    Wire spans are relative: ``start_s`` is an offset from the sender's
    own window origin.  Used by the server when a remote client ships
    its half of a trace.
    """

    cleaned = []
    for index, raw in enumerate(spans):
        if not isinstance(raw, Mapping):
            raise ValueError(f"span #{index} is not an object")
        name = raw.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"span #{index} is missing a name")
        span_id = raw.get("span_id")
        if not isinstance(span_id, str) or not span_id:
            raise ValueError(f"span {name!r} is missing a span_id")
        parent_id = raw.get("parent_id")
        if parent_id is not None and not isinstance(parent_id, str):
            raise ValueError(f"span {name!r} has a non-string parent_id")
        try:
            start_s = float(raw.get("start_s", 0.0))
            duration_s = float(raw.get("duration_s", 0.0))
        except (TypeError, ValueError):
            raise ValueError(f"span {name!r} has non-numeric timings") from None
        span = {
            "span_id": span_id,
            "parent_id": parent_id,
            "name": name,
            "start_s": start_s,
            "duration_s": max(0.0, duration_s),
        }
        attrs = raw.get("attributes")
        if attrs:
            if not isinstance(attrs, Mapping):
                raise ValueError(f"span {name!r} attributes must be an object")
            span["attributes"] = {
                str(k): _clean_attr(v)
                for k, v in list(attrs.items())[:MAX_ATTRIBUTES_PER_SPAN]
            }
        cleaned.append(span)
    return cleaned


class Trace:
    """A bounded, thread-safe collection of spans for one request."""

    def __init__(self, trace_id=None, *, name="request", buffer=None):
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.name = str(name)
        self.t0 = time.perf_counter()
        self.dropped = 0
        self._spans = []       # finished Span objects (absolute instants)
        self._remote = []      # adopted span dicts (absolute instants)
        self._finished = False
        self._buffer = buffer
        self._lock = threading.Lock()

    def __bool__(self):
        return True

    # -- recording -----------------------------------------------------

    def start_span(self, name, *, parent_id=None):
        """Open a span; caller must ``finish()`` it (or use :meth:`span`)."""

        return Span(name, trace=self, parent_id=parent_id)

    def span(self, name, *, parent_id=None):
        """Context-manager sugar: ``with trace.span("stage") as sp:``."""

        return self.start_span(name, parent_id=parent_id)

    def add_span(self, span):
        """Record a finished :class:`Span` (called by ``Span.finish``)."""

        with self._lock:
            if len(self._spans) + len(self._remote) >= MAX_SPANS_PER_TRACE:
                self.dropped += 1
                return
            self._spans.append(span)

    def adopt(self, spans: Sequence[Mapping], *, anchor, parent_id=None):
        """Re-anchor relative span dicts into this trace's timeline.

        ``anchor`` is the local ``perf_counter`` instant corresponding
        to the senders' window origin (``start_s == 0``).  Spans whose
        ``parent_id`` is ``None`` are re-parented under ``parent_id``,
        grafting the foreign subtree into this trace's span tree.
        """

        with self._lock:
            for raw in spans:
                if len(self._spans) + len(self._remote) >= MAX_SPANS_PER_TRACE:
                    self.dropped += 1
                    continue
                span = dict(raw)
                span["start_s"] = anchor + float(span.get("start_s", 0.0))
                if span.get("parent_id") is None and parent_id is not None:
                    span["parent_id"] = parent_id
                self._remote.append(span)

    def adopt_remote(self, spans: Sequence[Mapping]):
        """Merge a remote initiator's half of this trace (clock-aligned).

        Used when an HTTP client that *opened* the trace ships its
        spans after the fact.  Alignment: the propagation headers made
        a local span (``server.request``) a child of one of the shipped
        spans (``client.http``), so that shipped span must enclose the
        local one — the unaccounted time (network RTT) is split evenly
        before and after.  Without such a link the remote window is
        right-aligned to the latest local span end.
        """

        if not spans:
            return
        by_id = {s["span_id"]: s for s in spans}
        with self._lock:
            local = list(self._spans)
        anchor = None
        for span in local:
            parent = by_id.get(span.parent_id)
            if parent is None:
                continue
            local_dur = (span.end if span.end is not None else span.start) - span.start
            slack = max(0.0, float(parent["duration_s"]) - local_dur) / 2.0
            anchor = span.start - slack - float(parent["start_s"])
            break
        if anchor is None:
            ends = [
                (s.end if s.end is not None else s.start) for s in local
            ]
            latest = max(ends) if ends else time.perf_counter()
            total = max(
                (float(s["start_s"]) + float(s["duration_s"]) for s in spans),
                default=0.0,
            )
            anchor = latest - total
        self.adopt(spans, anchor=anchor)

    # -- completion ----------------------------------------------------

    def finish(self):
        """Mark the trace complete and publish it to the buffer (idempotent)."""

        with self._lock:
            if self._finished:
                return self
            self._finished = True
            buffer, self._buffer = self._buffer, None
        if buffer is not None:
            buffer.add(self)
        return self

    # -- rendering -----------------------------------------------------

    def span_dicts(self):
        """All spans as flat dicts, ``start_s`` relative to the earliest span."""

        with self._lock:
            local = [span.to_dict(0.0) for span in self._spans]
            remote = [dict(span) for span in self._remote]
        spans = local + remote
        if not spans:
            return []
        base = min(span["start_s"] for span in spans)
        for span in spans:
            span["start_s"] -= base
        spans.sort(key=lambda span: span["start_s"])
        return spans

    def to_payload(self):
        """JSON payload for ``GET /v1/trace/<id>``: metadata + span tree."""

        spans = self.span_dicts()
        duration = max((s["start_s"] + s["duration_s"] for s in spans), default=0.0)
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "n_spans": len(spans),
            "duration_s": duration,
            "dropped_spans": self.dropped,
            "complete": self._finished,
            "spans": span_tree(spans),
        }


def span_tree(spans: Sequence[Mapping]) -> list[dict]:
    """Nest flat span dicts into a tree via ``parent_id`` links.

    Spans whose parent is missing (cross-process gaps, dropped spans)
    become roots.  Children are sorted by start time.
    """

    nodes = OrderedDict()
    for span in spans:
        node = dict(span)
        node["children"] = []
        nodes[node["span_id"]] = node
    roots = []
    for node in nodes.values():
        parent = nodes.get(node["parent_id"]) if node["parent_id"] else None
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    def _sort(items):
        items.sort(key=lambda n: n["start_s"])
        for item in items:
            _sort(item["children"])
    _sort(roots)
    return roots


class TraceBuffer:
    """Process-wide bounded ring of recently completed traces."""

    def __init__(self, capacity=256):
        if capacity < 1:
            raise ValueError("TraceBuffer capacity must be >= 1")
        self.capacity = int(capacity)
        self._traces = OrderedDict()
        self._lock = threading.Lock()
        self.completed = 0
        self.evicted = 0

    def add(self, trace):
        with self._lock:
            self._traces.pop(trace.trace_id, None)
            self._traces[trace.trace_id] = trace
            self.completed += 1
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)
                self.evicted += 1

    def get(self, trace_id):
        with self._lock:
            return self._traces.get(trace_id)

    def last(self):
        with self._lock:
            if not self._traces:
                return None
            return next(reversed(self._traces.values()))

    def ids(self):
        with self._lock:
            return list(self._traces)

    def __len__(self):
        with self._lock:
            return len(self._traces)

    def stats(self):
        with self._lock:
            return {
                "capacity": self.capacity,
                "buffered": len(self._traces),
                "completed": self.completed,
                "evicted": self.evicted,
            }


class Tracer:
    """Factory for traces, bound to a :class:`TraceBuffer`."""

    enabled = True

    def __init__(self, *, buffer=None, capacity=256):
        self.buffer = buffer if buffer is not None else TraceBuffer(capacity)

    def start_trace(self, name="request", *, trace_id=None):
        return Trace(trace_id, name=name, buffer=self.buffer)

    def get(self, trace_id):
        return self.buffer.get(trace_id)


class _NoopSpan:
    """Falsy do-nothing span; one shared instance serves every call."""

    __slots__ = ()
    name = ""
    span_id = ""
    parent_id = None
    start = 0.0
    end = 0.0
    duration_s = 0.0
    attributes: dict = {}

    def __bool__(self):
        return False

    def set_attribute(self, key, value):
        return self

    def finish(self, *, end=None):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


class _NoopTrace:
    """Falsy do-nothing trace returned by :class:`NoopTracer`."""

    __slots__ = ()
    trace_id = ""
    name = ""
    t0 = 0.0
    dropped = 0

    def __bool__(self):
        return False

    def start_span(self, name, *, parent_id=None):
        return NOOP_SPAN

    span = start_span

    def add_span(self, span):
        return None

    def adopt(self, spans, *, anchor, parent_id=None):
        return None

    def adopt_remote(self, spans):
        return None

    def finish(self):
        return self

    def span_dicts(self):
        return []

    def to_payload(self):
        return {
            "trace_id": "",
            "name": "",
            "n_spans": 0,
            "duration_s": 0.0,
            "dropped_spans": 0,
            "complete": False,
            "spans": [],
        }


class NoopTracer:
    """Zero-cost tracer: every trace/span is a shared falsy singleton."""

    enabled = False
    buffer = None

    def start_trace(self, name="request", *, trace_id=None):
        return NOOP_TRACE

    def get(self, trace_id):
        return None


NOOP_SPAN = _NoopSpan()
NOOP_TRACE = _NoopTrace()
NOOP_TRACER = NoopTracer()
