"""Span-timeline ("waterfall") rendering for the ``repro trace`` CLI.

Takes the JSON payload served by ``GET /v1/trace/<id>`` (or embedded
in a drain-mode manifest) and renders a plain-text timeline: one row
per span with its duration, share of the trace, and a bracketed bar
positioned on the trace's time axis.
"""

from __future__ import annotations

from collections.abc import Mapping

__all__ = ["render_waterfall"]

_BAR_WIDTH = 40
_MAX_ATTRS_SHOWN = 4


def _flatten(nodes, depth=0, out=None):
    if out is None:
        out = []
    for node in nodes:
        out.append((depth, node))
        _flatten(node.get("children", ()), depth + 1, out)
    return out


def _attr_suffix(span: Mapping) -> str:
    attrs = span.get("attributes") or {}
    if not attrs:
        return ""
    parts = []
    for key, value in list(attrs.items())[:_MAX_ATTRS_SHOWN]:
        if isinstance(value, float):
            value = format(value, ".4g")
        parts.append(f"{key}={value}")
    return "  (" + ", ".join(parts) + ")"


def _bar(start_s, duration_s, total_s) -> str:
    if total_s <= 0.0:
        return "[" + " " * _BAR_WIDTH + "]"
    left = int(round(start_s / total_s * _BAR_WIDTH))
    left = min(left, _BAR_WIDTH - 1)
    width = int(round(duration_s / total_s * _BAR_WIDTH))
    width = max(1, min(width, _BAR_WIDTH - left))
    return "[" + " " * left + "=" * width + " " * (_BAR_WIDTH - left - width) + "]"


def render_waterfall(payload: Mapping) -> str:
    """Render a trace payload as a multi-line waterfall string."""

    spans = _flatten(payload.get("spans", ()))
    total_s = float(payload.get("duration_s", 0.0))
    if total_s <= 0.0:
        total_s = max(
            (node["start_s"] + node["duration_s"] for _, node in spans), default=0.0
        )

    header = (
        f"trace {payload.get('trace_id', '?')}  "
        f"{payload.get('name', 'request')}  "
        f"{payload.get('n_spans', len(spans))} spans  "
        f"total {total_s * 1e3:.2f} ms"
    )
    dropped = payload.get("dropped_spans", 0)
    if dropped:
        header += f"  ({dropped} spans dropped)"
    lines = [header]
    if not spans:
        lines.append("(no spans recorded)")
        return "\n".join(lines)

    names = [("  " * depth + node["name"]) for depth, node in spans]
    name_width = max(len(name) for name in names)
    name_width = max(name_width, len("span"))
    lines.append(
        f"{'span':<{name_width}}  {'ms':>10}  {'%':>6}  timeline"
    )
    for name, (_, node) in zip(names, spans):
        duration = float(node.get("duration_s", 0.0))
        start = float(node.get("start_s", 0.0))
        share = (duration / total_s * 100.0) if total_s > 0.0 else 0.0
        lines.append(
            f"{name:<{name_width}}  {duration * 1e3:>10.2f}  {share:>6.1f}  "
            f"{_bar(start, duration, total_s)}{_attr_suffix(node)}"
        )
    return "\n".join(lines)
