"""Distributed-memory execution model for the PIC cycle.

Section VII of the paper claims a key advantage of the DL field solver
on distributed-memory systems: the network is replicated on every
process, so the field solve needs no communication beyond reducing the
(small, additive) phase-space histogram, whereas the traditional solve
requires assembling the global charge density and solving a global
linear system.

This subpackage makes that claim quantitative without MPI (not
installable offline): an in-process communicator with byte-counting
collectives, a 1D domain decomposition of the PIC cycle that is
verified to reproduce the serial physics, and a communication-volume
model comparing both field-solve strategies.
"""

from repro.parallel.comm import CommStats, SimulatedComm
from repro.parallel.decomposition import DomainDecomposition1D
from repro.parallel.picparallel import (
    DistributedPICResult,
    communication_model,
    run_distributed_traditional,
    run_distributed_dl,
)

__all__ = [
    "CommStats",
    "SimulatedComm",
    "DomainDecomposition1D",
    "DistributedPICResult",
    "communication_model",
    "run_distributed_traditional",
    "run_distributed_dl",
]
