"""In-process communicator with byte-counting collectives.

``SimulatedComm`` executes MPI-style collectives over rank-local arrays
held in a single process (ranks are slots in a list).  Semantics follow
mpi4py's upper-case buffer API closely enough that the code reads like
an MPI program, while ``CommStats`` tracks how many payload bytes each
collective would have moved on a real network — the quantity the
Sec. VII comparison is about.

Byte accounting conventions (per call):

* ``allreduce(arrays)`` — every rank contributes and receives one
  buffer: ``2 * (size - 1)/size``-style factors vary by algorithm, so
  we charge the canonical recursive-doubling cost of one buffer
  traversal per rank: ``nbytes * size`` sent in total.
* ``allgather(arrays)`` — each rank sends its chunk to all others:
  total ``sum(nbytes_i) * (size - 1)``.
* ``reduce / gather`` to a root — total ``sum(nbytes_i of non-root)``.
* ``bcast`` from a root — ``nbytes * (size - 1)``.
* point-to-point ``sendrecv`` — the message size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class CommStats:
    """Accumulated communication-volume accounting."""

    bytes_by_op: dict[str, int] = field(default_factory=dict)
    calls_by_op: dict[str, int] = field(default_factory=dict)

    def charge(self, op: str, nbytes: int) -> None:
        """Add ``nbytes`` of traffic attributed to collective ``op``."""
        if nbytes < 0:
            raise ValueError(f"negative byte count: {nbytes}")
        self.bytes_by_op[op] = self.bytes_by_op.get(op, 0) + int(nbytes)
        self.calls_by_op[op] = self.calls_by_op.get(op, 0) + 1

    @property
    def total_bytes(self) -> int:
        """Total payload bytes across all operations."""
        return sum(self.bytes_by_op.values())

    @property
    def total_calls(self) -> int:
        """Total number of collective invocations."""
        return sum(self.calls_by_op.values())

    def reset(self) -> None:
        """Zero all counters."""
        self.bytes_by_op.clear()
        self.calls_by_op.clear()


class SimulatedComm:
    """A fixed-size communicator over in-process ranks."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"communicator size must be >= 1, got {size}")
        self.size = size
        self.stats = CommStats()

    def _check(self, arrays: "list[np.ndarray]") -> None:
        if len(arrays) != self.size:
            raise ValueError(f"expected {self.size} rank buffers, got {len(arrays)}")

    def allreduce(self, arrays: "list[np.ndarray]") -> "list[np.ndarray]":
        """Sum-allreduce: every rank receives the elementwise sum."""
        self._check(arrays)
        total = np.sum(np.stack([np.asarray(a) for a in arrays]), axis=0)
        if self.size > 1:
            self.stats.charge("allreduce", total.nbytes * self.size)
        return [total.copy() for _ in range(self.size)]

    def allgather(self, arrays: "list[np.ndarray]") -> "list[np.ndarray]":
        """Concatenate every rank's chunk on every rank."""
        self._check(arrays)
        gathered = np.concatenate([np.asarray(a) for a in arrays])
        if self.size > 1:
            sent = sum(np.asarray(a).nbytes for a in arrays)
            self.stats.charge("allgather", sent * (self.size - 1))
        return [gathered.copy() for _ in range(self.size)]

    def reduce(self, arrays: "list[np.ndarray]", root: int = 0) -> np.ndarray:
        """Sum-reduce to ``root``; only the root's buffer is returned."""
        self._check(arrays)
        self._check_root(root)
        total = np.sum(np.stack([np.asarray(a) for a in arrays]), axis=0)
        if self.size > 1:
            non_root = sum(
                np.asarray(a).nbytes for r, a in enumerate(arrays) if r != root
            )
            self.stats.charge("reduce", non_root)
        return total

    def gather(self, arrays: "list[np.ndarray]", root: int = 0) -> "list[np.ndarray]":
        """Gather every rank's chunk on ``root`` (returned as a list)."""
        self._check(arrays)
        self._check_root(root)
        if self.size > 1:
            non_root = sum(
                np.asarray(a).nbytes for r, a in enumerate(arrays) if r != root
            )
            self.stats.charge("gather", non_root)
        return [np.array(a, copy=True) for a in arrays]

    def bcast(self, array: np.ndarray, root: int = 0) -> "list[np.ndarray]":
        """Broadcast the root's buffer to every rank."""
        self._check_root(root)
        array = np.asarray(array)
        if self.size > 1:
            self.stats.charge("bcast", array.nbytes * (self.size - 1))
        return [array.copy() for _ in range(self.size)]

    def sendrecv(self, array: np.ndarray) -> np.ndarray:
        """Point-to-point transfer of one message (e.g. halo or particles)."""
        array = np.asarray(array)
        if self.size > 1:
            self.stats.charge("sendrecv", array.nbytes)
        return array.copy()

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise ValueError(f"root {root} out of range for size {self.size}")
