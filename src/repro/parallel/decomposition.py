"""1D spatial domain decomposition of the periodic PIC grid.

Cells are split into contiguous, near-equal slabs; each rank owns the
particles whose positions fall inside its slab.  Particle migration
after the position push and the rank-local slice of any global grid
field are the two primitives the distributed PIC cycle needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pic.grid import Grid1D


@dataclass(frozen=True)
class DomainDecomposition1D:
    """Contiguous slab decomposition of ``grid`` over ``n_ranks`` ranks."""

    grid: Grid1D
    n_ranks: int

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {self.n_ranks}")
        if self.n_ranks > self.grid.n_cells:
            raise ValueError(
                f"cannot split {self.grid.n_cells} cells over {self.n_ranks} ranks"
            )

    def cell_bounds(self, rank: int) -> tuple[int, int]:
        """Half-open cell index range ``[start, stop)`` owned by ``rank``."""
        self._check_rank(rank)
        n, r = divmod(self.grid.n_cells, self.n_ranks)
        start = rank * n + min(rank, r)
        stop = start + n + (1 if rank < r else 0)
        return start, stop

    def x_bounds(self, rank: int) -> tuple[float, float]:
        """Spatial extent ``[x_start, x_stop)`` owned by ``rank``."""
        start, stop = self.cell_bounds(rank)
        return start * self.grid.dx, stop * self.grid.dx

    def n_local_cells(self, rank: int) -> int:
        """Number of cells owned by ``rank``."""
        start, stop = self.cell_bounds(rank)
        return stop - start

    def owner_of(self, x: np.ndarray) -> np.ndarray:
        """Owning rank of each (wrapped) position."""
        x = self.grid.wrap(np.asarray(x, dtype=np.float64))
        cells = np.minimum(
            (x / self.grid.dx).astype(np.int64), self.grid.n_cells - 1
        )
        # Invert the slab mapping: rank boundaries in cell space.
        bounds = np.array([self.cell_bounds(r)[0] for r in range(self.n_ranks)] + [self.grid.n_cells])
        return np.searchsorted(bounds, cells, side="right") - 1

    def partition(self, x: np.ndarray, *arrays: np.ndarray) -> "list[tuple[np.ndarray, ...]]":
        """Split positions (and parallel arrays) by owning rank.

        Returns one tuple ``(x_rank, *arrays_rank)`` per rank.
        """
        owners = self.owner_of(x)
        out = []
        for rank in range(self.n_ranks):
            mask = owners == rank
            out.append(tuple(np.asarray(a)[mask] for a in (x, *arrays)))
        return out

    def local_slice(self, rank: int) -> slice:
        """Slice selecting this rank's cells from a global grid array."""
        start, stop = self.cell_bounds(rank)
        return slice(start, stop)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range for {self.n_ranks} ranks")
