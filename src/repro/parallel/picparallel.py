"""Distributed-memory execution of both PIC methods (simulated ranks).

Implements the paper's Sec. VII discussion as runnable code.  Each rank
owns a spatial slab and the particles inside it.  Per step:

**Traditional field solve** — ranks deposit their particles' charge
locally, the density is summed to a root rank (``reduce``), the root
solves the Poisson system, and the field is replicated back
(``bcast``).  Particles crossing slab boundaries migrate point-to-point.

**DL field solve** — ranks bin their local particles into partial
phase-space histograms (binning is additive), one ``allreduce``
combines them, and every rank then runs the replicated network locally:
no field-solve gather/broadcast, one synchronization point per step.

Both distributed drivers are verified (tests) to reproduce the serial
methods' physics, since decomposition only reorders arithmetic.
``communication_model`` additionally provides the closed-form per-step
byte counts so sweeps over rank counts don't need actual runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.config import SimulationConfig
from repro.dlpic.solver import DLFieldSolver
from repro.engines.base import STRUCTURAL_FIELDS, mpi_rank_params
from repro.parallel.comm import CommStats, SimulatedComm
from repro.parallel.decomposition import DomainDecomposition1D
from repro.engines.observables import Frame, Observables, pic_observables
from repro.phasespace.binning import PhaseSpaceGrid, bin_phase_space
from repro.pic.grid import Grid1D
from repro.pic.interpolation import deposit
from repro.pic.particles import ParticleSet
from repro.pic.poisson import PoissonSolver
from repro.pic.simulation import PICSimulation


@dataclass
class DistributedPICResult:
    """Outcome of a distributed run: physics history + traffic stats."""

    label: str
    n_ranks: int
    n_steps: int
    history: Observables
    comm: CommStats

    @property
    def bytes_per_step(self) -> float:
        """Average communication volume per PIC cycle."""
        if self.n_steps == 0:
            return 0.0
        return self.comm.total_bytes / self.n_steps

    @property
    def sync_points_per_step(self) -> float:
        """Average number of collective calls per PIC cycle."""
        if self.n_steps == 0:
            return 0.0
        return self.comm.total_calls / self.n_steps


class _MigrationTracker:
    """Charges point-to-point traffic for particles changing ranks."""

    #: bytes per migrated particle: position + velocity (two float64).
    BYTES_PER_PARTICLE = 16

    def __init__(self, decomp: DomainDecomposition1D, comm: SimulatedComm) -> None:
        self.decomp = decomp
        self.comm = comm
        self._owners: "np.ndarray | None" = None

    def update(self, x: np.ndarray) -> None:
        owners = self.decomp.owner_of(x)
        if self._owners is not None and self.comm.size > 1:
            moved = int(np.count_nonzero(owners != self._owners))
            if moved:
                self.comm.sendrecv(np.empty(moved * 2, dtype=np.float64))
        self._owners = owners


class _DistributedTraditionalSolver:
    """Field solver doing rank-local deposition + reduce/solve/bcast."""

    def __init__(
        self,
        grid: Grid1D,
        decomp: DomainDecomposition1D,
        comm: SimulatedComm,
        particle_charge: float,
        interpolation: str,
        poisson_method: str,
        gradient: str,
        background: float = 1.0,
    ) -> None:
        self.grid = grid
        self.decomp = decomp
        self.comm = comm
        self.particle_charge = particle_charge
        self.interpolation = interpolation
        self.background = background
        self.poisson = PoissonSolver(grid, method=poisson_method, gradient=gradient)
        self.migration = _MigrationTracker(decomp, comm)

    def field(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        self.migration.update(x)
        parts = self.decomp.partition(x)
        local = [
            deposit(self.grid, xr[0], self.particle_charge, order=self.interpolation)
            for xr in parts
        ]
        rho = self.comm.reduce(local, root=0) + self.background
        _, e = self.poisson.solve(rho)
        replicated = self.comm.bcast(e, root=0)
        return replicated[0]


class _DistributedDLSolver:
    """Field solver doing rank-local binning + histogram allreduce."""

    def __init__(
        self,
        solver: DLFieldSolver,
        decomp: DomainDecomposition1D,
        comm: SimulatedComm,
    ) -> None:
        self.solver = solver
        self.decomp = decomp
        self.comm = comm
        self.migration = _MigrationTracker(decomp, comm)

    def field(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        self.migration.update(x)
        parts = self.decomp.partition(x, v)
        local_hists = [
            bin_phase_space(xr, vr, self.solver.ps_grid, order=self.solver.binning)
            for xr, vr in parts
        ]
        hist = self.comm.allreduce(local_hists)[0]
        # Every rank predicts locally with the replicated network; the
        # result is identical on all ranks, so compute it once.
        return self.solver.predict_from_histogram(hist)


def run_distributed_traditional(
    config: SimulationConfig,
    n_ranks: int,
    n_steps: "int | None" = None,
    rng: "int | np.random.Generator | None" = None,
) -> DistributedPICResult:
    """Run the traditional method over ``n_ranks`` simulated ranks."""
    grid = Grid1D(config.n_cells, config.box_length)
    decomp = DomainDecomposition1D(grid, n_ranks)
    comm = SimulatedComm(n_ranks)
    solver = _DistributedTraditionalSolver(
        grid,
        decomp,
        comm,
        particle_charge=config.particle_charge,
        interpolation=config.interpolation,
        poisson_method=config.poisson_solver,
        gradient=config.gradient,
    )
    sim = PICSimulation(config, solver, rng)
    steps = config.n_steps if n_steps is None else n_steps
    comm.stats.reset()  # count only the time loop, not initialization
    history = sim.run(steps)
    return DistributedPICResult(
        label="Traditional PIC", n_ranks=n_ranks, n_steps=steps, history=history, comm=comm.stats
    )


def run_distributed_dl(
    config: SimulationConfig,
    dl_solver: DLFieldSolver,
    n_ranks: int,
    n_steps: "int | None" = None,
    rng: "int | np.random.Generator | None" = None,
) -> DistributedPICResult:
    """Run the DL-based method over ``n_ranks`` simulated ranks."""
    grid = Grid1D(config.n_cells, config.box_length)
    decomp = DomainDecomposition1D(grid, n_ranks)
    comm = SimulatedComm(n_ranks)
    solver = _DistributedDLSolver(dl_solver, decomp, comm)
    sim = PICSimulation(config, solver, rng)
    steps = config.n_steps if n_steps is None else n_steps
    comm.stats.reset()
    history = sim.run(steps)
    return DistributedPICResult(
        label="DL-based PIC", n_ranks=n_ranks, n_steps=steps, history=history, comm=comm.stats
    )


class MPIEnsemble:
    """Engine adapter serving batches of simulated-MPI runs.

    Registered in the engine registry as ``solver="mpi"``: the
    domain-decomposed traditional solver
    (:class:`_DistributedTraditionalSolver`) promoted from an
    experiment to a served backend.  Each member owns its own
    decomposition, simulated communicator and migration tracker
    (``n_ranks`` comes from that member's ``config.extra``, default
    :data:`repro.engines.base.MPI_DEFAULT_N_RANKS`, so one batch may
    mix rank counts), and the adapter advances the member
    :class:`~repro.pic.simulation.PICSimulation` drivers in lockstep —
    row ``b`` is *trivially* bitwise identical to running
    ``configs[b]`` alone via :func:`run_distributed_traditional`,
    while the service layer gets grouped scheduling, request dedup and
    the shared result store.

    Decomposition only reorders the charge-density reduction, so the
    physics matches the serial ``traditional`` family to floating-point
    reordering tolerance (see the parity tests), not bitwise.
    """

    def __init__(
        self,
        configs: "SimulationConfig | Sequence[SimulationConfig]",
        rngs: "Sequence[int | np.random.Generator | None] | None" = None,
    ) -> None:
        if isinstance(configs, SimulationConfig):
            configs = (configs,)
        self.configs: "tuple[SimulationConfig, ...]" = tuple(configs)
        if not self.configs:
            raise ValueError("ensemble needs at least one configuration")
        ref = self.configs[0]
        for i, cfg in enumerate(self.configs[1:], 1):
            for name in STRUCTURAL_FIELDS:
                if getattr(cfg, name) != getattr(ref, name):
                    raise ValueError(
                        f"ensemble member {i} differs from member 0 in structural "
                        f"field {name!r}: {getattr(cfg, name)!r} != {getattr(ref, name)!r}"
                    )
        self.config = ref  # structural reference member
        self.batch = len(self.configs)
        if rngs is None:
            rngs = [None] * self.batch
        if len(rngs) != self.batch:
            raise ValueError(f"got {len(rngs)} rngs for batch {self.batch}")
        self.members: "list[PICSimulation]" = []
        self._comms: "list[SimulatedComm]" = []
        for cfg, rng in zip(self.configs, rngs):
            grid = Grid1D(cfg.n_cells, cfg.box_length)
            n_ranks = mpi_rank_params(cfg)
            decomp = DomainDecomposition1D(grid, n_ranks)
            comm = SimulatedComm(n_ranks)
            solver = _DistributedTraditionalSolver(
                grid,
                decomp,
                comm,
                particle_charge=cfg.particle_charge,
                interpolation=cfg.interpolation,
                poisson_method=cfg.poisson_solver,
                gradient=cfg.gradient,
            )
            self.members.append(PICSimulation(cfg, solver, rng))
            self._comms.append(comm)
        self.grid = self.members[0].grid

    @property
    def time(self) -> float:
        return self.members[0].time

    @property
    def step_index(self) -> int:
        return self.members[0].step_index

    @property
    def efield(self) -> np.ndarray:
        """Stacked ``(batch, n_cells)`` field across the members."""
        return np.stack([m.efield for m in self.members])

    @property
    def particles(self) -> ParticleSet:
        """Stacked ``(batch, n)`` particle view across the members."""
        ref = self.members[0].particles
        return ParticleSet(
            np.stack([m.particles.x for m in self.members]),
            np.stack([m.particles.v for m in self.members]),
            ref.charge,
            ref.mass,
        )

    @property
    def v_at_integer_time(self) -> np.ndarray:
        """Velocities synchronized to integer time, ``(batch, n)``."""
        return np.stack([m.v_at_integer_time for m in self.members])

    @property
    def comm_stats(self) -> "list[CommStats]":
        """Per-member simulated-communication traffic counters."""
        return [comm.stats for comm in self._comms]

    def observables(self, record_fields: bool = False) -> Observables:
        """A fresh default observables recorder for this engine."""
        return Observables(pic_observables(record_fields=record_fields))

    def step(self) -> None:
        """Advance every member one distributed PIC cycle."""
        for m in self.members:
            m.step()

    def _record(self, hist: Observables) -> None:
        hist.record_frame(Frame(
            self.step_index, self.time, self.grid, self.efield,
            particles=self.particles, v_center=self.v_at_integer_time,
        ))

    def run(
        self,
        n_steps: "int | None" = None,
        history: "Observables | None" = None,
        callback: "Callable[[MPIEnsemble], None] | None" = None,
    ) -> Observables:
        """Run ``n_steps`` cycles, recording batched diagnostics."""
        if n_steps is None:
            if any(cfg.n_steps != self.config.n_steps for cfg in self.configs):
                raise ValueError(
                    "ensemble members disagree on config.n_steps; "
                    "pass n_steps to run() explicitly"
                )
            n = self.config.n_steps
        else:
            n = n_steps
        if n < 0:
            raise ValueError(f"n_steps must be non-negative, got {n}")
        hist = history if history is not None else self.observables()
        hist.reserve(len(hist) + n + 1)
        self._record(hist)
        for _ in range(n):
            self.step()
            self._record(hist)
            if callback is not None:
                callback(self)
        return hist


def communication_model(
    n_ranks: int,
    n_cells: int,
    ps_grid: PhaseSpaceGrid,
    migrating_fraction: float = 0.0,
    n_particles: int = 0,
    itemsize: int = 8,
) -> dict[str, dict[str, float]]:
    """Closed-form per-step communication volume of both field solves.

    Mirrors the accounting of the simulated communicator:

    * traditional: ``reduce(rho)`` from the non-root ranks +
      ``bcast(E)`` to the non-root ranks;
    * DL: one ``allreduce`` of the phase-space histogram;
    * both: point-to-point migration of
      ``migrating_fraction * n_particles`` particles (16 bytes each).

    Returns ``{"traditional": {...}, "dl": {...}}`` with per-step bytes
    and synchronization (collective-call) counts.
    """
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    if not 0.0 <= migrating_fraction <= 1.0:
        raise ValueError(f"migrating_fraction must be in [0, 1], got {migrating_fraction}")
    migration_bytes = migrating_fraction * n_particles * 2 * itemsize if n_ranks > 1 else 0.0
    if n_ranks == 1:
        trad_bytes = dl_bytes = 0.0
        trad_syncs = dl_syncs = 0.0
    else:
        rho_bytes = n_cells * itemsize
        trad_bytes = rho_bytes * (n_ranks - 1) + rho_bytes * (n_ranks - 1)
        trad_syncs = 2.0  # reduce + bcast
        hist_bytes = ps_grid.size * itemsize
        dl_bytes = hist_bytes * n_ranks
        dl_syncs = 1.0  # single allreduce
    return {
        "traditional": {
            "bytes_per_step": trad_bytes + migration_bytes,
            "sync_points_per_step": trad_syncs + (1.0 if migration_bytes else 0.0),
        },
        "dl": {
            "bytes_per_step": dl_bytes + migration_bytes,
            "sync_points_per_step": dl_syncs + (1.0 if migration_bytes else 0.0),
        },
    }
