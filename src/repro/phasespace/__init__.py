"""Phase-space binning and normalization (grey boxes of the paper's Fig. 2)."""

from repro.phasespace.binning import PhaseSpaceGrid, bin_phase_space
from repro.phasespace.normalization import MinMaxNormalizer

__all__ = ["PhaseSpaceGrid", "bin_phase_space", "MinMaxNormalizer"]
