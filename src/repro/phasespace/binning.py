"""Binning of the electron phase space onto a 2D grid.

Section III of the paper: "We form a phase space grid by discretizing
phase space with a two-dimensional grid and counting how many particles
belong to a cell of the phase space grid."  The paper uses NGP binning
and notes (Sec. VII) that higher-order interpolation for the binning is
an expected improvement — so CIC binning is implemented as well.

Conventions
-----------
The histogram has shape ``(n_v, n_x)``: rows index velocity (the
vertical axis of the paper's phase-space images), columns index
position.  Position is periodic on ``[0, L)``; velocity is clipped to
``[v_min, v_max]`` so the total histogram mass always equals the number
of particles (an invariant the tests rely on).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants


@dataclass(frozen=True)
class PhaseSpaceGrid:
    """Discretization of the ``(x, v)`` phase-space rectangle.

    Attributes
    ----------
    n_x, n_v:
        Number of bins along position and velocity.
    box_length:
        Periodic spatial extent ``L``.
    v_min, v_max:
        Velocity window; particles outside are clipped to the edge
        bins.  The paper's plots use ``[-0.4, 0.4]``-ish windows; the
        default ``[-0.5, 0.5]`` covers every training configuration
        (``v0 <= 0.3`` plus thermal tails) and the Fig. 6 beams.
    """

    n_x: int = 64
    n_v: int = 64
    box_length: float = constants.TWO_STREAM_BOX_LENGTH
    v_min: float = -0.5
    v_max: float = 0.5

    def __post_init__(self) -> None:
        if self.n_x < 1 or self.n_v < 1:
            raise ValueError(f"bin counts must be positive, got ({self.n_x}, {self.n_v})")
        if self.v_max <= self.v_min:
            raise ValueError(f"empty velocity window [{self.v_min}, {self.v_max}]")
        if self.box_length <= 0:
            raise ValueError(f"box_length must be positive, got {self.box_length}")

    @property
    def dx(self) -> float:
        """Spatial bin width."""
        return self.box_length / self.n_x

    @property
    def dv(self) -> float:
        """Velocity bin width."""
        return (self.v_max - self.v_min) / self.n_v

    @property
    def shape(self) -> tuple[int, int]:
        """Histogram shape ``(n_v, n_x)``."""
        return (self.n_v, self.n_x)

    @property
    def size(self) -> int:
        """Flattened input size for the MLP."""
        return self.n_v * self.n_x

    def x_edges(self) -> np.ndarray:
        """Spatial bin edges, length ``n_x + 1``."""
        return np.linspace(0.0, self.box_length, self.n_x + 1)

    def v_edges(self) -> np.ndarray:
        """Velocity bin edges, length ``n_v + 1``."""
        return np.linspace(self.v_min, self.v_max, self.n_v + 1)


def _x_bins(x: np.ndarray, grid: PhaseSpaceGrid) -> np.ndarray:
    """NGP spatial bin index (cell containment), periodic."""
    return np.floor(np.mod(x, grid.box_length) / grid.dx).astype(np.int64) % grid.n_x


def _v_bins(v: np.ndarray, grid: PhaseSpaceGrid) -> np.ndarray:
    """NGP velocity bin index, clipped to the window."""
    idx = np.floor((v - grid.v_min) / grid.dv).astype(np.int64)
    return np.clip(idx, 0, grid.n_v - 1)


def _cic_flat_scatter(
    x: np.ndarray, v: np.ndarray, grid: PhaseSpaceGrid
) -> tuple[np.ndarray, np.ndarray]:
    """Flattened CIC scatter indices and bilinear weights.

    ``x`` and ``v`` may be ``(n,)`` or ``(batch, n)``; the returned
    indices address the row-major-raveled histogram(s) and the four
    corner contributions are concatenated along the last axis in the
    fixed order (v0x0, v0x1, v1x0, v1x1), so a single ``np.add.at`` on
    the raveled output accumulates every corner for every particle in
    the same order the classic four-scatter formulation does.
    """
    sx = np.mod(x, grid.box_length) / grid.dx - 0.5
    jx = np.floor(sx).astype(np.int64)
    fx = sx - jx
    jx0 = jx % grid.n_x
    jx1 = (jx + 1) % grid.n_x
    sv = (v - grid.v_min) / grid.dv - 0.5
    jv = np.floor(sv).astype(np.int64)
    fv = sv - jv
    # Clamp in velocity: out-of-window weight collapses onto edge bins.
    jv0 = np.clip(jv, 0, grid.n_v - 1)
    jv1 = np.clip(jv + 1, 0, grid.n_v - 1)
    flat = np.concatenate(
        [jv0 * grid.n_x + jx0, jv0 * grid.n_x + jx1,
         jv1 * grid.n_x + jx0, jv1 * grid.n_x + jx1],
        axis=-1,
    )
    weights = np.concatenate(
        [(1.0 - fv) * (1.0 - fx), (1.0 - fv) * fx, fv * (1.0 - fx), fv * fx],
        axis=-1,
    )
    return flat, weights


def bin_phase_space(
    x: np.ndarray,
    v: np.ndarray,
    grid: PhaseSpaceGrid,
    order: str = "ngp",
    dtype: "np.dtype | type" = np.float64,
) -> np.ndarray:
    """Count particles per phase-space cell.

    ``order="ngp"`` reproduces the paper's counting histogram;
    ``order="cic"`` spreads each particle bilinearly over the four
    neighbouring cells (periodic in x, clamped in v), which reduces the
    binning noise the paper identifies as a limitation.  Both conserve
    total mass exactly: ``result.sum() == len(x)``.

    NGP counting runs through a single fused ``np.bincount`` over the
    raveled cell indices — several times faster than a 2D
    ``np.add.at`` scatter and exactly equal to it (the counts are
    integers, so no summation-order question arises).
    """
    x = np.asarray(x, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if x.shape != v.shape or x.ndim != 1:
        raise ValueError(f"x and v must be 1D arrays of equal length, got {x.shape}, {v.shape}")
    if order == "ngp":
        flat = _v_bins(v, grid) * grid.n_x + _x_bins(x, grid)
        hist = np.bincount(flat, minlength=grid.size).astype(np.float64)
        hist = hist.reshape(grid.shape)
    elif order == "cic":
        flat, weights = _cic_flat_scatter(x, v, grid)
        hist = np.zeros(grid.size, dtype=np.float64)
        np.add.at(hist, flat, weights)
        hist = hist.reshape(grid.shape)
    else:
        raise ValueError(f"unknown binning order {order!r}; expected 'ngp' or 'cic'")
    return hist.astype(dtype, copy=False)


def bin_phase_space_batch(
    x: np.ndarray,
    v: np.ndarray,
    grid: PhaseSpaceGrid,
    order: str = "ngp",
    dtype: "np.dtype | type" = np.float64,
) -> np.ndarray:
    """Bin a whole ensemble of phase spaces in one fused scatter.

    ``x`` and ``v`` are stacked ``(batch, n)`` arrays; the result is
    ``(batch, n_v, n_x)`` with row ``b`` bitwise identical to
    ``bin_phase_space(x[b], v[b], grid, order)``:

    * NGP: all cell indices are fused into one raveled index array
      (offset by ``b * grid.size`` per row) and counted by a single
      ``np.bincount`` — one C-level pass for the whole ensemble.
    * CIC: the four bilinear corner contributions of every row are
      scattered by one raveled ``np.add.at``.  Rows write to disjoint
      index ranges and each row's updates keep the single-run
      accumulation order, so the float sums match bit for bit.

    Mass is conserved per row: ``result.sum(axis=(1, 2)) == n``.
    """
    x = np.asarray(x, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if x.shape != v.shape or x.ndim != 2:
        raise ValueError(
            f"x and v must be (batch, n) arrays of equal shape, got {x.shape}, {v.shape}"
        )
    batch = x.shape[0]
    offsets = np.arange(batch, dtype=np.int64)[:, None] * grid.size
    if order == "ngp":
        flat = _v_bins(v, grid) * grid.n_x + _x_bins(x, grid) + offsets
        hist = np.bincount(flat.ravel(), minlength=batch * grid.size).astype(np.float64)
    elif order == "cic":
        flat, weights = _cic_flat_scatter(x, v, grid)
        hist = np.zeros(batch * grid.size, dtype=np.float64)
        np.add.at(hist, (flat + offsets).ravel(), weights.ravel())
    else:
        raise ValueError(f"unknown binning order {order!r}; expected 'ngp' or 'cic'")
    return hist.reshape(batch, *grid.shape).astype(dtype, copy=False)
