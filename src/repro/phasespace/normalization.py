"""Min-max input normalization (Eq. 5 of the paper).

"All their values were transformed from their original range to [0, 1]
using the formula y = (x - min) / (max - min), where min and max are
the minimum and maximum values in the data set."

The normalizer is *fit on the training data set* and then frozen; at
PIC runtime the same (min, max) pair is applied to every histogram the
DL solver sees, exactly as a deployed network would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class MinMaxNormalizer:
    """Global (scalar) min-max scaler to ``[0, 1]``.

    ``fit`` extracts the dataset-wide minimum and maximum; ``transform``
    is the paper's Eq. 5.  Values outside the fitted range (possible at
    inference time) map outside ``[0, 1]`` unless ``clip=True``.
    """

    minimum: float = 0.0
    maximum: float = 1.0
    fitted: bool = False

    def fit(self, data: np.ndarray) -> "MinMaxNormalizer":
        """Record the global min/max of ``data`` (any shape)."""
        data = np.asarray(data)
        if data.size == 0:
            raise ValueError("cannot fit a normalizer on empty data")
        self.minimum = float(np.min(data))
        self.maximum = float(np.max(data))
        if self.maximum == self.minimum:
            raise ValueError(f"degenerate data range [{self.minimum}, {self.maximum}]")
        self.fitted = True
        return self

    def transform(self, data: np.ndarray, clip: bool = False) -> np.ndarray:
        """Apply Eq. 5; requires a prior :meth:`fit`.

        Dtype-following: float32 data normalizes in float32 (the DL
        serving tier), everything else in float64 as before — the
        fitted bounds are Python floats, which numpy's promotion rules
        keep from widening a float32 array.
        """
        if not self.fitted:
            raise RuntimeError("normalizer used before fit()")
        arr = np.asarray(data)
        if arr.dtype != np.float32:
            arr = np.asarray(arr, dtype=np.float64)
        out = (arr - self.minimum) / (self.maximum - self.minimum)
        if clip:
            out = np.clip(out, 0.0, 1.0)
        return out

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its normalized values."""
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform`."""
        if not self.fitted:
            raise RuntimeError("normalizer used before fit()")
        return np.asarray(data, dtype=np.float64) * (self.maximum - self.minimum) + self.minimum

    # -- persistence ----------------------------------------------------
    def to_dict(self) -> dict[str, float]:
        """JSON-serializable parameter dict."""
        if not self.fitted:
            raise RuntimeError("normalizer used before fit()")
        return {"minimum": self.minimum, "maximum": self.maximum}

    @classmethod
    def from_dict(cls, params: dict[str, float]) -> "MinMaxNormalizer":
        """Rebuild a fitted normalizer from :meth:`to_dict` output."""
        return cls(minimum=float(params["minimum"]), maximum=float(params["maximum"]), fitted=True)
