"""Traditional explicit electrostatic Particle-in-Cell substrate.

Implements the computational cycle of the paper's Fig. 1: field gather
at particle positions, leapfrog particle push, charge deposition, and a
grid Poisson solve.
"""

from repro.pic.grid import Grid1D
from repro.pic.particles import ParticleSet, load_two_stream
from repro.pic.interpolation import deposit, gather
from repro.pic.poisson import PoissonSolver, electric_field_from_potential
from repro.pic.mover import push_positions, push_velocities
from repro.pic.diagnostics import (
    field_energy,
    kinetic_energy,
    mode_amplitude,
    total_momentum,
)
from repro.pic.scenarios import (
    available_distributions,
    available_scenarios,
    get_distribution,
    get_scenario,
    has_distribution,
    load_distribution,
    load_ensemble,
    load_scenario,
    register_distribution,
    register_scenario,
)
from repro.pic.simulation import EnsembleSimulation, PICSimulation, TraditionalPIC
from repro.pic.energy_conserving import EnergyConservingEnsemble, EnergyConservingPIC

__all__ = [
    "Grid1D",
    "ParticleSet",
    "load_two_stream",
    "deposit",
    "gather",
    "PoissonSolver",
    "electric_field_from_potential",
    "push_positions",
    "push_velocities",
    "field_energy",
    "kinetic_energy",
    "mode_amplitude",
    "total_momentum",
    "available_distributions",
    "available_scenarios",
    "get_distribution",
    "get_scenario",
    "has_distribution",
    "load_distribution",
    "load_ensemble",
    "load_scenario",
    "register_distribution",
    "register_scenario",
    "PICSimulation",
    "EnsembleSimulation",
    "TraditionalPIC",
    "EnergyConservingPIC",
    "EnergyConservingEnsemble",
]
