"""Conservation and spectral diagnostics for PIC runs (compat shim).

The implementation lives in :mod:`repro.engines.observables`, the
streaming observables pipeline shared by every engine family; this
module re-exports the measurement functions unchanged.

The deprecated ``History`` / ``EnsembleHistory`` recorder classes have
been **removed** (they wrapped the pipeline for one release after the
engine-layer unification).  Importing them from here raises a helpful
``ImportError`` pointing at the replacements: build an
:class:`~repro.engines.observables.Observables` (or take one from
``engine.observables()``), and consume served runs through
:class:`repro.api.RunResult`.
"""

from __future__ import annotations

from repro.engines.observables import (
    field_energy,
    field_energy_rows,
    kinetic_energy,
    kinetic_energy_rows,
    mode_amplitude,
    mode_amplitude_rows,
    mode_spectrum,
    total_momentum,
    total_momentum_rows,
)

__all__ = [
    "kinetic_energy",
    "field_energy",
    "total_momentum",
    "mode_amplitude",
    "mode_spectrum",
    "kinetic_energy_rows",
    "field_energy_rows",
    "total_momentum_rows",
    "mode_amplitude_rows",
]

_RETIRED = {
    "History": "Observables(pic_observables(), squeeze=True)",
    "EnsembleHistory": "Observables(pic_observables())",
}


def __getattr__(name: str):
    if name in _RETIRED:
        raise ImportError(
            f"repro.pic.diagnostics.{name} was deprecated in the engine-layer "
            f"unification and has now been removed.  Use the streaming "
            f"observables pipeline instead: `from repro.engines.observables "
            f"import Observables, pic_observables` and build "
            f"`{_RETIRED[name]}` (engines return one from `run()`; served "
            f"runs expose their series via `repro.api.RunResult`)."
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
