"""Conservation and spectral diagnostics for PIC runs (compat shim).

The implementation moved to :mod:`repro.engines.observables`, the
streaming observables pipeline shared by every engine family; this
module keeps the historical import surface of ``repro.pic.diagnostics``
working for one release.  The measurement functions are re-exported
unchanged, and :class:`History` / :class:`EnsembleHistory` are now thin
wrappers over :class:`~repro.engines.observables.Observables` with the
exact pre-pipeline constructor, ``record`` signature, attribute access
and ``as_arrays`` layout (bitwise-identical series).
"""

from __future__ import annotations

from repro.engines.observables import (
    EnsembleHistory,
    History,
    field_energy,
    field_energy_rows,
    kinetic_energy,
    kinetic_energy_rows,
    mode_amplitude,
    mode_amplitude_rows,
    mode_spectrum,
    total_momentum,
    total_momentum_rows,
)

__all__ = [
    "History",
    "EnsembleHistory",
    "kinetic_energy",
    "field_energy",
    "total_momentum",
    "mode_amplitude",
    "mode_spectrum",
    "kinetic_energy_rows",
    "field_energy_rows",
    "total_momentum_rows",
    "mode_amplitude_rows",
]
