"""Conservation and spectral diagnostics for PIC runs.

The paper monitors three quantities (Figs. 4-6): the amplitude of the
fundamental field mode ``E1`` (growth-rate validation), the total
energy (kinetic + electrostatic) and the total momentum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import constants
from repro.pic.grid import Grid1D
from repro.pic.particles import ParticleSet


def kinetic_energy(particles: ParticleSet, v: "np.ndarray | None" = None) -> float:
    """Total kinetic energy ``sum(m v^2 / 2)``.

    ``v`` overrides the stored velocities (used to evaluate energy at
    integer time from time-centered leapfrog velocities).
    """
    vel = particles.v if v is None else v
    return float(0.5 * particles.mass * np.sum(vel * vel))


def field_energy(grid: Grid1D, e: np.ndarray, eps0: float = constants.EPSILON_0) -> float:
    """Electrostatic field energy ``(eps0/2) * integral(E^2 dx)``."""
    e = np.asarray(e, dtype=np.float64)
    if e.shape != (grid.n_cells,):
        raise ValueError(f"E has shape {e.shape}, expected ({grid.n_cells},)")
    return float(0.5 * eps0 * np.sum(e * e) * grid.dx)


def total_momentum(particles: ParticleSet, v: "np.ndarray | None" = None) -> float:
    """Total mechanical momentum ``sum(m v)``."""
    vel = particles.v if v is None else v
    return float(particles.mass * np.sum(vel))


def mode_amplitude(e: np.ndarray, mode: int = 1) -> float:
    """Amplitude of Fourier mode ``mode`` of a grid field.

    Normalized so a field ``A*sin(k_m x)`` returns ``A``; this is the
    ``E1`` series plotted in the paper's Fig. 4 (bottom panel).
    """
    e = np.asarray(e, dtype=np.float64)
    n = e.shape[0]
    if not 0 <= mode <= n // 2:
        raise ValueError(f"mode {mode} out of range for {n} cells")
    coeff = np.fft.rfft(e)[mode]
    if mode == 0 or (n % 2 == 0 and mode == n // 2):
        return float(abs(coeff)) / n
    return float(2.0 * abs(coeff) / n)


def kinetic_energy_rows(particles: ParticleSet, v: "np.ndarray | None" = None) -> np.ndarray:
    """Per-run kinetic energy of a (possibly batched) particle set.

    Returns shape ``(batch,)``; for a 1-D set this is ``(1,)`` and the
    single entry is bitwise equal to :func:`kinetic_energy`.
    """
    vel = np.atleast_2d(particles.v if v is None else v)
    return 0.5 * particles.mass * np.sum(vel * vel, axis=-1)


def field_energy_rows(
    grid: Grid1D, e: np.ndarray, eps0: float = constants.EPSILON_0
) -> np.ndarray:
    """Per-run electrostatic energy of ``(batch, n_cells)`` fields."""
    e = np.atleast_2d(np.asarray(e, dtype=np.float64))
    if e.shape[-1] != grid.n_cells:
        raise ValueError(f"E has shape {e.shape}, expected (batch, {grid.n_cells})")
    return 0.5 * eps0 * np.sum(e * e, axis=-1) * grid.dx


def total_momentum_rows(particles: ParticleSet, v: "np.ndarray | None" = None) -> np.ndarray:
    """Per-run mechanical momentum, shape ``(batch,)``."""
    vel = np.atleast_2d(particles.v if v is None else v)
    return particles.mass * np.sum(vel, axis=-1)


def mode_amplitude_rows(e: np.ndarray, mode: int = 1) -> np.ndarray:
    """Per-run Fourier-mode amplitude of ``(batch, n_cells)`` fields.

    Same normalization as :func:`mode_amplitude` (``A*sin(k_m x)``
    returns ``A`` in every row).  The FFT is batched; the final
    magnitude uses scalar ``abs`` per row because numpy's vectorized
    complex abs may differ from the scalar one by an ulp, and the
    ensemble engine promises bitwise-identical diagnostics.
    """
    e = np.atleast_2d(np.asarray(e, dtype=np.float64))
    n = e.shape[-1]
    if not 0 <= mode <= n // 2:
        raise ValueError(f"mode {mode} out of range for {n} cells")
    coeff = np.fft.rfft(e, axis=-1)[..., mode]
    if mode == 0 or (n % 2 == 0 and mode == n // 2):
        return np.array([float(abs(c)) / n for c in coeff])
    return np.array([float(2.0 * abs(c) / n) for c in coeff])


def mode_spectrum(e: np.ndarray) -> np.ndarray:
    """Amplitudes of all resolvable modes ``0..n//2`` (same norm)."""
    e = np.asarray(e, dtype=np.float64)
    n = e.shape[0]
    coeff = np.abs(np.fft.rfft(e)) / n
    coeff[1:] *= 2.0
    if n % 2 == 0:
        coeff[-1] /= 2.0
    return coeff


@dataclass
class History:
    """Accumulates per-step scalar and array diagnostics of a run.

    Scalars (time, energies, momentum, mode amplitude) are recorded at
    every step; full field/density snapshots and phase-space particle
    snapshots are optional because of their memory cost.
    """

    record_fields: bool = False
    snapshot_every: int = 0  # 0 disables particle snapshots

    time: list[float] = field(default_factory=list)
    kinetic: list[float] = field(default_factory=list)
    potential: list[float] = field(default_factory=list)  # field energy
    total: list[float] = field(default_factory=list)
    momentum: list[float] = field(default_factory=list)
    mode1: list[float] = field(default_factory=list)
    fields: list[np.ndarray] = field(default_factory=list)
    snapshots: list[tuple[float, np.ndarray, np.ndarray]] = field(default_factory=list)

    def record(
        self,
        step: int,
        time: float,
        grid: Grid1D,
        particles: ParticleSet,
        e: np.ndarray,
        v_center: "np.ndarray | None" = None,
    ) -> None:
        """Append diagnostics for the state at ``time``."""
        ke = kinetic_energy(particles, v=v_center)
        fe = field_energy(grid, e)
        self.time.append(time)
        self.kinetic.append(ke)
        self.potential.append(fe)
        self.total.append(ke + fe)
        self.momentum.append(total_momentum(particles, v=v_center))
        self.mode1.append(mode_amplitude(e, mode=1))
        if self.record_fields:
            self.fields.append(np.array(e, copy=True))
        if self.snapshot_every > 0 and step % self.snapshot_every == 0:
            self.snapshots.append((time, particles.x.copy(), particles.v.copy()))

    # -- array views ---------------------------------------------------
    def as_arrays(self) -> dict[str, np.ndarray]:
        """Return the scalar series as a dict of numpy arrays."""
        out = {
            "time": np.asarray(self.time),
            "kinetic": np.asarray(self.kinetic),
            "potential": np.asarray(self.potential),
            "total": np.asarray(self.total),
            "momentum": np.asarray(self.momentum),
            "mode1": np.asarray(self.mode1),
        }
        if self.record_fields:
            out["fields"] = np.asarray(self.fields)
        return out

    def energy_variation(self) -> float:
        """Max relative deviation of total energy from its initial value.

        The paper reports ~2% for both methods on the two-stream run.
        """
        total = np.asarray(self.total)
        if total.size == 0:
            raise ValueError("history is empty")
        return float(np.max(np.abs(total - total[0])) / abs(total[0]))

    def momentum_drift(self) -> float:
        """Net momentum change over the run (signed)."""
        mom = np.asarray(self.momentum)
        if mom.size == 0:
            raise ValueError("history is empty")
        return float(mom[-1] - mom[0])

    def __len__(self) -> int:
        return len(self.time)


@dataclass
class EnsembleHistory:
    """Per-step diagnostics of a batched ensemble run.

    The same scalar series as :class:`History`, but each record is a
    ``(batch,)`` vector — one entry per ensemble member, computed with
    the batched reductions so recording costs one numpy call per series
    regardless of the batch size.  ``as_arrays`` returns
    ``(n_records, batch)`` arrays; ``member(b)`` extracts one run's
    series in the :class:`History` layout.
    """

    record_fields: bool = False

    time: list[float] = field(default_factory=list)
    kinetic: list[np.ndarray] = field(default_factory=list)
    potential: list[np.ndarray] = field(default_factory=list)  # field energy
    total: list[np.ndarray] = field(default_factory=list)
    momentum: list[np.ndarray] = field(default_factory=list)
    mode1: list[np.ndarray] = field(default_factory=list)
    fields: list[np.ndarray] = field(default_factory=list)

    def record(
        self,
        step: int,
        time: float,
        grid: Grid1D,
        particles: ParticleSet,
        e: np.ndarray,
        v_center: "np.ndarray | None" = None,
    ) -> None:
        """Append per-run diagnostics for the batched state at ``time``."""
        ke = kinetic_energy_rows(particles, v=v_center)
        fe = field_energy_rows(grid, e)
        self.time.append(time)
        self.kinetic.append(ke)
        self.potential.append(fe)
        self.total.append(ke + fe)
        self.momentum.append(total_momentum_rows(particles, v=v_center))
        self.mode1.append(mode_amplitude_rows(e, mode=1))
        if self.record_fields:
            self.fields.append(np.array(np.atleast_2d(e), copy=True))

    def as_arrays(self) -> dict[str, np.ndarray]:
        """Scalar series as ``(n_records, batch)`` arrays (time is 1-D)."""
        out = {
            "time": np.asarray(self.time),
            "kinetic": np.asarray(self.kinetic),
            "potential": np.asarray(self.potential),
            "total": np.asarray(self.total),
            "momentum": np.asarray(self.momentum),
            "mode1": np.asarray(self.mode1),
        }
        if self.record_fields:
            out["fields"] = np.asarray(self.fields)
        return out

    def member(self, b: int) -> dict[str, np.ndarray]:
        """One ensemble member's series, keyed like ``History.as_arrays``."""
        series = self.as_arrays()
        out = {"time": series["time"]}
        for key in ("kinetic", "potential", "total", "momentum", "mode1"):
            out[key] = series[key][:, b]
        if self.record_fields:
            out["fields"] = series["fields"][:, b]
        return out

    def energy_variation(self) -> np.ndarray:
        """Per-run max relative deviation of total energy, ``(batch,)``."""
        total = np.asarray(self.total)
        if total.size == 0:
            raise ValueError("history is empty")
        return np.max(np.abs(total - total[0]), axis=0) / np.abs(total[0])

    def momentum_drift(self) -> np.ndarray:
        """Per-run net momentum change over the run (signed)."""
        mom = np.asarray(self.momentum)
        if mom.size == 0:
            raise ValueError("history is empty")
        return mom[-1] - mom[0]

    def __len__(self) -> int:
        return len(self.time)
