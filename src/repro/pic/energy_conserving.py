"""Energy-conserving semi-implicit electrostatic PIC.

The paper's Sec. II contrasts the explicit momentum-conserving method
with implicit schemes that "are numerically stable and can conserve the
total energy of the system" (its reference [4], Markidis & Lapenta,
JCP 2011) and Sec. VII names explicit conservation as the bar a
competitive DL-based PIC must clear.  This module implements that
comparison point: the 1D electrostatic energy-conserving PIC.

Scheme (implicit midpoint, Picard-iterated):

.. math::
    x^{n+1/2} = x^n + v^{n+1/2} \\Delta t / 2 \\\\
    v^{n+1/2} = v^n + (q/m) E^{n+1/2}(x^{n+1/2}) \\Delta t / 2 \\\\
    E^{n+1/2} = E^n - \\frac{\\Delta t}{2 \\epsilon_0}
                \\left(J^{n+1/2} - \\langle J \\rangle\\right)

with the current ``J`` deposited at the midpoint positions using the
*same* shape function as the field gather.  After convergence the step
is completed by reflection: ``v^{n+1} = 2 v^{n+1/2} - v^n`` etc.  With
this pairing the discrete kinetic-energy change ``q dt sum_p v E(x_p)``
telescopes exactly against the field-energy change — total energy is
conserved to the Picard tolerance at ANY time step (no CFL-like
constraint), while momentum is not exactly conserved: the mirror image
of the explicit method's trade-off (Birdsall & Langdon Ch. 10).

The electric field is advanced through Ampere's law, so the Poisson
solve happens only once, at initialization.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro import constants
from repro.config import SimulationConfig
from repro.engines.base import STRUCTURAL_FIELDS
from repro.engines.observables import Frame, Observables, pic_observables
from repro.pic.grid import Grid1D
from repro.pic.interpolation import charge_density, deposit, gather
from repro.pic.particles import ParticleSet
from repro.pic.poisson import PoissonSolver
from repro.pic.scenarios import load_scenario


class EnergyConservingPIC:
    """1D electrostatic energy-conserving (implicit midpoint) PIC.

    Parameters
    ----------
    config:
        The shared simulation configuration; ``config.interpolation``
        is used for both the current deposit and the field gather
        (required for exact conservation).
    max_iterations, tolerance:
        Picard iteration control: iterate the midpoint fixed-point
        until the max velocity update falls below ``tolerance`` (or
        ``max_iterations`` is hit — tracked in ``last_iterations``).
    """

    def __init__(
        self,
        config: SimulationConfig,
        rng: "int | np.random.Generator | None" = None,
        max_iterations: int = 12,
        tolerance: float = 1e-12,
    ) -> None:
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        self.config = config
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.grid = Grid1D(config.n_cells, config.box_length)
        self.particles: ParticleSet = load_scenario(config, rng)
        # Initial field from Gauss's law; afterwards E evolves via Ampere.
        rho = charge_density(
            self.grid, self.particles.x, config.particle_charge,
            order=config.interpolation,
        )
        _, self.efield = PoissonSolver(
            self.grid, method=config.poisson_solver, gradient=config.gradient
        ).solve(rho)
        self.time = 0.0
        self.step_index = 0
        self.last_iterations = 0

    @property
    def v_at_integer_time(self) -> np.ndarray:
        """Velocities are already synchronized (no staggering)."""
        return self.particles.v

    def _current_density(self, x_half: np.ndarray, v_half: np.ndarray) -> np.ndarray:
        """Zero-mean electron current density at midpoint positions."""
        j = deposit(
            self.grid, x_half, self.config.particle_charge * v_half,
            order=self.config.interpolation,
        )
        return j - j.mean()

    def step(self) -> None:
        """One implicit midpoint cycle (Picard-iterated)."""
        cfg = self.config
        dt = cfg.dt
        x_n = self.particles.x
        v_n = self.particles.v
        e_n = self.efield

        v_half = v_n.copy()
        x_half = x_n
        e_half = e_n
        for iteration in range(1, self.max_iterations + 1):
            x_half = np.mod(x_n + 0.5 * dt * v_half, cfg.box_length)
            j_half = self._current_density(x_half, v_half)
            e_half = e_n - 0.5 * dt * j_half / constants.EPSILON_0
            e_at_p = gather(self.grid, e_half, x_half, order=cfg.interpolation)
            v_half_new = v_n + 0.5 * dt * cfg.qm * e_at_p
            delta = float(np.max(np.abs(v_half_new - v_half)))
            v_half = v_half_new
            if delta < self.tolerance:
                break
        self.last_iterations = iteration

        # Recompute the midpoint fields consistently with the converged
        # velocities, then reflect to the full step.
        x_half = np.mod(x_n + 0.5 * dt * v_half, cfg.box_length)
        j_half = self._current_density(x_half, v_half)
        e_half = e_n - 0.5 * dt * j_half / constants.EPSILON_0
        e_at_p = gather(self.grid, e_half, x_half, order=cfg.interpolation)

        self.particles.v = v_n + dt * cfg.qm * e_at_p
        self.particles.x = np.mod(x_n + dt * 0.5 * (v_n + self.particles.v), cfg.box_length)
        self.efield = 2.0 * e_half - e_n
        self.step_index += 1
        self.time += dt

    def observables(self, record_fields: bool = False) -> Observables:
        """A fresh default observables recorder for this single run."""
        return Observables(pic_observables(record_fields=record_fields), squeeze=True)

    def _record(self, hist: Observables) -> None:
        # Velocities are synchronized (no staggering), so no v_center.
        hist.record_frame(Frame(
            self.step_index, self.time, self.grid, self.efield,
            particles=self.particles,
        ))

    def run(
        self, n_steps: "int | None" = None, history: "Observables | None" = None
    ) -> Observables:
        """Run ``n_steps`` cycles recording the standard diagnostics."""
        n = self.config.n_steps if n_steps is None else n_steps
        if n < 0:
            raise ValueError(f"n_steps must be non-negative, got {n}")
        hist = history if history is not None else self.observables()
        hist.reserve(len(hist) + n + 1)
        self._record(hist)
        for _ in range(n):
            self.step()
            self._record(hist)
        return hist


class EnergyConservingEnsemble:
    """Engine adapter serving batches of energy-conserving runs.

    Registered in the engine registry as ``solver="energy"``.  Unlike
    the explicit families there is no vectorized implicit solver (each
    member runs its own Picard iteration, whose trip count depends on
    that member's state), so the adapter advances one solo
    :class:`EnergyConservingPIC` per member in lockstep — row ``b`` is
    *trivially* bitwise identical to running ``configs[b]`` alone —
    while still giving the service layer everything batching buys it:
    grouped scheduling, request dedup and the shared result store.

    Members may differ in scenario, seed, beam parameters and Picard
    knobs (``extra['picard_max_iterations']``,
    ``extra['picard_tolerance']``), but must agree on the structural
    fields shared with the explicit PIC families.
    """

    def __init__(
        self,
        configs: "SimulationConfig | Sequence[SimulationConfig]",
        rngs: "Sequence[int | np.random.Generator | None] | None" = None,
    ) -> None:
        if isinstance(configs, SimulationConfig):
            configs = (configs,)
        self.configs: "tuple[SimulationConfig, ...]" = tuple(configs)
        if not self.configs:
            raise ValueError("ensemble needs at least one configuration")
        ref = self.configs[0]
        for i, cfg in enumerate(self.configs[1:], 1):
            for name in STRUCTURAL_FIELDS:
                if getattr(cfg, name) != getattr(ref, name):
                    raise ValueError(
                        f"ensemble member {i} differs from member 0 in structural "
                        f"field {name!r}: {getattr(cfg, name)!r} != {getattr(ref, name)!r}"
                    )
        self.config = ref  # structural reference member
        self.batch = len(self.configs)
        if rngs is None:
            rngs = [None] * self.batch
        if len(rngs) != self.batch:
            raise ValueError(f"got {len(rngs)} rngs for batch {self.batch}")
        self.members = [
            EnergyConservingPIC(
                cfg,
                rng,
                max_iterations=int(cfg.extra.get("picard_max_iterations", 12)),
                tolerance=float(cfg.extra.get("picard_tolerance", 1e-12)),
            )
            for cfg, rng in zip(self.configs, rngs)
        ]
        self.grid = self.members[0].grid

    @property
    def time(self) -> float:
        return self.members[0].time

    @property
    def step_index(self) -> int:
        return self.members[0].step_index

    @property
    def efield(self) -> np.ndarray:
        """Stacked ``(batch, n_cells)`` field across the members."""
        return np.stack([m.efield for m in self.members])

    @property
    def particles(self) -> ParticleSet:
        """Stacked ``(batch, n)`` particle view across the members."""
        ref = self.members[0].particles
        return ParticleSet(
            np.stack([m.particles.x for m in self.members]),
            np.stack([m.particles.v for m in self.members]),
            ref.charge,
            ref.mass,
        )

    @property
    def v_at_integer_time(self) -> np.ndarray:
        """Velocities are already synchronized, ``(batch, n)``."""
        return np.stack([m.particles.v for m in self.members])

    def observables(self, record_fields: bool = False) -> Observables:
        """A fresh default observables recorder for this engine."""
        return Observables(pic_observables(record_fields=record_fields))

    def step(self) -> None:
        """Advance every member one implicit midpoint cycle."""
        for m in self.members:
            m.step()

    def _record(self, hist: Observables) -> None:
        hist.record_frame(Frame(
            self.step_index, self.time, self.grid, self.efield,
            particles=self.particles,
        ))

    def run(
        self,
        n_steps: "int | None" = None,
        history: "Observables | None" = None,
        callback: "Callable[[EnergyConservingEnsemble], None] | None" = None,
    ) -> Observables:
        """Run ``n_steps`` cycles, recording batched diagnostics."""
        if n_steps is None:
            if any(cfg.n_steps != self.config.n_steps for cfg in self.configs):
                raise ValueError(
                    "ensemble members disagree on config.n_steps; "
                    "pass n_steps to run() explicitly"
                )
            n = self.config.n_steps
        else:
            n = n_steps
        if n < 0:
            raise ValueError(f"n_steps must be non-negative, got {n}")
        hist = history if history is not None else self.observables()
        hist.reserve(len(hist) + n + 1)
        self._record(hist)
        for _ in range(n):
            self.step()
            self._record(hist)
            if callback is not None:
                callback(self)
        return hist
