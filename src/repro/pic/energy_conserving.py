"""Energy-conserving semi-implicit electrostatic PIC.

The paper's Sec. II contrasts the explicit momentum-conserving method
with implicit schemes that "are numerically stable and can conserve the
total energy of the system" (its reference [4], Markidis & Lapenta,
JCP 2011) and Sec. VII names explicit conservation as the bar a
competitive DL-based PIC must clear.  This module implements that
comparison point: the 1D electrostatic energy-conserving PIC.

Scheme (implicit midpoint, Picard-iterated):

.. math::
    x^{n+1/2} = x^n + v^{n+1/2} \\Delta t / 2 \\\\
    v^{n+1/2} = v^n + (q/m) E^{n+1/2}(x^{n+1/2}) \\Delta t / 2 \\\\
    E^{n+1/2} = E^n - \\frac{\\Delta t}{2 \\epsilon_0}
                \\left(J^{n+1/2} - \\langle J \\rangle\\right)

with the current ``J`` deposited at the midpoint positions using the
*same* shape function as the field gather.  After convergence the step
is completed by reflection: ``v^{n+1} = 2 v^{n+1/2} - v^n`` etc.  With
this pairing the discrete kinetic-energy change ``q dt sum_p v E(x_p)``
telescopes exactly against the field-energy change — total energy is
conserved to the Picard tolerance at ANY time step (no CFL-like
constraint), while momentum is not exactly conserved: the mirror image
of the explicit method's trade-off (Birdsall & Langdon Ch. 10).

The electric field is advanced through Ampere's law, so the Poisson
solve happens only once, at initialization.
"""

from __future__ import annotations

import numpy as np

from repro import constants
from repro.config import SimulationConfig
from repro.pic.diagnostics import History
from repro.pic.grid import Grid1D
from repro.pic.interpolation import charge_density, deposit, gather
from repro.pic.particles import ParticleSet
from repro.pic.poisson import PoissonSolver
from repro.pic.scenarios import load_scenario


class EnergyConservingPIC:
    """1D electrostatic energy-conserving (implicit midpoint) PIC.

    Parameters
    ----------
    config:
        The shared simulation configuration; ``config.interpolation``
        is used for both the current deposit and the field gather
        (required for exact conservation).
    max_iterations, tolerance:
        Picard iteration control: iterate the midpoint fixed-point
        until the max velocity update falls below ``tolerance`` (or
        ``max_iterations`` is hit — tracked in ``last_iterations``).
    """

    def __init__(
        self,
        config: SimulationConfig,
        rng: "int | np.random.Generator | None" = None,
        max_iterations: int = 12,
        tolerance: float = 1e-12,
    ) -> None:
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        self.config = config
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.grid = Grid1D(config.n_cells, config.box_length)
        self.particles: ParticleSet = load_scenario(config, rng)
        # Initial field from Gauss's law; afterwards E evolves via Ampere.
        rho = charge_density(
            self.grid, self.particles.x, config.particle_charge,
            order=config.interpolation,
        )
        _, self.efield = PoissonSolver(
            self.grid, method=config.poisson_solver, gradient=config.gradient
        ).solve(rho)
        self.time = 0.0
        self.step_index = 0
        self.last_iterations = 0

    @property
    def v_at_integer_time(self) -> np.ndarray:
        """Velocities are already synchronized (no staggering)."""
        return self.particles.v

    def _current_density(self, x_half: np.ndarray, v_half: np.ndarray) -> np.ndarray:
        """Zero-mean electron current density at midpoint positions."""
        j = deposit(
            self.grid, x_half, self.config.particle_charge * v_half,
            order=self.config.interpolation,
        )
        return j - j.mean()

    def step(self) -> None:
        """One implicit midpoint cycle (Picard-iterated)."""
        cfg = self.config
        dt = cfg.dt
        x_n = self.particles.x
        v_n = self.particles.v
        e_n = self.efield

        v_half = v_n.copy()
        x_half = x_n
        e_half = e_n
        for iteration in range(1, self.max_iterations + 1):
            x_half = np.mod(x_n + 0.5 * dt * v_half, cfg.box_length)
            j_half = self._current_density(x_half, v_half)
            e_half = e_n - 0.5 * dt * j_half / constants.EPSILON_0
            e_at_p = gather(self.grid, e_half, x_half, order=cfg.interpolation)
            v_half_new = v_n + 0.5 * dt * cfg.qm * e_at_p
            delta = float(np.max(np.abs(v_half_new - v_half)))
            v_half = v_half_new
            if delta < self.tolerance:
                break
        self.last_iterations = iteration

        # Recompute the midpoint fields consistently with the converged
        # velocities, then reflect to the full step.
        x_half = np.mod(x_n + 0.5 * dt * v_half, cfg.box_length)
        j_half = self._current_density(x_half, v_half)
        e_half = e_n - 0.5 * dt * j_half / constants.EPSILON_0
        e_at_p = gather(self.grid, e_half, x_half, order=cfg.interpolation)

        self.particles.v = v_n + dt * cfg.qm * e_at_p
        self.particles.x = np.mod(x_n + dt * 0.5 * (v_n + self.particles.v), cfg.box_length)
        self.efield = 2.0 * e_half - e_n
        self.step_index += 1
        self.time += dt

    def run(self, n_steps: "int | None" = None, history: "History | None" = None) -> History:
        """Run ``n_steps`` cycles recording the standard diagnostics."""
        n = self.config.n_steps if n_steps is None else n_steps
        if n < 0:
            raise ValueError(f"n_steps must be non-negative, got {n}")
        hist = history if history is not None else History()
        hist.record(self.step_index, self.time, self.grid, self.particles, self.efield)
        for _ in range(n):
            self.step()
            hist.record(self.step_index, self.time, self.grid, self.particles, self.efield)
        return hist
