"""One-dimensional periodic grid."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Grid1D:
    """A uniform periodic grid on ``[0, length)``.

    Grid quantities (charge density, potential, electric field) live on
    the ``n_cells`` nodes ``x_j = j * dx``; by periodicity the node at
    ``x = length`` is the node at ``x = 0``.
    """

    n_cells: int
    length: float

    def __post_init__(self) -> None:
        if self.n_cells < 2:
            raise ValueError(f"n_cells must be >= 2, got {self.n_cells}")
        if self.length <= 0:
            raise ValueError(f"length must be positive, got {self.length}")

    @property
    def dx(self) -> float:
        """Grid spacing."""
        return self.length / self.n_cells

    @property
    def nodes(self) -> np.ndarray:
        """Node coordinates ``x_j = j * dx``, shape ``(n_cells,)``."""
        return np.arange(self.n_cells) * self.dx

    @property
    def cell_centers(self) -> np.ndarray:
        """Cell-center coordinates ``(j + 1/2) * dx``."""
        return (np.arange(self.n_cells) + 0.5) * self.dx

    @property
    def fundamental_wavenumber(self) -> float:
        """``k1 = 2*pi / length``."""
        return 2.0 * np.pi / self.length

    def wavenumbers(self) -> np.ndarray:
        """Signed FFT wavenumbers matching ``numpy.fft.fft`` ordering."""
        return 2.0 * np.pi * np.fft.fftfreq(self.n_cells, d=self.dx)

    def rfft_wavenumbers(self) -> np.ndarray:
        """Non-negative wavenumbers matching ``numpy.fft.rfft`` ordering."""
        return 2.0 * np.pi * np.fft.rfftfreq(self.n_cells, d=self.dx)

    def wrap(self, x: np.ndarray) -> np.ndarray:
        """Map positions into ``[0, length)`` periodically."""
        return np.mod(x, self.length)
