"""Particle-grid interpolation (gather) and deposition (scatter).

Implements the three classic B-spline shape functions of increasing
order (Birdsall & Langdon, Ch. 8):

* ``"ngp"`` — Nearest Grid Point, zeroth order (the paper's phase-space
  binning choice);
* ``"cic"`` — Cloud-in-Cell, linear (the workhorse of traditional PIC);
* ``"tsc"`` — Triangular-Shaped Cloud, quadratic (the "higher-order
  interpolation functions" the paper suggests for training data).

The same shape function is used for both gather and deposit so the
resulting traditional PIC method is momentum conserving.

All routines are fully vectorized: deposits use ``np.add.at`` on index
arrays, gathers use fancy indexing.  Positions are assumed periodic on
``[0, L)``; callers should wrap positions first (``Grid1D.wrap``),
although a single wrap is also applied defensively here.

Every routine accepts either a single run — ``positions`` of shape
``(n,)`` — or a stacked ensemble of independent runs — ``positions`` of
shape ``(batch, n)``.  Batched deposits scatter each row into its own
output row through offset flat indices (one ``np.add.at`` call for the
whole ensemble); batched gathers read each row's field through the same
flattening.  Row ``b`` of a batched result is bitwise identical to the
corresponding single-run call, which is what lets the ensemble engine
reproduce sequential runs exactly.

Both routines take an optional kernel ``backend`` (``repro.kernels``):
the batched work is expressed as a slab function over contiguous row
ranges, so the threaded backend can chunk independent rows across its
pool and the numba backend can swap in its jitted float64 loops —
always reproducing the reference rows bit for bit.  ``backend=None``
is the reference path itself (one full slab, zero overhead).
"""

from __future__ import annotations

import numpy as np

from repro.kernels import KernelBackend, NumbaBackend
from repro.pic.grid import Grid1D

_ORDERS = ("ngp", "cic", "tsc")


def _run_rows(backend: "KernelBackend | None", n_rows: int, fn) -> None:
    """Execute a slab function through ``backend`` (None = one slab)."""
    if backend is None:
        fn(0, n_rows)
    else:
        backend.run_rows(n_rows, fn)


def _jit_kernels(backend: "KernelBackend | None"):
    """The numba kernel module when ``backend`` carries live JIT kernels."""
    if isinstance(backend, NumbaBackend):
        return backend.jit
    return None


def _check_order(order: str) -> None:
    if order not in _ORDERS:
        raise ValueError(f"unknown interpolation order {order!r}; expected one of {_ORDERS}")


def _check_positions(positions: np.ndarray) -> np.ndarray:
    """Coerce positions to a float dtype and check the shape.

    float32 inputs stay float32 (the reduced-precision serving tier
    runs the whole cycle in single precision); everything else is
    coerced to float64 exactly as before, so float64 callers keep the
    historical bit-for-bit behavior.  Shapes other than ``(n,)`` and
    ``(batch, n)`` are rejected.
    """
    x = np.asarray(positions)
    if x.dtype != np.float32:
        x = np.asarray(x, dtype=np.float64)
    if x.ndim not in (1, 2):
        raise ValueError(
            "positions must be a 1-D (n,) array or a 2-D batched (batch, n) "
            f"array, got shape {x.shape}"
        )
    return x


def _wrap_positions(x: np.ndarray, length: float) -> np.ndarray:
    """Defensive periodic wrap, skipped when already in ``[0, L)``.

    ``np.mod`` is an identity on in-range values, so the fast path is
    bitwise equivalent — it just avoids a full division pass over what
    is, in the PIC cycle, always pre-wrapped data.  The float32 tier's
    cheap wrap (:func:`repro.pic.mover.push_positions`) can land a
    particle exactly *on* ``L``; index ``n_cells`` wraps to node 0 with
    the correct weights, so such positions pass through too.
    """
    if x.size and 0.0 <= x.min():
        xmax = x.max()
        if xmax < length or (xmax == length and x.dtype == np.float32):
            return x
    return np.mod(x, length)


def _wrap_indices(j: np.ndarray, n: int) -> np.ndarray:
    """Periodic index wrap; bit-mask fast path for power-of-two grids.

    Two's-complement ``j & (n - 1)`` equals ``j % n`` for every integer
    when ``n`` is a power of two (it keeps the low bits, i.e. the value
    modulo ``2**k``), and is roughly an order of magnitude cheaper than
    the integer-division modulo.
    """
    if n & (n - 1) == 0:
        return j & (n - 1)
    return j % n


def _floor_indices(s: np.ndarray) -> np.ndarray:
    """``floor(s)`` as int64 indices for non-negative grid coordinates.

    The float64 path keeps the historical ``np.floor`` + ``astype``
    pair bit-for-bit.  The float32 tier truncates directly — identical
    to ``floor`` because positions are pre-wrapped to ``[0, L]`` so
    ``s >= 0`` — which skips a full array pass on the hot path.
    """
    if s.dtype == np.float32:
        return s.astype(np.int64)
    return np.floor(s).astype(np.int64)


def _ngp_indices(x: np.ndarray, grid: Grid1D) -> np.ndarray:
    """Index of the nearest grid node, periodic."""
    return _wrap_indices(_floor_indices(x / grid.dx + 0.5), grid.n_cells)


def _cic_indices_weights(
    x: np.ndarray, grid: Grid1D
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Left/right node indices and weights for linear interpolation."""
    s = x / grid.dx
    j = _floor_indices(s)
    # float32 - int64 would promote to float64; keep the tier's dtype.
    frac = s - (j if s.dtype == np.float64 else j.astype(s.dtype))
    j_left = _wrap_indices(j, grid.n_cells)
    j_right = _wrap_indices(j + 1, grid.n_cells)
    return j_left, j_right, 1.0 - frac, frac


def _tsc_indices_weights(
    x: np.ndarray, grid: Grid1D
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Three node indices and quadratic-spline weights per particle."""
    s = x / grid.dx
    j = _floor_indices(s + 0.5)  # nearest node
    d = s - (j if s.dtype == np.float64 else j.astype(s.dtype))  # in [-1/2, 1/2)
    w_center = 0.75 - d * d
    w_left = 0.5 * (0.5 - d) ** 2
    w_right = 0.5 * (0.5 + d) ** 2
    n = grid.n_cells
    return (
        _wrap_indices(j - 1, n),
        _wrap_indices(j, n),
        _wrap_indices(j + 1, n),
        w_left,
        w_center,
        w_right,
    )


def deposit(
    grid: Grid1D,
    positions: np.ndarray,
    weights: "np.ndarray | float",
    order: str = "cic",
    backend: "KernelBackend | None" = None,
) -> np.ndarray:
    """Scatter per-particle ``weights`` onto grid nodes.

    Returns the *node density*: the weighted shape-function sum divided
    by ``dx``, so depositing particle charges yields a charge density.
    The total deposited weight is conserved exactly for every order:
    ``deposit(...).sum() * dx == weights.sum()``.

    ``positions`` may be ``(n,)`` (returns ``(n_cells,)``) or a batched
    ``(batch, n)`` stack of independent runs (returns
    ``(batch, n_cells)``, each row deposited independently).  Any other
    shape, or ``weights`` that do not broadcast against ``positions``,
    raises ``ValueError``.  ``backend`` selects how the independent
    rows execute (see the module docstring); every backend reproduces
    the default's rows bit for bit.
    """
    _check_order(order)
    x = _wrap_positions(_check_positions(positions), grid.length)
    try:
        w = np.broadcast_to(np.asarray(weights, dtype=x.dtype), x.shape)
    except ValueError:
        raise ValueError(
            f"weights of shape {np.shape(weights)} do not broadcast to "
            f"positions of shape {x.shape}"
        ) from None
    batched = x.ndim == 2
    x2 = np.atleast_2d(x)
    w2 = np.atleast_2d(w)
    batch = x2.shape[0]
    # The density accumulates in the positions' dtype: float64 runs keep
    # the historical bit-for-bit accumulation, float32 runs accumulate
    # (and return) single precision.
    out = np.zeros((batch, grid.n_cells), dtype=x.dtype)
    jit = _jit_kernels(backend)
    if jit is not None and x.dtype == np.float64:
        def slab(lo: int, hi: int) -> None:
            jit.deposit_rows(
                out[lo:hi], x2[lo:hi], np.ascontiguousarray(w2[lo:hi]),
                grid.dx, jit.ORDER_CODES[order],
            )
    else:
        def slab(lo: int, hi: int) -> None:
            # Offset flat indices scatter every row of the slab into its
            # own output row with a single np.add.at; the indices and
            # weight products are raveled because ufunc.at is several
            # times faster on 1-D operands than on 2-D ones (the
            # accumulation order — and hence the bit pattern — is
            # identical either way, and independent of the slab bounds).
            xs = x2[lo:hi]
            ws = w2[lo:hi]
            flat = out[lo:hi].reshape(-1)
            offs = (np.arange(hi - lo, dtype=np.int64) * grid.n_cells)[:, None]

            def scatter(j: np.ndarray, wj: np.ndarray) -> None:
                np.add.at(flat, (offs + j).ravel(), wj.ravel())

            if order == "ngp":
                scatter(_ngp_indices(xs, grid), np.ascontiguousarray(ws))
            elif order == "cic":
                jl, jr, wl, wr = _cic_indices_weights(xs, grid)
                scatter(jl, ws * wl)
                scatter(jr, ws * wr)
            else:  # tsc
                jl, jc, jr, wl, wc, wr = _tsc_indices_weights(xs, grid)
                scatter(jl, ws * wl)
                scatter(jc, ws * wc)
                scatter(jr, ws * wr)

    _run_rows(backend, batch, slab)
    out /= grid.dx
    return out if batched else out[0]


def gather(
    grid: Grid1D,
    field: np.ndarray,
    positions: np.ndarray,
    order: str = "cic",
    backend: "KernelBackend | None" = None,
) -> np.ndarray:
    """Interpolate a node-defined ``field`` to particle ``positions``.

    With 1-D positions the field must be ``(n_cells,)``.  With batched
    ``(batch, n)`` positions the field may be ``(batch, n_cells)`` (one
    field per run) or ``(n_cells,)`` (shared across the ensemble); the
    result is ``(batch, n)``.  ``backend`` routes the batched rows (see
    the module docstring); results are bit-identical for every backend.
    """
    _check_order(order)
    field = np.asarray(field)
    if field.dtype != np.float32:
        field = np.asarray(field, dtype=np.float64)
    x = _wrap_positions(_check_positions(positions), grid.length)
    if x.ndim == 1:
        if field.shape != (grid.n_cells,):
            raise ValueError(f"field has shape {field.shape}, expected ({grid.n_cells},)")
        if order == "ngp":
            return field[_ngp_indices(x, grid)]
        if order == "cic":
            jl, jr, wl, wr = _cic_indices_weights(x, grid)
            return field[jl] * wl + field[jr] * wr
        jl, jc, jr, wl, wc, wr = _tsc_indices_weights(x, grid)
        return field[jl] * wl + field[jc] * wc + field[jr] * wr

    batch = x.shape[0]
    per_row = field.ndim == 2
    if field.ndim == 1 and field.shape == (grid.n_cells,):
        # Field shared across the ensemble: plain fancy indexing with the
        # index arrays reads it directly — no offsets, no copy.
        def pick(j: np.ndarray, lo: int) -> np.ndarray:
            return field[j]

    elif field.shape == (batch, grid.n_cells):
        flat = np.ascontiguousarray(field).reshape(-1)
        offs = (np.arange(batch, dtype=np.int64) * grid.n_cells)[:, None]

        def pick(j: np.ndarray, lo: int) -> np.ndarray:
            # 1-D fancy indexing is measurably faster than 2-D.
            return flat[(offs[lo : lo + j.shape[0]] + j).ravel()].reshape(j.shape)

    else:
        raise ValueError(
            f"field has shape {field.shape}, expected ({grid.n_cells},) or "
            f"({batch}, {grid.n_cells}) for batched positions"
        )

    # ngp copies field samples verbatim; the weighted orders promote the
    # field against the positions-dtype weights exactly as the reference
    # expressions always have.
    out_dtype = field.dtype if order == "ngp" else np.result_type(field.dtype, x.dtype)
    out = np.empty(x.shape, dtype=out_dtype)
    jit = _jit_kernels(backend)
    if jit is not None and per_row and x.dtype == np.float64 and field.dtype == np.float64:
        cfield = np.ascontiguousarray(field)

        def slab(lo: int, hi: int) -> None:
            jit.gather_rows(
                out[lo:hi], cfield[lo:hi], x[lo:hi], grid.dx, jit.ORDER_CODES[order]
            )
    else:
        def slab(lo: int, hi: int) -> None:
            xs = x[lo:hi]
            if order == "ngp":
                out[lo:hi] = pick(_ngp_indices(xs, grid), lo)
            elif order == "cic":
                jl, jr, wl, wr = _cic_indices_weights(xs, grid)
                out[lo:hi] = pick(jl, lo) * wl + pick(jr, lo) * wr
            else:  # tsc
                jl, jc, jr, wl, wc, wr = _tsc_indices_weights(xs, grid)
                out[lo:hi] = (
                    pick(jl, lo) * wl + pick(jc, lo) * wc + pick(jr, lo) * wr
                )

    _run_rows(backend, batch, slab)
    return out


def charge_density(
    grid: Grid1D,
    positions: np.ndarray,
    particle_charge: float,
    order: str = "cic",
    background: float = 1.0,
    backend: "KernelBackend | None" = None,
) -> np.ndarray:
    """Total charge density: deposited electrons plus a uniform ion
    background (the paper's motionless neutralizing protons).

    With the library's normalization (total electron charge ``-L``) the
    mean of the returned density is zero to round-off.  Accepts single
    ``(n,)`` or batched ``(batch, n)`` positions like :func:`deposit`.
    """
    rho = deposit(grid, positions, particle_charge, order=order, backend=backend)
    return rho + background
