"""Particle-grid interpolation (gather) and deposition (scatter).

Implements the three classic B-spline shape functions of increasing
order (Birdsall & Langdon, Ch. 8):

* ``"ngp"`` — Nearest Grid Point, zeroth order (the paper's phase-space
  binning choice);
* ``"cic"`` — Cloud-in-Cell, linear (the workhorse of traditional PIC);
* ``"tsc"`` — Triangular-Shaped Cloud, quadratic (the "higher-order
  interpolation functions" the paper suggests for training data).

The same shape function is used for both gather and deposit so the
resulting traditional PIC method is momentum conserving.

All routines are fully vectorized: deposits use ``np.add.at`` on index
arrays, gathers use fancy indexing.  Positions are assumed periodic on
``[0, L)``; callers should wrap positions first (``Grid1D.wrap``),
although a single wrap is also applied defensively here.
"""

from __future__ import annotations

import numpy as np

from repro.pic.grid import Grid1D

_ORDERS = ("ngp", "cic", "tsc")


def _check_order(order: str) -> None:
    if order not in _ORDERS:
        raise ValueError(f"unknown interpolation order {order!r}; expected one of {_ORDERS}")


def _ngp_indices(x: np.ndarray, grid: Grid1D) -> np.ndarray:
    """Index of the nearest grid node, periodic."""
    return (np.floor(x / grid.dx + 0.5).astype(np.int64)) % grid.n_cells


def _cic_indices_weights(
    x: np.ndarray, grid: Grid1D
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Left/right node indices and weights for linear interpolation."""
    s = x / grid.dx
    j = np.floor(s).astype(np.int64)
    frac = s - j
    j_left = j % grid.n_cells
    j_right = (j + 1) % grid.n_cells
    return j_left, j_right, 1.0 - frac, frac


def _tsc_indices_weights(
    x: np.ndarray, grid: Grid1D
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Three node indices and quadratic-spline weights per particle."""
    s = x / grid.dx
    j = np.floor(s + 0.5).astype(np.int64)  # nearest node
    d = s - j  # in [-1/2, 1/2)
    w_center = 0.75 - d * d
    w_left = 0.5 * (0.5 - d) ** 2
    w_right = 0.5 * (0.5 + d) ** 2
    n = grid.n_cells
    return (j - 1) % n, j % n, (j + 1) % n, w_left, w_center, w_right


def deposit(
    grid: Grid1D,
    positions: np.ndarray,
    weights: "np.ndarray | float",
    order: str = "cic",
) -> np.ndarray:
    """Scatter per-particle ``weights`` onto grid nodes.

    Returns the *node density*: the weighted shape-function sum divided
    by ``dx``, so depositing particle charges yields a charge density.
    The total deposited weight is conserved exactly for every order:
    ``deposit(...).sum() * dx == weights.sum()``.
    """
    _check_order(order)
    x = np.mod(np.asarray(positions, dtype=np.float64), grid.length)
    w = np.broadcast_to(np.asarray(weights, dtype=np.float64), x.shape)
    out = np.zeros(grid.n_cells, dtype=np.float64)
    if order == "ngp":
        np.add.at(out, _ngp_indices(x, grid), w)
    elif order == "cic":
        jl, jr, wl, wr = _cic_indices_weights(x, grid)
        np.add.at(out, jl, w * wl)
        np.add.at(out, jr, w * wr)
    else:  # tsc
        jl, jc, jr, wl, wc, wr = _tsc_indices_weights(x, grid)
        np.add.at(out, jl, w * wl)
        np.add.at(out, jc, w * wc)
        np.add.at(out, jr, w * wr)
    out /= grid.dx
    return out


def gather(
    grid: Grid1D,
    field: np.ndarray,
    positions: np.ndarray,
    order: str = "cic",
) -> np.ndarray:
    """Interpolate a node-defined ``field`` to particle ``positions``."""
    _check_order(order)
    field = np.asarray(field, dtype=np.float64)
    if field.shape != (grid.n_cells,):
        raise ValueError(f"field has shape {field.shape}, expected ({grid.n_cells},)")
    x = np.mod(np.asarray(positions, dtype=np.float64), grid.length)
    if order == "ngp":
        return field[_ngp_indices(x, grid)]
    if order == "cic":
        jl, jr, wl, wr = _cic_indices_weights(x, grid)
        return field[jl] * wl + field[jr] * wr
    jl, jc, jr, wl, wc, wr = _tsc_indices_weights(x, grid)
    return field[jl] * wl + field[jc] * wc + field[jr] * wr


def charge_density(
    grid: Grid1D,
    positions: np.ndarray,
    particle_charge: float,
    order: str = "cic",
    background: float = 1.0,
) -> np.ndarray:
    """Total charge density: deposited electrons plus a uniform ion
    background (the paper's motionless neutralizing protons).

    With the library's normalization (total electron charge ``-L``) the
    mean of the returned density is zero to round-off.
    """
    rho = deposit(grid, positions, particle_charge, order=order)
    return rho + background
