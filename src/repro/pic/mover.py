"""Particle movers (pushers).

The paper uses the classic 1D electrostatic leapfrog (Eqs. 1-2):

.. math::
    v^{n+1/2} = v^{n-1/2} + (q/m) E^n(x^n) \\Delta t \\\\
    x^{n+1}   = x^n + v^{n+1/2} \\Delta t

A Boris pusher (with optional magnetic field) is included as the
standard extension point for electromagnetic problems; with ``B = 0``
it reduces exactly to the leapfrog velocity update.

All pushers are purely elementwise, so they operate unchanged on a
single run (arrays of shape ``(n,)``) or on a stacked ensemble of
independent runs (``(batch, n)``) — the batched update of row ``b`` is
bitwise identical to pushing that row alone.  That same row
independence lets the leapfrog pushers take an optional kernel
``backend`` (``repro.kernels``): a parallel backend updates contiguous
row chunks concurrently, producing the reference bit pattern because
each output row depends only on the matching input rows.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import KernelBackend


def _chunked(backend: "KernelBackend | None", x: np.ndarray) -> bool:
    """Whether ``backend`` should split this array's batch rows."""
    return backend is not None and backend.parallel and x.ndim == 2


def push_velocities(
    v: np.ndarray,
    e_at_particles: np.ndarray,
    qm: float,
    dt: float,
    backend: "KernelBackend | None" = None,
) -> np.ndarray:
    """Leapfrog velocity update (Eq. 2); returns a new array."""
    if _chunked(backend, v):
        out = np.empty_like(v)

        def slab(lo: int, hi: int) -> None:
            out[lo:hi] = v[lo:hi] + qm * e_at_particles[lo:hi] * dt

        backend.run_rows(v.shape[0], slab)
        return out
    return v + qm * e_at_particles * dt


def push_positions(
    x: np.ndarray,
    v: np.ndarray,
    dt: float,
    length: float,
    backend: "KernelBackend | None" = None,
) -> np.ndarray:
    """Leapfrog position update (Eq. 1) with periodic wrapping."""
    if x.dtype == np.float32:
        # The float32 tier wraps via floor — ~8x cheaper than np.mod
        # and equal to it up to single-precision rounding (a particle
        # may land exactly on L, which the grid treats as node 0).
        if _chunked(backend, x):
            out = np.empty_like(x)
            flen = np.float32(length)

            def slab(lo: int, hi: int) -> None:
                xs = x[lo:hi] + v[lo:hi] * dt
                xs -= np.floor(xs / flen) * flen
                out[lo:hi] = xs

            backend.run_rows(x.shape[0], slab)
            return out
        x = x + v * dt
        x -= np.floor(x / np.float32(length)) * np.float32(length)
        return x
    if _chunked(backend, x):
        out = np.empty_like(x)

        def slab(lo: int, hi: int) -> None:
            out[lo:hi] = np.mod(x[lo:hi] + v[lo:hi] * dt, length)

        backend.run_rows(x.shape[0], slab)
        return out
    return np.mod(x + v * dt, length)


def rewind_velocities(
    v: np.ndarray,
    e_at_particles: np.ndarray,
    qm: float,
    dt: float,
    backend: "KernelBackend | None" = None,
) -> np.ndarray:
    """Shift velocities from ``t=0`` back to ``t=-dt/2`` to start leapfrog.

    Standard leapfrog initialization: the loaded velocities are defined
    at integer time 0 while the scheme stores them at half steps.
    """
    if _chunked(backend, v):
        out = np.empty_like(v)

        def slab(lo: int, hi: int) -> None:
            out[lo:hi] = v[lo:hi] - 0.5 * qm * e_at_particles[lo:hi] * dt

        backend.run_rows(v.shape[0], slab)
        return out
    return v - 0.5 * qm * e_at_particles * dt


def boris_push_velocities(
    v: np.ndarray,
    e_at_particles: np.ndarray,
    qm: float,
    dt: float,
    b: float = 0.0,
) -> np.ndarray:
    """Boris rotation pusher for 1D motion with an out-of-plane ``B``.

    For a particle moving in x with ``B = B e_z`` the in-plane velocity
    ``(v_x, v_y)`` rotates; this 1D reduction tracks only ``v_x`` and
    assumes ``v_y = 0`` each step, so it is exact for ``B = 0`` (where
    it coincides with :func:`push_velocities`) and provided as the
    electromagnetic extension hook.
    """
    half_accel = 0.5 * qm * e_at_particles * dt
    v_minus = v + half_accel
    if b == 0.0:
        return v_minus + half_accel
    t = 0.5 * qm * b * dt
    s = 2.0 * t / (1.0 + t * t)
    # v' = v- + v- x t ; v+ = v- + v' x s  (2D rotation, v_y starts at 0)
    vx_minus, vy_minus = v_minus, np.zeros_like(v_minus)
    vx_prime = vx_minus + vy_minus * t
    vy_prime = vy_minus - vx_minus * t
    vx_plus = vx_minus + vy_prime * s
    return vx_plus + half_accel
