"""Electron macro-particle container and two-stream loading.

The paper initializes particle positions uniformly in space and
velocities as two counter-streaming beams at ``+/-v0`` with Gaussian
thermal spread ``vth`` (Sec. II-III).  Protons form a motionless
neutralizing background and are not represented by particles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SimulationConfig
from repro.utils.rng import as_generator


@dataclass
class ParticleSet:
    """Positions/velocities of identical macro-particles.

    Attributes
    ----------
    x, v:
        Arrays of shape ``(n,)`` for a single run, or ``(batch, n)``
        for a stacked ensemble of independent runs sharing the same
        macro-particle charge and mass.
    charge, mass:
        Per-macro-particle charge and mass (all particles identical).
    """

    x: np.ndarray
    v: np.ndarray
    charge: float
    mass: float

    def __post_init__(self) -> None:
        # float32 state passes through unchanged (the reduced-precision
        # serving tier); everything else is coerced to float64.
        self.x = np.asarray(self.x)
        self.v = np.asarray(self.v)
        if self.x.dtype != np.float32:
            self.x = np.asarray(self.x, dtype=np.float64)
        if self.v.dtype != np.float32:
            self.v = np.asarray(self.v, dtype=np.float64)
        if self.x.shape != self.v.shape or self.x.ndim not in (1, 2):
            raise ValueError(
                "x and v must be equal-shape 1D (n,) or batched (batch, n) arrays, "
                f"got {self.x.shape} and {self.v.shape}"
            )
        if self.mass <= 0:
            raise ValueError(f"mass must be positive, got {self.mass}")

    def __len__(self) -> int:
        """Number of macro-particles per run (the last-axis length)."""
        return self.x.shape[-1]

    @property
    def batch(self) -> int:
        """Number of stacked runs (1 for a plain single-run set)."""
        return 1 if self.x.ndim == 1 else self.x.shape[0]

    @property
    def qm(self) -> float:
        """Charge-to-mass ratio."""
        return self.charge / self.mass

    def copy(self) -> "ParticleSet":
        """Deep copy (positions and velocities are duplicated)."""
        return ParticleSet(self.x.copy(), self.v.copy(), self.charge, self.mass)

    def kinetic_energy(self) -> float:
        """``sum(m v^2 / 2)`` over the macro-particles."""
        return float(0.5 * self.mass * np.sum(self.v**2))

    def momentum(self) -> float:
        """``sum(m v)`` over the macro-particles."""
        return float(self.mass * np.sum(self.v))


def load_two_stream(
    config: SimulationConfig,
    rng: "int | np.random.Generator | None" = None,
) -> ParticleSet:
    """Load two symmetric counter-streaming electron beams.

    Half of the particles drift at ``+v0`` and half at ``-v0``; each
    receives an independent Gaussian thermal kick of standard deviation
    ``vth``.  Positions are uniform random (``loading="random"``, the
    paper's choice — the instability grows from particle noise) or
    evenly spaced per beam (``loading="quiet"``), optionally perturbed
    sinusoidally to seed mode ``perturbation_mode`` deterministically.
    """
    rng = as_generator(rng if rng is not None else config.seed)
    n = config.n_particles
    if n % 2 != 0:
        raise ValueError(f"two-stream loading needs an even particle count, got {n}")
    half = n // 2
    L = config.box_length

    if config.loading == "random":
        x = rng.uniform(0.0, L, size=n)
    else:  # quiet start: evenly spaced positions per beam
        x_beam = (np.arange(half) + 0.5) * (L / half)
        x = np.concatenate([x_beam, x_beam])

    if config.perturbation != 0.0:
        # Displace positions by a sinusoid: x -> x + a*sin(k x) seeds a
        # density perturbation of relative amplitude ~ a*k at mode m.
        k = 2.0 * np.pi * config.perturbation_mode / L
        x = x + (config.perturbation / k) * np.sin(k * x)
    x = np.mod(x, L)

    v = np.empty(n, dtype=np.float64)
    v[:half] = config.v0
    v[half:] = -config.v0
    if config.vth > 0.0:
        v += rng.normal(0.0, config.vth, size=n)

    return ParticleSet(x=x, v=v, charge=config.particle_charge, mass=config.particle_mass)
