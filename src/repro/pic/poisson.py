"""Grid Poisson solvers for the electrostatic field-solve stage.

Solves ``laplacian(phi) = -rho / eps0`` on a periodic 1D grid and
derives ``E = -grad(phi)``.  Three interchangeable discretizations are
provided (all agree on smooth fields, tests cross-check them):

* ``"spectral"`` — exact continuous operator in Fourier space,
  ``phi_k = rho_k / (eps0 * k^2)``;
* ``"fd"`` — second-order central finite differences diagonalized by
  the FFT (eigenvalues ``-(2 - 2 cos(k dx)) / dx^2``), equivalent to
  the cyclic tridiagonal solve of classic PIC codes but O(N log N);
* ``"direct"`` — the same finite-difference operator solved as a banded
  linear system (scipy LU) with the gauge fixed by pinning ``phi_0 = 0``
  and the compatibility condition enforced by removing the mean charge.

The periodic Poisson problem is singular: solutions are defined up to a
constant and require ``mean(rho) = 0``.  All solvers remove the mean of
``rho`` (physically: the neutralizing background) and return the
zero-mean potential.

All solvers accept either a single charge density of shape
``(n_cells,)`` or a stacked ensemble ``(batch, n_cells)`` and solve
each row independently — the FFT-based discretizations batch along the
last axis in one call, which is where the ensemble engine gets its
throughput.  Row ``b`` of a batched solve is bitwise identical to the
corresponding single solve.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro import constants
from repro.pic.grid import Grid1D

_SOLVERS = ("spectral", "fd", "direct")
_GRADIENTS = ("central", "spectral")


def _validate_grid_array(grid: Grid1D, arr: np.ndarray, name: str) -> np.ndarray:
    # float32 arrays pass through unchanged (the reduced-precision
    # serving tier batches single-precision FFTs); anything else is
    # coerced to float64 exactly as before.
    arr = np.asarray(arr)
    if arr.dtype != np.float32:
        arr = np.asarray(arr, dtype=np.float64)
    if arr.ndim not in (1, 2) or arr.shape[-1] != grid.n_cells:
        raise ValueError(
            f"{name} has shape {arr.shape}, expected ({grid.n_cells},) or "
            f"(batch, {grid.n_cells})"
        )
    return arr


def _validate_rho(grid: Grid1D, rho: np.ndarray) -> np.ndarray:
    return _validate_grid_array(grid, rho, "rho")


def solve_poisson_spectral(grid: Grid1D, rho: np.ndarray, eps0: float = constants.EPSILON_0) -> np.ndarray:
    """Spectral solve with the exact ``k^2`` symbol; returns zero-mean phi."""
    rho = _validate_rho(grid, rho)
    rho_k = np.fft.rfft(rho, axis=-1)
    k = grid.rfft_wavenumbers()
    phi_k = np.zeros_like(rho_k)
    nonzero = k != 0.0
    phi_k[..., nonzero] = rho_k[..., nonzero] / (eps0 * k[nonzero] ** 2)
    return np.fft.irfft(phi_k, n=grid.n_cells, axis=-1)


def solve_poisson_fd(grid: Grid1D, rho: np.ndarray, eps0: float = constants.EPSILON_0) -> np.ndarray:
    """FFT-diagonalized second-order finite-difference solve."""
    rho = _validate_rho(grid, rho)
    rho_k = np.fft.rfft(rho, axis=-1)
    k = grid.rfft_wavenumbers()
    # Discrete eigenvalues of the periodic 3-point Laplacian.
    lam = (2.0 - 2.0 * np.cos(k * grid.dx)) / grid.dx**2
    phi_k = np.zeros_like(rho_k)
    nonzero = lam != 0.0
    phi_k[..., nonzero] = rho_k[..., nonzero] / (eps0 * lam[nonzero])
    return np.fft.irfft(phi_k, n=grid.n_cells, axis=-1)


def solve_poisson_direct(grid: Grid1D, rho: np.ndarray, eps0: float = constants.EPSILON_0) -> np.ndarray:
    """Dense/banded LU solve of the periodic finite-difference operator.

    Provided as an independent cross-check of the FFT-based solver (it
    exercises a completely different code path).  The singular gauge is
    fixed by pinning ``phi[0] = 0`` and the result is re-centered to
    zero mean to match the other solvers.
    """
    rho = _validate_rho(grid, rho)
    if rho.ndim == 2:
        # Row-by-row keeps each solve bitwise identical to the single
        # call; the LU path is a cross-check, not a hot path.
        return np.stack([solve_poisson_direct(grid, r, eps0) for r in rho])
    n = grid.n_cells
    rhs = -(rho - rho.mean()) / eps0 * grid.dx**2
    a = np.zeros((n, n))
    idx = np.arange(n)
    a[idx, idx] = -2.0
    a[idx, (idx + 1) % n] += 1.0
    a[idx, (idx - 1) % n] += 1.0
    # Pin the gauge: replace the first equation by phi_0 = 0.
    a[0, :] = 0.0
    a[0, 0] = 1.0
    rhs = rhs.copy()
    rhs[0] = 0.0
    phi = scipy.linalg.solve(a, rhs)
    return phi - phi.mean()


def electric_field_from_potential(
    grid: Grid1D, phi: np.ndarray, method: str = "central"
) -> np.ndarray:
    """Discretize ``E = -d(phi)/dx`` on the periodic grid.

    ``"central"`` is the classic momentum-conserving 2-point stencil
    ``E_j = -(phi_{j+1} - phi_{j-1}) / (2 dx)``; ``"spectral"``
    differentiates exactly in Fourier space.
    """
    phi = _validate_grid_array(grid, phi, "phi")
    if method == "central":
        return -(np.roll(phi, -1, axis=-1) - np.roll(phi, 1, axis=-1)) / (2.0 * grid.dx)
    if method == "spectral":
        phi_k = np.fft.rfft(phi, axis=-1)
        k = grid.rfft_wavenumbers()
        return np.fft.irfft(-1j * k * phi_k, n=grid.n_cells, axis=-1)
    raise ValueError(f"unknown gradient method {method!r}; expected one of {_GRADIENTS}")


class PoissonSolver:
    """Facade bundling a Poisson discretization with a gradient rule.

    The per-grid FFT symbols — rfft wavenumbers, the finite-difference
    eigenvalues, their nonzero masks and the ``eps0``-scaled
    denominators, and the spectral-gradient multiplier — are computed
    once at construction and reused by every :meth:`solve`.  The
    module-level solve functions recompute them per call; the cached
    path evaluates the exact same expressions, so results are bitwise
    identical (this is the PIC cycle's hot path: one solve per step).

    >>> grid = Grid1D(64, 2.0)
    >>> solver = PoissonSolver(grid, method="spectral", gradient="central")
    >>> phi, E = solver.solve(rho)       # doctest: +SKIP
    """

    def __init__(
        self,
        grid: Grid1D,
        method: str = "spectral",
        gradient: str = "central",
        eps0: float = constants.EPSILON_0,
    ) -> None:
        if method not in _SOLVERS:
            raise ValueError(f"unknown poisson method {method!r}; expected one of {_SOLVERS}")
        if gradient not in _GRADIENTS:
            raise ValueError(f"unknown gradient {gradient!r}; expected one of {_GRADIENTS}")
        self.grid = grid
        self.method = method
        self.gradient = gradient
        self.eps0 = eps0
        # Frozen per-grid FFT symbols (identical expressions to the
        # module-level solvers, evaluated once instead of per step).
        k = grid.rfft_wavenumbers()
        self._k = k
        self._k_nonzero = k != 0.0
        self._k_denominator = eps0 * k[self._k_nonzero] ** 2
        lam = (2.0 - 2.0 * np.cos(k * grid.dx)) / grid.dx**2
        self._fd_nonzero = lam != 0.0
        self._fd_denominator = eps0 * lam[self._fd_nonzero]
        self._spectral_gradient_symbol = -1j * k

    def solve_potential(self, rho: np.ndarray) -> np.ndarray:
        """Return the zero-mean electrostatic potential for ``rho``."""
        if self.method == "direct":
            return solve_poisson_direct(self.grid, rho, self.eps0)
        rho = _validate_rho(self.grid, rho)
        rho_k = np.fft.rfft(rho, axis=-1)
        phi_k = np.zeros_like(rho_k)
        if self.method == "spectral":
            nonzero, denominator = self._k_nonzero, self._k_denominator
        else:  # "fd"
            nonzero, denominator = self._fd_nonzero, self._fd_denominator
        phi_k[..., nonzero] = rho_k[..., nonzero] / denominator
        return np.fft.irfft(phi_k, n=self.grid.n_cells, axis=-1)

    def electric_field(self, phi: np.ndarray) -> np.ndarray:
        """``E = -grad(phi)`` with this solver's gradient rule (cached symbols)."""
        phi = _validate_grid_array(self.grid, phi, "phi")
        if self.gradient == "central":
            return -(np.roll(phi, -1, axis=-1) - np.roll(phi, 1, axis=-1)) / (2.0 * self.grid.dx)
        phi_k = np.fft.rfft(phi, axis=-1)
        symbol = self._spectral_gradient_symbol
        if phi_k.dtype == np.complex64:
            symbol = symbol.astype(np.complex64)
        return np.fft.irfft(symbol * phi_k, n=self.grid.n_cells, axis=-1)

    def solve(self, rho: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(phi, E)`` for the charge density ``rho``."""
        phi = self.solve_potential(rho)
        return phi, self.electric_field(phi)
