"""Registry of named initial-condition scenarios.

Every entry is a factory ``(SimulationConfig, Generator) -> ParticleSet``
registered under a short name, selected through
``SimulationConfig.scenario`` and loadable one run at a time
(:func:`load_scenario`) or as a stacked ``(batch, n)`` ensemble
(:func:`load_ensemble`) for the batched engine in
``repro.pic.simulation``.

Built-in scenarios
------------------
``two_stream``
    The paper's counter-streaming beams at ``+/-v0`` with thermal
    spread ``vth`` (delegates to ``load_two_stream``, so the default
    configuration is bit-for-bit the seed reproduction's load).
``cold_beam``
    A single drifting beam at ``+v0`` — the free-streaming/stable
    configuration of the paper's Fig. 6 study.
``landau_damping``
    A resting Maxwellian with a seeded sinusoidal density perturbation
    whose field oscillation Landau-damps; uses ``config.perturbation``
    as the amplitude (default 0.05 when the config leaves it at 0,
    since an unperturbed Maxwellian is inert).
``bump_on_tail``
    A Maxwellian core plus a fast minority beam at ``v0`` (fraction
    ``config.extra["bump_fraction"]``, default 0.1) — the classic
    gentle-beam instability.
``random_perturbation``
    A resting Maxwellian with random-amplitude, random-phase density
    perturbations on the first few modes: a noise workload for
    training-data diversity.

All scenarios draw exactly ``config.n_particles`` electrons with the
config's macro-particle charge and mass, so together with the uniform
neutralizing ion background the initial charge density has zero mean —
a property the test-suite asserts for every registry entry.

Noise-free distribution counterparts
------------------------------------
Every built-in scenario also registers a *distribution factory*
``(SimulationConfig, x_centers, v_centers) -> f0(v, x)`` — the smooth
phase-space density a Vlasov engine starts from in place of sampled
macro-particles.  The density is normalized to mean 1 (total mass
``L``), mirroring the particle loads, and requires ``vth > 0`` (a cold
delta beam is not representable on a velocity grid).  Distributions
are selected through the same ``config.scenario`` name by the
``solver="vlasov"`` engine family (:mod:`repro.engines`).

Register additional scenarios with the decorators::

    from repro.pic.scenarios import register_distribution, register_scenario

    @register_scenario("my_setup")
    def _my_setup(config, rng):
        ...
        return ParticleSet(x, v, config.particle_charge, config.particle_mass)

    @register_distribution("my_setup")
    def _my_setup_f0(config, x, v):
        ...
        return f  # (n_v, n_x), mean density 1
"""

from __future__ import annotations

import inspect
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.config import SimulationConfig
from repro.pic.particles import ParticleSet, load_two_stream
from repro.utils.rng import as_generator

ScenarioFactory = Callable[[SimulationConfig, np.random.Generator], ParticleSet]
# (config, x_centers, v_centers) -> (n_v, n_x) phase-space density.
DistributionFactory = Callable[[SimulationConfig, np.ndarray, np.ndarray], np.ndarray]

_REGISTRY: dict[str, ScenarioFactory] = {}
_DISTRIBUTIONS: dict[str, DistributionFactory] = {}


def register_scenario(name: str) -> Callable[[ScenarioFactory], ScenarioFactory]:
    """Decorator registering a scenario factory under ``name``."""

    def decorator(factory: ScenarioFactory) -> ScenarioFactory:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = factory
        return factory

    return decorator


def register_distribution(
    name: str,
) -> Callable[[DistributionFactory], DistributionFactory]:
    """Decorator registering a noise-free ``f0(x, v)`` under ``name``.

    ``name`` should match a particle scenario so the Vlasov engine can
    be selected through the same ``config.scenario``, but standalone
    distribution-only scenarios are allowed too.
    """

    def decorator(factory: DistributionFactory) -> DistributionFactory:
        if name in _DISTRIBUTIONS:
            raise ValueError(f"distribution {name!r} is already registered")
        _DISTRIBUTIONS[name] = factory
        return factory

    return decorator


def available_scenarios() -> tuple[str, ...]:
    """Sorted names of every registered scenario."""
    return tuple(sorted(_REGISTRY))


def available_distributions() -> tuple[str, ...]:
    """Sorted names of every scenario with a noise-free ``f0``."""
    return tuple(sorted(_DISTRIBUTIONS))


def has_distribution(name: str) -> bool:
    """Whether ``name`` registered a noise-free distribution."""
    return name in _DISTRIBUTIONS


def _first_doc_line(obj: object) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.splitlines()[0] if doc else ""


def scenario_summaries() -> dict[str, str]:
    """Name -> first docstring line of every registered scenario.

    The one-line descriptions backing ``repro scenarios``; factories
    without a docstring get an empty string.  Distribution-only
    scenarios (a registered ``f0`` with no particle counterpart) are
    included, described by their distribution factory's docstring.
    """
    out: dict[str, str] = {}
    for name in sorted(set(_REGISTRY) | set(_DISTRIBUTIONS)):
        factory = _REGISTRY.get(name, _DISTRIBUTIONS.get(name))
        out[name] = _first_doc_line(factory)
    return out


def get_scenario(name: str) -> ScenarioFactory:
    """Look up a registered factory; unknown names raise ``ValueError``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {', '.join(available_scenarios())}"
        ) from None


def get_distribution(name: str) -> DistributionFactory:
    """Look up a registered distribution; unknown names raise ``ValueError``."""
    try:
        return _DISTRIBUTIONS[name]
    except KeyError:
        raise ValueError(
            f"scenario {name!r} has no noise-free distribution; "
            f"available: {', '.join(available_distributions())}"
        ) from None


def load_distribution(config: SimulationConfig) -> np.ndarray:
    """The ``(n_v, n_x)`` initial distribution named by ``config.scenario``.

    Cell-centered in both ``x`` (``config.n_cells`` cells over the box)
    and ``v`` (the velocity window from :func:`vlasov_grid_params`,
    i.e. ``config.extra``'s ``n_v``/``v_min``/``v_max`` knobs).
    """
    from repro.engines.base import vlasov_grid_params

    factory = get_distribution(config.scenario)
    n_v, v_min, v_max = vlasov_grid_params(config)
    if n_v < 2:
        raise ValueError(f"velocity grid too small: n_v={n_v}")
    if v_max <= v_min:
        raise ValueError(f"empty velocity window [{v_min}, {v_max}]")
    dx = config.box_length / config.n_cells
    dv = (v_max - v_min) / n_v
    x = (np.arange(config.n_cells) + 0.5) * dx
    v = v_min + (np.arange(n_v) + 0.5) * dv
    f = np.asarray(factory(config, x, v), dtype=np.float64)
    if f.shape != (n_v, config.n_cells):
        raise ValueError(
            f"distribution {config.scenario!r} returned shape {f.shape}, "
            f"expected {(n_v, config.n_cells)}"
        )
    return f


def load_scenario(
    config: SimulationConfig,
    rng: "int | np.random.Generator | None" = None,
) -> ParticleSet:
    """Load the initial condition named by ``config.scenario`` (1-D)."""
    factory = get_scenario(config.scenario)
    return factory(config, as_generator(rng if rng is not None else config.seed))


def load_ensemble(
    configs: Sequence[SimulationConfig],
    rngs: "Iterable[int | np.random.Generator | None] | None" = None,
) -> ParticleSet:
    """Load one scenario per config and stack them as ``(batch, n)``.

    Each row is loaded with its own config (scenario, seed, beam
    parameters may all differ) and is bitwise identical to the
    corresponding :func:`load_scenario` call.  Macro-particle charge
    and mass must agree across the batch (they are shared).
    """
    configs = list(configs)
    if not configs:
        raise ValueError("ensemble loading needs at least one configuration")
    if rngs is None:
        rngs = [None] * len(configs)
    rngs = list(rngs)
    if len(rngs) != len(configs):
        raise ValueError(f"got {len(rngs)} rngs for {len(configs)} configs")
    rows = [load_scenario(cfg, rng) for cfg, rng in zip(configs, rngs)]
    ref = rows[0]
    for i, row in enumerate(rows[1:], 1):
        if len(row) != len(ref):
            raise ValueError(
                f"ensemble member {i} loads {len(row)} particles, member 0 loads {len(ref)}"
            )
        if row.charge != ref.charge or row.mass != ref.mass:
            raise ValueError(
                f"ensemble member {i} has charge/mass ({row.charge}, {row.mass}), "
                f"member 0 has ({ref.charge}, {ref.mass}); these must be uniform"
            )
    return ParticleSet(
        x=np.stack([row.x for row in rows]),
        v=np.stack([row.v for row in rows]),
        charge=ref.charge,
        mass=ref.mass,
    )


# ----------------------------------------------------------------------
# Shared loading helpers


def _positions(
    config: SimulationConfig,
    rng: np.random.Generator,
    n: int,
    perturbation: "float | None" = None,
) -> np.ndarray:
    """Spatial load shared by the non-two-stream scenarios.

    Uniform random (``loading="random"``) or evenly spaced
    (``loading="quiet"``) positions, optionally displaced sinusoidally
    to seed a density perturbation at ``config.perturbation_mode``.
    """
    L = config.box_length
    if config.loading == "random":
        x = rng.uniform(0.0, L, size=n)
    else:
        x = (np.arange(n) + 0.5) * (L / n)
    amp = config.perturbation if perturbation is None else perturbation
    if amp != 0.0:
        k = 2.0 * np.pi * config.perturbation_mode / L
        x = x + (amp / k) * np.sin(k * x)
    return np.mod(x, L)


def _thermalize(v: np.ndarray, vth: float, rng: np.random.Generator) -> np.ndarray:
    """Add a Gaussian thermal kick of spread ``vth`` (no-op when 0)."""
    if vth > 0.0:
        v = v + rng.normal(0.0, vth, size=v.shape)
    return v


def _particle_set(config: SimulationConfig, x: np.ndarray, v: np.ndarray) -> ParticleSet:
    return ParticleSet(x=x, v=v, charge=config.particle_charge, mass=config.particle_mass)


# ----------------------------------------------------------------------
# Built-in scenarios


@register_scenario("two_stream")
def _two_stream(config: SimulationConfig, rng: np.random.Generator) -> ParticleSet:
    """The paper's counter-streaming beams (Sec. II-III)."""
    return load_two_stream(config, rng)


@register_scenario("cold_beam")
def _cold_beam(config: SimulationConfig, rng: np.random.Generator) -> ParticleSet:
    """A single beam drifting at ``+v0`` with thermal spread ``vth``."""
    n = config.n_particles
    x = _positions(config, rng, n)
    v = _thermalize(np.full(n, config.v0), config.vth, rng)
    return _particle_set(config, x, v)


@register_scenario("landau_damping")
def _landau_damping(config: SimulationConfig, rng: np.random.Generator) -> ParticleSet:
    """Resting Maxwellian with a seeded density perturbation.

    ``config.perturbation`` sets the relative amplitude; when left at
    the default 0 a 5% perturbation is used so the scenario excites a
    damped Langmuir oscillation out of the box.
    """
    n = config.n_particles
    amp = config.perturbation if config.perturbation != 0.0 else 0.05
    x = _positions(config, rng, n, perturbation=amp)
    v = _thermalize(np.zeros(n), config.vth, rng)
    return _particle_set(config, x, v)


@register_scenario("bump_on_tail")
def _bump_on_tail(config: SimulationConfig, rng: np.random.Generator) -> ParticleSet:
    """Maxwellian core plus a minority beam at ``v0`` (gentle bump).

    The beam fraction comes from ``config.extra["bump_fraction"]``
    (default 0.1); the beam's spread is half the core's so the bump is
    a distinct maximum of the velocity distribution.
    """
    n = config.n_particles
    fraction = float(config.extra.get("bump_fraction", 0.1))
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"bump_fraction must be in (0, 1), got {fraction}")
    n_bump = max(1, int(round(fraction * n)))
    x = _positions(config, rng, n)
    v = np.zeros(n)
    v[n - n_bump:] = config.v0
    v[: n - n_bump] = _thermalize(v[: n - n_bump], config.vth, rng)
    v[n - n_bump:] = _thermalize(v[n - n_bump:], 0.5 * config.vth, rng)
    return _particle_set(config, x, v)


@register_scenario("random_perturbation")
def _random_perturbation(config: SimulationConfig, rng: np.random.Generator) -> ParticleSet:
    """Resting Maxwellian with random multi-mode density perturbations.

    Modes 1-4 each receive a uniformly random amplitude up to
    ``config.perturbation`` (default 0.05 when 0) and a random phase —
    a diverse noise workload for training-data generation.
    """
    n = config.n_particles
    L = config.box_length
    amp_max = config.perturbation if config.perturbation != 0.0 else 0.05
    x = _positions(config, rng, n, perturbation=0.0)
    for mode in range(1, 5):
        amp = rng.uniform(0.0, amp_max)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        k = 2.0 * np.pi * mode / L
        x = x + (amp / k) * np.sin(k * x + phase)
    x = np.mod(x, L)
    v = _thermalize(np.zeros(n), config.vth, rng)
    return _particle_set(config, x, v)


# ----------------------------------------------------------------------
# Noise-free distribution counterparts (the Vlasov engine's f0)


def _require_thermal(config: SimulationConfig) -> None:
    if config.vth <= 0:
        raise ValueError(
            f"the noise-free distribution of scenario {config.scenario!r} needs "
            f"vth > 0 (a cold delta beam is not representable on a velocity "
            f"grid), got {config.vth}"
        )


def _gauss(u: np.ndarray, vth: float) -> np.ndarray:
    """Unnormalized Maxwellian profile ``exp(-u^2 / 2 vth^2)``."""
    return np.exp(-0.5 * (u / vth) ** 2)


def _normalize_fv(config: SimulationConfig, fv: np.ndarray) -> np.ndarray:
    """Normalize a velocity profile to unit integral on the grid."""
    from repro.engines.base import vlasov_grid_params

    n_v, v_min, v_max = vlasov_grid_params(config)
    norm = np.sum(fv) * ((v_max - v_min) / n_v)
    if norm <= 0:
        raise ValueError("velocity window does not contain the distribution")
    return fv / norm


def _density_profile(config: SimulationConfig, x: np.ndarray, amp: float) -> np.ndarray:
    """Seeded sinusoidal density modulation ``1 + amp*cos(k_m x)``."""
    if amp == 0.0:
        return np.ones_like(x)
    k = 2.0 * np.pi * config.perturbation_mode / config.box_length
    return 1.0 + amp * np.cos(k * x)


@register_distribution("two_stream")
def _two_stream_f0(config: SimulationConfig, x: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Counter-streaming Maxwellian beams at ``+/-v0``.

    A noise-free run needs an explicit seed where the PIC load relies
    on shot noise, so a zero ``config.perturbation`` defaults to the
    classic ``1e-3`` density modulation.  Identical (bitwise) to the
    legacy ``repro.vlasov.two_stream_distribution`` construction.
    """
    _require_thermal(config)
    fv = _normalize_fv(
        config, 0.5 * (_gauss(v - config.v0, config.vth) + _gauss(v + config.v0, config.vth))
    )
    amp = config.perturbation if config.perturbation != 0.0 else 1e-3
    return fv[:, None] * _density_profile(config, x, amp)[None, :]


@register_distribution("cold_beam")
def _cold_beam_f0(config: SimulationConfig, x: np.ndarray, v: np.ndarray) -> np.ndarray:
    """A single Maxwellian beam drifting at ``+v0`` (stable)."""
    _require_thermal(config)
    fv = _normalize_fv(config, _gauss(v - config.v0, config.vth))
    return fv[:, None] * _density_profile(config, x, config.perturbation)[None, :]


@register_distribution("landau_damping")
def _landau_damping_f0(config: SimulationConfig, x: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Resting Maxwellian with a seeded density perturbation.

    Mirrors the particle scenario: a zero ``config.perturbation``
    defaults to a 5% modulation so the damped oscillation is excited.
    """
    _require_thermal(config)
    fv = _normalize_fv(config, _gauss(v, config.vth))
    amp = config.perturbation if config.perturbation != 0.0 else 0.05
    return fv[:, None] * _density_profile(config, x, amp)[None, :]


@register_distribution("bump_on_tail")
def _bump_on_tail_f0(config: SimulationConfig, x: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Maxwellian core plus a minority beam at ``v0`` (gentle bump).

    Same mixture as the particle scenario — fraction
    ``config.extra["bump_fraction"]`` (default 0.1) in a beam of half
    the core's thermal width — with a ``1e-3`` seed perturbation when
    the config leaves ``perturbation`` at 0.
    """
    _require_thermal(config)
    fraction = float(config.extra.get("bump_fraction", 0.1))
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"bump_fraction must be in (0, 1), got {fraction}")
    core = _normalize_fv(config, _gauss(v, config.vth))
    bump = _normalize_fv(config, _gauss(v - config.v0, 0.5 * config.vth))
    fv = (1.0 - fraction) * core + fraction * bump
    amp = config.perturbation if config.perturbation != 0.0 else 1e-3
    return fv[:, None] * _density_profile(config, x, amp)[None, :]


@register_distribution("random_perturbation")
def _random_perturbation_f0(
    config: SimulationConfig, x: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Resting Maxwellian with seeded random multi-mode perturbations.

    The same modes 1-4 with random amplitudes (up to
    ``config.perturbation``, default 0.05 when 0) and phases as the
    particle scenario, drawn deterministically from ``config.seed`` in
    the particle load's draw order — so the distribution is the smooth
    counterpart of the scenario a given seed would sample.
    """
    _require_thermal(config)
    rng = as_generator(config.seed)
    amp_max = config.perturbation if config.perturbation != 0.0 else 0.05
    fx = np.ones_like(x)
    for mode in range(1, 5):
        amp = rng.uniform(0.0, amp_max)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        k = 2.0 * np.pi * mode / config.box_length
        fx = fx + amp * np.cos(k * x + phase)
    fv = _normalize_fv(config, _gauss(v, config.vth))
    return fv[:, None] * fx[None, :]
