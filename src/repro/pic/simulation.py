"""Electrostatic PIC orchestrators.

:class:`PICSimulation` implements the computational cycle shared by the
traditional and the DL-based method (the white boxes of the paper's
Figs. 1-2): field gather at particle positions, leapfrog push, then a
*field computation* that is supplied by a pluggable solver object.

:class:`TraditionalPIC` wires in the classic charge-deposit + Poisson
field solve (Fig. 1); ``repro.dlpic.DLPIC`` wires in the neural solver
(Fig. 2).
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.config import SimulationConfig
from repro.pic.diagnostics import History
from repro.pic.grid import Grid1D
from repro.pic.interpolation import charge_density, gather
from repro.pic.mover import push_positions, push_velocities, rewind_velocities
from repro.pic.particles import ParticleSet, load_two_stream
from repro.pic.poisson import PoissonSolver


class FieldSolver(Protocol):
    """Anything that can produce ``E`` on the grid from particle data."""

    def field(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Electric field on grid nodes given the particle phase space."""
        ...


class ChargeDepositionFieldSolver:
    """The traditional field-solve: deposit charge, solve Poisson.

    This is the right-hand loop of the paper's Fig. 1 (interpolation of
    the charge density at grid points + Poisson solve + gradient).
    """

    def __init__(
        self,
        grid: Grid1D,
        particle_charge: float,
        interpolation: str = "cic",
        poisson_method: str = "spectral",
        gradient: str = "central",
        background: float = 1.0,
    ) -> None:
        self.grid = grid
        self.particle_charge = particle_charge
        self.interpolation = interpolation
        self.background = background
        self.poisson = PoissonSolver(grid, method=poisson_method, gradient=gradient)
        self.last_rho: "np.ndarray | None" = None
        self.last_phi: "np.ndarray | None" = None

    def field(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        rho = charge_density(
            self.grid, x, self.particle_charge, order=self.interpolation, background=self.background
        )
        phi, e = self.poisson.solve(rho)
        self.last_rho = rho
        self.last_phi = phi
        return e


class PICSimulation:
    """Generic explicit electrostatic PIC cycle with a pluggable field solver.

    Leapfrog time staggering: positions live at integer times ``t_n``,
    velocities at half times ``t_{n-1/2}``.  Diagnostics are evaluated
    at integer times using the time-centered velocity average.
    """

    def __init__(
        self,
        config: SimulationConfig,
        field_solver: FieldSolver,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        self.config = config
        self.grid = Grid1D(config.n_cells, config.box_length)
        self.field_solver = field_solver
        self.particles: ParticleSet = load_two_stream(config, rng)
        self.time: float = 0.0
        self.step_index: int = 0
        # Field at t=0 consistent with the initial particle state.
        self.efield: np.ndarray = np.asarray(
            field_solver.field(self.particles.x, self.particles.v), dtype=np.float64
        )
        self._v_integer = self.particles.v.copy()  # v at t=0 (integer time)
        # Rewind v to t = -dt/2 for leapfrog staggering.
        e_at_p = gather(self.grid, self.efield, self.particles.x, order=config.interpolation)
        self.particles.v = rewind_velocities(self.particles.v, e_at_p, config.qm, config.dt)

    @property
    def v_at_integer_time(self) -> np.ndarray:
        """Velocities synchronized to the current integer time."""
        return self._v_integer

    def step(self) -> None:
        """Advance one PIC cycle (gather -> push v -> push x -> field)."""
        cfg = self.config
        e_at_p = gather(self.grid, self.efield, self.particles.x, order=cfg.interpolation)
        v_new = push_velocities(self.particles.v, e_at_p, cfg.qm, cfg.dt)
        self.particles.v = v_new
        self.particles.x = push_positions(self.particles.x, v_new, cfg.dt, cfg.box_length)
        self.efield = np.asarray(
            self.field_solver.field(self.particles.x, self.particles.v), dtype=np.float64
        )
        self.step_index += 1
        self.time += cfg.dt
        # Synchronize velocities to the new integer time t_{n+1} with a
        # half push using the freshly computed field (diagnostics only).
        e_new_at_p = gather(self.grid, self.efield, self.particles.x, order=cfg.interpolation)
        self._v_integer = v_new + 0.5 * cfg.qm * e_new_at_p * cfg.dt

    def run(
        self,
        n_steps: "int | None" = None,
        history: "History | None" = None,
        callback: "Callable[[PICSimulation], None] | None" = None,
    ) -> History:
        """Run ``n_steps`` cycles, recording diagnostics at every step.

        The history includes the initial state, so it holds
        ``n_steps + 1`` entries.  ``callback`` fires after every step
        (used by the dataset campaign to harvest training pairs).
        """
        n = self.config.n_steps if n_steps is None else n_steps
        if n < 0:
            raise ValueError(f"n_steps must be non-negative, got {n}")
        hist = history if history is not None else History()
        hist.record(self.step_index, self.time, self.grid, self.particles, self.efield,
                    v_center=self._v_integer)
        for _ in range(n):
            self.step()
            hist.record(self.step_index, self.time, self.grid, self.particles, self.efield,
                        v_center=self._v_integer)
            if callback is not None:
                callback(self)
        return hist


class TraditionalPIC(PICSimulation):
    """The paper's traditional explicit electrostatic PIC (Fig. 1)."""

    def __init__(
        self,
        config: SimulationConfig,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        grid = Grid1D(config.n_cells, config.box_length)
        solver = ChargeDepositionFieldSolver(
            grid,
            particle_charge=config.particle_charge,
            interpolation=config.interpolation,
            poisson_method=config.poisson_solver,
            gradient=config.gradient,
        )
        super().__init__(config, solver, rng)

    @property
    def charge_density(self) -> "np.ndarray | None":
        """Total charge density from the most recent field solve."""
        solver = self.field_solver
        assert isinstance(solver, ChargeDepositionFieldSolver)
        return solver.last_rho

    @property
    def potential(self) -> "np.ndarray | None":
        """Electrostatic potential from the most recent field solve."""
        solver = self.field_solver
        assert isinstance(solver, ChargeDepositionFieldSolver)
        return solver.last_phi
