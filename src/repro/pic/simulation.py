"""Electrostatic PIC orchestrators.

:class:`EnsembleSimulation` is the engine: it advances a whole batch of
independent runs at once, every kernel of the cycle (gather, leapfrog
push, charge deposit, Poisson solve) operating on stacked ``(batch, n)``
arrays.  Because each batched kernel is bitwise identical per row to
its single-run form, an ensemble of size ``B`` reproduces ``B``
sequential runs exactly while amortizing the per-step Python and FFT
overhead across the batch.

:class:`PICSimulation` — the computational cycle shared by the
traditional and the DL-based method (the white boxes of the paper's
Figs. 1-2) — is a thin ``batch=1`` view over the ensemble engine that
keeps the original single-run API (1-D particle arrays, squeezed
``Observables`` diagnostics, per-run pluggable ``FieldSolver``).

:class:`TraditionalPIC` wires in the classic charge-deposit + Poisson
field solve (Fig. 1); ``repro.dlpic.DLPIC`` wires in the neural solver
(Fig. 2).  Both field solves are batch-native: the traditional path
batches its scatter + FFTs, and ``repro.dlpic.DLFieldSolver`` bins,
normalizes and network-evaluates a whole ensemble per step
(``repro.dlpic.DLEnsemble`` is the preconfigured DL sweep engine).
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np

from repro.config import SimulationConfig
from repro.engines.base import STRUCTURAL_FIELDS
from repro.engines.observables import Frame, Observables, pic_observables
from repro.kernels import KernelBackend, resolve_backend
from repro.pic.grid import Grid1D
from repro.pic.interpolation import charge_density, gather
from repro.pic.mover import push_positions, push_velocities, rewind_velocities
from repro.pic.particles import ParticleSet
from repro.pic.poisson import PoissonSolver
from repro.pic.scenarios import load_ensemble

__all__ = [
    "STRUCTURAL_FIELDS",  # canonical home: repro.engines.base
    "FieldSolver",
    "LiftedFieldSolver",
    "as_batched_solver",
    "ChargeDepositionFieldSolver",
    "EnsembleSimulation",
    "PICSimulation",
    "TraditionalPIC",
]


class FieldSolver(Protocol):
    """Anything that can produce ``E`` on the grid from particle data.

    Single-run solvers receive 1-D ``(n,)`` phase-space arrays and
    return ``(n_cells,)``.  A solver that can handle stacked
    ``(batch, n)`` inputs natively (returning ``(batch, n_cells)``)
    should set ``supports_batch = True``; others are lifted row by row
    via :class:`LiftedFieldSolver` when used in an ensemble.
    """

    def field(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Electric field on grid nodes given the particle phase space."""
        ...


class LiftedFieldSolver:
    """Adapts a single-run :class:`FieldSolver` to batched inputs.

    Calls the wrapped solver once per ensemble row and stacks the
    results — no speedup, but it lets per-run solvers (e.g. the
    simulated-MPI solvers) drive an ensemble unchanged, and it keeps
    ``batch=1`` ensembles bitwise faithful to the plain single-run
    cycle.  The DL field solver no longer needs it: it is batch-native
    and predicts every member's field with one network forward.
    """

    supports_batch = True

    def __init__(self, solver: FieldSolver) -> None:
        self.solver = solver

    def field(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        return np.stack(
            [np.asarray(self.solver.field(x[b], v[b]), dtype=np.float64)
             for b in range(x.shape[0])]
        )


def as_batched_solver(solver: FieldSolver) -> FieldSolver:
    """Return ``solver`` if batch-capable, else lift it row by row."""
    if getattr(solver, "supports_batch", False):
        return solver
    return LiftedFieldSolver(solver)


class ChargeDepositionFieldSolver:
    """The traditional field-solve: deposit charge, solve Poisson.

    This is the right-hand loop of the paper's Fig. 1 (interpolation of
    the charge density at grid points + Poisson solve + gradient).
    Batch-capable: with ``(batch, n)`` positions the deposit scatters
    through offset flat indices and the Poisson solve batches its FFTs
    along the last axis.
    """

    supports_batch = True

    def __init__(
        self,
        grid: Grid1D,
        particle_charge: float,
        interpolation: str = "cic",
        poisson_method: str = "spectral",
        gradient: str = "central",
        background: float = 1.0,
        backend: "KernelBackend | None" = None,
    ) -> None:
        self.grid = grid
        self.particle_charge = particle_charge
        self.interpolation = interpolation
        self.background = background
        self.backend = backend
        self.poisson = PoissonSolver(grid, method=poisson_method, gradient=gradient)
        self.last_rho: "np.ndarray | None" = None
        self.last_phi: "np.ndarray | None" = None

    def field(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        rho = charge_density(
            self.grid, x, self.particle_charge, order=self.interpolation,
            background=self.background, backend=self.backend,
        )
        phi, e = self.poisson.solve(rho)
        self.last_rho = rho
        self.last_phi = phi
        return e


class EnsembleSimulation:
    """Batched explicit electrostatic PIC cycle over stacked runs.

    Parameters
    ----------
    configs:
        One configuration per ensemble member (or a single config for a
        batch of one).  Members may differ in scenario, seed, beam
        parameters, loading and perturbation, but must agree on the
        structural fields (grid, time step, particle count,
        interpolation and solver choices) listed in
        ``STRUCTURAL_FIELDS``.
    field_solver:
        Optional field solver; defaults to the traditional batched
        charge-deposit + Poisson solve.  Single-run solvers are lifted
        automatically.
    rngs:
        Optional per-member RNG overrides (seeds or generators); by
        default each member loads from its own ``config.seed``.

    Leapfrog time staggering matches :class:`PICSimulation`: positions
    at integer times, velocities at half times, diagnostics at integer
    times via the time-centered velocity average.
    """

    def __init__(
        self,
        configs: "SimulationConfig | Sequence[SimulationConfig]",
        field_solver: "FieldSolver | None" = None,
        rngs: "Sequence[int | np.random.Generator | None] | None" = None,
    ) -> None:
        if isinstance(configs, SimulationConfig):
            configs = (configs,)
        self.configs: tuple[SimulationConfig, ...] = tuple(configs)
        if not self.configs:
            raise ValueError("ensemble needs at least one configuration")
        ref = self.configs[0]
        for i, cfg in enumerate(self.configs[1:], 1):
            for name in STRUCTURAL_FIELDS:
                if getattr(cfg, name) != getattr(ref, name):
                    raise ValueError(
                        f"ensemble member {i} differs from member 0 in structural "
                        f"field {name!r}: {getattr(cfg, name)!r} != {getattr(ref, name)!r}"
                    )
        self.config = ref  # structural reference member
        self.batch = len(self.configs)
        self.grid = Grid1D(ref.n_cells, ref.box_length)
        # The kernel backend tier: how the independent batch rows of
        # every hot kernel execute.  All backends reproduce the numpy
        # reference bit for bit (per-row invariance), so this is purely
        # a speed knob.
        self._backend = resolve_backend(ref.backend)
        if field_solver is None:
            field_solver = ChargeDepositionFieldSolver(
                self.grid,
                particle_charge=ref.particle_charge,
                interpolation=ref.interpolation,
                poisson_method=ref.poisson_solver,
                gradient=ref.gradient,
                backend=self._backend,
            )
        self.field_solver = as_batched_solver(field_solver)
        self.particles: ParticleSet = load_ensemble(self.configs, rngs)
        # The numerical tier: float64 runs are bitwise reproducible;
        # float32 runs load identically (same RNG draws, in double) and
        # then cast the initial state down, after which the whole cycle
        # — gather, push, deposit, FFTs — runs in single precision.
        self._dtype = ref.np_dtype
        if self._dtype == np.float32:
            self.particles.x = self.particles.x.astype(np.float32)
            self.particles.v = self.particles.v.astype(np.float32)
        self.time: float = 0.0
        self.step_index: int = 0
        # Field at t=0 consistent with the initial particle state.
        self.efield: np.ndarray = np.asarray(
            self.field_solver.field(self.particles.x, self.particles.v), dtype=self._dtype
        )
        if self.efield.shape != (self.batch, ref.n_cells):
            raise ValueError(
                f"field solver returned shape {self.efield.shape}, "
                f"expected ({self.batch}, {ref.n_cells})"
            )
        self._v_integer = self.particles.v.copy()  # v at t=0 (integer time)
        # Rewind v to t = -dt/2 for leapfrog staggering.
        e_at_p = gather(
            self.grid, self.efield, self.particles.x,
            order=ref.interpolation, backend=self._backend,
        )
        self.particles.v = rewind_velocities(
            self.particles.v, e_at_p, ref.qm, ref.dt, backend=self._backend
        )

    @classmethod
    def from_config(
        cls,
        config: SimulationConfig,
        batch: int,
        seeds: "Sequence[int] | None" = None,
        field_solver: "FieldSolver | None" = None,
    ) -> "EnsembleSimulation":
        """Replicate ``config`` over ``batch`` members with distinct seeds.

        By default member ``b`` uses ``config.seed + b``, so a batch of
        one is seeded exactly like the single-run simulation and two
        ensembles built from the same config are identical.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if seeds is None:
            seeds = [config.seed + b for b in range(batch)]
        if len(seeds) != batch:
            raise ValueError(f"got {len(seeds)} seeds for batch {batch}")
        return cls(
            [config.with_updates(seed=int(s)) for s in seeds], field_solver=field_solver
        )

    @property
    def v_at_integer_time(self) -> np.ndarray:
        """Velocities synchronized to the current integer time, ``(batch, n)``."""
        return self._v_integer

    def observables(self, record_fields: bool = False) -> Observables:
        """A fresh default observables recorder for this engine."""
        return Observables(pic_observables(record_fields=record_fields))

    def _record(self, hist: Observables) -> None:
        """Stream the current state into ``hist`` as one batched frame."""
        hist.record_frame(Frame(
            self.step_index, self.time, self.grid, self.efield,
            particles=self.particles, v_center=self._v_integer,
        ))

    def step(self) -> None:
        """Advance every member one PIC cycle (gather -> push v -> push x -> field)."""
        cfg = self.config
        backend = self._backend
        e_at_p = gather(
            self.grid, self.efield, self.particles.x,
            order=cfg.interpolation, backend=backend,
        )
        v_new = push_velocities(self.particles.v, e_at_p, cfg.qm, cfg.dt, backend=backend)
        self.particles.v = v_new
        self.particles.x = push_positions(
            self.particles.x, v_new, cfg.dt, cfg.box_length, backend=backend
        )
        self.efield = np.asarray(
            self.field_solver.field(self.particles.x, self.particles.v), dtype=self._dtype
        )
        self.step_index += 1
        self.time += cfg.dt
        # Synchronize velocities to the new integer time t_{n+1} with a
        # half push using the freshly computed field (diagnostics only).
        e_new_at_p = gather(
            self.grid, self.efield, self.particles.x,
            order=cfg.interpolation, backend=backend,
        )
        self._v_integer = v_new + 0.5 * cfg.qm * e_new_at_p * cfg.dt

    def run(
        self,
        n_steps: "int | None" = None,
        history: "Observables | None" = None,
        callback: "Callable[[EnsembleSimulation], None] | None" = None,
    ) -> Observables:
        """Run ``n_steps`` cycles, recording batched diagnostics each step.

        The history includes the initial state, so it holds
        ``n_steps + 1`` records of ``(batch,)`` vectors.  Pass any
        :class:`Observables` pipeline (e.g. one built from a request's
        observables selection) to record custom measurements.
        ``callback`` fires after every step (used by the vectorized
        data campaign).
        """
        if n_steps is None:
            if any(cfg.n_steps != self.config.n_steps for cfg in self.configs):
                raise ValueError(
                    "ensemble members disagree on config.n_steps; "
                    "pass n_steps to run() explicitly"
                )
            n = self.config.n_steps
        else:
            n = n_steps
        if n < 0:
            raise ValueError(f"n_steps must be non-negative, got {n}")
        hist = history if history is not None else self.observables()
        hist.reserve(len(hist) + n + 1)  # stream into one preallocated buffer
        self._record(hist)
        for _ in range(n):
            self.step()
            self._record(hist)
            if callback is not None:
                callback(self)
        return hist


class PICSimulation:
    """Single-run view of the ensemble engine (``batch=1``).

    Keeps the seed API: 1-D ``particles`` arrays, a per-run
    :class:`FieldSolver` (lifted internally), squeezed ``Observables``
    diagnostics and the leapfrog staggering described on
    :class:`EnsembleSimulation`.  The trajectory is bitwise identical
    to the pre-ensemble single-run implementation.
    """

    def __init__(
        self,
        config: SimulationConfig,
        field_solver: FieldSolver,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        self.config = config
        self.field_solver = field_solver
        self._ensemble = EnsembleSimulation((config,), field_solver=field_solver, rngs=[rng])
        self.grid = self._ensemble.grid
        ens_particles = self._ensemble.particles
        self.particles = ParticleSet(
            ens_particles.x[0], ens_particles.v[0], ens_particles.charge, ens_particles.mass
        )
        self._sync_from_ensemble()

    def _sync_from_ensemble(self) -> None:
        """Expose row 0 of the ensemble state through the 1-D attributes."""
        ens = self._ensemble
        self.particles.x = ens.particles.x[0]
        self.particles.v = ens.particles.v[0]
        self.efield = ens.efield[0]
        self._v_integer = ens._v_integer[0]
        self.time = ens.time
        self.step_index = ens.step_index

    def _push_to_ensemble(self) -> None:
        """Adopt external edits of the 1-D views back into the ensemble.

        Reshaping the (contiguous) 1-D arrays to ``(1, n)`` is a view,
        so this costs nothing when the state was not touched.
        """
        ens = self._ensemble
        dtype = ens._dtype
        ens.particles.x = np.asarray(self.particles.x, dtype=dtype).reshape(1, -1)
        ens.particles.v = np.asarray(self.particles.v, dtype=dtype).reshape(1, -1)
        ens.efield = np.asarray(self.efield, dtype=dtype).reshape(1, -1)
        ens._v_integer = np.asarray(self._v_integer, dtype=dtype).reshape(1, -1)

    @property
    def v_at_integer_time(self) -> np.ndarray:
        """Velocities synchronized to the current integer time."""
        return self._v_integer

    def observables(self, record_fields: bool = False) -> Observables:
        """A fresh default observables recorder for this single run."""
        return Observables(pic_observables(record_fields=record_fields), squeeze=True)

    def _record(self, hist: Observables) -> None:
        """Stream the current 1-D state into ``hist`` as one frame."""
        hist.record_frame(Frame(
            self.step_index, self.time, self.grid, self.efield,
            particles=self.particles, v_center=self._v_integer,
        ))

    def step(self) -> None:
        """Advance one PIC cycle (gather -> push v -> push x -> field)."""
        self._push_to_ensemble()
        self._ensemble.step()
        self._sync_from_ensemble()

    def run(
        self,
        n_steps: "int | None" = None,
        history: "Observables | None" = None,
        callback: "Callable[[PICSimulation], None] | None" = None,
    ) -> Observables:
        """Run ``n_steps`` cycles, recording diagnostics at every step.

        The history includes the initial state, so it holds
        ``n_steps + 1`` entries.  ``callback`` fires after every step
        (used by the dataset campaign to harvest training pairs).
        """
        n = self.config.n_steps if n_steps is None else n_steps
        if n < 0:
            raise ValueError(f"n_steps must be non-negative, got {n}")
        hist = history if history is not None else self.observables()
        hist.reserve(len(hist) + n + 1)  # stream into one preallocated buffer
        self._record(hist)
        for _ in range(n):
            self.step()
            self._record(hist)
            if callback is not None:
                callback(self)
        return hist


def _first_row(arr: "np.ndarray | None") -> "np.ndarray | None":
    """Row 0 of a batched grid array (pass 1-D arrays through)."""
    if arr is None:
        return None
    return arr[0] if arr.ndim == 2 else arr


class TraditionalPIC(PICSimulation):
    """The paper's traditional explicit electrostatic PIC (Fig. 1)."""

    def __init__(
        self,
        config: SimulationConfig,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        grid = Grid1D(config.n_cells, config.box_length)
        solver = ChargeDepositionFieldSolver(
            grid,
            particle_charge=config.particle_charge,
            interpolation=config.interpolation,
            poisson_method=config.poisson_solver,
            gradient=config.gradient,
            backend=resolve_backend(config.backend),
        )
        super().__init__(config, solver, rng)

    @property
    def charge_density(self) -> "np.ndarray | None":
        """Total charge density from the most recent field solve."""
        solver = self.field_solver
        assert isinstance(solver, ChargeDepositionFieldSolver)
        return _first_row(solver.last_rho)

    @property
    def potential(self) -> "np.ndarray | None":
        """Electrostatic potential from the most recent field solve."""
        solver = self.field_solver
        assert isinstance(solver, ChargeDepositionFieldSolver)
        return _first_row(solver.last_phi)
