"""Content-addressed registry for trained DL field solvers.

Trained checkpoints are stored under their
:meth:`~repro.dlpic.solver.DLFieldSolver.fingerprint` — the sha256 of
architecture + weights + frozen preprocessing — together with a
``meta.json`` recording training lineage (the data campaign's manifest
hash, optimizer/loss configuration, metrics).  Every layer that takes a
``model_dir=`` also accepts a registry reference::

    registry:<fingerprint-prefix>          # root from $REPRO_REGISTRY_DIR
    registry:<root>:<fingerprint-prefix>   # explicit root (crosses processes)

resolved by :func:`resolve_model_dir` (hooked into
:meth:`DLFieldSolver.load_auto`, which serves the CLI, the service and
spawned executor workers alike).
"""

from repro.registry.registry import (
    REGISTRY_ENV,
    REGISTRY_SCHEME,
    ModelRegistry,
    RegisteredModel,
    default_registry_root,
    is_registry_ref,
    resolve_model_dir,
)

__all__ = [
    "REGISTRY_ENV",
    "REGISTRY_SCHEME",
    "ModelRegistry",
    "RegisteredModel",
    "default_registry_root",
    "is_registry_ref",
    "resolve_model_dir",
]
