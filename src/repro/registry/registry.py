"""The content-addressed model store behind ``registry:`` references.

Layout (all writes atomic, same discipline as
:class:`~repro.service.store.ResultStore`)::

    <root>/models/<fingerprint>/model.npz    # DLFieldSolver.save output
    <root>/models/<fingerprint>/solver.json
    <root>/models/<fingerprint>/meta.json    # lineage + file hashes

A model directory is assembled in a hidden temp directory and published
with one ``os.replace`` — a reader (including a spawned executor worker
rehydrating its solver mid-campaign) can never observe a half-written
checkpoint.  Registering the same solver twice is an idempotent no-op:
the fingerprint *is* the address, so identical weights land in the
same slot whatever produced them.
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import json
import os
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.obs.metrics import set_registry_models

if TYPE_CHECKING:
    from repro.dlpic.solver import DLFieldSolver

#: Environment variable naming the default registry root; spawned
#: executor workers inherit it, so a bare ``registry:<prefix>`` ref
#: resolves identically across process boundaries.
REGISTRY_ENV = "REPRO_REGISTRY_DIR"

#: Prefix marking a ``model_dir`` value as a registry reference.
REGISTRY_SCHEME = "registry:"

#: Files every registered checkpoint consists of (hashes recorded in
#: ``meta.json``; ``verify`` recomputes them).
_CHECKPOINT_FILES = ("model.npz", "solver.json")

_META_NAME = "meta.json"
_META_VERSION = 1

# Unique temp-dir names per process (same pid+counter scheme as the
# result store's temp files).
_TMP_COUNTER = itertools.count()


def default_registry_root() -> Path:
    """The registry root: ``$REPRO_REGISTRY_DIR`` or ``.artifacts/registry``."""
    env = os.environ.get(REGISTRY_ENV)
    if env:
        return Path(env)
    return Path(".artifacts") / "registry"


def is_registry_ref(value: "str | os.PathLike[str] | None") -> bool:
    """Whether a ``model_dir`` value is a ``registry:`` reference."""
    return value is not None and str(value).startswith(REGISTRY_SCHEME)


def resolve_model_dir(value: "str | os.PathLike[str]") -> str:
    """Resolve a ``model_dir`` value to a concrete checkpoint directory.

    Plain paths pass through unchanged.  ``registry:<prefix>`` resolves
    the fingerprint prefix against the default root
    (:func:`default_registry_root`); ``registry:<root>:<prefix>`` names
    the root explicitly — the form to use when the consumer may run
    with a different environment (e.g. spawned worker processes on a
    host where ``$REPRO_REGISTRY_DIR`` is unset).
    """
    text = str(value)
    if not text.startswith(REGISTRY_SCHEME):
        return text
    rest = text[len(REGISTRY_SCHEME):]
    if not rest:
        raise ValueError(
            f"empty registry reference {text!r}; expected "
            f"registry:<fingerprint-prefix> or registry:<root>:<fingerprint-prefix>"
        )
    root, sep, prefix = rest.rpartition(":")
    if sep and root:
        registry = ModelRegistry(root)
    else:
        registry, prefix = ModelRegistry(), rest
    return str(registry.get(prefix).path)


def _sha256_file(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


@dataclass(frozen=True)
class RegisteredModel:
    """One registry entry: the fingerprint address + its lineage."""

    fingerprint: str
    path: Path
    meta: "dict[str, Any]"

    @property
    def lineage(self) -> "dict[str, Any]":
        """Training provenance recorded at registration time."""
        return self.meta.get("lineage", {})

    def load(self) -> "DLFieldSolver":
        """Rehydrate the registered solver."""
        from repro.dlpic.solver import DLFieldSolver

        return DLFieldSolver.load_auto(self.path)


class ModelRegistry:
    """Content-addressed store for trained :class:`DLFieldSolver`\\ s.

    Parameters
    ----------
    root:
        Registry root directory (created on first write).  ``None``
        uses :func:`default_registry_root`.
    """

    def __init__(self, root: "str | os.PathLike[str] | None" = None) -> None:
        self.root = Path(root) if root is not None else default_registry_root()

    @property
    def models_dir(self) -> Path:
        return self.root / "models"

    def __len__(self) -> int:
        return len(self.list())

    def __contains__(self, prefix: str) -> bool:
        try:
            self.get(prefix)
        except (KeyError, ValueError):
            return False
        return True

    # -- writes ----------------------------------------------------------
    def register(
        self,
        solver: "DLFieldSolver",
        *,
        campaign_manifest_hash: "str | None" = None,
        training: "Mapping[str, Any] | None" = None,
        metrics: "Mapping[str, Any] | None" = None,
    ) -> RegisteredModel:
        """Store a trained solver under its fingerprint (idempotent).

        ``campaign_manifest_hash`` links the checkpoint back to the
        data campaign that produced its training set (the campaign
        manifest's ``campaign_hash``); ``training`` records the
        optimizer/loss configuration and ``metrics`` the final
        evaluation numbers — all echoed back by :meth:`get`/``list``.
        """
        fingerprint = solver.fingerprint()
        target = self.models_dir / fingerprint
        if target.is_dir() and (target / _META_NAME).exists():
            self._update_gauge()
            return self._entry(target)
        self.models_dir.mkdir(parents=True, exist_ok=True)
        tmp = self.models_dir / f".tmp-{os.getpid()}-{next(_TMP_COUNTER)}"
        try:
            solver.save(tmp)
            weight_hash = _sha256_file(tmp / "model.npz")
            meta = {
                "version": _META_VERSION,
                "fingerprint": fingerprint,
                "weight_hash": weight_hash,
                "files": {
                    name: _sha256_file(tmp / name) for name in _CHECKPOINT_FILES
                },
                "created_at": time.time(),
                "lineage": {
                    "campaign_manifest_hash": campaign_manifest_hash,
                    "training": dict(training) if training is not None else {},
                    "metrics": dict(metrics) if metrics is not None else {},
                },
            }
            (tmp / _META_NAME).write_text(json.dumps(meta, indent=2))
            try:
                os.replace(tmp, target)
            except OSError:
                # A concurrent register of the same fingerprint won the
                # rename race; the published checkpoint is identical by
                # construction (content address), keep it.
                if not target.is_dir():
                    raise
        finally:
            with contextlib.suppress(OSError):
                shutil.rmtree(tmp)
        self._update_gauge()
        return self._entry(target)

    def gc(self) -> "list[str]":
        """Remove corrupt/incomplete entries and stray temp dirs.

        Returns the removed directory names.  An entry is collected
        when it fails :meth:`verify` — missing files, a file hash
        mismatch, or a checkpoint whose recomputed fingerprint no
        longer matches its address.  Intact models are never touched.
        """
        removed = []
        if not self.models_dir.is_dir():
            return removed
        for entry in sorted(self.models_dir.iterdir()):
            if entry.name.startswith(".tmp-"):
                shutil.rmtree(entry, ignore_errors=True)
                removed.append(entry.name)
                continue
            if not self.verify(entry.name):
                shutil.rmtree(entry, ignore_errors=True)
                removed.append(entry.name)
        self._update_gauge()
        return removed

    # -- reads -----------------------------------------------------------
    def list(self) -> "list[RegisteredModel]":
        """Every registered model, sorted by fingerprint."""
        if not self.models_dir.is_dir():
            return []
        out = []
        for entry in sorted(self.models_dir.iterdir()):
            if entry.name.startswith(".tmp-") or not entry.is_dir():
                continue
            if (entry / _META_NAME).exists():
                out.append(self._entry(entry))
        self._update_gauge(len(out))
        return out

    def get(self, prefix: str) -> RegisteredModel:
        """Resolve a fingerprint prefix to its unique registry entry."""
        prefix = str(prefix)
        if not prefix:
            raise ValueError("empty model fingerprint prefix")
        matches = [m for m in self.list() if m.fingerprint.startswith(prefix)]
        if not matches:
            raise KeyError(
                f"no model matching {prefix!r} in registry {self.root} "
                f"({len(self.list())} model(s) registered)"
            )
        if len(matches) > 1:
            names = ", ".join(m.fingerprint[:12] for m in matches)
            raise ValueError(
                f"ambiguous model prefix {prefix!r} in registry {self.root}: "
                f"matches {names}"
            )
        return matches[0]

    def verify(self, prefix: str) -> bool:
        """Recompute a checkpoint's hashes against its manifest.

        True iff every file hash in ``meta.json`` matches the bytes on
        disk AND the rehydrated solver's fingerprint matches the
        directory address — the full content-address guarantee, not
        just file integrity.
        """
        try:
            model = self.get(prefix)
        except (KeyError, ValueError):
            # An entry unreadable through get() (no/corrupt meta.json)
            # can still be named directly by its exact directory name.
            entry = self.models_dir / str(prefix)
            if not entry.is_dir():
                raise
            return False
        for name, recorded in model.meta.get("files", {}).items():
            path = model.path / name
            if not path.exists() or _sha256_file(path) != recorded:
                return False
        try:
            return model.load().fingerprint() == model.fingerprint
        except Exception:  # noqa: BLE001 — any load failure = not verified
            return False

    # -- internals -------------------------------------------------------
    def _entry(self, path: Path) -> RegisteredModel:
        try:
            meta = json.loads((path / _META_NAME).read_text())
        except (OSError, json.JSONDecodeError):
            meta = {}
        return RegisteredModel(fingerprint=path.name, path=path, meta=meta)

    def _count(self) -> int:
        if not self.models_dir.is_dir():
            return 0
        return sum(
            1
            for entry in self.models_dir.iterdir()
            if entry.is_dir()
            and not entry.name.startswith(".tmp-")
            and (entry / _META_NAME).exists()
        )

    def _update_gauge(self, count: "int | None" = None) -> None:
        set_registry_models(self._count() if count is None else count)
