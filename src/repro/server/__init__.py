"""Networked simulation service: the ``repro serve --listen`` tier.

A stdlib-only asyncio HTTP server exposing one shared
:class:`~repro.service.service.SimulationService` over the public v1
envelope — ``POST /v1/run``, ``POST /v1/batch`` (JSONL),
``GET /v1/health`` and ``GET /v1/metrics`` — with bounded admission +
load-shedding (``shed`` status, 503), per-request execution timeouts
(``timeout`` status, 504), connection limits and graceful drain.
Remote results are bitwise identical to in-process runs of the same
configs; clients connect with
``repro.api.Client.connect("http://host:port")``.
"""

from repro.server.app import (
    HTTP_FOR_STATUS,
    ServerMetrics,
    SimulationServer,
    serve_in_thread,
)
from repro.server.http import BadRequest, HttpRequest, read_request, response_bytes

__all__ = [
    "HTTP_FOR_STATUS",
    "BadRequest",
    "HttpRequest",
    "ServerMetrics",
    "SimulationServer",
    "read_request",
    "response_bytes",
    "serve_in_thread",
]
