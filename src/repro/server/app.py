"""The networked simulation service: asyncio HTTP front end.

:class:`SimulationServer` exposes one shared
:class:`~repro.service.service.SimulationService` over a stdlib-only
asyncio HTTP server (``repro serve --listen HOST:PORT``), speaking the
v1 envelope on four endpoints:

=======================  =============================================
``POST /v1/run``         one request envelope in, one result envelope
                         out (200 ok / 400 parse error / 500 execution
                         error / 503 shed / 504 timeout)
``POST /v1/batch``       a JSONL stream of envelopes in, a JSONL
                         stream of results out (one line per request,
                         order preserved; always 200)
``GET /v1/health``       liveness: status, drain flag, in-flight count
``GET /v1/metrics``      request counts by endpoint and terminal
                         status, cache-hit ratio, queue depth,
                         batch-size histogram, latency percentiles,
                         per-stage duration histograms;
                         ``?format=prometheus`` renders the same
                         snapshot as Prometheus text exposition
``GET /v1/trace``        ids of recently completed traces (requires
                         ``tracing=True`` / ``repro serve --trace``)
``GET /v1/trace/<id>``   one trace as a span-tree JSON payload
                         (``<id>`` may be ``last``)
``POST /v1/trace/<id>/spans``  a remote client ships its half of a
                         trace; spans are re-anchored and merged
=======================  =============================================

On top of the in-process service the server adds the robustness layer
a network edge needs:

* **bounded admission with load-shedding** — at most ``max_pending``
  admitted requests may be in flight; past that, requests get a
  well-formed ``shed``-status result (HTTP 503) instead of unbounded
  queue growth, and the client is expected to back off and retry;
* **per-request execution timeouts** — ``request_timeout`` seconds
  after admission an unresolved request answers with a
  ``timeout``-status result (HTTP 504; the underlying engine batch
  still completes and populates the store);
* **connection limits** — at most ``max_connections`` concurrent
  sockets; excess connections receive an immediate 503 and are closed;
* **graceful drain** — on SIGTERM (``run()``) or :meth:`aclose`, the
  listener stops accepting, every already-admitted request resolves
  and is answered, and only then does the service shut down.

Requests are admitted onto the shared service through the same
:class:`~repro.api.transport.InProcessTransport` the in-process
``Client`` uses, so concurrent remote submissions coalesce in the
micro-batcher and dedup against the content-addressed store exactly
like local ones — and every served result is bitwise identical to an
in-process run of the same config.
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
import json
import signal
import threading
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.api.envelope import (
    API_VERSION,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    STATUS_TIMEOUT,
    RunRequest,
    RunResult,
    now,
)
from repro.api.transport import InProcessTransport
from repro.obs.metrics import campaign_snapshot, registry_snapshot
from repro.obs.prometheus import DurationHistogram, render_prometheus
from repro.obs.trace import NOOP_TRACER, PARENT_HEADER, TRACE_HEADER, spans_from_wire
from repro.server.http import (
    BadRequest,
    HttpRequest,
    error_body,
    read_request,
    response_bytes,
)
from repro.service.requests import parse_request
from repro.service.service import SimulationService

if TYPE_CHECKING:
    from repro.dlpic.solver import DLFieldSolver
    from repro.service.store import ResultStore

#: HTTP status for each terminal result status.
HTTP_FOR_STATUS = {
    STATUS_OK: 200,
    STATUS_ERROR: 500,
    STATUS_SHED: 503,
    STATUS_TIMEOUT: 504,
}


def _percentile(sorted_values: "list[float]", q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(round(q * len(sorted_values) + 0.5)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class ServerMetrics:
    """Request counters + a bounded latency reservoir + stage histograms.

    Counts land per endpoint and per terminal status; latencies keep
    the most recent ``window`` served requests (enough for stable
    percentiles without unbounded growth).  Requests rejected before
    execution (unparseable payloads, invalid envelopes) go to a
    separate ``parse_failures`` counter — they never reach an engine,
    so recording them in ``by_status``/latency would fabricate 0-second
    "requests" and skew the percentiles downward.  ``stages``
    accumulates per-stage duration histograms from each executed
    result's ``timings`` breakdown.  All methods are called from the
    event-loop thread only, so no locking is needed.
    """

    def __init__(self, window: int = 4096) -> None:
        self.requests_total = 0
        self.by_endpoint: "dict[str, int]" = {}
        self.by_status: "dict[str, int]" = {
            STATUS_OK: 0, STATUS_ERROR: 0, STATUS_SHED: 0, STATUS_TIMEOUT: 0,
        }
        self.parse_failures_total = 0
        self.parse_failures_by_endpoint: "dict[str, int]" = {}
        self.http_responses: "dict[int, int]" = {}
        self.connections_total = 0
        self.connections_rejected = 0
        self._latencies: "collections.deque[float]" = collections.deque(maxlen=window)
        self.stages: "dict[str, DurationHistogram]" = {}

    def observe_request(self, endpoint: str, status: str, wall_s: float) -> None:
        self.requests_total += 1
        self.by_endpoint[endpoint] = self.by_endpoint.get(endpoint, 0) + 1
        self.by_status[status] = self.by_status.get(status, 0) + 1
        if status == STATUS_OK:
            self._latencies.append(wall_s)

    def observe_parse_failure(self, endpoint: str) -> None:
        """A request rejected before execution (kept out of by_status)."""
        self.parse_failures_total += 1
        self.parse_failures_by_endpoint[endpoint] = (
            self.parse_failures_by_endpoint.get(endpoint, 0) + 1
        )

    def observe_stages(self, timings: "Mapping[str, Any]") -> None:
        """Feed one executed result's stage breakdown into the histograms."""
        for key, value in timings.items():
            if not key.endswith("_s") or not isinstance(value, (int, float)):
                continue
            stage = key[:-2]
            hist = self.stages.get(stage)
            if hist is None:
                hist = self.stages[stage] = DurationHistogram()
            hist.observe(value)

    def observe_response(self, http_status: int) -> None:
        self.http_responses[http_status] = self.http_responses.get(http_status, 0) + 1

    def latency_summary(self) -> "dict[str, float | int]":
        sample = sorted(self._latencies)
        return {
            "count": len(sample),
            "p50_s": _percentile(sample, 0.50),
            "p90_s": _percentile(sample, 0.90),
            "p99_s": _percentile(sample, 0.99),
            "max_s": sample[-1] if sample else 0.0,
        }


class SimulationServer:
    """One shared ``SimulationService`` behind an asyncio HTTP edge.

    Parameters
    ----------
    service:
        An existing service to expose.  By default the server
        constructs (and owns, and closes) its own, running the
        background worker — ``max_batch_size``, ``max_wait``,
        ``store``, ``dl_solver``, ``workers`` and ``model_dir``
        configure it and are ignored otherwise (``workers > 1``
        shards compatibility groups across spawned worker processes;
        ``GET /v1/metrics`` then reports the pool gauges under
        ``"pool"``).
    host, port:
        Bind address; port ``0`` picks a free ephemeral port
        (:attr:`url` reports the bound address after :meth:`start`).
    max_pending:
        Admission bound: requests admitted but unresolved.  At the
        bound, new work is shed with a ``shed``-status result (503).
    request_timeout:
        Per-request execution deadline in seconds (``None`` = no
        deadline); an expired request answers with a
        ``timeout``-status result (504).
    max_connections:
        Concurrent-socket bound; excess connections get 503 + close.
    on_result:
        Optional callback ``(RunRequest | None, RunResult) -> None``
        invoked from the event loop for every served request (the CLI
        uses it to print the per-request table in listen mode).
    on_ready:
        Optional callback ``(SimulationServer) -> None`` invoked once
        the listener is bound (the CLI prints the resolved address —
        useful with ``port=0``).
    tracing:
        Enable end-to-end tracing on the owned service
        (``repro serve --trace``); ignored when ``service=`` is passed
        (the service's own setting rules).  Traced requests adopt the
        client's ``X-Repro-Trace-Id``, record a ``server.request``
        span, and publish completed traces at ``GET /v1/trace/<id>``.
    """

    def __init__(
        self,
        service: "SimulationService | None" = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = 256,
        request_timeout: "float | None" = None,
        max_connections: int = 128,
        max_batch_size: int = 16,
        max_wait: float = 0.005,
        store: "ResultStore | None" = None,
        dl_solver: "DLFieldSolver | None" = None,
        workers: int = 1,
        model_dir: "str | None" = None,
        on_result: "Callable[[RunRequest | None, RunResult], None] | None" = None,
        on_ready: "Callable[[SimulationServer], None] | None" = None,
        tracing: bool = False,
    ) -> None:
        if max_pending < 0:
            raise ValueError(f"max_pending must be >= 0, got {max_pending}")
        if max_connections < 1:
            raise ValueError(f"max_connections must be >= 1, got {max_connections}")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be positive or None, got {request_timeout}"
            )
        if service is None:
            service = SimulationService(
                max_batch_size=max_batch_size, max_wait=max_wait,
                store=store, dl_solver=dl_solver,
                workers=workers, model_dir=model_dir, start=True,
                tracing=tracing,
            )
            self._owns_service = True
        else:
            self._owns_service = False
        self.service = service
        self.tracer = getattr(service, "tracer", None) or NOOP_TRACER
        self._transport = InProcessTransport(service)
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self.request_timeout = request_timeout
        self.max_connections = max_connections
        self.on_result = on_result
        self.on_ready = on_ready
        self.metrics = ServerMetrics()
        self._server: "asyncio.AbstractServer | None" = None
        self._inflight = 0
        self._connections = 0
        self._draining = False
        self._closed = False
        # writer -> currently-processing-a-request flag; idle
        # connections can be closed outright during drain.
        self._conn_busy: "dict[asyncio.StreamWriter, bool]" = {}
        self._handler_tasks: "set[asyncio.Task]" = set()

    # -- addresses --------------------------------------------------------
    @property
    def address(self) -> "tuple[str, int]":
        """The bound ``(host, port)`` (after :meth:`start`)."""
        return self.host, self.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle --------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, backlog=512
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.on_ready is not None:
            with contextlib.suppress(Exception):
                self.on_ready(self)

    async def aclose(self) -> None:
        """Graceful drain: stop accepting, answer in-flight, shut down."""
        if self._closed:
            return
        self._draining = True
        self._closed = True
        if self._server is not None:
            self._server.close()
        # Idle keep-alive connections are parked in read_request();
        # closing them ends their handler loops.  Busy ones finish
        # writing their current response (marked Connection: close
        # while draining) and exit on their own.
        for writer, busy in list(self._conn_busy.items()):
            if not busy:
                writer.close()
        while self._inflight:
            await asyncio.sleep(0.005)
        if self._handler_tasks:
            await asyncio.wait(self._handler_tasks, timeout=10)
        if self._owns_service:
            self.service.close()

    def run(self) -> None:
        """Blocking entry point: serve until SIGINT/SIGTERM, then drain."""
        asyncio.run(self._run_until_signal())

    async def _run_until_signal(self) -> None:
        await self.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(sig, stop.set)
        try:
            await stop.wait()
        finally:
            await self.aclose()

    # -- connection handling ----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        self.metrics.connections_total += 1
        if self._connections >= self.max_connections:
            self.metrics.connections_rejected += 1
            with contextlib.suppress(ConnectionError, OSError):
                writer.write(response_bytes(
                    503, error_body(
                        f"connection limit of {self.max_connections} reached"
                    ),
                    keep_alive=False,
                ))
                await writer.drain()
            writer.close()
            return
        self._connections += 1
        self._conn_busy[writer] = False
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, TimeoutError, OSError, asyncio.IncompleteReadError):
            pass  # peer went away mid-request
        finally:
            self._connections -= 1
            self._conn_busy.pop(writer, None)
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await read_request(reader)
            except BadRequest as exc:
                self.metrics.observe_response(exc.status)
                writer.write(response_bytes(
                    exc.status, error_body(str(exc)), keep_alive=False
                ))
                await writer.drain()
                return
            if request is None:
                return
            self._conn_busy[writer] = True
            try:
                response = await self._route(request)
            finally:
                self._conn_busy[writer] = False
            if len(response) == 3:
                status, body, content_type = response
            else:
                status, body = response
                content_type = "application/json"
            keep_alive = request.keep_alive and not self._draining
            self.metrics.observe_response(status)
            writer.write(response_bytes(
                status, body, keep_alive=keep_alive, content_type=content_type
            ))
            await writer.drain()
            if not keep_alive:
                return

    # -- routing ----------------------------------------------------------
    async def _route(self, request: HttpRequest) -> "tuple[int, Any] | tuple[int, Any, str]":
        route = (request.method, request.path)
        if route == ("POST", "/v1/run"):
            return await self._handle_run(request)
        if route == ("POST", "/v1/batch"):
            return await self._handle_batch(request)
        if route == ("GET", "/v1/health"):
            return 200, self.health()
        if route == ("GET", "/v1/metrics"):
            return self._handle_metrics(request)
        if request.path == "/v1/trace" or request.path.startswith("/v1/trace/"):
            return self._handle_trace(request)
        if request.path in ("/v1/run", "/v1/batch", "/v1/health", "/v1/metrics"):
            return 405, error_body(
                f"method {request.method} is not allowed on {request.path}"
            )
        return 404, error_body(
            f"unknown path {request.path!r}; endpoints: POST /v1/run, "
            f"POST /v1/batch, GET /v1/health, GET /v1/metrics, "
            f"GET /v1/trace/<id>"
        )

    def _handle_metrics(self, request: HttpRequest) -> "tuple[int, Any] | tuple[int, Any, str]":
        fmt = request.query.get("format", ["json"])[0]
        if fmt == "prometheus":
            return (
                200,
                render_prometheus(self.metrics_snapshot()),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if fmt != "json":
            return 400, error_body(
                f"unknown metrics format {fmt!r}; use 'json' or 'prometheus'"
            )
        return 200, self.metrics_snapshot()

    def _handle_trace(self, request: HttpRequest) -> "tuple[int, Any]":
        """The trace endpoints (404 unless the service traces)."""
        buffer = self.tracer.buffer
        if buffer is None:
            return 404, error_body(
                "tracing is disabled on this server; start it with "
                "`repro serve --trace` (SimulationServer(tracing=True))"
            )
        parts = [p for p in request.path.split("/") if p]  # ["v1","trace",...]
        if request.method == "GET" and len(parts) == 2:
            return 200, {"traces": buffer.ids(), "buffer": buffer.stats()}
        if request.method == "GET" and len(parts) == 3:
            trace_id = parts[2]
            trace = buffer.last() if trace_id == "last" else buffer.get(trace_id)
            if trace is None:
                return 404, error_body(
                    f"no completed trace {trace_id!r} in the buffer "
                    f"({len(buffer)} buffered)"
                )
            return 200, trace.to_payload()
        if request.method == "POST" and len(parts) == 4 and parts[3] == "spans":
            return self._merge_remote_spans(parts[2], request)
        return 405, error_body(
            "trace endpoints: GET /v1/trace, GET /v1/trace/<id>, "
            "POST /v1/trace/<id>/spans"
        )

    def _merge_remote_spans(
        self, trace_id: str, request: HttpRequest
    ) -> "tuple[int, Any]":
        """Adopt a remote client's half of a trace it initiated."""
        trace = self.tracer.get(trace_id)
        if trace is None:
            return 404, error_body(
                f"no completed trace {trace_id!r} to merge spans into"
            )
        try:
            obj = request.json()
            if not isinstance(obj, Mapping) or not isinstance(
                obj.get("spans"), list
            ):
                raise ValueError("span payload must be {'spans': [...]}")
            spans = spans_from_wire(obj["spans"])
        except ValueError as exc:
            return 400, error_body(str(exc))
        trace.adopt_remote(spans)
        return 200, {"trace_id": trace_id, "merged_spans": len(spans)}

    # -- the run endpoints -------------------------------------------------
    async def _handle_run(self, request: HttpRequest) -> "tuple[int, Any]":
        try:
            obj = request.json()
        except ValueError as exc:
            result = RunResult(
                id="request-0", status=STATUS_ERROR, error=str(exc)
            )
            self.metrics.observe_parse_failure("/v1/run")
            self._notify(None, result)
            return 400, result.to_dict(arrays=False)
        http_status, result = await self._serve_one(
            obj, index=0, endpoint="/v1/run",
            trace_id=request.headers.get(TRACE_HEADER.lower()),
            parent_id=request.headers.get(PARENT_HEADER.lower()),
        )
        return http_status, result.to_dict()

    async def _handle_batch(self, request: HttpRequest) -> "tuple[int, Any]":
        try:
            text = request.body.decode()
        except UnicodeDecodeError as exc:
            result = RunResult(
                id="request-0", status=STATUS_ERROR,
                error=f"batch body is not valid UTF-8: {exc}",
            )
            self.metrics.observe_parse_failure("/v1/batch")
            return 400, result.to_dict(arrays=False)
        # One line = one envelope, like `repro serve` file mode; blank
        # and comment lines are skipped.  Lines are served CONCURRENTLY
        # so the micro-batcher can coalesce them into one engine call.
        indexed: "list[tuple[int, str]]" = []
        for lineno, line in enumerate(text.splitlines(), 1):
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                indexed.append((lineno, stripped))

        async def _serve_line(lineno: int, line: str) -> RunResult:
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                result = RunResult(
                    id=f"request-{lineno}", status=STATUS_ERROR,
                    error=f"request line {lineno}: {exc}",
                )
                self.metrics.observe_parse_failure("/v1/batch")
                self._notify(None, result)
                return result
            _, result = await self._serve_one(obj, index=lineno, endpoint="/v1/batch")
            return result

        results = await asyncio.gather(
            *(_serve_line(lineno, line) for lineno, line in indexed)
        )
        body = "\n".join(json.dumps(result.to_dict()) for result in results)
        return 200, body + ("\n" if body else "")

    async def _serve_one(
        self,
        obj: Any,
        index: int,
        endpoint: str,
        trace_id: "str | None" = None,
        parent_id: "str | None" = None,
    ) -> "tuple[int, RunResult]":
        """Parse, admit, execute and time one request envelope.

        ``trace_id``/``parent_id`` carry the ``X-Repro-Trace-Id`` /
        ``X-Repro-Parent-Span`` propagation headers: with tracing on,
        the server *adopts* the client's trace id and nests its
        ``server.request`` span under the client's HTTP span, so the
        merged tree at ``/v1/trace/<id>`` reads client → server →
        service → worker top to bottom.
        """
        started = now()
        try:
            run_request = parse_request(obj, index=index)
        except (ValueError, TypeError) as exc:
            request_id = ""
            if isinstance(obj, Mapping):
                request_id = str(obj.get("id", "") or f"request-{index}")
            result = RunResult(
                id=request_id or f"request-{index}",
                status=STATUS_ERROR, error=str(exc),
            )
            self.metrics.observe_parse_failure(endpoint)
            self._notify(None, result)
            return 400, result

        trace = None
        server_span = None
        if self.tracer.enabled:
            trace = self.tracer.start_trace("request", trace_id=trace_id)
            server_span = trace.start_span("server.request", parent_id=parent_id)
            server_span.set_attribute("endpoint", endpoint)
            server_span.set_attribute("request_id", run_request.id)

        if self._draining or self._inflight >= self.max_pending:
            reason = (
                "server is draining" if self._draining else
                f"admission queue full ({self._inflight} requests in flight, "
                f"bound {self.max_pending})"
            )
            result = RunResult.from_failure(
                run_request, STATUS_SHED, f"request shed: {reason}; retry later",
                wall_s=now() - started,
            )
            if server_span:
                server_span.set_attribute("status", STATUS_SHED).finish()
                trace.finish()
            self.metrics.observe_request(endpoint, STATUS_SHED, now() - started)
            self._notify(run_request, result)
            return HTTP_FOR_STATUS[STATUS_SHED], result

        self._inflight += 1
        try:
            # The transport's future never raises — failures arrive as
            # error-status results, exactly like the in-process Client.
            future = self._transport.submit(
                run_request,
                trace=trace,
                parent_id=server_span.span_id if server_span else None,
            )
            try:
                result = await asyncio.wait_for(
                    asyncio.wrap_future(future), self.request_timeout
                )
            except (asyncio.TimeoutError, TimeoutError):
                result = RunResult.from_failure(
                    run_request, STATUS_TIMEOUT,
                    f"execution exceeded the server's {self.request_timeout}s "
                    f"deadline (the run may still complete and populate the "
                    f"result store)",
                    wall_s=now() - started,
                )
        finally:
            self._inflight -= 1
        if server_span:
            server_span.set_attribute("status", result.status).finish()
        http_status = HTTP_FOR_STATUS.get(result.status, 500)
        self.metrics.observe_request(endpoint, result.status, now() - started)
        if result.status == STATUS_OK:
            self.metrics.observe_stages(result.timings)
        self._notify(run_request, result)
        return http_status, result

    def _notify(self, request: "RunRequest | None", result: RunResult) -> None:
        if self.on_result is not None:
            with contextlib.suppress(Exception):
                self.on_result(request, result)

    # -- introspection endpoints -------------------------------------------
    def health(self) -> "dict[str, Any]":
        """The ``GET /v1/health`` payload."""
        return {
            "status": "draining" if self._draining else "ok",
            "api_version": API_VERSION,
            "draining": self._draining,
            "inflight": self._inflight,
            "connections": self._connections,
        }

    def metrics_snapshot(self) -> "dict[str, Any]":
        """The ``GET /v1/metrics`` payload."""
        service_stats = self.service.stats
        requests = service_stats.get("requests", 0)
        cache_hits = service_stats.get("cache_hits", 0)
        return {
            "api_version": API_VERSION,
            "requests": {
                "total": self.metrics.requests_total,
                "by_endpoint": dict(self.metrics.by_endpoint),
                "by_status": dict(self.metrics.by_status),
            },
            "parse_failures": {
                "total": self.metrics.parse_failures_total,
                "by_endpoint": dict(self.metrics.parse_failures_by_endpoint),
            },
            "http_responses": {
                str(code): count
                for code, count in sorted(self.metrics.http_responses.items())
            },
            "connections": {
                "open": self._connections,
                "total": self.metrics.connections_total,
                "rejected": self.metrics.connections_rejected,
                "limit": self.max_connections,
            },
            "queue": {
                "inflight": self._inflight,
                "max_pending": self.max_pending,
                "service_pending": service_stats.get("pending", 0),
            },
            "cache_hit_ratio": (cache_hits / requests) if requests else 0.0,
            "batch_size_histogram": {
                str(size): count
                for size, count in sorted(
                    self.service.batch_size_histogram.items()
                )
            },
            "latency": self.metrics.latency_summary(),
            "stages": {
                name: hist.snapshot()
                for name, hist in sorted(self.metrics.stages.items())
            },
            "traces": (
                self.tracer.buffer.stats()
                if self.tracer.buffer is not None
                else {}
            ),
            "service": service_stats,
            # Executor-pool gauges: busy/idle workers, per-shard
            # executed-run counts, group queue latency.
            "pool": getattr(self.service, "executor_stats", {}),
            # Process-global data-campaign + model-registry gauges
            # (populated by CampaignStream / ModelRegistry activity in
            # this process, e.g. when the server also drives harvests).
            "campaign": campaign_snapshot(),
            "registry": registry_snapshot(),
        }


@contextlib.contextmanager
def serve_in_thread(**kwargs: Any):
    """Run a :class:`SimulationServer` on a background event loop.

    The context yields the started server (its :attr:`url` points at
    the bound ephemeral port); leaving the context performs the
    graceful drain and joins the loop thread.  This is how tests and
    benchmarks stand a real networked server up in-process.
    """
    server = SimulationServer(**kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: "list[BaseException]" = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # noqa: BLE001 — re-raised in the caller
            failure.append(exc)
            started.set()
            return
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=_run, name="repro-server", daemon=True)
    thread.start()
    started.wait()
    if failure:
        loop.close()
        raise failure[0]
    try:
        yield server
    finally:
        asyncio.run_coroutine_threadsafe(server.aclose(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        loop.close()
