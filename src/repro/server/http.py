"""Minimal asyncio HTTP/1.1 framing for the simulation server.

Stdlib-only request/response plumbing: just enough HTTP for the v1
JSON endpoints — request line + headers + ``Content-Length`` bodies in,
fixed-length JSON responses out, with keep-alive connections (HTTP/1.1
default) so a closed-loop client pays one TCP handshake per
connection, not per request.  Chunked transfer encoding is not
supported (a request using it is rejected with 411).
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse
from dataclasses import dataclass
from typing import Any, Mapping

#: Hard caps keeping one malformed/hostile connection from exhausting
#: the process: header section and body sizes, header count.
MAX_LINE_BYTES = 64 * 1024
MAX_HEADERS = 100
MAX_BODY_BYTES = 128 * 1024 * 1024

STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class BadRequest(ValueError):
    """The connection sent something that is not a parseable request."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    path: str
    query: "dict[str, list[str]]"
    headers: "dict[str, str]"  # header names lowercased
    body: bytes
    version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 defaults to persistent connections."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def json(self) -> Any:
        """Decode the body as JSON (raises ``ValueError`` on garbage)."""
        try:
            return json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from None


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        return await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise BadRequest("header line too long", status=431) from None


async def read_request(reader: asyncio.StreamReader) -> "HttpRequest | None":
    """Read one request off the stream.

    Returns ``None`` on a clean EOF before any byte (the peer closed a
    kept-alive connection); raises :class:`BadRequest` on malformed
    input and ``asyncio.IncompleteReadError`` on a mid-request EOF.
    """
    line = await _read_line(reader)
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise BadRequest(f"malformed request line {line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise BadRequest(f"unsupported protocol version {version!r}")

    headers: "dict[str, str]" = {}
    while True:
        line = await _read_line(reader)
        if not line:
            raise BadRequest("connection closed inside the header section")
        if line in (b"\r\n", b"\n"):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
        if len(headers) > MAX_HEADERS:
            raise BadRequest("too many headers", status=431)

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise BadRequest("chunked transfer encoding is not supported", status=411)
    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError:
        raise BadRequest(f"malformed Content-Length {raw_length!r}") from None
    if length < 0:
        raise BadRequest(f"negative Content-Length {length}")
    if length > MAX_BODY_BYTES:
        raise BadRequest(f"body of {length} bytes exceeds the limit", status=413)
    body = await reader.readexactly(length) if length else b""

    path, _, query_text = target.partition("?")
    return HttpRequest(
        method=method.upper(),
        path=urllib.parse.unquote(path),
        query=urllib.parse.parse_qs(query_text),
        headers=headers,
        body=body,
        version=version,
    )


def response_bytes(
    status: int,
    body: "bytes | str | Mapping | list",
    *,
    keep_alive: bool = True,
    content_type: str = "application/json",
    extra_headers: "Mapping[str, str] | None" = None,
) -> bytes:
    """Serialize one fixed-length HTTP response.

    Mapping/list bodies are JSON-encoded; the connection header
    reflects ``keep_alive`` so the peer knows whether to reuse the
    socket.
    """
    if isinstance(body, (dict, list)):
        body = json.dumps(body)
    if isinstance(body, str):
        body = body.encode()
    phrase = STATUS_PHRASES.get(status, "Unknown")
    headers = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body


def error_body(message: str) -> "dict[str, str]":
    """The plain (non-RunResult) JSON error body for protocol errors."""
    return {"error": message}
