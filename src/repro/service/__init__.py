"""Simulation-as-a-service layer over the batched PIC engines.

Independently arriving run requests are coalesced by a dynamic
micro-batcher (flush on batch size or deadline) into single
:class:`~repro.pic.simulation.EnsembleSimulation` /
:class:`~repro.dlpic.DLEnsemble` executions, and deduplicated against a
content-addressed result store before they ever reach an engine.  Every
served result is bitwise identical to running its config alone; the
``repro serve`` CLI drains JSONL request streams through this service.
"""

from repro.service.batcher import GROUP_FIELDS, MicroBatcher, PendingRequest, group_key
from repro.service.executor import (
    Executor,
    GroupOutcome,
    GroupTask,
    GroupTimeoutError,
    InlineExecutor,
    ShardedExecutor,
)
from repro.service.requests import ServiceRequest, parse_request, read_requests
from repro.service.service import (
    STATUS_CACHED,
    STATUS_INFLIGHT,
    STATUS_QUEUED,
    SimulationService,
)
from repro.service.store import (
    SOLVER_FAMILIES,
    ResultStore,
    SimulationResult,
    result_key,
)

__all__ = [
    "GROUP_FIELDS",
    "MicroBatcher",
    "PendingRequest",
    "group_key",
    "Executor",
    "GroupOutcome",
    "GroupTask",
    "GroupTimeoutError",
    "InlineExecutor",
    "ShardedExecutor",
    "ServiceRequest",
    "parse_request",
    "read_requests",
    "STATUS_CACHED",
    "STATUS_INFLIGHT",
    "STATUS_QUEUED",
    "SimulationService",
    "SOLVER_FAMILIES",
    "ResultStore",
    "SimulationResult",
    "result_key",
]
