"""Dynamic micro-batching of compatible simulation requests.

Requests are bucketed by :func:`group_key` — the engine registry's
structural-compatibility key for the config's solver family
(:func:`repro.engines.engine_group_key`), which folds in the structural
config fields that family's batched engine requires to agree across an
ensemble, plus ``n_steps`` (one ``run()`` call per group) and the
solver family itself.  Within a bucket the batcher applies the classic
dynamic-batching policy: a group is released as soon as it reaches
``max_batch_size``, or when its oldest request has waited ``max_wait``
seconds (deadline flush), whichever comes first.  Incompatible configs
can therefore never be co-batched: they live in different buckets by
construction — and every registered engine family (traditional PIC,
DL-PIC, Vlasov) batches under the same policy.

The batcher is a pure data structure driven by an explicit clock
(every method takes ``now``), which keeps the flush policy unit-testable
without threads or sleeps; :class:`~repro.service.service.SimulationService`
provides the locking and the real clock.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Hashable

from repro.config import SimulationConfig
from repro.engines.base import STRUCTURAL_FIELDS, engine_group_key

# Kept importable for compatibility: the PIC families' structural
# fields plus n_steps.  The authoritative grouping is per-family via
# the engine registry (see group_key).
GROUP_FIELDS = STRUCTURAL_FIELDS + ("n_steps",)


def group_key(config: SimulationConfig, solver: "str | None" = None) -> Hashable:
    """Compatibility bucket of a request (hashable tuple).

    ``solver`` overrides the config's own ``solver`` field (legacy
    call sites passed it separately); the key delegates to the engine
    registry, so user-registered families group correctly too.
    """
    if solver is not None and solver != config.solver:
        config = config.with_updates(solver=solver)
    return engine_group_key(config)


@dataclass
class PendingRequest:
    """A submitted run waiting to be batched.

    ``observables`` is the request's canonical observables selection
    (see :func:`repro.engines.observables.canonical_observables`); one
    engine execution records ONE pipeline, so requests co-batch only
    with identical selections.  ``phase_space`` asks for the final
    particle/distribution state — captured per request at result-build
    time, so it does not affect grouping.

    The trailing fields carry per-request observability context:
    ``trace``/``parent_id`` are the request's active trace and the span
    to hang service spans under (``None`` when tracing is off — they
    never affect grouping or execution), ``store_s`` is the store
    lookup cost already paid at submit time, and ``t_submit`` is the
    ``perf_counter`` submit instant that stage timings (batch wait,
    queue wait) are measured from.  ``submitted_at`` stays on
    ``time.monotonic`` — it drives the flush deadline policy and must
    keep the batcher's explicit-clock contract.
    """

    key: str  # content address (store/in-flight slot)
    config: SimulationConfig
    solver: str
    future: "Future[object]"
    observables: "tuple | None" = None
    phase_space: bool = False
    submitted_at: float = field(default_factory=time.monotonic)
    trace: "object | None" = None
    parent_id: "str | None" = None
    store_s: float = 0.0
    t_submit: float = field(default_factory=time.perf_counter)


class MicroBatcher:
    """Groups pending requests and decides when each group flushes."""

    def __init__(self, max_batch_size: int = 16, max_wait: float = 0.02) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be non-negative, got {max_wait}")
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait
        self._groups: "dict[Hashable, list[PendingRequest]]" = {}

    def __len__(self) -> int:
        """Total number of pending requests across all groups."""
        return sum(len(group) for group in self._groups.values())

    @property
    def n_groups(self) -> int:
        return len(self._groups)

    def add(self, request: PendingRequest) -> None:
        """File a request under its compatibility bucket."""
        bucket = (group_key(request.config, request.solver), request.observables)
        self._groups.setdefault(bucket, []).append(request)

    def take_ready(self, now: "float | None" = None) -> list[list[PendingRequest]]:
        """Pop and return every group due for execution.

        A group is due when it holds ``max_batch_size`` requests or its
        oldest request was submitted more than ``max_wait`` ago.  A
        bucket due by *age* flushes whole (split into
        ``max_batch_size`` chunks if requests piled up before the
        worker woke); a bucket due by *size* releases only full chunks
        — the remainder keeps waiting for company until its own
        deadline.
        """
        if now is None:
            now = time.monotonic()
        ready: list[list[PendingRequest]] = []
        for key in list(self._groups):
            group = self._groups[key]
            if now - group[0].submitted_at >= self.max_wait:
                del self._groups[key]
                ready.extend(self._chunk(group))
                continue
            while len(group) >= self.max_batch_size:
                ready.append(group[: self.max_batch_size])
                del group[: self.max_batch_size]
            if not group:
                del self._groups[key]
        return ready

    def drain(self) -> list[list[PendingRequest]]:
        """Pop everything regardless of size or age (shutdown/flush)."""
        groups = [chunk for g in self._groups.values() for chunk in self._chunk(g)]
        self._groups.clear()
        return groups

    def next_deadline(self) -> "float | None":
        """Earliest monotonic time any pending group must flush at."""
        oldest = [group[0].submitted_at for group in self._groups.values()]
        return min(oldest) + self.max_wait if oldest else None

    def _chunk(self, group: list[PendingRequest]) -> list[list[PendingRequest]]:
        return [
            group[i: i + self.max_batch_size]
            for i in range(0, len(group), self.max_batch_size)
        ]
