"""Executor layer: where a compatibility group actually runs.

The micro-batcher decides *what* executes together (one structurally
compatible group = one engine call); the executor decides *where*.
:class:`SimulationService` hands each ready group to its executor as a
:class:`GroupTask` — a fully picklable description of the engine call
(configs via the canonical ``to_dict`` serialization, the canonical
observables selection, per-member phase-space flags and the DL model
directory) — and gets back a future resolving to a
:class:`GroupOutcome` of plain arrays.

Two executors ship:

:class:`InlineExecutor`
    Runs the group synchronously on the calling thread — the exact
    pre-pool execution path, bitwise unchanged, and the default
    (``workers=1``).  Uses the service's in-memory ``DLFieldSolver``
    directly.

:class:`ShardedExecutor`
    Dispatches whole groups to ``N`` **spawned** worker processes
    through :class:`concurrent.futures.ProcessPoolExecutor`.  Each
    worker process lazily rebuilds (and caches) its own engine
    infrastructure — including a per-process ``DLFieldSolver``
    rehydrated from ``model_dir`` — so nothing unpicklable ever
    crosses the process boundary.  Results travel back as raw float64
    arrays; pickling preserves float bits exactly, so a sharded result
    is bitwise identical to an inline one.  A crashed worker
    (``BrokenProcessPool``) or an expired ``group_timeout`` resolves
    the affected group's future with the error — the service turns
    that into error-status results for every requester — while the
    pool replenishes and keeps serving.

Because every worker sees the same content-addressed key space, an
on-disk :class:`~repro.service.store.ResultStore` shared between
services/processes acts as the cross-shard result tier (its writes are
atomic via temp-file + ``os.replace``).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.config import SimulationConfig
from repro.engines.base import make_engine, validate_engine_config
from repro.engines.observables import Observables, StepTimer, resolve_observables
from repro.obs.trace import new_span_id


@dataclass(frozen=True)
class GroupTask:
    """One compatibility group, described in fully picklable terms.

    ``configs`` holds each member's :meth:`SimulationConfig.to_dict`
    (the canonical round-trip serialization); ``observables`` is the
    group's canonical selection (plain nested tuples); ``phase_space``
    flags which members want their final particle/distribution state
    attached.  ``model_dir`` lets a worker process rehydrate the DL
    solver for ``solver="dl"`` groups.
    """

    configs: "tuple[dict, ...]"
    solver: str
    n_steps: int
    observables: "tuple | None"
    phase_space: "tuple[bool, ...]"
    model_dir: "str | None" = None
    #: When set, the engine call measures per-step timings (via a
    #: :class:`~repro.engines.observables.StepTimer` appended to the
    #: pipeline) and ships worker-side spans back in the outcome.
    traced: bool = False

    def __len__(self) -> int:
        return len(self.configs)


@dataclass
class GroupOutcome:
    """What comes back from an executed group: plain arrays + gauges.

    ``series`` maps observable names to the full batched arrays
    (``time`` is shared, every other series is ``(n_records, batch)``
    -leading); ``efield`` is the final ``(batch, n_cells)`` field.
    ``final_x``/``final_v``/``final_f`` hold one entry per member
    (``None`` unless that member's ``phase_space`` flag was set).
    ``worker_pid`` and ``exec_s`` feed the pool gauges.  ``spans``
    carries worker-side trace spans for traced tasks: wire-format
    dicts whose ``start_s`` is relative to the worker's own execution
    window (the adopting trace re-anchors them into its timeline).
    """

    series: "dict[str, np.ndarray]"
    efield: np.ndarray
    final_x: "tuple[np.ndarray | None, ...]"
    final_v: "tuple[np.ndarray | None, ...]"
    final_f: "tuple[np.ndarray | None, ...]"
    worker_pid: int = field(default_factory=os.getpid)
    exec_s: float = 0.0
    spans: "tuple[dict, ...]" = ()

    @property
    def batch(self) -> int:
        return self.efield.shape[0]


class GroupTimeoutError(TimeoutError):
    """A dispatched group exceeded the executor's ``group_timeout``."""


@runtime_checkable
class Executor(Protocol):
    """Where compatibility groups execute.

    ``submit`` accepts a :class:`GroupTask` and returns a future
    resolving to a :class:`GroupOutcome` (or raising the execution
    error).  ``workers`` reports the parallelism; ``stats`` returns the
    executor's gauge snapshot; ``close`` releases any resources.
    """

    workers: int

    def submit(self, task: GroupTask) -> "Future[GroupOutcome]":
        ...

    def stats(self) -> "dict[str, object]":
        ...

    def close(self) -> None:
        ...


# ----------------------------------------------------------------------
# The actual engine call (shared by both executors; must be a module-
# level function so spawned workers can import it).

# Per-process cache of rehydrated DL solvers, keyed by model directory.
# Loading deserializes the checkpoint npz once; after that every dl
# group served by this process reuses the same solver (and its
# phase-space grid / FFT caches), which is the "each worker lazily
# builds and caches its engines" contract.
_DL_SOLVERS: "dict[str, object]" = {}

# Total engine runs executed in this process (one per batch member).
_RUNS_EXECUTED = 0


def _dl_solver_for(model_dir: "str | None") -> object:
    if model_dir is None:
        raise ValueError(
            "solver='dl' groups need model_dir= on the sharded service: worker "
            "processes rehydrate their own DLFieldSolver from disk (the parent's "
            "in-memory solver does not cross process boundaries)"
        )
    solver = _DL_SOLVERS.get(model_dir)
    if solver is None:
        from repro.dlpic.solver import DLFieldSolver

        solver = DLFieldSolver.load_auto(model_dir)
        _DL_SOLVERS[model_dir] = solver
    return solver


def run_group_task(task: GroupTask, dl_solver: "object | None" = None) -> GroupOutcome:
    """Execute one group through its registered engine.

    This is the exact engine call the pre-pool service made inline:
    validate, resolve the observables pipeline, build the engine via
    the registry, run, and collect the batched series plus each
    flagged member's final phase-space state.  ``dl_solver`` is the
    in-process solver (inline path); without one, ``solver="dl"``
    tasks rehydrate a per-process solver from ``task.model_dir``.
    """
    global _RUNS_EXECUTED
    started = time.perf_counter()
    configs = tuple(SimulationConfig.from_dict(dict(d)) for d in task.configs)
    spec = validate_engine_config(configs[0])
    observables = resolve_observables(task.observables, spec.kind)
    if task.traced:
        # StepTimer goes LAST so its inter-record interval covers one
        # full engine step including every other observable's cost.
        observables = list(observables) + [StepTimer()]
    pipeline = Observables(observables)
    if task.solver == "dl" and dl_solver is None:
        dl_solver = _dl_solver_for(task.model_dir)
    sim = make_engine(configs, dl_solver=dl_solver)
    t_built = time.perf_counter()
    history = sim.run(task.n_steps, history=pipeline)
    t_run_done = time.perf_counter()
    series = history.as_arrays()
    # Popping the timing series (not slicing around it) keeps every
    # result series object identical to the untraced pipeline's output.
    step_s = series.pop("step_s", None) if task.traced else None
    particles = getattr(sim, "particles", None)
    v_integer = getattr(sim, "v_at_integer_time", None)
    distribution = getattr(sim, "f", None)
    final_x: "list[np.ndarray | None]" = [None] * len(configs)
    final_v: "list[np.ndarray | None]" = [None] * len(configs)
    final_f: "list[np.ndarray | None]" = [None] * len(configs)
    for b, wanted in enumerate(task.phase_space):
        if not wanted:
            continue
        if particles is not None:
            final_x[b] = particles.x[b].copy()
            final_v[b] = v_integer[b].copy()
        elif distribution is not None:
            final_f[b] = distribution[b].copy()
    _RUNS_EXECUTED += len(configs)
    done = time.perf_counter()
    spans: "tuple[dict, ...]" = ()
    if task.traced:
        spans = _worker_spans(
            started, t_built, t_run_done, done, step_s,
            n_steps=task.n_steps, batch=len(configs),
            dtype=configs[0].dtype, backend=configs[0].backend,
        )
    return GroupOutcome(
        series=series,
        efield=np.asarray(sim.efield),
        final_x=tuple(final_x),
        final_v=tuple(final_v),
        final_f=tuple(final_f),
        exec_s=done - started,
        spans=spans,
    )


def _worker_spans(
    t0: float,
    t_built: float,
    t_run_done: float,
    t_done: float,
    step_s: "np.ndarray | None",
    *,
    n_steps: int,
    batch: int,
    dtype: str = "float64",
    backend: str = "numpy",
) -> "tuple[dict, ...]":
    """Worker-side spans in wire format, ``start_s`` relative to ``t0``.

    The worker's ``perf_counter`` epoch is unrelated to the service's,
    so these ship as offsets inside the worker's own execution window;
    the adopting trace anchors the window just before delivery.
    """
    root_id = new_span_id()
    run_id = new_span_id()
    spans = [
        {
            "span_id": root_id,
            "parent_id": None,
            "name": "executor.worker_run",
            "start_s": 0.0,
            "duration_s": t_done - t0,
            "attributes": {
                "worker_pid": os.getpid(),
                "batch": int(batch),
                "dtype": dtype,
                "backend": backend,
            },
        },
        {
            "span_id": new_span_id(),
            "parent_id": root_id,
            "name": "engine.build",
            "start_s": 0.0,
            "duration_s": t_built - t0,
        },
        {
            "span_id": run_id,
            "parent_id": root_id,
            "name": "engine.run",
            "start_s": t_built - t0,
            "duration_s": t_run_done - t_built,
        },
    ]
    if step_s is not None and step_s.size > 1:
        # Drop the first record: it times construction-to-first-record,
        # not an engine step.
        flat = step_s.ravel()[1:]
        spans.append(
            {
                "span_id": new_span_id(),
                "parent_id": run_id,
                "name": "engine.steps",
                "start_s": t_built - t0,
                "duration_s": float(flat.sum()),
                "attributes": {
                    "n_steps": int(n_steps),
                    "step_p50_s": float(np.percentile(flat, 50)),
                    "step_p99_s": float(np.percentile(flat, 99)),
                    "step_max_s": float(flat.max()),
                },
            }
        )
    return tuple(spans)


def _pool_run_task(task: GroupTask) -> GroupOutcome:
    """Worker-process entry point (top-level for spawn picklability)."""
    return run_group_task(task)


def _pool_ping(hold_s: float = 0.0) -> int:
    """Warm-up probe: imports are paid, the worker pid comes back.

    ``hold_s`` keeps the worker briefly busy so consecutive pings fan
    out across distinct processes instead of landing on the first one.
    """
    if hold_s > 0:
        time.sleep(hold_s)
    return os.getpid()


# ----------------------------------------------------------------------
# Inline (default) executor


class InlineExecutor:
    """Runs each group synchronously on the submitting thread.

    The default executor (``workers=1``): behavior, ordering and bits
    are exactly the pre-pool in-thread execution path.  The returned
    future is already resolved when ``submit`` returns.
    """

    workers = 1

    def __init__(self, dl_solver: "object | None" = None) -> None:
        self._dl_solver = dl_solver
        self._lock = threading.Lock()
        self._groups = 0
        self._runs = 0
        self._errors = 0
        self._busy = 0

    def submit(self, task: GroupTask) -> "Future[GroupOutcome]":
        future: "Future[GroupOutcome]" = Future()
        with self._lock:
            self._busy += 1
        try:
            outcome = run_group_task(task, dl_solver=self._dl_solver)
        except BaseException as exc:  # noqa: BLE001 — travels via the future
            with self._lock:
                self._errors += 1
                self._busy -= 1
            future.set_exception(exc)
            return future
        with self._lock:
            self._groups += 1
            self._runs += len(task)
            self._busy -= 1
        future.set_result(outcome)
        return future

    def stats(self) -> "dict[str, object]":
        with self._lock:
            return {
                "kind": "inline",
                "workers": 1,
                "busy_workers": min(self._busy, 1),
                "idle_workers": 1 - min(self._busy, 1),
                "groups_in_flight": self._busy,
                "groups_executed": self._groups,
                "runs_executed": self._runs,
                "errors": self._errors,
                "timeouts": 0,
                "pool_restarts": 0,
                "queue_wait_s_total": 0.0,
                "queue_wait_s_max": 0.0,
                "runs_by_worker": {str(os.getpid()): self._runs},
            }

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# Sharded multi-process executor


class ShardedExecutor:
    """Dispatches whole compatibility groups to spawned worker processes.

    Parameters
    ----------
    workers:
        Pool size (``>= 1``).  Workers are **spawned**, not forked:
        each is a fresh interpreter importing this module, so the
        parent's thread/lock/solver state can never leak in and the
        same code runs identically on every platform.
    model_dir:
        Directory a worker rehydrates its ``DLFieldSolver`` from for
        ``solver="dl"`` groups (each worker loads it once, lazily).
    group_timeout:
        Optional per-group deadline in seconds.  An expired group's
        future raises :class:`GroupTimeoutError`; the stale worker
        result is discarded when it eventually lands.
    """

    def __init__(
        self,
        workers: int,
        model_dir: "str | os.PathLike[str] | None" = None,
        group_timeout: "float | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if group_timeout is not None and group_timeout <= 0:
            raise ValueError(
                f"group_timeout must be positive or None, got {group_timeout}"
            )
        self.workers = workers
        self.model_dir = str(model_dir) if model_dir is not None else None
        self.group_timeout = group_timeout
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._pool: "_ProcessPool | None" = None
        self._closed = False
        self._inflight = 0
        self._groups = 0
        self._runs = 0
        self._errors = 0
        self._timeouts = 0
        self._restarts = 0
        self._queue_wait_total = 0.0
        self._queue_wait_max = 0.0
        self._runs_by_worker: "dict[int, int]" = {}

    # -- pool lifecycle ---------------------------------------------------
    def _ensure_pool(self) -> _ProcessPool:
        """Create (or recreate after a crash) the spawn pool, lazily."""
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is closed")
            if self._pool is None:
                self._pool = _ProcessPool(
                    max_workers=self.workers, mp_context=self._ctx
                )
            return self._pool

    def _retire_pool(self, broken: _ProcessPool) -> None:
        """Replace a broken pool so the next submit gets fresh workers."""
        with self._lock:
            if self._pool is not broken:
                return  # another callback already replenished
            self._pool = None
            if not self._closed:
                self._restarts += 1
        broken.shutdown(wait=False, cancel_futures=True)

    def warm(self, timeout: "float | None" = 30.0) -> "list[int]":
        """Spawn every worker now; returns their pids.

        Spawning pays an interpreter start + import per worker; calling
        this before a latency-sensitive burst (or a benchmark's timed
        section) moves that cost out of the serving path.
        """
        pool = self._ensure_pool()
        hold = 0.05 if self.workers > 1 else 0.0
        futures = [
            pool.submit(_pool_ping, hold) for _ in range(self.workers)
        ]
        return sorted({f.result(timeout=timeout) for f in futures})

    # -- dispatch ---------------------------------------------------------
    def submit(self, task: GroupTask) -> "Future[GroupOutcome]":
        """Dispatch a group to the pool; the future resolves off-thread."""
        outer: "Future[GroupOutcome]" = Future()
        pool: "_ProcessPool | None" = None
        try:
            pool = self._ensure_pool()
            with self._lock:
                self._inflight += 1
            dispatched = time.perf_counter()
            inner = pool.submit(_pool_run_task, task)
        except BaseException as exc:  # noqa: BLE001 — closed/spawn failure
            with self._lock:
                self._errors += 1
                if pool is not None and self._inflight:
                    self._inflight -= 1
            if isinstance(exc, BrokenProcessPool) and pool is not None:
                self._retire_pool(pool)
            outer.set_exception(exc)
            return outer
        timer: "threading.Timer | None" = None
        if self.group_timeout is not None:
            timer = threading.Timer(
                self.group_timeout, self._on_timeout, args=(outer,)
            )
            timer.daemon = True
            timer.start()
        inner.add_done_callback(
            lambda f: self._on_done(outer, f, pool, dispatched, timer)
        )
        return outer

    def _on_timeout(self, outer: "Future[GroupOutcome]") -> None:
        try:
            outer.set_exception(GroupTimeoutError(
                f"group execution exceeded the executor's "
                f"{self.group_timeout:g}s deadline"
            ))
        except InvalidStateError:
            return  # the group finished first
        with self._lock:
            self._timeouts += 1

    def _on_done(
        self,
        outer: "Future[GroupOutcome]",
        inner: "Future[GroupOutcome]",
        pool: _ProcessPool,
        dispatched: float,
        timer: "threading.Timer | None",
    ) -> None:
        if timer is not None:
            timer.cancel()
        done = time.perf_counter()
        exc = inner.exception()
        if isinstance(exc, BrokenProcessPool):
            # A worker died mid-group (OOM-kill, segfault, kill -9).
            # The whole pool is condemned; replace it so the next
            # group gets freshly spawned workers.
            self._retire_pool(pool)
        if exc is not None:
            with self._lock:
                self._errors += 1
                self._inflight -= 1
            self._settle(outer, exception=exc)
            return
        outcome = inner.result()
        # Queue latency: time between dispatch and completion that was
        # NOT spent executing — waiting for a free worker, pickling,
        # and (first group per worker) the spawn + import cost.
        wait = max(0.0, (done - dispatched) - outcome.exec_s)
        with self._lock:
            self._inflight -= 1
            self._groups += 1
            self._runs += outcome.batch
            self._queue_wait_total += wait
            self._queue_wait_max = max(self._queue_wait_max, wait)
            self._runs_by_worker[outcome.worker_pid] = (
                self._runs_by_worker.get(outcome.worker_pid, 0) + outcome.batch
            )
        self._settle(outer, result=outcome)

    @staticmethod
    def _settle(
        outer: "Future[GroupOutcome]",
        result: "GroupOutcome | None" = None,
        exception: "BaseException | None" = None,
    ) -> None:
        try:
            if exception is not None:
                outer.set_exception(exception)
            else:
                outer.set_result(result)
        except InvalidStateError:
            pass  # a timeout settled it first; discard the stale outcome

    # -- introspection ----------------------------------------------------
    def stats(self) -> "dict[str, object]":
        with self._lock:
            busy = min(self._inflight, self.workers)
            return {
                "kind": "sharded",
                "workers": self.workers,
                "busy_workers": busy,
                "idle_workers": self.workers - busy,
                "groups_in_flight": self._inflight,
                "groups_executed": self._groups,
                "runs_executed": self._runs,
                "errors": self._errors,
                "timeouts": self._timeouts,
                "pool_restarts": self._restarts,
                "queue_wait_s_total": self._queue_wait_total,
                "queue_wait_s_max": self._queue_wait_max,
                "runs_by_worker": {
                    str(pid): count
                    for pid, count in sorted(self._runs_by_worker.items())
                },
            }

    def close(self) -> None:
        """Shut the pool down (waits for in-flight groups to finish)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
