"""JSONL request parsing: a thin front end over API v1.

One request per line, in the versioned v1 envelope form
(see :mod:`repro.api.envelope`)::

    {"api_version": "v1", "id": "my-run",
     "config": {"scenario": "two_stream", "v0": 0.2, "seed": 3,
                "solver": "vlasov"},
     "observables": ["energies", "mode1"], "dtype": "float32"}

Pre-v1 bare-config lines — :meth:`SimulationConfig.to_dict` fields at
the top level plus an optional ``id`` — were deprecated when the v1
envelope landed and are now rejected with an error naming the envelope
form.  A line is treated as a v1 envelope whenever it carries
``api_version`` or ``config``; anything else is a legacy line and
hard-errors.  Blank lines and ``#`` comment lines are skipped.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.api.envelope import RunRequest

RESERVED_KEYS = ("id",)

# Importable alias kept for pre-v1 call sites; the parsed request type
# IS the public envelope now.
ServiceRequest = RunRequest


def parse_request(obj: dict, index: int = 0) -> RunRequest:
    """Build a :class:`RunRequest` from one decoded JSONL object.

    ``index`` (the 1-based input line number when coming from
    :func:`read_requests`) names requests without an explicit ``id``.
    Envelope fields, config fields, scenario, solver and observables
    are all validated here so a typo fails the parse, not the engine.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"request must be a JSON object, got {type(obj).__name__}")
    if "api_version" not in obj and "config" not in obj:
        # Legacy bare-config line (config fields at the top level):
        # deprecated with the v1 envelope, removed now.
        raise ValueError(
            "legacy bare-config request lines are no longer accepted; wrap "
            'the config in a v1 envelope: {"api_version": "v1", "id": ..., '
            '"config": {...}}'
        )
    return RunRequest.from_dict(obj, index=index)


def read_requests(lines: Iterable[str]) -> list[RunRequest]:
    """Parse a JSONL stream; errors carry the 1-based line number."""
    requests: list[RunRequest] = []
    for lineno, line in enumerate(lines, 1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        try:
            obj = json.loads(text)
            requests.append(parse_request(obj, index=lineno))
        except (json.JSONDecodeError, ValueError, TypeError) as exc:
            # TypeError covers wrong-typed JSON values (e.g. a string
            # where the config validators compare numbers).
            raise ValueError(f"request line {lineno}: {exc}") from None
    return requests
