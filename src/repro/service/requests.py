"""JSONL request format shared by ``repro serve`` and the tests.

One request per line, each a JSON object of
:meth:`SimulationConfig.to_dict` fields (missing fields take the config
defaults, unknown keys are rejected) plus two reserved, optional keys::

    {"scenario": "two_stream", "v0": 0.2, "seed": 3,
     "id": "my-run", "solver": "traditional"}

``id``
    Caller's name for the request (defaults to ``request-<line#>``,
    1-based); echoed in the manifest so responses can be correlated.
``solver``
    Engine family: ``"traditional"`` (default) or ``"dl"``.

Blank lines and ``#`` comment lines are skipped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable

from repro.config import SimulationConfig
from repro.pic.scenarios import get_scenario
from repro.service.store import SOLVER_FAMILIES

RESERVED_KEYS = ("id", "solver")


@dataclass
class ServiceRequest:
    """A parsed request line: the config plus routing metadata."""

    config: SimulationConfig
    solver: str = "traditional"
    id: str = ""


def parse_request(obj: dict, index: int = 0) -> ServiceRequest:
    """Build a :class:`ServiceRequest` from one decoded JSONL object.

    ``index`` (the 1-based input line number when coming from
    :func:`read_requests`) names requests without an explicit ``id``.
    The scenario is validated against the registry here so a typo
    fails the parse, not the engine.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"request must be a JSON object, got {type(obj).__name__}")
    payload = dict(obj)
    request_id = str(payload.pop("id", f"request-{index}"))
    solver = str(payload.pop("solver", "traditional"))
    if solver not in SOLVER_FAMILIES:
        raise ValueError(
            f"unknown solver {solver!r}; expected one of {SOLVER_FAMILIES}"
        )
    config = SimulationConfig.from_dict(payload)
    get_scenario(config.scenario)
    return ServiceRequest(config=config, solver=solver, id=request_id)


def read_requests(lines: Iterable[str]) -> list[ServiceRequest]:
    """Parse a JSONL stream; errors carry the 1-based line number."""
    requests: list[ServiceRequest] = []
    for lineno, line in enumerate(lines, 1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        try:
            obj = json.loads(text)
            requests.append(parse_request(obj, index=lineno))
        except (json.JSONDecodeError, ValueError, TypeError) as exc:
            # TypeError covers wrong-typed JSON values (e.g. a string
            # where the config validators compare numbers).
            raise ValueError(f"request line {lineno}: {exc}") from None
    return requests
