"""JSONL request parsing: a thin front end over API v1.

One request per line.  The canonical form is the versioned v1 envelope
(see :mod:`repro.api.envelope`)::

    {"api_version": "v1", "id": "my-run",
     "config": {"scenario": "two_stream", "v0": 0.2, "seed": 3,
                "solver": "vlasov"},
     "observables": ["energies", "mode1"], "dtype": "float32"}

Legacy bare-config lines — :meth:`SimulationConfig.to_dict` fields at
the top level plus an optional ``id`` — are still accepted with a
``DeprecationWarning``::

    {"scenario": "two_stream", "v0": 0.2, "seed": 3, "id": "my-run"}

A line is treated as a v1 envelope whenever it carries ``api_version``
or ``config``.  Envelope-only keys (``observables``, ``metadata``,
``tags``, ``phase_space``) appearing on a bare legacy line are rejected
with a pointer to the envelope form — they are reserved, never silently
treated as config fields.  Blank lines and ``#`` comment lines are
skipped.
"""

from __future__ import annotations

import json
import warnings
from typing import Iterable

from repro.api.envelope import RESERVED_CONFIG_KEYS, RunRequest
from repro.config import SimulationConfig
from repro.engines.base import validate_engine_config

RESERVED_KEYS = ("id",)

# Importable alias kept for pre-v1 call sites; the parsed request type
# IS the public envelope now.
ServiceRequest = RunRequest


def parse_request(obj: dict, index: int = 0) -> RunRequest:
    """Build a :class:`RunRequest` from one decoded JSONL object.

    ``index`` (the 1-based input line number when coming from
    :func:`read_requests`) names requests without an explicit ``id``.
    Envelope fields, config fields, scenario, solver and observables
    are all validated here so a typo fails the parse, not the engine.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"request must be a JSON object, got {type(obj).__name__}")
    if "api_version" in obj or "config" in obj:
        return RunRequest.from_dict(obj, index=index)

    # Legacy bare-config line: config fields at the top level + "id".
    warnings.warn(
        "bare-config request lines are deprecated; wrap the config in a "
        'v1 envelope: {"api_version": "v1", "id": ..., "config": {...}}',
        DeprecationWarning,
        stacklevel=2,
    )
    payload = dict(obj)
    request_id = str(payload.pop("id", f"request-{index}"))
    reserved = sorted(set(payload) & set(RESERVED_CONFIG_KEYS))
    if reserved:
        raise ValueError(
            f"key(s) {', '.join(map(repr, reserved))} are reserved for the v1 "
            f"request envelope and are not config fields; send "
            f'{{"api_version": "v1", "config": {{...}}, ...}} instead'
        )
    config = SimulationConfig.from_dict(payload)
    validate_engine_config(config)  # any registry family, built-in or user
    return RunRequest(config=config, id=request_id)


def read_requests(lines: Iterable[str]) -> list[RunRequest]:
    """Parse a JSONL stream; errors carry the 1-based line number."""
    requests: list[RunRequest] = []
    for lineno, line in enumerate(lines, 1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        try:
            obj = json.loads(text)
            requests.append(parse_request(obj, index=lineno))
        except (json.JSONDecodeError, ValueError, TypeError) as exc:
            # TypeError covers wrong-typed JSON values (e.g. a string
            # where the config validators compare numbers).
            raise ValueError(f"request line {lineno}: {exc}") from None
    return requests
