"""JSONL request format shared by ``repro serve`` and the tests.

One request per line, each a JSON object of
:meth:`SimulationConfig.to_dict` fields (missing fields take the config
defaults, unknown keys are rejected) plus one reserved, optional key::

    {"scenario": "two_stream", "v0": 0.2, "seed": 3,
     "id": "my-run", "solver": "vlasov"}

``id``
    Caller's name for the request (defaults to ``request-<line#>``,
    1-based); echoed in the manifest so responses can be correlated.
``solver``
    A regular config field since the engine registry unification:
    the engine family that runs the request — ``"traditional"`` (the
    default), ``"dl"`` or ``"vlasov"`` (whose velocity-grid knobs ride
    in ``extra``).

Blank lines and ``#`` comment lines are skipped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable

from repro.config import SimulationConfig
from repro.engines.base import validate_engine_config

RESERVED_KEYS = ("id",)


@dataclass
class ServiceRequest:
    """A parsed request line: the config plus routing metadata."""

    config: SimulationConfig
    solver: str = "traditional"
    id: str = ""


def parse_request(obj: dict, index: int = 0) -> ServiceRequest:
    """Build a :class:`ServiceRequest` from one decoded JSONL object.

    ``index`` (the 1-based input line number when coming from
    :func:`read_requests`) names requests without an explicit ``id``.
    The scenario and solver are validated against their registries here
    so a typo fails the parse, not the engine.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"request must be a JSON object, got {type(obj).__name__}")
    payload = dict(obj)
    request_id = str(payload.pop("id", f"request-{index}"))
    config = SimulationConfig.from_dict(payload)
    validate_engine_config(config)  # any registry family, built-in or user
    return ServiceRequest(config=config, solver=config.solver, id=request_id)


def read_requests(lines: Iterable[str]) -> list[ServiceRequest]:
    """Parse a JSONL stream; errors carry the 1-based line number."""
    requests: list[ServiceRequest] = []
    for lineno, line in enumerate(lines, 1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        try:
            obj = json.loads(text)
            requests.append(parse_request(obj, index=lineno))
        except (json.JSONDecodeError, ValueError, TypeError) as exc:
            # TypeError covers wrong-typed JSON values (e.g. a string
            # where the config validators compare numbers).
            raise ValueError(f"request line {lineno}: {exc}") from None
    return requests
