"""The micro-batching simulation service.

:class:`SimulationService` turns the batched engines into a
request/response system: callers submit :class:`SimulationConfig`-keyed
run requests and get back futures, while a background worker coalesces
compatible pending requests (same structural key, step count and
solver family — see ``repro.service.batcher``) and executes each group
through ONE engine built by the registry
(:func:`repro.engines.make_engine`): a traditional
:class:`~repro.pic.simulation.EnsembleSimulation`, a
:class:`~repro.dlpic.DLEnsemble` or a noise-free
:class:`~repro.vlasov.ensemble.VlasovEnsemble` — so N independently
arriving requests cost one set of vectorized steps instead of N Python
loops.  Because every batched engine is bitwise identical per row to
its single-run form, each served result is bitwise identical to
running that config alone, whatever the family.

Requests are deduplicated at two levels before they ever reach an
engine:

* **store hits** — the content-addressed :class:`ResultStore` is
  consulted at submit time; a known key returns an already-resolved
  future without queueing anything;
* **in-flight dedup** — a second submit of a key that is currently
  queued or executing returns the *same* future (one engine row serves
  every duplicate requester).

*Where* a ready group executes is delegated to an
:class:`~repro.service.executor.Executor`: the default
:class:`~repro.service.executor.InlineExecutor` runs it on the worker
thread (the exact pre-pool path, bitwise unchanged), while
``workers > 1`` shards groups across spawned processes through a
:class:`~repro.service.executor.ShardedExecutor` — see
``repro.service.executor``.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import Future, InvalidStateError
from typing import TYPE_CHECKING

from repro.config import SimulationConfig
from repro.engines.base import validate_engine_config
from repro.engines.observables import canonical_observables, resolve_observables
from repro.obs.trace import NOOP_TRACER, Span, Tracer
from repro.service.batcher import MicroBatcher, PendingRequest
from repro.service.executor import (
    Executor,
    GroupOutcome,
    GroupTask,
    InlineExecutor,
    ShardedExecutor,
)
from repro.service.store import ResultStore, SimulationResult, result_key

if TYPE_CHECKING:
    from repro.dlpic.solver import DLFieldSolver

# Submit outcomes reported by ``submit_with_status``.
STATUS_QUEUED = "queued"
STATUS_CACHED = "cached"
STATUS_INFLIGHT = "inflight"


class SimulationService:
    """Accepts run requests, micro-batches them, returns futures.

    Parameters
    ----------
    max_batch_size:
        Largest ensemble one engine call may advance; a compatibility
        group flushes as soon as it reaches this size.
    max_wait:
        Deadline (seconds) after which a partial group flushes anyway —
        the latency bound a lone request pays for batching.
    store:
        Result store; defaults to a memory-only LRU.  Pass a store with
        a ``directory`` for a persistent on-disk tier.
    dl_solver:
        Optional :class:`~repro.dlpic.DLFieldSolver` backing requests
        with ``solver="dl"``.  Its weight fingerprint becomes part of
        those requests' store keys.
    start:
        Start the background worker thread (default).  With
        ``start=False`` the service is fully synchronous: submissions
        queue up until :meth:`flush` executes them on the caller's
        thread — deterministic, thread-free operation for tests and
        one-shot drains.
    workers:
        Execution parallelism.  ``1`` (default) keeps the inline
        in-thread path, bitwise unchanged; ``N > 1`` shards ready
        compatibility groups across ``N`` spawned worker processes
        (:class:`~repro.service.executor.ShardedExecutor`).
    model_dir:
        Directory sharded workers rehydrate their ``DLFieldSolver``
        from (required for ``solver="dl"`` requests when
        ``workers > 1``; the in-memory ``dl_solver`` object cannot
        cross process boundaries).
    executor:
        An explicit :class:`~repro.service.executor.Executor` to run
        groups on, overriding ``workers`` (the caller keeps ownership
        and closes it).
    group_timeout:
        Per-group execution deadline in seconds for the sharded
        executor (``None`` = no deadline); an expired group resolves
        its requests with a ``GroupTimeoutError``.
    tracing:
        Enable end-to-end request tracing (default off).  When on,
        every request carries a :class:`~repro.obs.trace.Trace` through
        submit → batch → dispatch → worker execution → delivery, and
        completed traces land in ``service.tracer.buffer``.  When off,
        the module-level no-op tracer is used and the per-request cost
        is a handful of ``perf_counter`` calls for the always-on stage
        timings.
    """

    def __init__(
        self,
        max_batch_size: int = 16,
        max_wait: float = 0.02,
        store: "ResultStore | None" = None,
        dl_solver: "DLFieldSolver | None" = None,
        start: bool = True,
        workers: int = 1,
        model_dir: "str | None" = None,
        executor: "Executor | None" = None,
        group_timeout: "float | None" = None,
        tracing: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.tracer = Tracer() if tracing else NOOP_TRACER
        self.store = store if store is not None else ResultStore()
        self._batcher = MicroBatcher(max_batch_size=max_batch_size, max_wait=max_wait)
        self._dl_solver = dl_solver
        self._dl_fingerprint: "str | None" = None
        self._model_dir = str(model_dir) if model_dir is not None else None
        if executor is not None:
            self._executor = executor
            self._owns_executor = False
        elif workers > 1:
            self._executor = ShardedExecutor(
                workers, model_dir=self._model_dir, group_timeout=group_timeout
            )
            self._owns_executor = True
        else:
            self._executor = InlineExecutor(dl_solver=dl_solver)
            self._owns_executor = True
        self._dispatched = 0  # groups handed to the executor, unsettled
        self._inflight: "dict[str, Future[SimulationResult]]" = {}
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._closed = False
        self._stats = {
            "requests": 0,
            "cache_hits": 0,
            "dedup_hits": 0,
            "batches": 0,
            "executed_runs": 0,
            "errors": 0,
            "store_errors": 0,
        }
        self._batch_sizes: "dict[int, int]" = {}
        # Executed runs keyed by "<dtype>/<backend>" — how much work
        # each speed tier actually serves (exposed in /v1/metrics and
        # as a labeled Prometheus counter).
        self._tier_runs: "dict[str, int]" = {}
        self._thread: "threading.Thread | None" = None
        if start:
            self._thread = threading.Thread(
                target=self._worker, name="simulation-service", daemon=True
            )
            self._thread.start()

    # -- public API ------------------------------------------------------
    def submit(
        self,
        config: SimulationConfig,
        solver: "str | None" = None,
        observables: "object | None" = None,
        phase_space: bool = False,
    ) -> "Future[SimulationResult]":
        """Request a run; the future resolves to a :class:`SimulationResult`.

        The engine family comes from ``config.solver``; the ``solver``
        argument is a legacy override kept for callers that routed it
        separately (the config is retagged when they disagree).
        ``observables`` selects which measurements the run records (any
        form :func:`repro.engines.observables.canonical_observables`
        accepts; ``None`` means the default energies + ``mode1`` set)
        and ``phase_space`` attaches the final particle/distribution
        state to the result.
        """
        return self.submit_with_status(config, solver, observables, phase_space)[0]

    def submit_with_status(
        self,
        config: SimulationConfig,
        solver: "str | None" = None,
        observables: "object | None" = None,
        phase_space: bool = False,
        *,
        trace: "object | None" = None,
        parent_id: "str | None" = None,
    ) -> "tuple[Future[SimulationResult], str]":
        """Like :meth:`submit`, also reporting how the request was met.

        Returns ``(future, status)`` with status one of ``"cached"``
        (served from the result store without queueing), ``"inflight"``
        (coalesced onto an identical request already queued or running;
        the same future object is returned) or ``"queued"`` (filed with
        the micro-batcher).

        ``trace``/``parent_id`` attach the request to an active
        :class:`~repro.obs.trace.Trace` (a transport or the server
        passes its own); with ``tracing=True`` and no incoming trace
        the service opens one itself.  The service finishes every trace
        it sees once the request settles — ``Trace.finish`` is
        idempotent, and spans a caller adds afterwards still render.
        """
        t_submit = time.perf_counter()
        if trace is None:
            trace = self.tracer.start_trace("request") if self.tracer.enabled else None
        submit_span = (
            trace.start_span("service.submit", parent_id=parent_id) if trace else None
        )
        try:
            if solver is not None and solver != config.solver:
                config = config.with_updates(solver=solver)
            solver = config.solver
            spec = validate_engine_config(config)  # fail fast on unservable configs
            selection = canonical_observables(observables)
            # Building the pipeline validates the selection against this
            # family (unknown names/params, family-incompatible observables
            # all fail the submit, not the engine).
            resolve_observables(selection, spec.kind)
            key = self._result_key(config, solver, selection, phase_space)
            # The store is thread-safe and possibly disk-backed: consult it
            # outside the service lock so a multi-ms archive read never
            # stalls other submitters or the worker.
            t_store = time.perf_counter()
            cached = self.store.get(key)
            store_s = time.perf_counter() - t_store
            if submit_span:
                Span(
                    "service.store_lookup",
                    trace=trace,
                    parent_id=submit_span.span_id,
                    start=t_store,
                ).set_attribute("hit", cached is not None).finish(
                    end=t_store + store_s
                )
            with self._wake:
                if self._closed:
                    raise RuntimeError(
                        "SimulationService is closed (close() was called, or the "
                        "service was used as an exited context manager); create a "
                        "new service to submit further requests"
                    )
                self._stats["requests"] += 1
                if cached is not None:
                    self._stats["cache_hits"] += 1
                    timings: "dict[str, object]" = {"store_s": store_s}
                    if trace:
                        timings["trace_id"] = trace.trace_id
                    cached = dataclasses.replace(cached, timings=timings)
                    future: "Future[SimulationResult]" = Future()
                    future.set_result(cached)
                    if submit_span:
                        submit_span.set_attribute("status", STATUS_CACHED)
                    return future, STATUS_CACHED
                inflight = self._inflight.get(key)
                if inflight is not None:
                    self._stats["dedup_hits"] += 1
                    if submit_span:
                        submit_span.set_attribute("status", STATUS_INFLIGHT)
                    return inflight, STATUS_INFLIGHT
                future = Future()
                # File with the batcher before taking the in-flight slot:
                # if grouping raises, no requester is left holding a future
                # that nothing will ever resolve.
                self._batcher.add(
                    PendingRequest(
                        key=key, config=config, solver=solver, future=future,
                        observables=selection, phase_space=phase_space,
                        trace=trace, parent_id=parent_id,
                        store_s=store_s, t_submit=t_submit,
                    )
                )
                self._inflight[key] = future
                self._wake.notify()
                if submit_span:
                    submit_span.set_attribute("status", STATUS_QUEUED)
                return future, STATUS_QUEUED
        except BaseException as exc:
            if submit_span:
                submit_span.set_attribute("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            if submit_span:
                submit_span.finish()
                # Settled-now paths (cached, inflight, rejected) end the
                # trace here; queued requests finish at delivery.
                status = submit_span.attributes.get("status")
                if status != STATUS_QUEUED:
                    trace.finish()

    def flush(self) -> None:
        """Execute every pending group now; returns once all resolved.

        Groups are popped under the lock and run without it, so a
        concurrent worker can keep serving other groups; with
        ``start=False`` this is the only way requests execute.  With a
        sharded executor the dispatched groups run in worker processes;
        flush waits until every one of them has settled its futures.
        """
        with self._wake:
            groups = self._batcher.drain()
        for group in groups:
            self._execute(group)
        self._wait_dispatched()

    def _wait_dispatched(self) -> None:
        """Block until every dispatched group has settled (pool drain)."""
        with self._wake:
            while self._dispatched:
                self._wake.wait()

    @property
    def stats(self) -> "dict[str, object]":
        """Counters snapshot (requests, hits, batches, executed runs...)
        plus ``runs_by_tier`` ("<dtype>/<backend>" -> executed runs)."""
        with self._lock:
            out = dict(self._stats)
            out["pending"] = len(self._batcher)
            out["dispatched"] = self._dispatched
            out["workers"] = self._executor.workers
            out["store_hits"] = self.store.hits
            out["store_disk_hits"] = self.store.disk_hits
            out["store_misses"] = self.store.misses
            out["runs_by_tier"] = dict(self._tier_runs)
        return out

    @property
    def executor(self) -> Executor:
        """The executor running this service's groups (e.g. for ``warm()``)."""
        return self._executor

    @property
    def executor_stats(self) -> "dict[str, object]":
        """The executor's gauge snapshot (pool busy/idle, per-shard runs)."""
        return self._executor.stats()

    @property
    def batch_size_histogram(self) -> "dict[int, int]":
        """Executed engine-batch sizes -> occurrence counts."""
        with self._lock:
            return dict(self._batch_sizes)

    def close(self) -> None:
        """Drain pending work, resolve all futures, stop the worker.

        Already-queued groups are executed, not abandoned: the worker
        (or a final :meth:`flush` in synchronous mode) drains the
        batcher, then close waits for every dispatched group to settle
        before shutting the executor down — no submitted future is
        left forever pending.
        """
        with self._wake:
            if self._closed:
                return
            self._closed = True
            self._wake.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        else:
            self.flush()
        self._wait_dispatched()
        if self._owns_executor:
            self._executor.close()

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals -------------------------------------------------------
    def _require_dl_fingerprint(self) -> str:
        """The serving DL model's fingerprint (loads from model_dir lazily).

        A service constructed with only ``model_dir=`` (the sharded
        form — workers rehydrate their own solver) still needs the
        model identity for result keys and delivered results, so the
        checkpoint is loaded here once, on the first DL submit.
        ``model_dir`` may be a plain directory or a ``registry:``
        reference (resolved by :meth:`DLFieldSolver.load_auto`).
        """
        if self._dl_fingerprint is None:
            if self._dl_solver is None:
                if self._model_dir is None:
                    raise ValueError(
                        "this service has no DL solver; construct it with "
                        "dl_solver=... or model_dir=..."
                    )
                from repro.dlpic.solver import DLFieldSolver

                self._dl_solver = DLFieldSolver.load_auto(self._model_dir)
                # The inline executor runs on this process: hand it the
                # freshly loaded solver so it is not loaded twice.
                if (
                    isinstance(self._executor, InlineExecutor)
                    and self._executor._dl_solver is None
                ):
                    self._executor._dl_solver = self._dl_solver
            self._dl_fingerprint = self._dl_solver.fingerprint()
        return self._dl_fingerprint

    def _result_key(
        self,
        config: SimulationConfig,
        solver: str,
        observables: "tuple | None" = None,
        phase_space: bool = False,
    ) -> str:
        fingerprint = None
        if solver == "dl":
            fingerprint = self._require_dl_fingerprint()
        return result_key(
            config, solver, solver_fingerprint=fingerprint,
            observables=observables, phase_space=phase_space,
        )

    def _worker(self) -> None:
        while True:
            with self._wake:
                groups = self._batcher.take_ready()
                while not groups and not self._closed:
                    deadline = self._batcher.next_deadline()
                    timeout = None if deadline is None else max(0.0, deadline - time.monotonic())
                    self._wake.wait(timeout)
                    groups = self._batcher.take_ready()
                if self._closed and not groups:
                    groups = self._batcher.drain()
                    if not groups:
                        return
            for group in groups:
                self._execute(group)

    def _execute(self, group: "list[PendingRequest]") -> None:
        """Hand one compatibility group to the executor.

        Never raises: engine failures travel to every requester via
        their futures — the worker thread must survive anything a
        group throws at it.  With the inline executor the group runs
        (and its futures settle) before this method returns, exactly
        the pre-pool behavior; a sharded executor returns immediately
        and :meth:`_finish_group` fires from the pool's callback
        thread when the worker process delivers.
        """
        task = GroupTask(
            configs=tuple(request.config.to_dict() for request in group),
            solver=group[0].solver,
            n_steps=group[0].config.n_steps,
            observables=group[0].observables,
            phase_space=tuple(request.phase_space for request in group),
            model_dir=self._model_dir,
            traced=any(request.trace for request in group),
        )
        with self._wake:
            self._dispatched += 1
        t_dispatch = time.perf_counter()
        try:
            future = self._executor.submit(task)
        except BaseException as exc:  # noqa: BLE001 — e.g. closed executor
            self._fail_group(group, exc)
            self._settle_dispatch()
            return
        future.add_done_callback(
            lambda f: self._finish_group(group, f, t_dispatch)
        )

    def _finish_group(
        self,
        group: "list[PendingRequest]",
        future: "Future[GroupOutcome]",
        t_dispatch: float,
    ) -> None:
        """Turn one settled group outcome into per-request results."""
        try:
            exc = future.exception()
            if exc is not None:
                self._fail_group(group, exc)
                return
            outcome = future.result()
            with self._lock:
                self._stats["batches"] += 1
                size = len(group)
                self._batch_sizes[size] = self._batch_sizes.get(size, 0) + 1
            try:
                self._deliver(group, outcome, t_dispatch)
            except Exception as deliver_exc:  # noqa: BLE001 — e.g. MemoryError
                self._fail_group(group, deliver_exc)
        finally:
            self._settle_dispatch()

    def _deliver(
        self,
        group: "list[PendingRequest]",
        outcome: GroupOutcome,
        t_dispatch: float,
    ) -> None:
        """Build, store and resolve one result per batched request.

        Also stamps the canonical stage breakdown on every result and,
        for traced requests, records the dispatch-side spans and adopts
        the worker-side ones.  The worker's spans are relative to its
        own execution window; anchoring that window at
        ``t_done - outcome.exec_s`` places it as late as possible, so
        pickling/IPC cost shows up as executor queue time.
        """
        series = outcome.series
        t_done = time.perf_counter()
        anchor = t_done - outcome.exec_s
        queue_wait_s = max(0.0, (t_done - t_dispatch) - outcome.exec_s)
        for b, request in enumerate(group):
            timings: "dict[str, object]" = {
                "batch_wait_s": max(0.0, t_dispatch - request.t_submit),
                "queue_wait_s": queue_wait_s,
                "exec_s": outcome.exec_s,
            }
            if request.trace:
                timings["trace_id"] = request.trace.trace_id
            result = SimulationResult(
                key=request.key,
                config=request.config,
                solver=request.solver,
                series={
                    name: (values.copy() if name == "time" else values[:, b].copy())
                    for name, values in series.items()
                },
                efield=outcome.efield[b].copy(),
                final_x=outcome.final_x[b],
                final_v=outcome.final_v[b],
                final_f=outcome.final_f[b],
                # DL results carry the serving model's identity; the
                # fingerprint was resolved at submit time (it is part of
                # the result key), so this is a cached read.
                model_fingerprint=(
                    self._dl_fingerprint if request.solver == "dl" else None
                ),
                timings=timings,
            )
            t_put = time.perf_counter()
            try:
                # Thread-safe store; keep the (possibly compressed-npz)
                # write out of the service lock.  Stored before the
                # in-flight slot is released, so a concurrent submit of
                # this key always finds one or the other.
                self.store.put(result)
            except Exception:  # noqa: BLE001 — the store is a cache, the run serves
                with self._lock:
                    self._stats["store_errors"] += 1
            # Store cost = submit-time lookup + delivery-time write.
            # The memory tier shares this dict, so stamping after put
            # updates the cached copy too.
            timings["store_s"] = request.store_s + (time.perf_counter() - t_put)
            with self._lock:
                self._inflight.pop(request.key, None)
                self._stats["executed_runs"] += 1
                tier = f"{request.config.dtype}/{request.config.backend}"
                self._tier_runs[tier] = self._tier_runs.get(tier, 0) + 1
            if request.trace:
                self._record_delivery_spans(
                    request, outcome, t_dispatch, anchor, t_done, t_put
                )
            self._resolve(request.future, result=result)

    def _record_delivery_spans(
        self,
        request: PendingRequest,
        outcome: GroupOutcome,
        t_dispatch: float,
        anchor: float,
        t_done: float,
        t_put: float,
    ) -> None:
        """Attach dispatch-stage + adopted worker spans to one trace."""
        trace = request.trace
        parent = request.parent_id
        Span(
            "service.batch_wait", trace=trace, parent_id=parent,
            start=request.t_submit,
        ).finish(end=t_dispatch)
        dispatch = Span(
            "executor.dispatch", trace=trace, parent_id=parent, start=t_dispatch
        )
        dispatch.set_attribute("batch", outcome.batch)
        dispatch.set_attribute("worker_pid", outcome.worker_pid)
        Span(
            "executor.queue", trace=trace, parent_id=dispatch.span_id,
            start=t_dispatch,
        ).finish(end=anchor)
        if outcome.spans:
            trace.adopt(outcome.spans, anchor=anchor, parent_id=dispatch.span_id)
        dispatch.finish(end=t_done)
        Span(
            "service.store_put", trace=trace, parent_id=parent, start=t_put
        ).finish()
        trace.finish()

    def _fail_group(
        self, group: "list[PendingRequest]", exc: BaseException
    ) -> None:
        """Resolve every request of a failed group with the error."""
        with self._lock:
            self._stats["errors"] += 1
            for request in group:
                self._inflight.pop(request.key, None)
        for request in group:
            if request.trace:
                request.trace.start_span(
                    "service.error", parent_id=request.parent_id
                ).set_attribute("error", f"{type(exc).__name__}: {exc}").finish()
                request.trace.finish()
            # Already-resolved futures reject the exception harmlessly.
            self._resolve(request.future, exception=exc)

    def _settle_dispatch(self) -> None:
        with self._wake:
            self._dispatched -= 1
            self._wake.notify_all()

    @staticmethod
    def _resolve(
        future: "Future[SimulationResult]",
        result: "SimulationResult | None" = None,
        exception: "BaseException | None" = None,
    ) -> None:
        """Settle a future, tolerating callers that cancelled it."""
        try:
            if exception is not None:
                future.set_exception(exception)
            else:
                future.set_result(result)
        except InvalidStateError:
            pass
