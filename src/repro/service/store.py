"""Content-addressed result store for served simulations.

A :class:`SimulationResult` is addressed by a key derived from the
canonical :meth:`SimulationConfig.cache_key` serialization plus the
solver family (and, for DL runs, the solver's weight fingerprint) — so
two requests hit the same slot exactly when the engine would produce
bitwise-identical output for both.  All registered engine families
(``traditional``, ``dl``, ``vlasov``, ``energy``) share the store with
the same guarantees, and the key also folds in the request's
observables selection, dtype tier and phase-space flag.

The store is a two-tier cache: an in-memory LRU of result objects, plus
an optional on-disk directory of ``<key>.npz`` archives (written
through on every ``put``).  ``.npz`` stores raw float64 bytes, so a
disk round trip is bitwise exact; entries evicted from memory are
transparently re-read from disk and promoted back.
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.config import SimulationConfig
from repro.engines.base import available_engines
from repro.engines.observables import canonical_observables, observables_token
from repro.utils.io import load_npz_dict, save_npz_dict

# Built-in families; the authoritative list is the engine registry
# (available_engines()), which user-registered families join.
SOLVER_FAMILIES = ("traditional", "dl", "vlasov", "energy", "mpi")

_SERIES_PREFIX = "series_"

# Per-process temp-file counter: combined with the pid it makes every
# concurrent writer's temp name unique, so two threads (or two
# processes) putting the same key can never interleave writes into one
# temp file — each writes its own and the atomic rename settles the
# race with some complete archive.
_TMP_COUNTER = itertools.count()

_DEFAULT_OBS_TOKEN = observables_token(canonical_observables(None))


def result_key(
    config: SimulationConfig,
    solver: str = "traditional",
    solver_fingerprint: "str | None" = None,
    observables: "object | None" = None,
    phase_space: bool = False,
) -> str:
    """Content address of a run: solver family + canonical config hash.

    For ``solver="dl"`` the solver's :meth:`DLFieldSolver.fingerprint`
    must be supplied — the predicted fields depend on the weights, so
    the model identity is part of the address.  Any family known to the
    engine registry (including user-registered ones) is addressable.

    The address also folds in everything else that changes a result's
    *content*: a non-default ``observables`` selection (any form
    :func:`repro.engines.observables.canonical_observables` accepts)
    and the ``phase_space`` flag (final particle/distribution state
    attached to the result).  The default selection keeps the
    historical key, so pre-v1 stores stay valid — and the config's
    ``dtype`` tier is already part of :meth:`SimulationConfig.cache_key`,
    so float32 results can never answer a float64 request.
    """
    if solver not in available_engines():
        raise ValueError(
            f"unknown solver family {solver!r}; expected one of {available_engines()}"
        )
    digest = config.cache_key()
    if solver == "dl":
        if not solver_fingerprint:
            raise ValueError("DL result keys need the solver fingerprint")
        digest = hashlib.sha256(f"{digest}:{solver_fingerprint}".encode("utf-8")).hexdigest()
    if observables is not None:
        token = observables_token(canonical_observables(observables))
        if token != _DEFAULT_OBS_TOKEN:
            digest = hashlib.sha256(f"{digest}:obs={token}".encode("utf-8")).hexdigest()
    if phase_space:
        digest = hashlib.sha256(f"{digest}:phase-space".encode("utf-8")).hexdigest()
    return f"{solver}-{digest}"


@dataclass
class SimulationResult:
    """One served run: per-step observable series plus the final field.

    ``series`` holds one ``(n_steps + 1, ...)`` array per selected
    observable series plus ``time`` — for the default selection that
    is ``time``, ``kinetic``, ``potential``, ``total``, ``momentum``
    and ``mode1``, bitwise identical to running the config alone.
    ``efield`` is the final ``(n_cells,)`` field; requests made with
    ``phase_space=True`` also carry the final particle phase space
    (``final_x``/``final_v``) or, for the Vlasov family, the final
    distribution ``final_f``.

    The arrays are frozen (numpy ``writeable=False``): cache hits and
    in-flight dedup hand every requester the *same* result object, so
    an in-place edit by one caller would silently corrupt what the
    store serves to everyone else.  Work on a ``.copy()`` instead.

    ``timings`` is per-delivery telemetry (stage breakdown + trace id),
    excluded from equality and never persisted: the on-disk npz holds
    only the physics, so a disk round trip yields ``timings=None`` and
    each delivery stamps its own.
    """

    key: str
    config: SimulationConfig
    solver: str
    series: dict[str, np.ndarray]
    efield: np.ndarray
    from_cache: bool = field(default=False, compare=False)
    final_x: "np.ndarray | None" = None
    final_v: "np.ndarray | None" = None
    final_f: "np.ndarray | None" = None
    #: Fingerprint of the DL model that produced this result (``None``
    #: for non-DL families).  Persisted with the archive, so a disk
    #: round trip keeps the lineage.
    model_fingerprint: "str | None" = None
    timings: "dict[str, object] | None" = field(default=None, compare=False)

    def __post_init__(self) -> None:
        for values in self.series.values():
            values.setflags(write=False)
        self.efield.setflags(write=False)
        for values in (self.final_x, self.final_v, self.final_f):
            if values is not None:
                values.setflags(write=False)

    @property
    def n_steps(self) -> int:
        return len(self.series["time"]) - 1

    def energy_variation(self) -> float:
        """Max relative deviation of total energy from its initial value.

        Same definition as :meth:`History.energy_variation`, computed
        from the served series.
        """
        total = np.asarray(self.series["total"])
        if total.size == 0:
            raise ValueError("result series is empty")
        return float(np.max(np.abs(total - total[0])) / abs(total[0]))


class ResultStore:
    """In-memory LRU of :class:`SimulationResult` + optional disk tier.

    Parameters
    ----------
    capacity:
        Maximum number of results held in memory; the least recently
        used entry is evicted first (it stays on disk if ``directory``
        is set).  ``0`` disables the memory tier.
    directory:
        Optional directory of ``<key>.npz`` archives.  Written through
        on every :meth:`put`; read (and promoted to memory) on a
        memory miss.

    Thread-safe: an internal lock guards only the LRU bookkeeping, so
    the (potentially multi-ms) compressed disk reads and writes never
    block concurrent lookups.  Disk writes go through a temp file +
    atomic rename, so a reader in another process can never observe a
    half-written archive.
    """

    def __init__(
        self,
        capacity: int = 256,
        directory: "str | os.PathLike[str] | None" = None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.capacity = capacity
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: "OrderedDict[str, SimulationResult]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self.directory is not None and self._disk_path(key).exists()

    def _disk_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.npz"

    def get(self, key: str) -> "SimulationResult | None":
        """Look up a result; memory first, then disk (with promotion)."""
        with self._lock:
            result = self._memory.get(key)
            if result is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return result
        if self.directory is not None:
            path = self._disk_path(key)
            if path.exists():
                result = self._load(key, path)  # I/O outside the lock
                self._remember(key, result)
                with self._lock:
                    self.disk_hits += 1
                return result
        with self._lock:
            self.misses += 1
        return None

    def put(self, result: SimulationResult) -> None:
        """Insert a result under its key (write-through to disk)."""
        self._remember(result.key, result)
        if self.directory is not None:
            self._dump(result)  # I/O outside the lock

    def _remember(self, key: str, result: SimulationResult) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._memory[key] = result
            self._memory.move_to_end(key)
            while len(self._memory) > self.capacity:
                self._memory.popitem(last=False)

    # -- disk tier -------------------------------------------------------
    def _dump(self, result: SimulationResult) -> None:
        payload: dict = {
            "config": result.config.to_dict(),
            "solver": result.solver,
            "efield": np.asarray(result.efield),
        }
        if result.model_fingerprint is not None:
            payload["model_fingerprint"] = result.model_fingerprint
        for name in ("final_x", "final_v", "final_f"):
            values = getattr(result, name)
            if values is not None:
                payload[name] = np.asarray(values)
        for name, values in result.series.items():
            payload[_SERIES_PREFIX + name] = np.asarray(values)
        path = self._disk_path(result.key)
        # The temp name must keep the .npz suffix (numpy appends one
        # otherwise) for the atomic rename to find the file it wrote.
        tmp = path.with_name(
            f".tmp-{os.getpid()}-{next(_TMP_COUNTER)}-{path.name}"
        )
        try:
            save_npz_dict(tmp, payload)
            os.replace(tmp, path)
        except BaseException:
            # Never leave a stray temp file behind a failed write.
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    @staticmethod
    def _load(key: str, path: Path) -> SimulationResult:
        payload = load_npz_dict(path)
        series = {
            name[len(_SERIES_PREFIX):]: values
            for name, values in payload.items()
            if name.startswith(_SERIES_PREFIX)
        }
        return SimulationResult(
            key=key,
            config=SimulationConfig.from_dict(payload["config"]),
            solver=payload["solver"],
            series=series,
            efield=payload["efield"],
            from_cache=True,
            final_x=payload.get("final_x"),
            final_v=payload.get("final_v"),
            final_f=payload.get("final_f"),
            model_fingerprint=payload.get("model_fingerprint"),
        )
