"""Linear theory of the two-stream instability and growth-rate fitting."""

from repro.theory.dispersion import (
    dispersion_residual,
    growth_rate_cold,
    growth_rate_curve,
    most_unstable_k,
    max_growth_rate,
    solve_dispersion,
    stability_threshold_k,
)
from repro.theory.growth import GrowthFit, fit_growth_rate
from repro.theory.coldbeam import beam_velocity_spread, coldbeam_ripple_metrics
from repro.theory.spectral import ErrorSpectrum, field_error_spectrum, solver_error_spectrum

__all__ = [
    "dispersion_residual",
    "growth_rate_cold",
    "growth_rate_curve",
    "most_unstable_k",
    "max_growth_rate",
    "solve_dispersion",
    "stability_threshold_k",
    "GrowthFit",
    "fit_growth_rate",
    "beam_velocity_spread",
    "coldbeam_ripple_metrics",
    "ErrorSpectrum",
    "field_error_spectrum",
    "solver_error_spectrum",
]
