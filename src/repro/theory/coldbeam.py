"""Diagnostics for the cold-beam (finite-grid) numerical instability.

Fig. 6 of the paper: two cold beams at ``v0 = +/-0.4`` are *physically*
stable (``k1 v0 > omega_p``), but the traditional momentum-conserving
PIC develops non-physical phase-space ripples — numerical heating from
aliasing of the under-resolved Debye length.  The DL-based PIC does
not.  These metrics quantify "ripples" so the effect can be asserted
numerically instead of eyeballed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def beam_velocity_spread(v: np.ndarray, split_velocity: float = 0.0) -> tuple[float, float]:
    """Velocity standard deviation of each beam (split by sign of v).

    For perfectly cold beams this is (0, 0); numerical heating shows up
    as a growing spread.
    """
    v = np.asarray(v, dtype=np.float64)
    if v.ndim != 1 or v.size == 0:
        raise ValueError(f"v must be a non-empty 1D array, got shape {v.shape}")
    up = v[v > split_velocity]
    down = v[v <= split_velocity]
    spread_up = float(up.std()) if up.size else 0.0
    spread_down = float(down.std()) if down.size else 0.0
    return spread_up, spread_down


@dataclass(frozen=True)
class ColdBeamMetrics:
    """Summary of cold-beam degradation over a run."""

    spread_up: float
    spread_down: float
    max_spread: float
    energy_variation: float
    rippled: bool


def coldbeam_ripple_metrics(
    v_final: np.ndarray,
    total_energy: np.ndarray,
    vth_initial: float = 0.0,
    ripple_threshold: float = 1e-3,
) -> ColdBeamMetrics:
    """Classify a finished cold-beam run as rippled or clean.

    A run is flagged ``rippled`` when either beam's velocity spread
    exceeds ``max(ripple_threshold, 3 * vth_initial)`` — i.e. the beams
    acquired structure they did not start with.
    """
    spread_up, spread_down = beam_velocity_spread(v_final)
    total = np.asarray(total_energy, dtype=np.float64)
    if total.size == 0:
        raise ValueError("empty energy history")
    energy_var = float(np.max(np.abs(total - total[0])) / abs(total[0]))
    threshold = max(ripple_threshold, 3.0 * vth_initial)
    max_spread = max(spread_up, spread_down)
    return ColdBeamMetrics(
        spread_up=spread_up,
        spread_down=spread_down,
        max_spread=max_spread,
        energy_variation=energy_var,
        rippled=bool(max_spread > threshold),
    )
