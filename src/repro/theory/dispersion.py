"""Linear dispersion relation of the symmetric cold two-stream instability.

Two counter-streaming cold electron beams of equal density (each
carrying half the plasma density, so each has beam plasma frequency
``omega_p / sqrt(2)``) obey

.. math::
    1 = \\frac{\\omega_p^2}{2}\\left[\\frac{1}{(\\omega - k v_0)^2}
        + \\frac{1}{(\\omega + k v_0)^2}\\right].

For a purely growing mode ``omega = i*gamma`` this reduces to a
quadratic in ``gamma^2`` with the closed-form solution implemented in
:func:`growth_rate_cold`:

.. math::
    \\gamma^2 = \\frac{-(2a^2 + 1) + \\sqrt{8 a^2 + 1}}{2},
    \\qquad a = k v_0 / \\omega_p .

The system is unstable iff ``a < 1``; the growth rate is maximal,
``gamma = omega_p / (2 sqrt(2))``, at ``a = sqrt(3/8)`` — exactly the
paper's box tuning (``k1 v0 = 3.06 * 0.2 = 0.612 = sqrt(3/8)``).

A general complex root solver (:func:`solve_dispersion`) and a
warm-fluid correction are provided for validation and extensions.
"""

from __future__ import annotations

import cmath
import math

import numpy as np
import scipy.optimize

from repro import constants


def dispersion_residual(
    omega: complex,
    k: float,
    v0: float,
    wp: float = constants.PLASMA_FREQUENCY,
    vth: float = 0.0,
) -> complex:
    """Residual ``D(omega, k)`` whose roots are the plasma eigenmodes.

    ``vth > 0`` applies the warm-fluid (waterbag) correction
    ``(omega -/+ k v0)^2 -> (omega -/+ k v0)^2 - 3 k^2 vth^2``.
    """
    if k == 0.0:
        raise ValueError("k must be non-zero")
    thermal = 3.0 * (k * vth) ** 2
    dp = (omega - k * v0) ** 2 - thermal
    dm = (omega + k * v0) ** 2 - thermal
    if dp == 0 or dm == 0:
        return complex(np.inf)
    return 1.0 - 0.5 * wp**2 * (1.0 / dp + 1.0 / dm)


def growth_rate_cold(k: float, v0: float, wp: float = constants.PLASMA_FREQUENCY) -> float:
    """Closed-form growth rate of the purely growing cold two-stream mode.

    Returns 0 for linearly stable wavenumbers (``k*v0 >= wp``).
    """
    if k <= 0 or v0 <= 0:
        raise ValueError(f"k and v0 must be positive, got k={k}, v0={v0}")
    if wp <= 0:
        raise ValueError(f"wp must be positive, got {wp}")
    a2 = (k * v0 / wp) ** 2
    gamma2 = 0.5 * (-(2.0 * a2 + 1.0) + math.sqrt(8.0 * a2 + 1.0))
    if gamma2 <= 0.0:
        return 0.0
    return wp * math.sqrt(gamma2)


def growth_rate_curve(
    k_values: np.ndarray, v0: float, wp: float = constants.PLASMA_FREQUENCY
) -> np.ndarray:
    """Vectorized :func:`growth_rate_cold` over an array of wavenumbers."""
    return np.array([growth_rate_cold(float(k), v0, wp) for k in np.asarray(k_values)])


def most_unstable_k(v0: float, wp: float = constants.PLASMA_FREQUENCY) -> float:
    """Wavenumber maximizing the cold growth rate: ``k v0 = sqrt(3/8) wp``."""
    if v0 <= 0:
        raise ValueError(f"v0 must be positive, got {v0}")
    return constants.MOST_UNSTABLE_KV0 * wp / v0


def max_growth_rate(wp: float = constants.PLASMA_FREQUENCY) -> float:
    """Maximum cold two-stream growth rate, ``wp / (2 sqrt(2))``."""
    return wp * constants.MAX_TWO_STREAM_GROWTH_RATE


def stability_threshold_k(v0: float, wp: float = constants.PLASMA_FREQUENCY) -> float:
    """Wavenumber above which the cold system is linearly stable."""
    if v0 <= 0:
        raise ValueError(f"v0 must be positive, got {v0}")
    return wp / v0


def solve_dispersion(
    k: float,
    v0: float,
    wp: float = constants.PLASMA_FREQUENCY,
    vth: float = 0.0,
    guess: "complex | None" = None,
) -> complex:
    """Numerically locate a root of the dispersion relation near ``guess``.

    Defaults the guess to the analytic purely growing cold mode (or a
    weakly damped oscillation when stable).  Uses a 2D real Newton
    solve over (Re omega, Im omega).
    """
    if guess is None:
        gamma = growth_rate_cold(k, v0, wp)
        guess = complex(0.0, gamma) if gamma > 0 else complex(1.05 * k * v0, 0.0)

    def system(z: np.ndarray) -> np.ndarray:
        val = dispersion_residual(complex(z[0], z[1]), k, v0, wp, vth)
        return np.array([val.real, val.imag])

    sol = scipy.optimize.fsolve(system, np.array([guess.real, guess.imag]), full_output=True)
    root, info, ier, _ = sol
    if ier != 1:
        raise RuntimeError(f"dispersion root search failed for k={k}, v0={v0}, vth={vth}")
    return complex(root[0], root[1])
