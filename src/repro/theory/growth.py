"""Growth-rate extraction from a simulated mode-amplitude history.

The paper's Fig. 4 compares the slope of ``log E1(t)`` during the
linear phase of the instability with the analytic prediction.  This
module automates the comparison: it detects the exponential-growth
window (above the noise floor, below saturation) and fits a line to
``log E1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GrowthFit:
    """Result of an exponential-growth fit.

    Attributes
    ----------
    gamma:
        Fitted growth rate (slope of ``log E1`` vs time).
    intercept:
        Fitted ``log E1`` at ``t = 0``.
    r_squared:
        Coefficient of determination of the linear fit.
    t_start, t_end:
        Fit window actually used.
    n_points:
        Samples inside the window.
    """

    gamma: float
    intercept: float
    r_squared: float
    t_start: float
    t_end: float
    n_points: int

    def relative_error(self, gamma_theory: float) -> float:
        """``|gamma - gamma_theory| / gamma_theory``."""
        if gamma_theory == 0:
            raise ValueError("theory growth rate is zero")
        return abs(self.gamma - gamma_theory) / abs(gamma_theory)


def _linear_fit(t: np.ndarray, y: np.ndarray) -> tuple[float, float, float]:
    """Least-squares line fit returning (slope, intercept, r^2)."""
    slope, intercept = np.polyfit(t, y, 1)
    pred = slope * t + intercept
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return float(slope), float(intercept), r2


def fit_growth_rate(
    time: np.ndarray,
    amplitude: np.ndarray,
    t_start: "float | None" = None,
    t_end: "float | None" = None,
    noise_factor: float = 3.0,
    saturation_fraction: float = 0.3,
) -> GrowthFit:
    """Fit ``amplitude ~ exp(gamma t)`` over the linear phase.

    If ``t_start``/``t_end`` are not given, the window is detected
    automatically: it opens once the amplitude exceeds
    ``noise_factor`` times the initial noise floor and closes when the
    amplitude first reaches ``saturation_fraction`` of its maximum.
    """
    t = np.asarray(time, dtype=np.float64)
    a = np.asarray(amplitude, dtype=np.float64)
    if t.shape != a.shape or t.ndim != 1:
        raise ValueError(f"time {t.shape} and amplitude {a.shape} must be equal-length 1D")
    if t.size < 4:
        raise ValueError(f"need at least 4 samples, got {t.size}")
    if np.any(a <= 0):
        raise ValueError("amplitudes must be positive to fit an exponential")

    if t_start is None or t_end is None:
        noise_floor = a[: max(2, t.size // 20)].mean()
        peak = float(a.max())
        start_level = noise_factor * noise_floor
        end_level = saturation_fraction * peak
        if end_level <= start_level:
            # No clear exponential window (e.g. a stable run):
            # fall back to the first half of the series.
            auto_start, auto_end = t[0], t[t.size // 2]
        else:
            above = np.nonzero(a >= start_level)[0]
            auto_start = t[above[0]] if above.size else t[0]
            sat = np.nonzero(a >= end_level)[0]
            auto_end = t[sat[0]] if sat.size else t[-1]
            if auto_end <= auto_start:
                auto_end = t[-1]
        t_start = auto_start if t_start is None else t_start
        t_end = auto_end if t_end is None else t_end

    mask = (t >= t_start) & (t <= t_end)
    if int(mask.sum()) < 3:
        raise ValueError(
            f"fit window [{t_start}, {t_end}] contains {int(mask.sum())} points; need >= 3"
        )
    slope, intercept, r2 = _linear_fit(t[mask], np.log(a[mask]))
    return GrowthFit(
        gamma=slope,
        intercept=intercept,
        r_squared=r2,
        t_start=float(t_start),
        t_end=float(t_end),
        n_points=int(mask.sum()),
    )
