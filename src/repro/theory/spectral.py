"""Spectral analysis of DL field-solver errors.

Section VII of the paper: "More studies, such as spectral analysis of
errors in the electric field values, are needed to gain more insight
into the DL-based PIC methods."  This module implements that study:
given predicted and reference fields it decomposes the error by Fourier
mode, revealing whether the network fails on the physically dominant
long wavelengths or on the noise-carrying short ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pic.diagnostics import mode_spectrum


@dataclass(frozen=True)
class ErrorSpectrum:
    """Per-mode decomposition of a field-prediction error.

    Attributes
    ----------
    modes:
        Mode numbers ``0..n//2``.
    error_amplitude:
        RMS (over samples) amplitude of each mode of ``pred - truth``.
    signal_amplitude:
        RMS amplitude of each mode of ``truth``.
    """

    modes: np.ndarray
    error_amplitude: np.ndarray
    signal_amplitude: np.ndarray

    @property
    def relative(self) -> np.ndarray:
        """Per-mode error-to-signal ratio (inf where the signal is 0)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return self.error_amplitude / self.signal_amplitude

    @property
    def dominant_error_mode(self) -> int:
        """Mode number carrying the largest absolute error."""
        return int(np.argmax(self.error_amplitude))

    def low_k_fraction(self, cutoff: int = 4) -> float:
        """Fraction of total error energy in modes ``1..cutoff``.

        Distinguishes 'the network misses the physics' (low-k error)
        from 'the network reproduces binning noise' (high-k error).
        """
        if cutoff < 1 or cutoff >= self.modes.size:
            raise ValueError(f"cutoff {cutoff} out of range (1..{self.modes.size - 1})")
        energy = self.error_amplitude**2
        total = energy[1:].sum()
        if total == 0:
            return 0.0
        return float(energy[1 : cutoff + 1].sum() / total)


def field_error_spectrum(
    predictions: np.ndarray, targets: np.ndarray
) -> ErrorSpectrum:
    """Decompose prediction errors by Fourier mode, RMS over samples.

    ``predictions`` and ``targets`` are ``(n_samples, n_cells)`` (a
    single pair of 1D fields is also accepted).
    """
    pred = np.atleast_2d(np.asarray(predictions, dtype=np.float64))
    true = np.atleast_2d(np.asarray(targets, dtype=np.float64))
    if pred.shape != true.shape:
        raise ValueError(f"predictions {pred.shape} and targets {true.shape} differ")
    if pred.shape[0] == 0 or pred.shape[1] < 2:
        raise ValueError(f"need at least one sample of >= 2 cells, got {pred.shape}")
    err_spectra = np.stack([mode_spectrum(row) for row in pred - true])
    sig_spectra = np.stack([mode_spectrum(row) for row in true])
    return ErrorSpectrum(
        modes=np.arange(err_spectra.shape[1]),
        error_amplitude=np.sqrt(np.mean(err_spectra**2, axis=0)),
        signal_amplitude=np.sqrt(np.mean(sig_spectra**2, axis=0)),
    )


def solver_error_spectrum(solver, dataset) -> ErrorSpectrum:
    """Error spectrum of a trained ``DLFieldSolver`` on a ``FieldDataset``."""
    raw = dataset.flat_inputs() if solver.input_kind == "flat" else dataset.image_inputs()
    pred = solver.model.predict(solver.normalizer.transform(raw))
    return field_error_spectrum(pred, dataset.targets)
