"""Shared utilities: RNG handling, artifact I/O, timing."""

from repro.utils.rng import as_generator, spawn_generators, spawn_seeds
from repro.utils.io import ensure_dir, load_npz_dict, save_npz_dict
from repro.utils.timer import Timer

__all__ = [
    "as_generator",
    "spawn_generators",
    "spawn_seeds",
    "ensure_dir",
    "load_npz_dict",
    "save_npz_dict",
    "Timer",
]
