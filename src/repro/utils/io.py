"""Artifact I/O helpers built on ``numpy.savez``."""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping

import numpy as np


def ensure_dir(path: "str | os.PathLike[str]") -> Path:
    """Create ``path`` (and parents) if needed and return it as ``Path``."""
    p = Path(path)
    p.mkdir(parents=True, exist_ok=True)
    return p


def save_npz_dict(path: "str | os.PathLike[str]", data: Mapping[str, Any]) -> Path:
    """Save a flat mapping of arrays/scalars to a compressed ``.npz``.

    Non-array values are stored via a JSON side-channel under the
    reserved key ``__meta__`` so that round-tripping preserves python
    scalars, strings, lists and dicts.
    """
    path = Path(path)
    ensure_dir(path.parent)
    arrays: dict[str, np.ndarray] = {}
    meta: dict[str, Any] = {}
    for key, value in data.items():
        if key == "__meta__":
            raise ValueError("'__meta__' is a reserved key")
        if isinstance(value, np.ndarray):
            arrays[key] = value
        else:
            meta[key] = value
    arrays["__meta__"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    return path


def load_npz_dict(path: "str | os.PathLike[str]") -> dict[str, Any]:
    """Inverse of :func:`save_npz_dict`."""
    out: dict[str, Any] = {}
    with np.load(path, allow_pickle=False) as archive:
        for key in archive.files:
            if key == "__meta__":
                meta = json.loads(bytes(archive[key].tobytes()).decode("utf-8"))
                out.update(meta)
            else:
                out[key] = archive[key]
    return out
