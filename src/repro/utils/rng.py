"""Deterministic random-number handling.

Every stochastic component of the library (particle loading, dataset
shuffling, weight initialization, ...) takes either a seed or a
``numpy.random.Generator``.  These helpers normalize between the two and
derive independent child streams, so that a single top-level seed makes
a whole campaign reproducible.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(rng: "int | np.random.Generator | np.random.SeedSequence | None") -> np.random.Generator:
    """Coerce ``rng`` into a ``numpy.random.Generator``.

    ``None`` yields a fresh OS-seeded generator; integers and
    ``SeedSequence`` objects are used as seeds; generators pass through
    unchanged.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    return np.random.default_rng(rng)


def spawn_generators(rng: "int | np.random.Generator | None", n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Uses ``SeedSequence.spawn`` semantics via fresh integer seeds drawn
    from the parent stream, which keeps the parent usable afterwards.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    parent = as_generator(rng)
    seeds = parent.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def spawn_seeds(rng: "int | np.random.Generator | None", n: int) -> list[int]:
    """Derive ``n`` independent integer seeds (picklable, for workers)."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of seeds: {n}")
    parent = as_generator(rng)
    return [int(s) for s in parent.integers(0, 2**63 - 1, size=n, dtype=np.int64)]
