"""A minimal wall-clock timer used by the performance benches."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self.start
