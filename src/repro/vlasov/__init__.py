"""Noise-free 1D1V Vlasov-Poisson reference solver.

The paper's Sec. VII: "more accurate training data sets can be obtained
by running Vlasov codes that are not affected by the PIC numerical
noise."  This subpackage implements that future-work item: a
semi-Lagrangian (Cheng-Knorr split) Vlasov-Poisson solver on a fixed
phase-space grid, plus a harvester producing :class:`FieldDataset`
training pairs compatible with the DL solver pipeline.
"""

from repro.vlasov.solver import VlasovConfig, VlasovSimulation, two_stream_distribution
from repro.vlasov.ensemble import VlasovEnsemble, vlasov_config_from
from repro.vlasov.harvest import (
    expected_counts,
    harvest_vlasov_dataset,
    harvest_vlasov_ensemble,
)

__all__ = [
    "VlasovConfig",
    "VlasovSimulation",
    "VlasovEnsemble",
    "vlasov_config_from",
    "two_stream_distribution",
    "expected_counts",
    "harvest_vlasov_dataset",
    "harvest_vlasov_ensemble",
]
