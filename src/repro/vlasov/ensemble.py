"""Batch-native semi-Lagrangian Vlasov-Poisson ensemble.

:class:`VlasovEnsemble` advances a whole batch of independent
Vlasov-Poisson runs at once on a stacked ``(batch, n_v, n_x)``
phase-space state: the x-advection's interpolation weights are computed
once and gathered across the stack, each member's v-advection shifts by
its own field, and the two field solves of the Strang split batch
their FFTs through one :class:`~repro.pic.poisson.PoissonSolver` call.
Every per-element operation matches the solo
:class:`~repro.vlasov.solver.VlasovSimulation` exactly, so row ``b`` of
an ensemble is bitwise identical to running member ``b`` alone — which
is what lets the micro-batching service coalesce Vlasov requests with
the same result guarantees as the PIC families.

Members are plain :class:`~repro.config.SimulationConfig` runs with
``solver="vlasov"``: the grid maps ``n_cells -> n_x`` and the velocity
window comes from ``extra`` (``n_v``/``v_min``/``v_max``, see
:func:`repro.engines.base.vlasov_grid_params`); the initial state is
the scenario's registered noise-free distribution
(:func:`repro.pic.scenarios.load_distribution`).  Members may differ in
scenario, beam parameters and perturbations, but must agree on the
structural key (grid, window, ``dt``, ``qm``, Poisson discretization).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.config import SimulationConfig
from repro.engines.base import get_engine_spec, vlasov_grid_params
from repro.engines.observables import Frame, Observables, vlasov_observables
from repro.kernels import resolve_backend
from repro.pic.grid import Grid1D
from repro.pic.poisson import PoissonSolver
from repro.pic.scenarios import load_distribution
from repro.vlasov.solver import VlasovConfig


def vlasov_config_from(config: SimulationConfig) -> VlasovConfig:
    """The :class:`VlasovConfig` equivalent of a ``solver="vlasov"`` run.

    ``n_cells`` becomes the spatial grid ``n_x``; the velocity window
    comes from ``config.extra``.  Particle-only knobs (``ppc``,
    ``interpolation``, ``loading``, ``seed``) have no Vlasov meaning
    and are dropped.
    """
    n_v, v_min, v_max = vlasov_grid_params(config)
    return VlasovConfig(
        box_length=config.box_length,
        n_x=config.n_cells,
        n_v=n_v,
        v_min=v_min,
        v_max=v_max,
        dt=config.dt,
        n_steps=config.n_steps,
        v0=config.v0,
        vth=config.vth,
        qm=config.qm,
        perturbation=config.perturbation,
        perturbation_mode=config.perturbation_mode,
        poisson_solver=config.poisson_solver,
        gradient=config.gradient,
    )


class VlasovEnsemble:
    """Batched Strang-split Vlasov-Poisson integrator over stacked runs.

    Parameters
    ----------
    configs:
        One :class:`SimulationConfig` per member (or a single config
        for a batch of one); all members must share the Vlasov
        structural key.
    f0s:
        Optional ``(batch, n_v, n_x)`` initial distributions (or a
        sequence of ``(n_v, n_x)`` arrays); by default each member
        loads its scenario's registered noise-free distribution.

    The time stepping is the solo solver's classic split — half
    x-advection, field update + full v-advection, half x-advection —
    executed on the whole stack at once.
    """

    def __init__(
        self,
        configs: "SimulationConfig | Sequence[SimulationConfig]",
        f0s: "np.ndarray | Sequence[np.ndarray] | None" = None,
    ) -> None:
        if isinstance(configs, SimulationConfig):
            configs = (configs,)
        self.configs: "tuple[SimulationConfig, ...]" = tuple(configs)
        if not self.configs:
            raise ValueError("ensemble needs at least one configuration")
        structural_key = get_engine_spec("vlasov").structural_key
        ref = self.configs[0]
        ref_key = structural_key(ref)
        for i, cfg in enumerate(self.configs[1:], 1):
            if structural_key(cfg) != ref_key:
                raise ValueError(
                    f"ensemble member {i} differs from member 0 in the Vlasov "
                    f"structural key: {structural_key(cfg)!r} != {ref_key!r}"
                )
        self.config = ref  # structural reference member
        self.batch = len(self.configs)
        self.vconfig = vlasov_config_from(ref)
        vcfg = self.vconfig
        if f0s is None:
            rows = [load_distribution(cfg) for cfg in self.configs]
        else:
            stacked = np.asarray(f0s, dtype=np.float64)
            if stacked.ndim == 2:  # one (n_v, n_x) distribution for a batch of one
                stacked = stacked[None]
            rows = [np.array(row) for row in stacked]
            if len(rows) != self.batch:
                raise ValueError(f"got {len(rows)} initial distributions for batch {self.batch}")
        for i, row in enumerate(rows):
            if row.shape != (vcfg.n_v, vcfg.n_x):
                raise ValueError(
                    f"member {i} f0 has shape {row.shape}, expected {(vcfg.n_v, vcfg.n_x)}"
                )
        self.f: np.ndarray = np.stack(rows)
        self.grid = Grid1D(vcfg.n_x, vcfg.box_length)
        self.poisson = PoissonSolver(
            self.grid, method=vcfg.poisson_solver, gradient=vcfg.gradient
        )
        self._v_centers = vcfg.v_centers()
        # The x-advection shift is a function of the velocity row only:
        # one weight/index computation serves the whole stack and every
        # step, so the interpolation weights and the (flattened) gather
        # indices are frozen here once.  The gathered elements and the
        # arithmetic are exactly the solo shift's, so rows stay bitwise
        # identical to solo runs.
        self._v_shift = self._v_centers * (0.5 * vcfg.dt) / vcfg.dx
        cols = np.arange(vcfg.n_x)[None, :] - self._v_shift[:, None]
        base = np.floor(cols).astype(np.int64)
        self._xadv_w = cols - base
        rows = np.arange(vcfg.n_v)[:, None]
        member = (np.arange(self.batch, dtype=np.int64) * (vcfg.n_v * vcfg.n_x))[:, None, None]
        self._xadv_flat0 = (member + (rows * vcfg.n_x + base % vcfg.n_x)[None]).reshape(
            self.batch, vcfg.n_v, vcfg.n_x
        )
        self._xadv_flat1 = (member + (rows * vcfg.n_x + (base + 1) % vcfg.n_x)[None]).reshape(
            self.batch, vcfg.n_v, vcfg.n_x
        )
        self._v_rows = np.arange(vcfg.n_v, dtype=np.float64)[None, :, None]
        # Flat-gather offset of the v-advection: member base + column.
        self._v_flat_offset = (
            (np.arange(self.batch, dtype=np.int64) * (vcfg.n_v * vcfg.n_x))[:, None, None]
            + np.arange(vcfg.n_x, dtype=np.int64)[None, None, :]
        )
        # The numerical tier: indices and weights are always derived in
        # double (exact), then the state and every stencil operand the
        # advections touch are cast down for float32 runs — after which
        # the whole split cycle (gathers, stencil arithmetic, FFTs) runs
        # in single precision.  float64 runs are untouched.
        self._dtype = ref.np_dtype
        if self._dtype == np.float32:
            self.f = self.f.astype(np.float32)
            self._v_centers = self._v_centers.astype(np.float32)
            self._xadv_w = self._xadv_w.astype(np.float32)
            self._v_rows = self._v_rows.astype(np.float32)
        # The kernel backend tier: every advection is a slab function
        # over contiguous batch rows, so a parallel backend chunks the
        # stack while reproducing the reference bit pattern (each row's
        # gathers and arithmetic are independent of the slab bounds).
        self._backend = resolve_backend(ref.backend)
        self.time: float = 0.0
        self.step_index: int = 0
        self.efield: np.ndarray = self._solve_field()

    # -- field and moments ----------------------------------------------
    def density(self) -> np.ndarray:
        """Per-member electron density ``n(x) = integral(f dv)``, ``(batch, n_x)``."""
        return np.sum(self.f, axis=1) * self.vconfig.dv

    def _solve_field(self) -> np.ndarray:
        """One batched Poisson solve for every member's field."""
        rho = -self.density() + 1.0  # electrons (q = -1) + ion background
        _, e = self.poisson.solve(rho)
        return e

    def mass(self) -> np.ndarray:
        """Per-member phase-space mass, ``(batch,)``."""
        return np.sum(self.f, axis=(1, 2)) * self.vconfig.dx * self.vconfig.dv

    def observables(self, record_fields: bool = False) -> Observables:
        """A fresh default observables recorder for this engine."""
        return Observables(vlasov_observables(record_fields=record_fields))

    # -- time stepping ---------------------------------------------------
    def _advect_x(self, f: np.ndarray) -> np.ndarray:
        """Batched half x-advection using the frozen gather indices.

        Gathers the same elements and applies the same per-element
        arithmetic as :func:`~repro.vlasov.solver._shift_periodic_rows`
        on each member — bitwise identical per row — but the gathers run
        as one flat take per stack and the index math is paid once at
        construction instead of every call.
        """
        flat = f.reshape(-1)
        w = self._xadv_w
        out = np.empty_like(f)

        def slab(lo: int, hi: int) -> None:
            g0 = flat.take(self._xadv_flat0[lo:hi])
            g1 = flat.take(self._xadv_flat1[lo:hi])
            out[lo:hi] = (1.0 - w) * g0 + w * g1

        self._backend.run_rows(self.batch, slab)
        return out

    def _advect_v(self, f: np.ndarray, shift: np.ndarray) -> np.ndarray:
        """Batched full v-advection (zero inflow), one flat gather per arm.

        Bitwise identical per row to
        :func:`~repro.vlasov.solver._shift_clamped_columns` with each
        member's own ``(n_x,)`` shift.  The zero-inflow clamp can only
        engage within ``max|shift|`` rows of the window edges, so the
        rows are split into an interior slab — gathered with no masks,
        no clips — and two thin boundary slabs that run the fully
        clamped arithmetic.  Within the interior both gather arms are
        valid, where the clamped path reduces to exactly the same
        ``(1-w)*f0 + w*f1`` on exactly the same gathered elements.
        """
        vcfg = self.vconfig
        n_v, n_x = vcfg.n_v, vcfg.n_x
        flat = f.reshape(-1)
        # Interior rows r satisfy floor(r - s) in [0, n_v-2] for every
        # member's shift s at every column: r >= max(s) and r < n_v-1+min(s).
        # Derived from the *whole* stack's shift so chunked backends see
        # the same slab bounds as the reference (bitwise invariance).
        r0 = min(max(0, int(np.ceil(shift.max()))), n_v)
        r1 = max(r0, min(n_v, int(np.ceil(n_v - 1 + shift.min()))))
        out = np.empty_like(f)
        v_rows = self._v_rows

        def _weights(pos: np.ndarray, base: np.ndarray) -> np.ndarray:
            # float32 - int64 would promote to float64; keep the tier's
            # dtype (the float64 path is the historical expression).
            return pos - (base if pos.dtype == np.float64 else base.astype(pos.dtype))

        def slab(blo: int, bhi: int) -> None:
            sh = shift[blo:bhi, None, :]
            offs = self._v_flat_offset[blo:bhi]
            if r1 > r0:
                pos = v_rows[:, r0:r1] - sh
                base = np.floor(pos).astype(np.int64)
                w = _weights(pos, base)
                gidx = base * n_x + offs
                f0 = flat.take(gidx)
                f1 = flat.take(gidx + n_x)
                out[blo:bhi, r0:r1] = (1.0 - w) * f0 + w * f1
            for lo, hi in ((0, r0), (r1, n_v)):
                if lo >= hi:
                    continue
                pos = v_rows[:, lo:hi] - sh
                base = np.floor(pos).astype(np.int64)
                w = _weights(pos, base)
                valid0 = (base >= 0) & (base < n_v)
                valid1 = (base + 1 >= 0) & (base + 1 < n_v)
                g0 = flat.take(np.clip(base, 0, n_v - 1) * n_x + offs)
                g1 = flat.take(np.clip(base + 1, 0, n_v - 1) * n_x + offs)
                f0 = np.where(valid0, g0, 0.0)
                f1 = np.where(valid1, g1, 0.0)
                out[blo:bhi, lo:hi] = (1.0 - w) * f0 + w * f1

        self._backend.run_rows(self.batch, slab)
        return out

    def step(self) -> None:
        """One batched Strang-split step: x half, v full, x half."""
        vcfg = self.vconfig
        self.f = self._advect_x(self.f)
        self.efield = self._solve_field()
        a_shift = vcfg.qm * self.efield * vcfg.dt / vcfg.dv  # (batch, n_x)
        self.f = self._advect_v(self.f, a_shift)
        self.f = self._advect_x(self.f)
        self.efield = self._solve_field()
        self.time += vcfg.dt
        self.step_index += 1

    def run(
        self,
        n_steps: "int | None" = None,
        history: "Observables | None" = None,
        callback: "Callable[[VlasovEnsemble], None] | None" = None,
    ) -> Observables:
        """Run ``n_steps`` split steps, recording batched observables.

        The recorder includes the initial state, so it holds
        ``n_steps + 1`` records of ``(batch,)`` vectors — the same
        schema as the PIC ensembles.  ``callback`` fires after every
        step (used by the Vlasov data harvest).
        """
        if n_steps is None:
            if any(cfg.n_steps != self.config.n_steps for cfg in self.configs):
                raise ValueError(
                    "ensemble members disagree on config.n_steps; "
                    "pass n_steps to run() explicitly"
                )
            n = self.config.n_steps
        else:
            n = n_steps
        if n < 0:
            raise ValueError(f"n_steps must be non-negative, got {n}")
        hist = history if history is not None else self.observables()
        hist.reserve(len(hist) + n + 1)
        self._record(hist)
        for _ in range(n):
            self.step()
            self._record(hist)
            if callback is not None:
                callback(self)
        return hist

    def _record(self, hist: Observables) -> None:
        vcfg = self.vconfig
        hist.record_frame(Frame(
            self.step_index, self.time, self.grid, self.efield,
            f=self.f, v_centers=self._v_centers, dx=vcfg.dx, dv=vcfg.dv,
        ))
