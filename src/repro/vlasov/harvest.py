"""Harvest noise-free training data from Vlasov-Poisson runs.

The DL solver consumes phase-space *particle counts*; a Vlasov solution
is a smooth density.  ``expected_counts`` converts the distribution to
the expected NGP histogram a PIC run with ``n_particles`` macro
particles would produce, so Vlasov-generated pairs slot into the same
training pipeline (the paper's proposed noise-free data source).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.datagen.dataset import FieldDataset
from repro.phasespace.binning import PhaseSpaceGrid
from repro.vlasov.solver import VlasovConfig, VlasovSimulation

if TYPE_CHECKING:
    from repro.config import SimulationConfig


def _coarsen(f: np.ndarray, factor_v: int, factor_x: int) -> np.ndarray:
    """Block-sum coarsening of a phase-space density (mass-weighted)."""
    n_v, n_x = f.shape
    return (
        f.reshape(n_v // factor_v, factor_v, n_x // factor_x, factor_x).sum(axis=(1, 3))
    )


def expected_counts(
    f: np.ndarray,
    config: VlasovConfig,
    ps_grid: PhaseSpaceGrid,
    n_particles: int,
) -> np.ndarray:
    """Expected per-bin particle counts of an equivalent PIC ensemble.

    The distribution is normalized to mean density 1, so its total mass
    is ``L`` and the expected count in a phase-space cell of mass ``m``
    is ``n_particles * m / L``.  The Vlasov grid must tile the
    histogram grid (equal or integer-multiple resolution, same window).
    """
    if n_particles < 1:
        raise ValueError(f"n_particles must be >= 1, got {n_particles}")
    if config.n_v % ps_grid.n_v or config.n_x % ps_grid.n_x:
        raise ValueError(
            f"Vlasov grid {(config.n_v, config.n_x)} does not tile histogram grid "
            f"{ps_grid.shape}"
        )
    if (
        abs(config.v_min - ps_grid.v_min) > 1e-12
        or abs(config.v_max - ps_grid.v_max) > 1e-12
        or abs(config.box_length - ps_grid.box_length) > 1e-12
    ):
        raise ValueError("Vlasov and histogram phase-space windows differ")
    cell_mass = np.asarray(f, dtype=np.float64) * config.dx * config.dv
    coarse = _coarsen(cell_mass, config.n_v // ps_grid.n_v, config.n_x // ps_grid.n_x)
    return coarse * (n_particles / config.box_length)


def harvest_vlasov_dataset(
    config: VlasovConfig,
    ps_grid: PhaseSpaceGrid,
    n_particles: int,
    n_steps: "int | None" = None,
    stride: int = 1,
) -> FieldDataset:
    """Run a Vlasov simulation and emit (expected-count, field) pairs.

    ``stride`` keeps every ``stride``-th step (Vlasov runs typically use
    smaller time steps than the PIC campaign).
    """
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    sim = VlasovSimulation(config)
    n = config.n_steps if n_steps is None else n_steps
    inputs: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    steps: list[int] = []
    inputs.append(expected_counts(sim.f, config, ps_grid, n_particles))
    targets.append(sim.efield.copy())
    steps.append(0)
    for i in range(1, n + 1):
        sim.step()
        if i % stride == 0:
            inputs.append(expected_counts(sim.f, config, ps_grid, n_particles))
            targets.append(sim.efield.copy())
            steps.append(i)
    n_kept = len(inputs)
    params = np.column_stack(
        [
            np.full(n_kept, config.v0),
            np.full(n_kept, config.vth),
            np.full(n_kept, -1.0),  # seed sentinel: deterministic Vlasov run
            np.asarray(steps, dtype=np.float64),
        ]
    )
    return FieldDataset(
        inputs=np.stack(inputs), targets=np.stack(targets), params=params, ps_grid=ps_grid
    )


def harvest_vlasov_ensemble(
    configs: "Sequence[SimulationConfig]",
    ps_grid: PhaseSpaceGrid,
    n_particles: int,
    stride: int = 1,
) -> FieldDataset:
    """Harvest (expected-count, field) pairs from one batched Vlasov run.

    All ``configs`` (``solver="vlasov"`` :class:`SimulationConfig`
    runs, possibly of different scenarios) advance together through one
    :class:`~repro.vlasov.ensemble.VlasovEnsemble` built by the engine
    registry — one batched advection/Poisson pass per step for the
    whole sweep.  Pairs are bitwise identical to harvesting each
    member's solo run and come back in run-major order, mirroring the
    PIC campaign's :func:`repro.datagen.campaign.harvest_ensemble`.
    """
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    from repro.engines.base import make_engine

    configs = list(configs)
    if not configs:
        raise ValueError("ensemble harvest needs at least one configuration")
    n_steps = configs[0].n_steps
    if any(cfg.n_steps != n_steps for cfg in configs):
        raise ValueError("ensemble harvest needs a uniform n_steps across configs")
    sim = make_engine([cfg.with_updates(solver="vlasov") for cfg in configs])
    vconfig = sim.vconfig
    batch = sim.batch
    inputs: list[list[np.ndarray]] = [[] for _ in range(batch)]
    targets: list[list[np.ndarray]] = [[] for _ in range(batch)]
    steps: list[int] = []

    def collect() -> None:
        for b in range(batch):
            inputs[b].append(expected_counts(sim.f[b], vconfig, ps_grid, n_particles))
            targets[b].append(sim.efield[b].copy())

    collect()
    steps.append(0)
    for i in range(1, n_steps + 1):
        sim.step()
        if i % stride == 0:
            collect()
            steps.append(i)

    step_col = np.asarray(steps, dtype=np.float64)
    n_kept = step_col.size
    parts = [
        FieldDataset(
            inputs=np.stack(inputs[b]),
            targets=np.stack(targets[b]),
            params=np.column_stack(
                [
                    np.full(n_kept, cfg.v0),
                    np.full(n_kept, cfg.vth),
                    np.full(n_kept, -1.0),  # seed sentinel: deterministic run
                    step_col,
                ]
            ),
            ps_grid=ps_grid,
        )
        for b, cfg in enumerate(configs)
    ]
    return FieldDataset.concatenate(parts)
