"""Semi-Lagrangian Vlasov-Poisson solver (Cheng & Knorr splitting).

Evolves the electron distribution ``f(x, v, t)`` on a fixed
``(n_v, n_x)`` phase-space grid under

.. math::
    \\partial_t f + v \\partial_x f + (q/m) E \\partial_v f = 0,

coupled to the same Poisson solve as the PIC code.  One time step is
the classic Strang split: half x-advection, E update + full
v-advection, half x-advection.  Advections are exact shifts along grid
lines evaluated with (vectorized) linear interpolation — periodic in
``x``, zero-inflow in ``v``.

Unlike PIC, the solution carries no particle shot noise, which is what
makes it attractive as a training-data source.

This solo solver always runs the float64 numpy reference path; the
speed tiers — ``dtype="float32"`` and the kernel ``backend`` knob —
live on :class:`repro.vlasov.ensemble.VlasovEnsemble`, whose rows are
bitwise identical to this solver in the default tier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.engines.observables import Frame, Observables, vlasov_observables
from repro.pic.grid import Grid1D
from repro.pic.poisson import PoissonSolver


@dataclass(frozen=True)
class VlasovConfig:
    """Parameters of a Vlasov-Poisson two-stream run."""

    box_length: float = constants.TWO_STREAM_BOX_LENGTH
    n_x: int = 64
    n_v: int = 128
    v_min: float = -0.5
    v_max: float = 0.5
    dt: float = 0.1
    n_steps: int = 400
    v0: float = constants.PAPER_VALIDATION_V0
    vth: float = constants.PAPER_VALIDATION_VTH
    qm: float = constants.ELECTRON_QM
    perturbation: float = 1e-3
    perturbation_mode: int = 1
    poisson_solver: str = "spectral"
    gradient: str = "central"

    def __post_init__(self) -> None:
        if self.vth <= 0:
            raise ValueError(
                f"Vlasov two-stream loading needs vth > 0 (a cold delta beam is not "
                f"representable on a velocity grid), got {self.vth}"
            )
        if self.n_x < 2 or self.n_v < 2:
            raise ValueError(f"grid too small: ({self.n_x}, {self.n_v})")
        if self.v_max <= self.v_min:
            raise ValueError(f"empty velocity window [{self.v_min}, {self.v_max}]")
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")

    @property
    def dx(self) -> float:
        """Spatial grid spacing."""
        return self.box_length / self.n_x

    @property
    def dv(self) -> float:
        """Velocity grid spacing."""
        return (self.v_max - self.v_min) / self.n_v

    def x_centers(self) -> np.ndarray:
        """Spatial cell centers (f is cell-centered in x)."""
        return (np.arange(self.n_x) + 0.5) * self.dx

    def v_centers(self) -> np.ndarray:
        """Velocity cell centers."""
        return self.v_min + (np.arange(self.n_v) + 0.5) * self.dv


def two_stream_distribution(config: VlasovConfig) -> np.ndarray:
    """Initial two-stream distribution on the phase-space grid.

    Two Maxwellian beams at ``+/-v0`` with thermal spread ``vth`` and a
    seeded density perturbation ``1 + eps*cos(m k1 x)``; normalized so
    the mean electron density is 1 (total phase-space mass ``L``).
    """
    x = config.x_centers()
    v = config.v_centers()
    gauss = lambda u: np.exp(-0.5 * (u / config.vth) ** 2)  # noqa: E731
    fv = 0.5 * (gauss(v - config.v0) + gauss(v + config.v0))
    norm = np.sum(fv) * config.dv
    if norm <= 0:
        raise ValueError("velocity window does not contain the beams")
    fv = fv / norm
    k = 2.0 * np.pi * config.perturbation_mode / config.box_length
    fx = 1.0 + config.perturbation * np.cos(k * x)
    return fv[:, None] * fx[None, :]


def _shift_periodic_rows(f: np.ndarray, shift_cells: np.ndarray) -> np.ndarray:
    """Shift each row ``j`` of ``f`` by ``shift_cells[j]`` (periodic, linear).

    ``f`` is ``(n_v, n_x)`` or stacked ``(batch, n_v, n_x)``; the shift
    (the x-advection, a function of the velocity row only) is shared by
    every stacked member.  The interpolation weights and gather indices
    are computed once per call and applied to the whole stack, and the
    per-element arithmetic is identical either way — row ``b`` of a
    batched shift is bitwise equal to shifting member ``b`` alone.
    """
    n_v, n_x = f.shape[-2:]
    cols = np.arange(n_x)[None, :] - shift_cells[:, None]
    base = np.floor(cols).astype(np.int64)
    w = cols - base
    rows = np.arange(n_v)[:, None]
    if f.ndim == 2:
        return (1.0 - w) * f[rows, base % n_x] + w * f[rows, (base + 1) % n_x]
    # Index the member axis explicitly: an all-advanced-index gather
    # returns a fresh C-contiguous array, keeping every downstream
    # reduction's traversal order (and hence its bits) independent of
    # the batch size.
    member = np.arange(f.shape[0])[:, None, None]
    return (1.0 - w) * f[member, rows, base % n_x] + w * f[member, rows, (base + 1) % n_x]


def _shift_clamped_columns(f: np.ndarray, shift_cells: np.ndarray) -> np.ndarray:
    """Shift each column ``i`` by ``shift_cells[i]`` (zero inflow, linear).

    ``f`` is ``(n_v, n_x)`` with ``(n_x,)`` shifts, or stacked
    ``(batch, n_v, n_x)`` with per-member ``(batch, n_x)`` shifts (the
    v-advection depends on each member's own field).  Row ``b`` of a
    batched shift is bitwise equal to the member's solo shift.
    """
    n_v, n_x = f.shape[-2:]
    shift = np.asarray(shift_cells)
    rows = np.arange(n_v)[:, None] - shift[..., None, :]
    base = np.floor(rows).astype(np.int64)
    w = rows - base
    cols = np.arange(n_x)[None, :]
    valid0 = (base >= 0) & (base < n_v)
    valid1 = (base + 1 >= 0) & (base + 1 < n_v)
    if f.ndim == 2:
        gather0 = f[np.clip(base, 0, n_v - 1), cols]
        gather1 = f[np.clip(base + 1, 0, n_v - 1), cols]
    else:
        member = np.arange(f.shape[0])[:, None, None]
        gather0 = f[member, np.clip(base, 0, n_v - 1), cols]
        gather1 = f[member, np.clip(base + 1, 0, n_v - 1), cols]
    f0 = np.where(valid0, gather0, 0.0)
    f1 = np.where(valid1, gather1, 0.0)
    return (1.0 - w) * f0 + w * f1


class VlasovSimulation:
    """Time integrator for the Vlasov-Poisson two-stream problem.

    Diagnostics stream through the shared
    :class:`~repro.engines.observables.Observables` pipeline (the same
    scalar series — and the same ``as_arrays`` contract — as every PIC
    engine); ``history`` is that recorder and :meth:`run` returns it.
    """

    def __init__(self, config: VlasovConfig, f0: "np.ndarray | None" = None) -> None:
        self.config = config
        self.grid = Grid1D(config.n_x, config.box_length)
        self.poisson = PoissonSolver(
            self.grid, method=config.poisson_solver, gradient=config.gradient
        )
        self.f = two_stream_distribution(config) if f0 is None else np.array(f0, dtype=np.float64)
        if self.f.shape != (config.n_v, config.n_x):
            raise ValueError(
                f"f has shape {self.f.shape}, expected {(config.n_v, config.n_x)}"
            )
        self.time = 0.0
        self.step_index = 0
        self.efield = self._solve_field()
        self._v_centers = config.v_centers()
        self.history = self.observables()
        self._record()

    def observables(self) -> Observables:
        """A fresh default observables recorder for this single run."""
        return Observables(vlasov_observables(), squeeze=True)

    # -- field and moments ----------------------------------------------
    def density(self) -> np.ndarray:
        """Electron number density ``n(x) = integral(f dv)``."""
        return np.sum(self.f, axis=0) * self.config.dv

    def _solve_field(self) -> np.ndarray:
        rho = -self.density() + 1.0  # electrons (q = -1) + ion background
        _, e = self.poisson.solve(rho)
        return e

    def kinetic_energy(self) -> float:
        """``integral(v^2/2 f dx dv)`` (electron mass 1)."""
        v = self.config.v_centers()
        return float(
            0.5 * np.sum(self.f * (v**2)[:, None]) * self.config.dx * self.config.dv
        )

    def field_energy(self) -> float:
        """``(1/2) integral(E^2 dx)``."""
        return float(0.5 * np.sum(self.efield**2) * self.config.dx)

    def momentum(self) -> float:
        """``integral(v f dx dv)``."""
        v = self.config.v_centers()
        return float(np.sum(self.f * v[:, None]) * self.config.dx * self.config.dv)

    def mass(self) -> float:
        """Total phase-space mass (conserved up to v-window outflow)."""
        return float(np.sum(self.f) * self.config.dx * self.config.dv)

    def _record(self) -> None:
        self.history.record_frame(Frame(
            self.step_index, self.time, self.grid, self.efield,
            f=self.f, v_centers=self._v_centers,
            dx=self.config.dx, dv=self.config.dv,
        ))

    # -- time stepping ----------------------------------------------------
    def step(self) -> None:
        """One Strang-split step: x half, v full, x half."""
        cfg = self.config
        v_shift = cfg.v_centers() * (0.5 * cfg.dt) / cfg.dx
        self.f = _shift_periodic_rows(self.f, v_shift)
        self.efield = self._solve_field()
        a_shift = cfg.qm * self.efield * cfg.dt / cfg.dv
        self.f = _shift_clamped_columns(self.f, a_shift)
        self.f = _shift_periodic_rows(self.f, v_shift)
        self.efield = self._solve_field()
        self.time += cfg.dt
        self.step_index += 1
        self._record()

    def run(self, n_steps: "int | None" = None) -> Observables:
        """Advance ``n_steps`` and return the accumulated observables.

        The return value satisfies the shared engine contract:
        ``as_arrays()`` (or plain ``history["mode1"]`` indexing) yields
        the same scalar series every PIC engine records.
        """
        n = self.config.n_steps if n_steps is None else n_steps
        if n < 0:
            raise ValueError(f"n_steps must be non-negative, got {n}")
        self.history.reserve(len(self.history) + n)
        for _ in range(n):
            self.step()
        return self.history
