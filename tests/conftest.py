"""Shared fixtures: tiny simulation configs and a cheaply trained solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.datagen.campaign import harvest_simulation
from repro.dlpic.solver import DLFieldSolver
from repro.models.architectures import build_mlp
from repro.nn.losses import MSELoss
from repro.nn.optimizers import Adam
from repro.nn.training import Trainer
from repro.phasespace.binning import PhaseSpaceGrid
from repro.phasespace.normalization import MinMaxNormalizer


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_config() -> SimulationConfig:
    """A very small but physically valid two-stream setup."""
    return SimulationConfig(
        n_cells=32,
        particles_per_cell=40,
        n_steps=10,
        v0=0.2,
        vth=0.01,
        seed=7,
    )


@pytest.fixture(scope="session")
def tiny_ps_grid() -> PhaseSpaceGrid:
    """Small phase-space grid compatible with the CNN (divisible by 4)."""
    return PhaseSpaceGrid(n_x=16, n_v=8)


@pytest.fixture(scope="session")
def tiny_trained_solver(tiny_ps_grid: PhaseSpaceGrid) -> DLFieldSolver:
    """A real (if weak) DL field solver trained in ~2 seconds.

    Session-scoped: several integration tests reuse it.  Trained on one
    short traditional simulation so predictions have the right scale.
    """
    config = SimulationConfig(
        n_cells=32, particles_per_cell=60, n_steps=40, v0=0.2, vth=0.01, seed=3
    )
    data = harvest_simulation(config, tiny_ps_grid, binning="ngp")
    normalizer = MinMaxNormalizer().fit(data.inputs)
    model = build_mlp(
        input_size=tiny_ps_grid.size, output_size=config.n_cells, hidden_size=48,
        n_hidden=2, rng=0,
    )
    trainer = Trainer(model, MSELoss(), Adam(lr=1e-3))
    trainer.fit(
        normalizer.transform(data.flat_inputs()), data.targets,
        epochs=30, batch_size=16, rng=0,
    )
    return DLFieldSolver(model, tiny_ps_grid, normalizer, input_kind="flat", binning="ngp")


@pytest.fixture(scope="session")
def tiny_solver_config() -> SimulationConfig:
    """The simulation configuration matching ``tiny_trained_solver``."""
    return SimulationConfig(
        n_cells=32, particles_per_cell=60, n_steps=40, v0=0.2, vth=0.01, seed=11
    )
