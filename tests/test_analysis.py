"""ASCII rendering and report generation."""

import json

import numpy as np
import pytest

from repro.analysis.render import render_phase_space, render_series
from repro.analysis.report import build_report
from repro.phasespace.binning import PhaseSpaceGrid


class TestRenderPhaseSpace:
    def test_two_beams_render_as_two_bands(self):
        n = 2000
        x = np.linspace(0, 2.0, n, endpoint=False)
        v = np.where(np.arange(n) % 2 == 0, 0.2, -0.2)
        grid = PhaseSpaceGrid(n_x=32, n_v=8, box_length=2.0, v_min=-0.4, v_max=0.4)
        art = render_phase_space(x, v, grid=grid)
        rows = [line for line in art.splitlines() if "|" in line]
        dense = [r for r in rows if "@" in r]
        assert len(dense) == 2  # exactly the two beam rows saturate

    def test_auto_grid_from_box_length(self):
        rng = np.random.default_rng(0)
        art = render_phase_space(
            rng.uniform(0, 2, 500), rng.normal(0, 0.1, 500),
            box_length=2.0, width=20, height=6,
        )
        assert art.count("\n") >= 6

    def test_velocity_axis_increases_upward(self):
        grid = PhaseSpaceGrid(n_x=4, n_v=4, box_length=1.0, v_min=-1.0, v_max=1.0)
        art = render_phase_space(np.array([0.5]), np.array([0.75]), grid=grid)
        lines = art.splitlines()
        assert "@" in lines[0]  # highest-velocity row is printed first

    def test_title_included(self):
        art = render_phase_space(
            np.array([0.1]), np.array([0.0]), box_length=1.0, title="Phase space"
        )
        assert art.startswith("Phase space")

    def test_requires_grid_or_box_length(self):
        with pytest.raises(ValueError):
            render_phase_space(np.array([0.1]), np.array([0.0]))

    def test_raster_size_validation(self):
        with pytest.raises(ValueError):
            render_phase_space(np.array([0.1]), np.array([0.0]),
                               box_length=1.0, width=1)


class TestRenderSeries:
    def test_monotone_series_rises_left_to_right(self):
        t = np.linspace(0, 10, 50)
        art = render_series(t, t + 1.0, width=20, height=8)
        lines = [l for l in art.splitlines() if "|" in l]
        first_star_row = next(i for i, l in enumerate(lines) if "*" in l)
        # The last column's star is in the top row; the first column's near bottom.
        assert "*" in lines[0]
        assert "*" in lines[-1]
        assert first_star_row == 0

    def test_logscale_exponential_is_straight(self):
        t = np.linspace(0, 10, 100)
        y = 1e-4 * np.exp(0.5 * t)
        art = render_series(t, y, logscale=True, width=30, height=10)
        assert "1e" in art  # log-axis labels

    def test_logscale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            render_series(np.arange(3.0), np.array([1.0, 0.0, 2.0]), logscale=True)

    def test_constant_series(self):
        art = render_series(np.arange(5.0), np.full(5, 2.0))
        assert "*" in art

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            render_series(np.arange(3.0), np.arange(4.0))
        with pytest.raises(ValueError):
            render_series(np.arange(2.0), np.arange(2.0), height=1)


class TestReport:
    @pytest.fixture
    def results(self, tmp_path):
        (tmp_path / "table1.json").write_text(json.dumps({
            "MLP-I": {"mae": 0.004, "max_error": 0.1},
            "CNN-I": {"mae": 0.005, "max_error": 0.06},
        }))
        (tmp_path / "fig4.json").write_text(json.dumps({
            "gamma_theory": 0.3536, "gamma_traditional": 0.33, "gamma_dl": 0.32,
            "r2_traditional": 0.96, "r2_dl": 0.96,
            "e1_max_traditional": 0.14, "e1_max_dl": 0.10,
        }))
        return tmp_path

    def test_builds_sections_for_available_results(self, results):
        report = build_report(results)
        assert "# Reproduction report" in report
        assert "Table I" in report
        assert "Fig. 4" in report
        assert "Fig. 5" not in report  # no fig5.json present

    def test_paper_values_included(self, results):
        report = build_report(results)
        assert "0.0019" in report  # paper MLP-I MAE

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            build_report(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(ValueError, match="no benchmark results"):
            build_report(tmp_path)

    def test_custom_title(self, results):
        assert build_report(results, title="My run").startswith("# My run")
