"""Public API v1: envelope schema, Client façade, dtype tier."""

import numpy as np
import pytest

from repro.api import (
    API_VERSION,
    FAILURE_STATUSES,
    RESULT_STATUSES,
    ApiError,
    Client,
    RunRequest,
    RunResult,
)
from repro.config import SimulationConfig
from repro.engines.observables import canonical_observables
from repro.service import read_requests
from repro.service.store import ResultStore, result_key


@pytest.fixture
def config():
    return SimulationConfig(n_cells=16, particles_per_cell=20, n_steps=4, vth=0.02)


def small_client(**kwargs):
    return Client(background=False, **kwargs)


class TestRunRequestSchema:
    def test_exact_round_trip(self, config):
        req = RunRequest(
            config=config, id="r-1", observables=["mode3", "energies"],
            phase_space=True, metadata={"origin": "test", "n": 2},
            tags=("nightly", "smoke"),
        )
        assert RunRequest.from_dict(req.to_dict()) == req

    def test_minimal_round_trip(self, config):
        req = RunRequest(config=config, id="x")
        out = req.to_dict()
        assert out["api_version"] == API_VERSION
        assert "observables" not in out  # default selection stays implicit
        assert RunRequest.from_dict(out) == req

    def test_unknown_version_rejected(self, config):
        with pytest.raises(ValueError, match="api_version"):
            RunRequest.from_dict({"api_version": "v2", "config": {}})
        with pytest.raises(ValueError, match="api_version"):
            RunRequest(config=config, api_version="v0")

    def test_missing_version_rejected(self):
        with pytest.raises(ValueError, match="api_version"):
            RunRequest.from_dict({"config": {"v0": 0.2}})

    def test_unknown_envelope_key_rejected(self):
        with pytest.raises(ValueError, match="unknown envelope key"):
            RunRequest.from_dict(
                {"api_version": "v1", "config": {}, "observable": ["energies"]}
            )

    def test_reserved_keys_rejected_inside_config(self):
        for key in ("id", "api_version", "observables", "metadata", "tags"):
            with pytest.raises(ValueError, match="reserved envelope key"):
                RunRequest.from_dict(
                    {"api_version": "v1", "config": {key: "x"}}
                )

    def test_unknown_observable_rejected(self, config):
        with pytest.raises(ValueError, match="unknown observable"):
            RunRequest(config=config, observables=["wavelets"])

    def test_family_incompatible_observable_rejected(self, config):
        with pytest.raises(ValueError, match="vlasov"):
            RunRequest(config=config, observables=["phase_space"])

    def test_observables_canonicalized(self, config):
        a = RunRequest(config=config, id="a", observables=["mode1", "energies"])
        b = RunRequest(config=config, id="a",
                       observables=["energies", {"name": "mode", "mode": 1}])
        assert a.observables == b.observables
        assert a == b

    def test_dtype_shorthand_folds_into_config(self):
        req = RunRequest.from_dict(
            {"api_version": "v1", "config": {"v0": 0.25}, "dtype": "float32"}
        )
        assert req.config.dtype == "float32"

    def test_contradicting_dtype_rejected(self):
        with pytest.raises(ValueError, match="contradicts"):
            RunRequest.from_dict({
                "api_version": "v1",
                "config": {"dtype": "float64"}, "dtype": "float32",
            })

    def test_float32_unsupported_families_fail_at_construction(self, config):
        # The registry-derived error names the family's supported tiers
        # and which families do offer the requested one.
        with pytest.raises(ValueError, match="float64"):
            RunRequest(config=config.with_updates(solver="energy", dtype="float32"))
        with pytest.raises(ValueError, match="is available for"):
            RunRequest(config=config.with_updates(solver="mpi", dtype="float32"))

    def test_unsupported_backend_fails_at_construction(self, config):
        with pytest.raises(ValueError, match="kernel backend"):
            RunRequest(config=config.with_updates(solver="energy", backend="threaded"))

    def test_metadata_and_tags_validated(self, config):
        with pytest.raises(ValueError, match="metadata"):
            RunRequest(config=config, metadata=[1, 2])
        with pytest.raises(ValueError, match="tags"):
            RunRequest(config=config, tags="not-a-list")

    def test_wire_path_validates_like_construction(self, config):
        base = {"api_version": "v1", "config": {"v0": 0.2}}
        with pytest.raises(ValueError, match="tags"):
            RunRequest.from_dict({**base, "tags": "nightly"})
        with pytest.raises(ValueError, match="phase_space"):
            RunRequest.from_dict({**base, "phase_space": "false"})

    def test_unhashable_observable_params_rejected(self, config):
        with pytest.raises(ValueError, match="JSON scalar"):
            RunRequest(config=config,
                       observables=[{"name": "mode", "mode": [1, 2]}])


class TestLegacyLines:
    def test_legacy_line_hard_errors_naming_the_envelope(self):
        with pytest.raises(ValueError, match="legacy bare-config") as excinfo:
            read_requests(['{"v0": 0.3, "id": "legacy"}'])
        assert "v1 envelope" in str(excinfo.value)
        assert "line 1" in str(excinfo.value)

    def test_v1_line_round_trips_through_jsonl(self, config):
        import json

        req = RunRequest(config=config, id="j", observables=["energies", "mode2"])
        parsed = read_requests([json.dumps(req.to_dict())])
        assert parsed[0] == req


class TestResultKeys:
    def test_float32_separates_from_float64(self, config):
        k64 = result_key(config, "traditional")
        k32 = result_key(config.with_updates(dtype="float32"), "traditional")
        assert k64 != k32

    def test_default_observables_keep_legacy_key(self, config):
        bare = result_key(config, "traditional")
        explicit = result_key(config, "traditional",
                              observables=["energies", "mode1"])
        assert bare == explicit

    def test_non_default_observables_change_key(self, config):
        bare = result_key(config, "traditional")
        custom = result_key(config, "traditional", observables=["energies"])
        assert bare != custom

    def test_phase_space_changes_key(self, config):
        assert result_key(config, "traditional") != result_key(
            config, "traditional", phase_space=True
        )

    def test_store_separates_dtypes(self, config, tmp_path):
        store = ResultStore(directory=tmp_path)
        with small_client(store=store) as client:
            r64 = client.run(RunRequest(config=config, id="a"))
            r32 = client.run(RunRequest(
                config=config.with_updates(dtype="float32"), id="b"))
            assert r64.key != r32.key
            assert (tmp_path / f"{r64.key}.npz").exists()
            assert (tmp_path / f"{r32.key}.npz").exists()
            # repeating either request hits its own slot
            again64 = client.run(RunRequest(config=config, id="c"))
            assert again64.cache_hit and again64.key == r64.key
            np.testing.assert_array_equal(
                np.asarray(again64.series["kinetic"]),
                np.asarray(r64.series["kinetic"]),
            )


class TestClient:
    def test_run_default_selection_matches_direct_engine(self, config):
        from repro.engines import make_engine

        with small_client() as client:
            result = client.run(RunRequest(config=config, id="r"))
        series = make_engine(config).run(config.n_steps).as_arrays()
        assert result.status == "ok"
        for name in ("time", "kinetic", "potential", "total", "momentum", "mode1"):
            want = series[name] if name == "time" else series[name][:, 0]
            np.testing.assert_array_equal(np.asarray(result.series[name]), want)

    def test_map_preserves_order_and_dedups(self, config):
        cfgs = [config.with_updates(seed=s) for s in (0, 1, 0)]
        with small_client() as client:
            results = client.map([RunRequest(config=c, id=f"r{i}")
                                  for i, c in enumerate(cfgs)])
        assert [r.id for r in results] == ["r0", "r1", "r2"]
        assert results[2].key == results[0].key
        assert results[2].submit_status in ("inflight", "cached")
        np.testing.assert_array_equal(
            np.asarray(results[2].series["mode1"]),
            np.asarray(results[0].series["mode1"]),
        )

    def test_custom_observables_selection(self, config):
        req = RunRequest(config=config, id="m",
                         observables=["mode2", "fields", "energies"])
        with small_client() as client:
            result = client.run(req)
        assert sorted(result.series) == [
            "fields", "kinetic", "mode2", "momentum", "potential", "time", "total",
        ]
        assert np.asarray(result.series["fields"]).shape == (
            config.n_steps + 1, config.n_cells
        )

    def test_phase_space_final_state(self, config):
        with small_client() as client:
            result = client.run(RunRequest(config=config, id="p", phase_space=True))
        assert result.final_x.shape == (config.n_particles,)
        assert result.final_v.shape == (config.n_particles,)

    def test_energy_family_served(self, config):
        req = RunRequest(config=config.with_updates(solver="energy"), id="e")
        with small_client() as client:
            result = client.run(req)
        assert result.solver == "energy"
        # The implicit midpoint scheme conserves energy tightly.
        assert result.energy_variation() < 5e-3

    def test_energy_family_row_matches_solo_run(self, config):
        from repro.pic.energy_conserving import EnergyConservingPIC

        cfg = config.with_updates(solver="energy")
        with small_client() as client:
            result = client.run(RunRequest(config=cfg, id="e"))
        solo = EnergyConservingPIC(cfg).run(config.n_steps)
        for name in ("kinetic", "total", "mode1"):
            np.testing.assert_array_equal(
                np.asarray(result.series[name]), np.asarray(solo[name])
            )

    def test_error_travels_as_error_result(self, config):
        bad = RunRequest(config=config.with_updates(solver="dl"), id="no-model")
        with small_client(raise_on_error=False) as client:
            result = client.run(bad)
        assert result.status == "error"
        assert "dl_solver" in result.error
        with small_client() as client:
            with pytest.raises(ApiError, match="no-model"):
                client.run(bad)

    def test_bare_config_accepted_and_auto_named(self, config):
        with small_client() as client:
            result = client.run(config)
        assert result.id.startswith("run-")

    def test_timings_reported(self, config):
        with small_client() as client:
            result = client.run(config)
        assert result.timings["wall_s"] >= 0.0


class TestRunResultSchema:
    def _result(self, config, **kwargs):
        with small_client() as client:
            return client.run(RunRequest(config=config, id="r", **kwargs))

    def test_to_dict_schema(self, config):
        out = self._result(config).to_dict()
        for key in ("api_version", "id", "status", "solver", "dtype", "key",
                    "cache_hit", "submit_status", "timings", "config", "series"):
            assert key in out
        assert out["status"] == "ok"
        assert sorted(out["series"]) == [
            "kinetic", "mode1", "momentum", "potential", "time", "total",
        ]
        import json

        json.dumps(out)  # the whole schema is JSON-safe

    def test_to_dict_without_arrays(self, config):
        out = self._result(config).to_dict(arrays=False)
        assert "series" not in out and "efield" not in out

    def test_npz_round_trip_exact(self, config, tmp_path):
        result = self._result(config, phase_space=True,
                              observables=["energies", "mode1"])
        path = tmp_path / "result.npz"
        result.save_npz(path)
        back = RunResult.load_npz(path)
        assert back.id == result.id
        assert back.key == result.key
        assert back.status == result.status
        assert back.cache_hit == result.cache_hit
        assert back.config == result.config
        assert back.observables == canonical_observables(["energies", "mode1"])
        assert sorted(back.series) == sorted(result.series)
        for name in result.series:
            np.testing.assert_array_equal(
                np.asarray(back.series[name]), np.asarray(result.series[name])
            )
        np.testing.assert_array_equal(back.efield, result.efield)
        np.testing.assert_array_equal(back.final_x, result.final_x)
        np.testing.assert_array_equal(back.final_v, result.final_v)


class TestTerminalStatuses:
    def test_status_vocabulary(self):
        assert RESULT_STATUSES == ("ok", "error", "shed", "timeout")
        assert FAILURE_STATUSES == ("error", "shed", "timeout")

    def test_unknown_status_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown result status"):
            RunResult(id="x", status="pending")

    def test_failure_statuses_require_a_message(self, config):
        req = RunRequest(config=config, id="x")
        for status in FAILURE_STATUSES:
            with pytest.raises(ValueError, match="error message"):
                RunResult(id="x", status=status)
            result = RunResult.from_failure(req, status, "why it died",
                                            wall_s=0.25)
            assert result.status == status
            assert result.error == "why it died"
            assert result.timings["wall_s"] == 0.25

    def test_raise_for_status_names_the_status(self, config):
        req = RunRequest(config=config, id="victim")
        for status in FAILURE_STATUSES:
            result = RunResult.from_failure(req, status, "overloaded")
            with pytest.raises(ApiError, match=f"status '{status}'") as excinfo:
                result.raise_for_status()
            assert excinfo.value.status == status
            assert excinfo.value.result is result
        ok = RunResult(id="fine", status="ok")
        assert ok.raise_for_status() is ok

    def test_failure_results_round_trip_the_wire(self, config):
        req = RunRequest(config=config, id="x", tags=("batch",))
        for status in FAILURE_STATUSES:
            back = RunResult.from_dict(
                RunResult.from_failure(req, status, "boom").to_dict())
            assert back.status == status
            assert back.error == "boom"
            assert back.config == config
            assert back.tags == ("batch",)


class TestRunResultWireRoundTrip:
    def _served(self, config, **kwargs):
        with small_client() as client:
            return client.run(RunRequest(config=config, id="w", **kwargs))

    def test_json_round_trip_bitwise_exact(self, config):
        import json

        result = self._served(config, phase_space=True)
        back = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back.id == result.id
        assert back.key == result.key
        assert back.status == "ok"
        assert back.config == result.config
        for name in result.series:
            a, b = np.asarray(back.series[name]), np.asarray(result.series[name])
            assert a.dtype == b.dtype
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(back.efield, result.efield)
        np.testing.assert_array_equal(back.final_x, result.final_x)
        np.testing.assert_array_equal(back.final_v, result.final_v)

    def test_float32_dtypes_restored(self, config):
        result = self._served(config.with_updates(dtype="float32"))
        back = RunResult.from_dict(result.to_dict())
        assert np.asarray(back.series["kinetic"]).dtype == np.float32
        np.testing.assert_array_equal(
            np.asarray(back.series["kinetic"]),
            np.asarray(result.series["kinetic"]),
        )

    def test_unknown_result_key_rejected(self):
        with pytest.raises(ValueError, match="unknown result key"):
            RunResult.from_dict(
                {"api_version": "v1", "id": "x", "status": "ok", "extra": 1})

    def test_unknown_status_rejected_at_parse(self):
        with pytest.raises(ValueError, match="unknown result status"):
            RunResult.from_dict(
                {"api_version": "v1", "id": "x", "status": "maybe"})

    def test_unknown_version_rejected_at_parse(self):
        with pytest.raises(ValueError, match="api_version"):
            RunResult.from_dict({"api_version": "v9", "id": "x", "status": "ok"})


class TestFloat32ParityBand:
    """The documented regression gate for the reduced-precision tier.

    Over a short two-stream run the float32 tier must track float64
    inside the parity band (energies to ~1e-5 relative, the growing
    ``mode1`` amplitude to 1e-2 relative) and keep the scheme's
    conservation properties.  Long unstable runs diverge trajectory-wise
    (the instability amplifies round-off exponentially), which is the
    documented trade-off of the tier — not covered by the band.
    """

    STEPS = 40

    @pytest.fixture(scope="class")
    def pair(self):
        base = SimulationConfig(
            n_cells=64, particles_per_cell=100, n_steps=self.STEPS,
            scenario="two_stream", seed=7,
        )
        with Client(background=False) as client:
            r64 = client.run(RunRequest(config=base, id="f64"))
            r32 = client.run(RunRequest(
                config=base.with_updates(dtype="float32"), id="f32"))
        return r64, r32

    def test_energy_series_parity(self, pair):
        r64, r32 = pair
        for name in ("kinetic", "potential", "total"):
            a = np.asarray(r64.series[name], dtype=np.float64)
            b = np.asarray(r32.series[name], dtype=np.float64)
            np.testing.assert_allclose(b, a, rtol=1e-5, atol=1e-8)

    def test_mode1_parity(self, pair):
        r64, r32 = pair
        a = np.asarray(r64.series["mode1"], dtype=np.float64)
        b = np.asarray(r32.series["mode1"], dtype=np.float64)
        np.testing.assert_allclose(b, a, rtol=1e-2, atol=1e-7)

    def test_conservation_survives_the_tier(self, pair):
        _, r32 = pair
        assert r32.energy_variation() < 0.05
        assert abs(r32.momentum_drift()) < 1e-3

    def test_float32_state_is_actually_float32(self, pair):
        _, r32 = pair
        assert np.asarray(r32.efield).dtype == np.float32
