"""The paper's MLP and CNN factories (Sec. IV-A)."""

import numpy as np
import pytest

from repro.models.architectures import build_cnn, build_mlp
from repro.nn.layers import Conv2D, Dense, MaxPool2D, ReLU


class TestMLP:
    def test_paper_architecture_dimensions(self):
        """3 hidden layers x 1024 ReLU neurons, 64 linear outputs."""
        model = build_mlp(input_size=64 * 64, output_size=64, hidden_size=1024)
        dense = [l for l in model.layers if isinstance(l, Dense)]
        assert [d.out_features for d in dense] == [1024, 1024, 1024, 64]
        relus = [l for l in model.layers if isinstance(l, ReLU)]
        assert len(relus) == 3
        # Output layer is linear: the stack must not end with an activation.
        assert isinstance(model.layers[-1], Dense)

    def test_paper_parameter_count(self):
        model = build_mlp(input_size=4096, output_size=64, hidden_size=1024)
        expected = (4096 * 1024 + 1024) + 2 * (1024 * 1024 + 1024) + (1024 * 64 + 64)
        assert model.n_parameters == expected

    def test_forward_shape(self):
        model = build_mlp(input_size=32, output_size=8, hidden_size=16)
        assert model.forward(np.zeros((5, 32))).shape == (5, 8)

    def test_configurable_depth(self):
        model = build_mlp(input_size=8, output_size=2, hidden_size=4, n_hidden=5)
        assert len([l for l in model.layers if isinstance(l, Dense)]) == 6

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            build_mlp(n_hidden=0)

    def test_seeded_reproducibility(self):
        a = build_mlp(input_size=8, output_size=2, hidden_size=4, rng=3)
        b = build_mlp(input_size=8, output_size=2, hidden_size=4, rng=3)
        x = np.random.default_rng(0).normal(size=(2, 8))
        np.testing.assert_array_equal(a.forward(x), b.forward(x))


class TestCNN:
    def test_paper_block_structure(self):
        """Two blocks of [conv, conv, maxpool], then three dense + output."""
        model = build_cnn(input_shape=(1, 64, 64))
        convs = [l for l in model.layers if isinstance(l, Conv2D)]
        pools = [l for l in model.layers if isinstance(l, MaxPool2D)]
        dense = [l for l in model.layers if isinstance(l, Dense)]
        assert len(convs) == 4
        assert len(pools) == 2
        assert len(dense) == 4  # 3 hidden + linear output
        assert dense[-1].out_features == 64

    def test_forward_shape(self):
        model = build_cnn(
            input_shape=(1, 16, 16), output_size=8, channels=(2, 4), hidden_size=8
        )
        out = model.forward(np.zeros((3, 1, 16, 16)))
        assert out.shape == (3, 8)

    def test_two_pools_quarter_spatial_size(self):
        model = build_cnn(
            input_shape=(1, 16, 32), output_size=4, channels=(2, 3), hidden_size=8
        )
        flat_dense = [l for l in model.layers if isinstance(l, Dense)][0]
        assert flat_dense.in_features == 3 * 4 * 8

    def test_rejects_indivisible_input(self):
        with pytest.raises(ValueError, match="divisible by 4"):
            build_cnn(input_shape=(1, 30, 64))

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            build_cnn(input_shape=(1, 16, 16), n_hidden=0)

    def test_cnn_trains_a_step(self):
        """End-to-end fit smoke: one tiny batch reduces training loss."""
        from repro.nn.losses import MSELoss
        from repro.nn.optimizers import Adam
        from repro.nn.training import Trainer

        model = build_cnn(
            input_shape=(1, 8, 8), output_size=4, channels=(2, 2), hidden_size=8, rng=0
        )
        rng = np.random.default_rng(1)
        x = rng.random((32, 1, 8, 8))
        y = rng.normal(size=(32, 4)) * 0.01
        trainer = Trainer(model, MSELoss(), Adam(lr=1e-3))
        history = trainer.fit(x, y, epochs=8, batch_size=8, rng=2)
        assert history.loss[-1] < history.loss[0]
