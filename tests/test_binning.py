"""Phase-space binning (the paper's Fig. 2 first grey box)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phasespace.binning import PhaseSpaceGrid, bin_phase_space, bin_phase_space_batch


@pytest.fixture
def grid() -> PhaseSpaceGrid:
    return PhaseSpaceGrid(n_x=8, n_v=4, box_length=2.0, v_min=-1.0, v_max=1.0)


class TestGridGeometry:
    def test_bin_widths(self, grid):
        assert grid.dx == pytest.approx(0.25)
        assert grid.dv == pytest.approx(0.5)

    def test_shape_and_size(self, grid):
        assert grid.shape == (4, 8)
        assert grid.size == 32

    def test_edges(self, grid):
        assert grid.x_edges()[0] == 0.0
        assert grid.x_edges()[-1] == pytest.approx(2.0)
        assert grid.v_edges()[0] == -1.0
        assert grid.v_edges()[-1] == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_x": 0},
            {"n_v": 0},
            {"v_min": 1.0, "v_max": -1.0},
            {"box_length": 0.0},
        ],
    )
    def test_invalid_grid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PhaseSpaceGrid(**{"n_x": 8, "n_v": 4, **kwargs})


class TestNGPBinning:
    def test_total_mass_equals_particle_count(self, grid):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, grid.box_length, 300)
        v = rng.normal(0, 0.4, 300)
        hist = bin_phase_space(x, v, grid, order="ngp")
        assert hist.sum() == pytest.approx(300.0)

    def test_known_placement(self, grid):
        # x = 0.3 -> x-bin 1 (width 0.25); v = 0.25 -> v-bin 2 ([0, 0.5)).
        hist = bin_phase_space(np.array([0.3]), np.array([0.25]), grid, order="ngp")
        assert hist[2, 1] == 1.0
        assert hist.sum() == 1.0

    def test_out_of_window_velocity_clipped_to_edge(self, grid):
        hist = bin_phase_space(np.array([0.1, 0.1]), np.array([5.0, -5.0]), grid)
        assert hist[grid.n_v - 1, 0] == 1.0
        assert hist[0, 0] == 1.0

    def test_position_wraps_periodically(self, grid):
        a = bin_phase_space(np.array([0.3]), np.array([0.0]), grid)
        b = bin_phase_space(np.array([0.3 + grid.box_length]), np.array([0.0]), grid)
        np.testing.assert_array_equal(a, b)

    def test_counts_are_integers(self, grid):
        rng = np.random.default_rng(1)
        hist = bin_phase_space(rng.uniform(0, 2, 50), rng.normal(size=50), grid)
        np.testing.assert_array_equal(hist, np.round(hist))

    def test_two_beams_occupy_two_rows(self):
        grid = PhaseSpaceGrid(n_x=16, n_v=16, box_length=2.0, v_min=-0.5, v_max=0.5)
        n = 400
        x = np.linspace(0, 2, n, endpoint=False)
        v = np.where(np.arange(n) % 2 == 0, 0.2, -0.2)
        hist = bin_phase_space(x, v, grid)
        occupied_rows = np.nonzero(hist.sum(axis=1))[0]
        assert len(occupied_rows) == 2

    def test_dtype_argument(self, grid):
        hist = bin_phase_space(np.array([0.1]), np.array([0.0]), grid, dtype=np.float32)
        assert hist.dtype == np.float32


class TestCICBinning:
    def test_total_mass_conserved(self, grid):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, grid.box_length, 500)
        v = rng.uniform(-0.9, 0.9, 500)
        hist = bin_phase_space(x, v, grid, order="cic")
        assert hist.sum() == pytest.approx(500.0, rel=1e-12)

    def test_mass_conserved_even_when_clipped(self, grid):
        hist = bin_phase_space(np.array([0.5]), np.array([10.0]), grid, order="cic")
        assert hist.sum() == pytest.approx(1.0, rel=1e-12)

    def test_particle_at_bin_center_is_pointlike(self, grid):
        # Center of x-bin 2 and v-bin 1.
        x = np.array([(2 + 0.5) * grid.dx])
        v = np.array([grid.v_min + (1 + 0.5) * grid.dv])
        hist = bin_phase_space(x, v, grid, order="cic")
        assert hist[1, 2] == pytest.approx(1.0)

    def test_bilinear_split(self, grid):
        # Quarter-offset from the center of x-bin 2 / v-bin 1.
        x = np.array([(2 + 0.75) * grid.dx])
        v = np.array([grid.v_min + (1 + 0.75) * grid.dv])
        hist = bin_phase_space(x, v, grid, order="cic")
        assert hist[1, 2] == pytest.approx(0.75 * 0.75)
        assert hist[1, 3] == pytest.approx(0.75 * 0.25)
        assert hist[2, 2] == pytest.approx(0.25 * 0.75)
        assert hist[2, 3] == pytest.approx(0.25 * 0.25)

    def test_cic_smoother_than_ngp(self):
        """CIC spreads mass: fewer empty bins for the same particles."""
        grid = PhaseSpaceGrid(n_x=32, n_v=32, box_length=2.0, v_min=-0.5, v_max=0.5)
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 2, 2000)
        v = rng.normal(0, 0.2, 2000)
        ngp = bin_phase_space(x, v, grid, order="ngp")
        cic = bin_phase_space(x, v, grid, order="cic")
        assert np.count_nonzero(cic) >= np.count_nonzero(ngp)


class TestNGPFastPathExactness:
    """The fused-bincount NGP path must equal the classic scatter."""

    @pytest.mark.parametrize("n", [0, 1, 17, 500])
    def test_bincount_equals_add_at_scatter(self, grid, n):
        rng = np.random.default_rng(n)
        x = rng.uniform(-1.0, 2 * grid.box_length, n)
        v = rng.normal(0, 0.8, n)  # tails outside the window -> clipped
        reference = np.zeros(grid.shape, dtype=np.float64)
        iv = np.clip(np.floor((v - grid.v_min) / grid.dv).astype(np.int64), 0, grid.n_v - 1)
        ix = np.floor(np.mod(x, grid.box_length) / grid.dx).astype(np.int64) % grid.n_x
        np.add.at(reference, (iv, ix), 1.0)
        np.testing.assert_array_equal(bin_phase_space(x, v, grid, order="ngp"), reference)


class TestBatchedBinning:
    @pytest.fixture
    def phase_space(self, grid):
        rng = np.random.default_rng(7)
        x = rng.uniform(-1.0, 2 * grid.box_length, size=(5, 200))
        v = rng.normal(0, 0.6, size=(5, 200))
        return x, v

    @pytest.mark.parametrize("order", ["ngp", "cic"])
    def test_rows_match_single_run_bitwise(self, grid, phase_space, order):
        x, v = phase_space
        batched = bin_phase_space_batch(x, v, grid, order=order)
        assert batched.shape == (5, grid.n_v, grid.n_x)
        for b in range(5):
            np.testing.assert_array_equal(batched[b], bin_phase_space(x[b], v[b], grid, order=order))

    @pytest.mark.parametrize("order", ["ngp", "cic"])
    def test_mass_invariant_per_row(self, grid, phase_space, order):
        x, v = phase_space
        batched = bin_phase_space_batch(x, v, grid, order=order)
        np.testing.assert_allclose(batched.sum(axis=(1, 2)), x.shape[1], rtol=1e-12)

    def test_batch_of_one(self, grid):
        rng = np.random.default_rng(8)
        x = rng.uniform(0, grid.box_length, 40)
        v = rng.normal(0, 0.3, 40)
        np.testing.assert_array_equal(
            bin_phase_space_batch(x[None], v[None], grid)[0], bin_phase_space(x, v, grid)
        )

    def test_dtype_argument(self, grid):
        out = bin_phase_space_batch(np.zeros((2, 3)), np.zeros((2, 3)), grid, dtype=np.float32)
        assert out.dtype == np.float32

    def test_1d_input_rejected(self, grid):
        with pytest.raises(ValueError, match="batch"):
            bin_phase_space_batch(np.zeros(3), np.zeros(3), grid)

    def test_mismatched_shapes_rejected(self, grid):
        with pytest.raises(ValueError):
            bin_phase_space_batch(np.zeros((2, 3)), np.zeros((2, 4)), grid)

    def test_unknown_order_rejected(self, grid):
        with pytest.raises(ValueError, match="unknown binning order"):
            bin_phase_space_batch(np.zeros((1, 2)), np.zeros((1, 2)), grid, order="tsc")


class TestValidation:
    def test_mismatched_shapes_rejected(self, grid):
        with pytest.raises(ValueError):
            bin_phase_space(np.zeros(3), np.zeros(4), grid)

    def test_2d_input_rejected(self, grid):
        with pytest.raises(ValueError):
            bin_phase_space(np.zeros((2, 2)), np.zeros((2, 2)), grid)

    def test_unknown_order_rejected(self, grid):
        with pytest.raises(ValueError, match="unknown binning order"):
            bin_phase_space(np.zeros(2), np.zeros(2), grid, order="tsc")


class TestBinningProperties:
    @given(
        n=st.integers(min_value=1, max_value=200),
        order=st.sampled_from(["ngp", "cic"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=50, deadline=None)
    def test_mass_invariant(self, n, order, seed):
        grid = PhaseSpaceGrid(n_x=8, n_v=8, box_length=1.0, v_min=-1.0, v_max=1.0)
        rng = np.random.default_rng(seed)
        x = rng.uniform(-3, 3, n)
        v = rng.normal(0, 1.5, n)  # often outside the window -> clipped
        hist = bin_phase_space(x, v, grid, order=order)
        assert hist.sum() == pytest.approx(float(n), rel=1e-9)
        assert np.all(hist >= 0)
