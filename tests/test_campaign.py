"""Dataset-generation campaign (Sec. IV-A1)."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.datagen.campaign import (
    CampaignConfig,
    harvest_simulation,
    run_campaign,
    run_test_set_ii,
)
from repro.phasespace.binning import PhaseSpaceGrid


def _campaign(**overrides) -> CampaignConfig:
    defaults = dict(
        v0_values=(0.1, 0.2),
        vth_values=(0.0, 0.01),
        experiments_per_combo=2,
        base_config=SimulationConfig(n_cells=16, particles_per_cell=20, n_steps=5),
        ps_grid=PhaseSpaceGrid(n_x=8, n_v=4),
        master_seed=99,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


class TestCampaignConfig:
    def test_counts(self):
        c = _campaign()
        assert c.n_simulations == 8
        assert c.n_samples == 8 * 6  # 5 steps + initial state

    def test_counts_without_initial_state(self):
        c = _campaign(include_initial_state=False)
        assert c.n_samples == 8 * 5

    def test_paper_campaign_scale(self):
        from repro.datagen.presets import paper_campaign

        c = paper_campaign()
        assert c.n_simulations == 200
        # 200 runs x 200 steps = the paper's 40,000 samples
        # (+200 initial-state pairs from include_initial_state).
        assert c.n_samples == 200 * 201

    def test_specs_deterministic(self):
        a = _campaign().simulation_specs()
        b = _campaign().simulation_specs()
        assert a == b

    def test_specs_cover_all_combinations(self):
        specs = _campaign().simulation_specs()
        combos = {(v0, vth) for v0, vth, _ in specs}
        assert combos == {(0.1, 0.0), (0.1, 0.01), (0.2, 0.0), (0.2, 0.01)}

    def test_seeds_unique_across_runs(self):
        seeds = [s for _, _, s in _campaign().simulation_specs()]
        assert len(set(seeds)) == len(seeds)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"v0_values": ()},
            {"vth_values": ()},
            {"experiments_per_combo": 0},
            {"v0_values": (0.1, -0.2)},
            {"vth_values": (0.0, -0.01)},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            _campaign(**kwargs)


class TestHarvest:
    def test_shapes(self):
        cfg = SimulationConfig(n_cells=16, particles_per_cell=20, n_steps=5, seed=1)
        grid = PhaseSpaceGrid(n_x=8, n_v=4)
        data = harvest_simulation(cfg, grid)
        assert data.inputs.shape == (6, 4, 8)
        assert data.targets.shape == (6, 16)
        assert data.params.shape == (6, 4)

    def test_histogram_mass_is_particle_count(self):
        cfg = SimulationConfig(n_cells=16, particles_per_cell=20, n_steps=3, seed=2)
        data = harvest_simulation(cfg, PhaseSpaceGrid(n_x=8, n_v=4))
        np.testing.assert_allclose(data.inputs.sum(axis=(1, 2)), cfg.n_particles)

    def test_targets_match_traditional_fields(self):
        """Each target is exactly the field the traditional PIC produced."""
        from repro.engines.observables import Observables, pic_observables
        from repro.pic.simulation import TraditionalPIC

        cfg = SimulationConfig(n_cells=16, particles_per_cell=20, n_steps=4, seed=3)
        data = harvest_simulation(cfg, PhaseSpaceGrid(n_x=8, n_v=4))
        sim = TraditionalPIC(cfg)
        hist = sim.run(4, history=Observables(pic_observables(record_fields=True),
                                              squeeze=True))
        np.testing.assert_allclose(data.targets, hist.as_arrays()["fields"], atol=1e-14)

    def test_provenance_params(self):
        cfg = SimulationConfig(
            n_cells=16, particles_per_cell=20, n_steps=3, v0=0.17, vth=0.003, seed=5
        )
        data = harvest_simulation(cfg, PhaseSpaceGrid(n_x=8, n_v=4))
        assert np.all(data.params[:, 0] == 0.17)
        assert np.all(data.params[:, 1] == 0.003)
        assert np.all(data.params[:, 2] == 5.0)
        np.testing.assert_array_equal(data.params[:, 3], np.arange(4))

    def test_without_initial_state(self):
        cfg = SimulationConfig(n_cells=16, particles_per_cell=20, n_steps=3, seed=1)
        data = harvest_simulation(cfg, PhaseSpaceGrid(n_x=8, n_v=4), include_initial_state=False)
        assert len(data) == 3
        assert data.params[0, 3] == 1.0


class TestRunCampaign:
    def test_total_sample_count(self):
        c = _campaign()
        data = run_campaign(c)
        assert len(data) == c.n_samples

    def test_deterministic(self):
        a = run_campaign(_campaign())
        b = run_campaign(_campaign())
        np.testing.assert_array_equal(a.inputs, b.inputs)
        np.testing.assert_array_equal(a.targets, b.targets)

    def test_parallel_matches_serial(self):
        c = _campaign()
        serial = run_campaign(c, n_workers=1)
        parallel = run_campaign(c, n_workers=2)
        np.testing.assert_array_equal(serial.inputs, parallel.inputs)
        np.testing.assert_array_equal(serial.targets, parallel.targets)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            run_campaign(_campaign(), n_workers=0)

    def test_every_combo_present_in_samples(self):
        data = run_campaign(_campaign())
        combos = {(v0, vth) for v0, vth in zip(data.params[:, 0], data.params[:, 1])}
        assert len(combos) == 4


class TestTestSetII:
    def test_unseen_parameters_only(self):
        c = _campaign()
        data = run_test_set_ii(c, v0_values=[0.15], vth_values=[0.005], n_samples=4)
        assert len(data) == 4
        assert np.all(data.params[:, 0] == 0.15)

    def test_overlap_with_training_sweep_rejected(self):
        c = _campaign()
        with pytest.raises(ValueError, match="overlap"):
            run_test_set_ii(c, v0_values=[0.1], vth_values=[0.0], n_samples=10)

    def test_requesting_more_than_available_returns_all(self):
        c = _campaign()
        data = run_test_set_ii(c, v0_values=[0.15], vth_values=[0.005], n_samples=10_000)
        assert len(data) == 6  # one 5-step run + initial state
