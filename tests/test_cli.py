"""Command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.v0 == 0.2
        assert args.ppc == 1000

    def test_invalid_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--interpolation", "spline"])

    def test_reproduce_requires_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce"])


class TestSimulateCommand:
    def test_runs_and_reports_growth(self, capsys, tmp_path):
        out = tmp_path / "history.npz"
        code = main([
            "simulate", "--cells", "32", "--ppc", "40", "--steps", "20",
            "--vth", "0.01", "--out", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "energy variation" in text
        assert "growth rate" in text
        assert out.exists()
        from repro.utils.io import load_npz_dict

        series = load_npz_dict(out)
        assert series["time"].shape == (21,)

    def test_stable_configuration_reported(self, capsys):
        code = main([
            "simulate", "--cells", "32", "--ppc", "40", "--steps", "5",
            "--v0", "0.4", "--vth", "0.0",
        ])
        assert code == 0
        assert "linearly stable" in capsys.readouterr().out


class TestSweepCommand:
    def _save_tiny_solver(self, tmp_path, n_cells=32):
        from repro.config import SimulationConfig
        from repro.dlpic import DLFieldSolver
        from repro.models.architectures import build_mlp
        from repro.phasespace.binning import PhaseSpaceGrid
        from repro.phasespace.normalization import MinMaxNormalizer

        config = SimulationConfig(n_cells=n_cells)
        grid = PhaseSpaceGrid(n_x=16, n_v=8, box_length=config.box_length)
        model = build_mlp(input_size=grid.size, output_size=n_cells, hidden_size=8, rng=0)
        solver = DLFieldSolver(
            model, grid, MinMaxNormalizer.from_dict({"minimum": 0.0, "maximum": 50.0})
        )
        return solver.save(tmp_path / "solver")

    def test_traditional_sweep_runs(self, capsys, tmp_path):
        out = tmp_path / "sweep.npz"
        code = main([
            "sweep", "--cells", "32", "--ppc", "20", "--steps", "4",
            "--v0", "0.2", "--runs", "2", "--out", str(out),
        ])
        assert code == 0
        assert "traditional solver" in capsys.readouterr().out
        assert out.exists()

    def test_dl_sweep_runs_from_saved_solver(self, capsys, tmp_path):
        model_dir = self._save_tiny_solver(tmp_path)
        out = tmp_path / "dl-sweep.npz"
        code = main([
            "sweep", "--cells", "32", "--ppc", "20", "--steps", "4",
            "--runs", "2", "--solver", "dl", "--model-dir", str(model_dir),
            "--out", str(out),
        ])
        assert code == 0
        assert "dl solver" in capsys.readouterr().out
        assert out.exists()
        from repro.utils.io import load_npz_dict

        series = load_npz_dict(out)
        assert series["mode1"].shape == (5, 2)

    def test_dl_sweep_requires_model_dir(self, capsys):
        code = main(["sweep", "--solver", "dl", "--steps", "1"])
        assert code == 2
        assert "--model-dir" in capsys.readouterr().err

    def test_dl_sweep_missing_model_dir_reports_cleanly(self, capsys, tmp_path):
        code = main([
            "sweep", "--solver", "dl", "--model-dir", str(tmp_path / "nope"),
            "--steps", "1",
        ])
        assert code == 2
        assert "cannot load a DL solver" in capsys.readouterr().err

    def test_dl_sweep_incompatible_solver_reports_cleanly(self, capsys, tmp_path):
        model_dir = self._save_tiny_solver(tmp_path, n_cells=32)
        code = main([
            "sweep", "--solver", "dl", "--model-dir", str(model_dir),
            "--cells", "16", "--ppc", "10", "--steps", "1",
        ])
        assert code == 2
        assert "incompatible" in capsys.readouterr().err


class TestDatasetCommand:
    def test_fast_campaign_written(self, capsys, tmp_path):
        out = tmp_path / "data.npz"
        code = main(["dataset", "--preset", "fast", "--out", str(out)])
        assert code == 0
        assert out.exists()
        from repro.datagen.dataset import FieldDataset

        data = FieldDataset.load(out)
        assert len(data) == 244  # fast campaign size


class TestTrainAndReproduce:
    @pytest.fixture(scope="class")
    def cache(self, tmp_path_factory):
        return str(tmp_path_factory.mktemp("cli-cache"))

    def test_train_fast(self, capsys, cache):
        code = main(["train", "--preset", "fast", "--no-cnn", "--cache", cache])
        assert code == 0
        assert "TABLE I" in capsys.readouterr().out

    def test_reproduce_fig4_from_cache(self, capsys, cache, tmp_path):
        out = tmp_path / "fig4.json"
        code = main([
            "reproduce", "fig4", "--preset", "fast", "--cache", cache,
            "--out", str(out),
        ])
        assert code == 0
        assert "gamma" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["gamma_theory"] == pytest.approx(0.3536, rel=1e-3)

    def test_reproduce_table1_from_cache(self, capsys, cache):
        code = main(["reproduce", "table1", "--preset", "fast", "--cache", cache])
        assert code == 0
        assert "Mean Absolute Error" in capsys.readouterr().out
