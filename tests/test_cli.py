"""Command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.v0 == 0.2
        assert args.ppc == 1000

    def test_invalid_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--interpolation", "spline"])

    def test_reproduce_requires_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce"])


class TestSimulateCommand:
    def test_runs_and_reports_growth(self, capsys, tmp_path):
        out = tmp_path / "history.npz"
        code = main([
            "simulate", "--cells", "32", "--ppc", "40", "--steps", "20",
            "--vth", "0.01", "--out", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "energy variation" in text
        assert "growth rate" in text
        assert out.exists()
        from repro.utils.io import load_npz_dict

        series = load_npz_dict(out)
        assert series["time"].shape == (21,)

    def test_stable_configuration_reported(self, capsys):
        code = main([
            "simulate", "--cells", "32", "--ppc", "40", "--steps", "5",
            "--v0", "0.4", "--vth", "0.0",
        ])
        assert code == 0
        assert "linearly stable" in capsys.readouterr().out


class TestSweepCommand:
    def _save_tiny_solver(self, tmp_path, n_cells=32):
        from repro.config import SimulationConfig
        from repro.dlpic import DLFieldSolver
        from repro.models.architectures import build_mlp
        from repro.phasespace.binning import PhaseSpaceGrid
        from repro.phasespace.normalization import MinMaxNormalizer

        config = SimulationConfig(n_cells=n_cells)
        grid = PhaseSpaceGrid(n_x=16, n_v=8, box_length=config.box_length)
        model = build_mlp(input_size=grid.size, output_size=n_cells, hidden_size=8, rng=0)
        solver = DLFieldSolver(
            model, grid, MinMaxNormalizer.from_dict({"minimum": 0.0, "maximum": 50.0})
        )
        return solver.save(tmp_path / "solver")

    def test_traditional_sweep_runs(self, capsys, tmp_path):
        out = tmp_path / "sweep.npz"
        code = main([
            "sweep", "--cells", "32", "--ppc", "20", "--steps", "4",
            "--v0", "0.2", "--runs", "2", "--out", str(out),
        ])
        assert code == 0
        assert "traditional solver" in capsys.readouterr().out
        assert out.exists()

    def test_dl_sweep_runs_from_saved_solver(self, capsys, tmp_path):
        model_dir = self._save_tiny_solver(tmp_path)
        out = tmp_path / "dl-sweep.npz"
        code = main([
            "sweep", "--cells", "32", "--ppc", "20", "--steps", "4",
            "--runs", "2", "--solver", "dl", "--model-dir", str(model_dir),
            "--out", str(out),
        ])
        assert code == 0
        assert "dl solver" in capsys.readouterr().out
        assert out.exists()
        from repro.utils.io import load_npz_dict

        series = load_npz_dict(out)
        assert series["mode1"].shape == (5, 2)

    def test_dl_sweep_requires_model_dir(self, capsys):
        code = main(["sweep", "--solver", "dl", "--steps", "1"])
        assert code == 2
        assert "--model-dir" in capsys.readouterr().err

    def test_dl_sweep_missing_model_dir_reports_cleanly(self, capsys, tmp_path):
        code = main([
            "sweep", "--solver", "dl", "--model-dir", str(tmp_path / "nope"),
            "--steps", "1",
        ])
        assert code == 2
        assert "cannot load a DL solver" in capsys.readouterr().err

    def test_dl_sweep_incompatible_solver_reports_cleanly(self, capsys, tmp_path):
        model_dir = self._save_tiny_solver(tmp_path, n_cells=32)
        code = main([
            "sweep", "--solver", "dl", "--model-dir", str(model_dir),
            "--cells", "16", "--ppc", "10", "--steps", "1",
        ])
        assert code == 2
        assert "incompatible" in capsys.readouterr().err


class TestVlasovSweep:
    def test_vlasov_sweep_runs(self, capsys, tmp_path):
        out = tmp_path / "vlasov-sweep.npz"
        code = main([
            "sweep", "--solver", "vlasov", "--cells", "32", "--nv", "48",
            "--steps", "4", "--vth", "0.03,0.05", "--runs", "1",
            "--out", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "vlasov solver" in text
        assert "phase-space cells" in text
        assert out.exists()
        from repro.utils.io import load_npz_dict

        series = load_npz_dict(out)
        assert series["mode1"].shape == (5, 2)

    def test_vlasov_sweep_rejects_cold_beams(self, capsys):
        code = main([
            "sweep", "--solver", "vlasov", "--steps", "1", "--vth", "0.0",
        ])
        assert code == 2
        assert "vth > 0" in capsys.readouterr().err


class TestScenariosCommand:
    def test_lists_every_registered_scenario(self, capsys):
        from repro.pic.scenarios import available_scenarios

        code = main(["scenarios"])
        assert code == 0
        out = capsys.readouterr().out
        for name in available_scenarios():
            assert name in out
        assert "counter-streaming" in out  # the one-line docs ride along

    def test_marks_vlasov_capable_scenarios(self, capsys):
        from repro.pic.scenarios import available_distributions

        main(["scenarios"])
        out = capsys.readouterr().out
        assert out.count("pic+vlasov") == len(available_distributions())

    def test_lists_distribution_only_scenarios(self, capsys, monkeypatch):
        from repro.pic import scenarios

        def f0(config, x, v):
            """A distribution-only test entry."""

        monkeypatch.setitem(scenarios._DISTRIBUTIONS, "f0_only_test", f0)
        main(["scenarios"])
        out = capsys.readouterr().out
        assert "f0_only_test" in out
        assert "[vlasov    ]" in out
        assert "A distribution-only test entry." in out


class TestServeCommand:
    REQUEST = ('{"api_version": "v1", "config": {"scenario": "%s", '
               '"n_cells": 16, "particles_per_cell": 10, "n_steps": 3, '
               '"vth": 0.01, "seed": %d}, "id": "%s"}')

    def _write_requests(self, tmp_path, specs):
        path = tmp_path / "requests.jsonl"
        lines = ["# test requests"]
        lines += [self.REQUEST % (scenario, seed, rid) for scenario, seed, rid in specs]
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_serves_requests_and_writes_store_and_manifest(self, capsys, tmp_path):
        path = self._write_requests(tmp_path, [
            ("two_stream", 0, "a"),
            ("cold_beam", 1, "b"),
            ("two_stream", 0, "a-dup"),  # identical physics to "a"
        ])
        store = tmp_path / "store"
        manifest_path = tmp_path / "manifest.json"
        code = main([
            "serve", "--requests", str(path), "--store", str(store),
            "--manifest", str(manifest_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 3 requests" in out
        manifest = json.loads(manifest_path.read_text())
        entries = {e["id"]: e for e in manifest["requests"]}
        assert entries["a"]["status"] == "ok"
        assert entries["a"]["submit_status"] == "queued"
        assert entries["a-dup"]["status"] == "ok"
        assert entries["a-dup"]["submit_status"] in ("inflight", "cached")
        assert entries["a-dup"]["key"] == entries["a"]["key"]
        assert entries["a-dup"]["key"] == entries["a"]["key"]
        assert manifest["stats"]["executed_runs"] == 2
        # results are content-addressed npz files in the store directory
        for rid in ("a", "b"):
            assert (store / entries[rid]["file"]).exists()

    def test_second_invocation_served_from_disk_store(self, capsys, tmp_path):
        path = self._write_requests(tmp_path, [("two_stream", 0, "a")])
        store = tmp_path / "store"
        assert main(["serve", "--requests", str(path), "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["serve", "--requests", str(path), "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "0 runs executed" in out
        assert "1 store hits" in out

    def test_bad_request_line_reports_cleanly(self, capsys, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text('{"api_version": "v1", "config": {"n_cells": 16}}\n'
                        '{"api_version": "v1", "config": {"nsteps": 3}}\n')
        code = main(["serve", "--requests", str(path)])
        assert code == 2
        assert "line 2" in capsys.readouterr().err

    def test_legacy_bare_config_line_reports_cleanly(self, capsys, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text('{"n_cells": 16, "id": "old-style"}\n')
        code = main(["serve", "--requests", str(path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "legacy bare-config" in err and "v1 envelope" in err

    def test_unknown_scenario_reports_cleanly(self, capsys, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text('{"api_version": "v1", "config": '
                        '{"scenario": "typo_scenario", "n_steps": 1}}\n')
        code = main(["serve", "--requests", str(path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err and "line 1" in err

    def test_wrong_typed_value_reports_cleanly(self, capsys, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text('{"api_version": "v1", "config": {"n_cells": "sixteen"}}\n')
        code = main(["serve", "--requests", str(path)])
        assert code == 2
        assert "line 1" in capsys.readouterr().err

    def test_missing_file_reports_cleanly(self, capsys, tmp_path):
        code = main(["serve", "--requests", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_duplicate_ids_rejected(self, capsys, tmp_path):
        path = self._write_requests(tmp_path, [("two_stream", 0, "a"),
                                               ("two_stream", 1, "a")])
        code = main(["serve", "--requests", str(path)])
        assert code == 2
        assert "duplicate request ids" in capsys.readouterr().err

    def test_vlasov_requests_served_without_model_dir(self, capsys, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text(
            '{"api_version": "v1", "id": "v-a", "config": {"solver": "vlasov", '
            '"n_cells": 16, "n_steps": 2, "vth": 0.03, "extra": {"n_v": 24}}}\n'
            '{"api_version": "v1", "id": "v-b", "config": {"solver": "vlasov", '
            '"n_cells": 16, "n_steps": 2, "vth": 0.05, '
            '"scenario": "landau_damping", "extra": {"n_v": 24}}}\n'
        )
        store = tmp_path / "store"
        manifest_path = tmp_path / "manifest.json"
        code = main([
            "serve", "--requests", str(path), "--store", str(store),
            "--manifest", str(manifest_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "vlasov" in out
        assert "1 engine batches" in out  # both coalesced into one engine
        manifest = json.loads(manifest_path.read_text())
        entries = {e["id"]: e for e in manifest["requests"]}
        for rid in ("v-a", "v-b"):
            assert entries[rid]["key"].startswith("vlasov-")
            assert (store / entries[rid]["file"]).exists()

    def test_dl_requests_require_model_dir(self, capsys, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text('{"api_version": "v1", "config": {"n_cells": 16, '
                        '"particles_per_cell": 10, "n_steps": 1, '
                        '"solver": "dl"}}\n')
        code = main(["serve", "--requests", str(path)])
        assert code == 2
        assert "--model-dir" in capsys.readouterr().err

    def test_stdin_stream(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO('{"api_version": "v1", "config": {"n_cells": 16, '
                        '"particles_per_cell": 10, "n_steps": 2, '
                        '"vth": 0.01}}\n'),
        )
        code = main(["serve"])
        assert code == 0
        assert "served 1 requests" in capsys.readouterr().out

    def test_drain_rows_report_wall_clock(self, capsys, tmp_path):
        path = self._write_requests(tmp_path, [("two_stream", 0, "timed")])
        assert main(["serve", "--requests", str(path)]) == 0
        out = capsys.readouterr().out
        header, row = None, None
        for line in out.splitlines():
            if line.lstrip().startswith("id ") and "wall ms" in line:
                header = line
            if "timed" in line:
                row = line
        assert header is not None and row is not None
        # the wall-clock column holds a parseable millisecond figure
        assert float(row.split()[-1]) >= 0.0


class TestServeListenParsing:
    def test_listen_address_split(self):
        from repro.cli import _parse_listen_address

        assert _parse_listen_address("127.0.0.1:8787") == ("127.0.0.1", 8787)
        assert _parse_listen_address("0.0.0.0:0") == ("0.0.0.0", 0)
        for bad in ("8787", ":8787", "host:", "host:http", "host:70000"):
            with pytest.raises(ValueError, match="--listen"):
                _parse_listen_address(bad)

    def test_bad_listen_address_reports_cleanly(self, capsys):
        assert main(["serve", "--listen", "nocolon"]) == 2
        assert "--listen takes HOST:PORT" in capsys.readouterr().err
        assert main(["serve", "--listen", "127.0.0.1:port"]) == 2
        assert "integer" in capsys.readouterr().err

    def test_listen_defaults_parsed(self):
        args = build_parser().parse_args(
            ["serve", "--listen", "127.0.0.1:0", "--max-pending", "32",
             "--request-timeout", "1.5", "--max-connections", "64"])
        assert args.listen == "127.0.0.1:0"
        assert args.max_pending == 32
        assert args.request_timeout == 1.5
        assert args.max_connections == 64
        drain = build_parser().parse_args(["serve"])
        assert drain.listen is None
        assert drain.max_pending == 256
        assert drain.request_timeout is None
        assert drain.max_connections == 128


class TestDatasetCommand:
    def test_fast_campaign_written(self, capsys, tmp_path):
        out = tmp_path / "data.npz"
        code = main(["dataset", "--preset", "fast", "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "deprecated alias" in capsys.readouterr().out
        from repro.datagen.dataset import FieldDataset

        data = FieldDataset.load(out)
        assert len(data) == 244  # fast campaign size


class TestCampaignCommand:
    def test_run_then_status_then_resume(self, capsys, tmp_path):
        campaign_dir = tmp_path / "camp"
        argv = ["campaign", "run", "--preset", "fast", "--dir",
                str(campaign_dir), "--shard-size", "2"]
        assert main(argv) == 0
        text = capsys.readouterr().out
        assert "[executed]" in text
        assert (campaign_dir / "manifest.json").exists()
        assert sorted(p.name for p in campaign_dir.glob("shard-*.npz")) == [
            "shard-00000.npz", "shard-00001.npz",
        ]

        assert main(["campaign", "status", "--preset", "fast", "--dir",
                     str(campaign_dir), "--shard-size", "2"]) == 0
        assert "2/2 shards intact" in capsys.readouterr().out

        assert main(["campaign", "resume", "--preset", "fast", "--dir",
                     str(campaign_dir), "--shard-size", "2"]) == 0
        text = capsys.readouterr().out
        assert "[verified]" in text
        assert "0 runs executed" in text

    def test_export_matches_dataset_command(self, capsys, tmp_path):
        export = tmp_path / "campaign.npz"
        assert main(["campaign", "run", "--preset", "fast", "--dir",
                     str(tmp_path / "camp"), "--export", str(export)]) == 0
        direct = tmp_path / "direct.npz"
        assert main(["dataset", "--preset", "fast", "--out", str(direct)]) == 0
        from repro.datagen.dataset import FieldDataset

        a, b = FieldDataset.load(export), FieldDataset.load(direct)
        assert np.array_equal(a.inputs, b.inputs)
        assert np.array_equal(a.targets, b.targets)
        assert np.array_equal(a.params, b.params)

    def test_mismatched_campaign_reports_cleanly(self, capsys, tmp_path):
        campaign_dir = tmp_path / "camp"
        assert main(["campaign", "run", "--preset", "fast", "--dir",
                     str(campaign_dir), "--shard-size", "2"]) == 0
        capsys.readouterr()
        code = main(["campaign", "run", "--preset", "fast", "--dir",
                     str(campaign_dir), "--shard-size", "3"])
        assert code == 2
        assert "different campaign" in capsys.readouterr().err


class TestModelsCommand:
    def _register(self, tmp_path):
        from repro.config import SimulationConfig
        from repro.dlpic import DLFieldSolver
        from repro.models.architectures import build_mlp
        from repro.phasespace.binning import PhaseSpaceGrid
        from repro.phasespace.normalization import MinMaxNormalizer
        from repro.registry import ModelRegistry

        config = SimulationConfig(n_cells=32)
        grid = PhaseSpaceGrid(n_x=16, n_v=8, box_length=config.box_length)
        model = build_mlp(input_size=grid.size, output_size=32, hidden_size=8, rng=0)
        solver = DLFieldSolver(
            model, grid, MinMaxNormalizer.from_dict({"minimum": 0.0, "maximum": 50.0})
        )
        root = tmp_path / "registry"
        return root, ModelRegistry(root).register(solver).fingerprint

    def test_list_show_verify(self, capsys, tmp_path):
        root, fingerprint = self._register(tmp_path)
        assert main(["models", "list", "--registry", str(root)]) == 0
        text = capsys.readouterr().out
        assert fingerprint[:16] in text
        assert "registry:" in text

        assert main(["models", "show", fingerprint[:8],
                     "--registry", str(root)]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["fingerprint"] == fingerprint

        assert main(["models", "verify", "--registry", str(root)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_verify_flags_corruption_and_gc_collects(self, capsys, tmp_path):
        root, fingerprint = self._register(tmp_path)
        weights = root / "models" / fingerprint / "model.npz"
        weights.write_bytes(weights.read_bytes()[:-20])
        assert main(["models", "verify", "--registry", str(root)]) == 1
        assert "CORRUPT" in capsys.readouterr().out
        assert main(["models", "gc", "--registry", str(root)]) == 0
        assert "collected 1" in capsys.readouterr().out
        assert main(["models", "list", "--registry", str(root)]) == 0
        assert "no models registered" in capsys.readouterr().out

    def test_empty_registry_and_missing_ref_report_cleanly(self, capsys, tmp_path):
        root = tmp_path / "registry"
        assert main(["models", "list", "--registry", str(root)]) == 0
        assert "no models registered" in capsys.readouterr().out
        assert main(["models", "show", "--registry", str(root)]) == 2
        assert "needs a fingerprint prefix" in capsys.readouterr().err
        assert main(["models", "show", "abcd", "--registry", str(root)]) == 2
        assert "no model" in capsys.readouterr().err


class TestTrainAndReproduce:
    @pytest.fixture(scope="class")
    def cache(self, tmp_path_factory):
        return str(tmp_path_factory.mktemp("cli-cache"))

    def test_train_fast(self, capsys, cache):
        code = main(["train", "--preset", "fast", "--no-cnn", "--cache", cache])
        assert code == 0
        assert "TABLE I" in capsys.readouterr().out

    def test_reproduce_fig4_from_cache(self, capsys, cache, tmp_path):
        out = tmp_path / "fig4.json"
        code = main([
            "reproduce", "fig4", "--preset", "fast", "--cache", cache,
            "--out", str(out),
        ])
        assert code == 0
        assert "gamma" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["gamma_theory"] == pytest.approx(0.3536, rel=1e-3)

    def test_reproduce_table1_from_cache(self, capsys, cache):
        code = main(["reproduce", "table1", "--preset", "fast", "--cache", cache])
        assert code == 0
        assert "Mean Absolute Error" in capsys.readouterr().out


class TestTraceCommand:
    REQUEST = ('{"api_version": "v1", "config": {"scenario": "two_stream", '
               '"n_cells": 16, "particles_per_cell": 10, "n_steps": 3, '
               '"vth": 0.01, "seed": %d}, "id": "%s"}')

    def _traced_manifest(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text("\n".join(
            self.REQUEST % (seed, rid)
            for seed, rid in [(0, "a"), (1, "b")]
        ) + "\n")
        manifest = tmp_path / "manifest.json"
        assert main(["serve", "--requests", str(path), "--trace",
                     "--manifest", str(manifest)]) == 0
        return manifest

    def test_drain_manifest_records_traces(self, capsys, tmp_path):
        manifest_path = self._traced_manifest(tmp_path)
        capsys.readouterr()
        manifest = json.loads(manifest_path.read_text())
        assert len(manifest["traces"]) == 2
        for trace in manifest["traces"]:
            assert trace["complete"] is True
            assert trace["n_spans"] >= 1
        # Every request's timings name a recorded trace.
        recorded = {t["trace_id"] for t in manifest["traces"]}
        for entry in manifest["requests"]:
            assert entry["timings"]["trace_id"] in recorded

    def test_renders_waterfall_from_manifest(self, capsys, tmp_path):
        manifest_path = self._traced_manifest(tmp_path)
        capsys.readouterr()
        assert main(["trace", "--manifest", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace ")
        assert "client.request" in out
        assert "engine.steps" in out
        # A specific id renders too, and --json emits the raw payload.
        manifest = json.loads(manifest_path.read_text())
        trace_id = manifest["traces"][0]["trace_id"]
        assert main(["trace", trace_id, "--manifest", str(manifest_path)]) == 0
        assert trace_id in capsys.readouterr().out
        assert main(["trace", trace_id, "--json",
                     "--manifest", str(manifest_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace_id"] == trace_id

    def test_unknown_trace_id_reports_cleanly(self, capsys, tmp_path):
        manifest_path = self._traced_manifest(tmp_path)
        capsys.readouterr()
        assert main(["trace", "nope", "--manifest", str(manifest_path)]) == 2
        assert "not in the manifest" in capsys.readouterr().err

    def test_untraced_manifest_reports_cleanly(self, capsys, tmp_path):
        manifest = tmp_path / "plain.json"
        manifest.write_text(json.dumps({"api_version": "v1", "requests": []}))
        assert main(["trace", "--manifest", str(manifest)]) == 2
        assert "no traces" in capsys.readouterr().err

    def test_url_and_manifest_are_exclusive(self, capsys, tmp_path):
        assert main(["trace", "--manifest", "x.json",
                     "--url", "http://127.0.0.1:1"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_unreachable_server_reports_cleanly(self, capsys):
        import socket
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        assert main(["trace", "--url", f"http://127.0.0.1:{free_port}"]) == 2
        assert "cannot fetch" in capsys.readouterr().err
