"""Command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.v0 == 0.2
        assert args.ppc == 1000

    def test_invalid_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--interpolation", "spline"])

    def test_reproduce_requires_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce"])


class TestSimulateCommand:
    def test_runs_and_reports_growth(self, capsys, tmp_path):
        out = tmp_path / "history.npz"
        code = main([
            "simulate", "--cells", "32", "--ppc", "40", "--steps", "20",
            "--vth", "0.01", "--out", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "energy variation" in text
        assert "growth rate" in text
        assert out.exists()
        from repro.utils.io import load_npz_dict

        series = load_npz_dict(out)
        assert series["time"].shape == (21,)

    def test_stable_configuration_reported(self, capsys):
        code = main([
            "simulate", "--cells", "32", "--ppc", "40", "--steps", "5",
            "--v0", "0.4", "--vth", "0.0",
        ])
        assert code == 0
        assert "linearly stable" in capsys.readouterr().out


class TestDatasetCommand:
    def test_fast_campaign_written(self, capsys, tmp_path):
        out = tmp_path / "data.npz"
        code = main(["dataset", "--preset", "fast", "--out", str(out)])
        assert code == 0
        assert out.exists()
        from repro.datagen.dataset import FieldDataset

        data = FieldDataset.load(out)
        assert len(data) == 244  # fast campaign size


class TestTrainAndReproduce:
    @pytest.fixture(scope="class")
    def cache(self, tmp_path_factory):
        return str(tmp_path_factory.mktemp("cli-cache"))

    def test_train_fast(self, capsys, cache):
        code = main(["train", "--preset", "fast", "--no-cnn", "--cache", cache])
        assert code == 0
        assert "TABLE I" in capsys.readouterr().out

    def test_reproduce_fig4_from_cache(self, capsys, cache, tmp_path):
        out = tmp_path / "fig4.json"
        code = main([
            "reproduce", "fig4", "--preset", "fast", "--cache", cache,
            "--out", str(out),
        ])
        assert code == 0
        assert "gamma" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["gamma_theory"] == pytest.approx(0.3536, rel=1e-3)

    def test_reproduce_table1_from_cache(self, capsys, cache):
        code = main(["reproduce", "table1", "--preset", "fast", "--cache", cache])
        assert code == 0
        assert "Mean Absolute Error" in capsys.readouterr().out
