"""Cold-beam ripple diagnostics (Fig. 6 quantification)."""

import numpy as np
import pytest

from repro.theory.coldbeam import (
    ColdBeamMetrics,
    beam_velocity_spread,
    coldbeam_ripple_metrics,
)


class TestBeamSpread:
    def test_perfectly_cold_beams(self):
        v = np.array([0.4, 0.4, -0.4, -0.4])
        assert beam_velocity_spread(v) == (0.0, 0.0)

    def test_warm_beams(self):
        rng = np.random.default_rng(0)
        v = np.concatenate([0.4 + 0.01 * rng.normal(size=5000),
                            -0.4 + 0.02 * rng.normal(size=5000)])
        up, down = beam_velocity_spread(v)
        assert up == pytest.approx(0.01, rel=0.1)
        assert down == pytest.approx(0.02, rel=0.1)

    def test_empty_beam_side(self):
        up, down = beam_velocity_spread(np.array([0.4, 0.5]))
        assert down == 0.0
        assert up > 0.0

    def test_custom_split_velocity(self):
        v = np.array([0.1, 0.2, 0.3, 0.4])
        up, down = beam_velocity_spread(v, split_velocity=0.25)
        assert up == pytest.approx(np.std([0.3, 0.4]))
        assert down == pytest.approx(np.std([0.1, 0.2]))

    def test_invalid_input(self):
        with pytest.raises(ValueError):
            beam_velocity_spread(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            beam_velocity_spread(np.array([]))


class TestRippleMetrics:
    def test_clean_run_not_rippled(self):
        v = np.array([0.4] * 10 + [-0.4] * 10)
        energy = np.full(5, 0.164)
        m = coldbeam_ripple_metrics(v, energy, vth_initial=0.0)
        assert not m.rippled
        assert m.max_spread == 0.0
        assert m.energy_variation == 0.0

    def test_heated_run_rippled(self):
        rng = np.random.default_rng(1)
        v = np.concatenate([0.4 + 0.01 * rng.normal(size=100),
                            -0.4 + 0.01 * rng.normal(size=100)])
        m = coldbeam_ripple_metrics(v, np.array([0.164, 0.160]), vth_initial=0.0)
        assert m.rippled
        assert m.energy_variation == pytest.approx(0.004 / 0.164)

    def test_threshold_scales_with_initial_vth(self):
        """A beam that started warm is not 'rippled' at its own vth."""
        rng = np.random.default_rng(2)
        vth = 0.02
        v = np.concatenate([0.4 + vth * rng.normal(size=500),
                            -0.4 + vth * rng.normal(size=500)])
        m = coldbeam_ripple_metrics(v, np.ones(3), vth_initial=vth)
        assert not m.rippled

    def test_custom_ripple_threshold(self):
        rng = np.random.default_rng(3)
        v = np.concatenate([0.4 + 0.005 * rng.normal(size=200),
                            -0.4 + 0.005 * rng.normal(size=200)])
        strict = coldbeam_ripple_metrics(v, np.ones(2), ripple_threshold=1e-4)
        lax = coldbeam_ripple_metrics(v, np.ones(2), ripple_threshold=0.1)
        assert strict.rippled
        assert not lax.rippled

    def test_empty_energy_rejected(self):
        with pytest.raises(ValueError):
            coldbeam_ripple_metrics(np.array([0.4, -0.4]), np.array([]))

    def test_metrics_are_frozen_dataclass(self):
        m = ColdBeamMetrics(0.0, 0.0, 0.0, 0.0, False)
        with pytest.raises(Exception):
            m.rippled = True  # type: ignore[misc]
