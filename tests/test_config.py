"""SimulationConfig validation and derived quantities."""

import math

import pytest

from repro import constants
from repro.config import (
    SimulationConfig,
    paper_coldbeam_config,
    paper_validation_config,
)


class TestDefaults:
    def test_defaults_match_paper_section_iii(self):
        cfg = SimulationConfig()
        assert cfg.n_cells == 64
        assert cfg.particles_per_cell == 1000
        assert cfg.dt == 0.2
        assert cfg.n_steps == 200
        assert abs(cfg.box_length - 2.0 * math.pi / 3.06) < 1e-15

    def test_total_particles(self):
        assert SimulationConfig().n_particles == 64_000

    def test_dx(self):
        cfg = SimulationConfig(n_cells=64)
        assert abs(cfg.dx - cfg.box_length / 64) < 1e-15

    def test_electron_charge_to_mass_is_minus_one(self):
        assert SimulationConfig().qm == -1.0


class TestNormalization:
    def test_mean_electron_density_is_minus_one(self):
        cfg = SimulationConfig()
        total_charge = cfg.particle_charge * cfg.n_particles
        assert abs(total_charge / cfg.box_length + 1.0) < 1e-12

    def test_particle_mass_consistent_with_qm(self):
        cfg = SimulationConfig()
        assert abs(cfg.particle_charge / cfg.particle_mass - cfg.qm) < 1e-12

    def test_particle_mass_positive(self):
        assert SimulationConfig().particle_mass > 0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"box_length": 0.0},
            {"box_length": -1.0},
            {"n_cells": 1},
            {"particles_per_cell": 0},
            {"dt": 0.0},
            {"n_steps": -1},
            {"vth": -0.1},
            {"interpolation": "spline"},
            {"poisson_solver": "multigrid"},
            {"gradient": "forward"},
            {"loading": "sobol"},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SimulationConfig(**kwargs)

    @pytest.mark.parametrize("interp", ["ngp", "cic", "tsc"])
    def test_valid_interpolations_accepted(self, interp):
        assert SimulationConfig(interpolation=interp).interpolation == interp

    @pytest.mark.parametrize("solver", ["spectral", "fd", "direct"])
    def test_valid_poisson_solvers_accepted(self, solver):
        assert SimulationConfig(poisson_solver=solver).poisson_solver == solver


class TestUpdates:
    def test_with_updates_changes_field(self):
        cfg = SimulationConfig().with_updates(v0=0.3)
        assert cfg.v0 == 0.3

    def test_with_updates_preserves_others(self):
        cfg = SimulationConfig(seed=42).with_updates(v0=0.3)
        assert cfg.seed == 42

    def test_with_updates_revalidates(self):
        with pytest.raises(ValueError):
            SimulationConfig().with_updates(dt=-1.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            SimulationConfig().v0 = 0.9  # type: ignore[misc]


class TestExtraIdentity:
    def test_with_updates_does_not_alias_extra(self):
        cfg = SimulationConfig(extra={"bump_fraction": 0.1})
        derived = cfg.with_updates(v0=0.3)
        derived.extra["bump_fraction"] = 0.9
        assert cfg.extra["bump_fraction"] == 0.1

    def test_with_updates_deep_copies_nested_extra(self):
        cfg = SimulationConfig(extra={"nested": {"a": 1}})
        derived = cfg.with_updates(seed=1)
        derived.extra["nested"]["a"] = 99
        assert cfg.extra["nested"]["a"] == 1

    def test_extra_differences_break_equality(self):
        base = SimulationConfig(scenario="bump_on_tail")
        bumped = base.with_updates(extra={"bump_fraction": 0.2})
        assert base != bumped
        assert base.cache_key() != bumped.cache_key()

    def test_extra_dict_order_is_canonical(self):
        a = SimulationConfig(extra={"a": 1, "b": 2})
        b = SimulationConfig(extra={"b": 2, "a": 1})
        assert a == b
        assert hash(a) == hash(b)
        assert a.cache_key() == b.cache_key()

    def test_non_dict_extra_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(extra=[1, 2])  # type: ignore[arg-type]

    def test_non_string_extra_keys_rejected(self):
        # int 1 and str "1" would collapse to one JSON key, letting two
        # unequal configs share a cache key — rejected up front instead.
        with pytest.raises(ValueError, match="strings"):
            SimulationConfig(extra={1: "a"})
        with pytest.raises(ValueError, match="strings"):
            SimulationConfig(extra={"nested": {2: "b"}})
        with pytest.raises(ValueError, match="strings"):
            SimulationConfig(extra={"seq": [{3: "c"}]})


class TestSerialization:
    def test_round_trip_exact(self):
        cfg = SimulationConfig(
            v0=0.3, vth=0.0, n_cells=32, scenario="bump_on_tail",
            extra={"bump_fraction": 0.15, "tags": ["a", "b"]},
        )
        assert SimulationConfig.from_dict(cfg.to_dict()) == cfg

    def test_to_dict_copies_extra(self):
        cfg = SimulationConfig(extra={"k": 1})
        cfg.to_dict()["extra"]["k"] = 2
        assert cfg.extra["k"] == 1

    def test_from_dict_defaults_missing_fields(self):
        cfg = SimulationConfig.from_dict({"v0": 0.4})
        assert cfg.v0 == 0.4
        assert cfg.n_cells == SimulationConfig().n_cells

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="nsteps"):
            SimulationConfig.from_dict({"nsteps": 10})

    def test_from_dict_validates_values(self):
        with pytest.raises(ValueError):
            SimulationConfig.from_dict({"dt": -1.0})

    def test_cache_key_matches_equality_for_mixed_number_types(self):
        # Python equality collapses True == 1 == 1.0; the cache key must too,
        # or the result store would re-execute requests the config layer
        # considers identical.
        a = SimulationConfig(extra={"flag": True, "x": 1.0})
        b = SimulationConfig(extra={"flag": 1, "x": 1})
        assert a == b
        assert a.cache_key() == b.cache_key()

    def test_cache_key_stable_and_discriminating(self):
        cfg = SimulationConfig()
        assert cfg.cache_key() == SimulationConfig().cache_key()
        assert cfg.cache_key() != cfg.with_updates(seed=1).cache_key()
        assert cfg.cache_key() != cfg.with_updates(n_steps=7).cache_key()

    def test_cache_key_rejects_unserializable_extra(self):
        cfg = SimulationConfig(extra={"obj": object()})
        with pytest.raises(ValueError, match="JSON"):
            cfg.cache_key()


class TestPaperConfigs:
    def test_validation_config_fig4(self):
        cfg = paper_validation_config()
        assert cfg.v0 == constants.PAPER_VALIDATION_V0
        assert cfg.vth == constants.PAPER_VALIDATION_VTH

    def test_coldbeam_config_fig6(self):
        cfg = paper_coldbeam_config()
        assert cfg.v0 == constants.PAPER_COLDBEAM_V0
        assert cfg.vth == 0.0

    def test_overrides_forwarded(self):
        cfg = paper_validation_config(seed=9, n_steps=10)
        assert cfg.seed == 9
        assert cfg.n_steps == 10
