"""SimulationConfig validation and derived quantities."""

import math

import pytest

from repro import constants
from repro.config import (
    SimulationConfig,
    paper_coldbeam_config,
    paper_validation_config,
)


class TestDefaults:
    def test_defaults_match_paper_section_iii(self):
        cfg = SimulationConfig()
        assert cfg.n_cells == 64
        assert cfg.particles_per_cell == 1000
        assert cfg.dt == 0.2
        assert cfg.n_steps == 200
        assert abs(cfg.box_length - 2.0 * math.pi / 3.06) < 1e-15

    def test_total_particles(self):
        assert SimulationConfig().n_particles == 64_000

    def test_dx(self):
        cfg = SimulationConfig(n_cells=64)
        assert abs(cfg.dx - cfg.box_length / 64) < 1e-15

    def test_electron_charge_to_mass_is_minus_one(self):
        assert SimulationConfig().qm == -1.0


class TestNormalization:
    def test_mean_electron_density_is_minus_one(self):
        cfg = SimulationConfig()
        total_charge = cfg.particle_charge * cfg.n_particles
        assert abs(total_charge / cfg.box_length + 1.0) < 1e-12

    def test_particle_mass_consistent_with_qm(self):
        cfg = SimulationConfig()
        assert abs(cfg.particle_charge / cfg.particle_mass - cfg.qm) < 1e-12

    def test_particle_mass_positive(self):
        assert SimulationConfig().particle_mass > 0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"box_length": 0.0},
            {"box_length": -1.0},
            {"n_cells": 1},
            {"particles_per_cell": 0},
            {"dt": 0.0},
            {"n_steps": -1},
            {"vth": -0.1},
            {"interpolation": "spline"},
            {"poisson_solver": "multigrid"},
            {"gradient": "forward"},
            {"loading": "sobol"},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SimulationConfig(**kwargs)

    @pytest.mark.parametrize("interp", ["ngp", "cic", "tsc"])
    def test_valid_interpolations_accepted(self, interp):
        assert SimulationConfig(interpolation=interp).interpolation == interp

    @pytest.mark.parametrize("solver", ["spectral", "fd", "direct"])
    def test_valid_poisson_solvers_accepted(self, solver):
        assert SimulationConfig(poisson_solver=solver).poisson_solver == solver


class TestUpdates:
    def test_with_updates_changes_field(self):
        cfg = SimulationConfig().with_updates(v0=0.3)
        assert cfg.v0 == 0.3

    def test_with_updates_preserves_others(self):
        cfg = SimulationConfig(seed=42).with_updates(v0=0.3)
        assert cfg.seed == 42

    def test_with_updates_revalidates(self):
        with pytest.raises(ValueError):
            SimulationConfig().with_updates(dt=-1.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            SimulationConfig().v0 = 0.9  # type: ignore[misc]


class TestPaperConfigs:
    def test_validation_config_fig4(self):
        cfg = paper_validation_config()
        assert cfg.v0 == constants.PAPER_VALIDATION_V0
        assert cfg.vth == constants.PAPER_VALIDATION_VTH

    def test_coldbeam_config_fig6(self):
        cfg = paper_coldbeam_config()
        assert cfg.v0 == constants.PAPER_COLDBEAM_V0
        assert cfg.vth == 0.0

    def test_overrides_forwarded(self):
        cfg = paper_validation_config(seed=9, n_steps=10)
        assert cfg.seed == 9
        assert cfg.n_steps == 10
