"""Cross-checks of the dimensionless unit system against the paper."""

import math

import numpy as np

from repro import constants


def test_box_length_matches_paper():
    assert constants.TWO_STREAM_BOX_LENGTH == 2.0 * math.pi / 3.06


def test_fundamental_wavenumber_is_306():
    k1 = 2.0 * math.pi / constants.TWO_STREAM_BOX_LENGTH
    assert abs(k1 - constants.TWO_STREAM_K1) < 1e-12


def test_box_tuned_to_most_unstable_mode():
    """k1 * v0 = sqrt(3/8): the paper chose L to maximize the growth rate."""
    kv0 = constants.TWO_STREAM_K1 * constants.PAPER_VALIDATION_V0
    assert abs(kv0 - constants.MOST_UNSTABLE_KV0) < 1e-3


def test_max_growth_rate_closed_form():
    assert abs(constants.MAX_TWO_STREAM_GROWTH_RATE - 1.0 / (2.0 * math.sqrt(2.0))) < 1e-15


def test_coldbeam_config_is_linearly_stable():
    """Fig. 6: k1 * 0.4 = 1.224 exceeds the stability threshold 1."""
    kv0 = constants.TWO_STREAM_K1 * constants.PAPER_COLDBEAM_V0
    assert kv0 > constants.TWO_STREAM_STABILITY_THRESHOLD_KV0


def test_paper_campaign_has_twenty_combinations():
    assert len(constants.PAPER_TRAINING_V0) * len(constants.PAPER_TRAINING_VTH) == 20


def test_validation_parameters_not_in_training_sweep():
    assert constants.PAPER_VALIDATION_V0 not in constants.PAPER_TRAINING_V0
    assert constants.PAPER_VALIDATION_VTH not in constants.PAPER_TRAINING_VTH


def test_expected_kinetic_energy_scale_fig5():
    """KE = L*(v0^2+vth^2)/2 matches the ~0.0415 axis of Fig. 5."""
    ke = 0.5 * constants.TWO_STREAM_BOX_LENGTH * (
        constants.PAPER_VALIDATION_V0**2 + constants.PAPER_VALIDATION_VTH**2
    )
    assert 0.040 < ke < 0.043


def test_expected_kinetic_energy_scale_fig6():
    """KE = L*v0^2/2 matches the ~0.164 axis of Fig. 6."""
    ke = 0.5 * constants.TWO_STREAM_BOX_LENGTH * constants.PAPER_COLDBEAM_V0**2
    assert 0.160 < ke < 0.168
