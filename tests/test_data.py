"""DataLoader and the paper's shuffle-then-split protocol."""

import numpy as np
import pytest

from repro.nn.data import DataLoader, train_val_test_split


@pytest.fixture
def xy():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(50, 3))
    y = np.arange(50, dtype=float)
    return x, y


class TestDataLoader:
    def test_number_of_batches(self, xy):
        x, y = xy
        assert len(DataLoader(x, y, batch_size=16, shuffle=False)) == 4
        assert len(DataLoader(x, y, batch_size=16, shuffle=False, drop_last=True)) == 3
        assert len(DataLoader(x, y, batch_size=50, shuffle=False)) == 1

    def test_batches_cover_all_samples_without_shuffle(self, xy):
        x, y = xy
        loader = DataLoader(x, y, batch_size=16, shuffle=False)
        seen = np.concatenate([yb for _, yb in loader])
        np.testing.assert_array_equal(seen, y)

    def test_last_partial_batch(self, xy):
        x, y = xy
        batches = list(DataLoader(x, y, batch_size=16, shuffle=False))
        assert batches[-1][0].shape[0] == 2

    def test_drop_last_skips_partial(self, xy):
        x, y = xy
        batches = list(DataLoader(x, y, batch_size=16, shuffle=False, drop_last=True))
        assert all(xb.shape[0] == 16 for xb, _ in batches)

    def test_shuffle_is_a_permutation(self, xy):
        x, y = xy
        loader = DataLoader(x, y, batch_size=7, shuffle=True, rng=1)
        seen = np.concatenate([yb for _, yb in loader])
        np.testing.assert_array_equal(np.sort(seen), np.sort(y))
        assert not np.array_equal(seen, y)

    def test_shuffle_differs_between_epochs(self, xy):
        x, y = xy
        loader = DataLoader(x, y, batch_size=50, shuffle=True, rng=2)
        first = next(iter(loader))[1].copy()
        second = next(iter(loader))[1].copy()
        assert not np.array_equal(first, second)

    def test_x_y_rows_stay_paired(self, xy):
        x, y = xy
        loader = DataLoader(x, y, batch_size=8, shuffle=True, rng=3)
        for xb, yb in loader:
            np.testing.assert_allclose(xb, x[yb.astype(int)])

    def test_seeded_loader_reproducible(self, xy):
        x, y = xy
        a = np.concatenate([yb for _, yb in DataLoader(x, y, 8, rng=5)])
        b = np.concatenate([yb for _, yb in DataLoader(x, y, 8, rng=5)])
        np.testing.assert_array_equal(a, b)

    def test_validation(self, xy):
        x, y = xy
        with pytest.raises(ValueError):
            DataLoader(x, y[:10])
        with pytest.raises(ValueError):
            DataLoader(x, y, batch_size=0)
        with pytest.raises(ValueError):
            DataLoader(np.zeros((0, 2)), np.zeros(0))


class TestSplit:
    def test_split_sizes_match_paper_protocol(self):
        x = np.zeros((40_000, 2))
        y = np.zeros(40_000)
        (xt, _), (xv, _), (xs, _) = train_val_test_split(x, y, n_val=1000, n_test=1000, rng=0)
        assert xt.shape[0] == 38_000
        assert xv.shape[0] == 1000
        assert xs.shape[0] == 1000

    def test_splits_are_disjoint_and_exhaustive(self):
        x = np.arange(30, dtype=float).reshape(30, 1)
        y = np.arange(30, dtype=float)
        (_, yt), (_, yv), (_, ys) = train_val_test_split(x, y, n_val=5, n_test=5, rng=1)
        combined = np.sort(np.concatenate([yt, yv, ys]))
        np.testing.assert_array_equal(combined, y)

    def test_rows_stay_paired(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(20, 2))
        y = x[:, 0] * 2
        (xt, yt), _, _ = train_val_test_split(x, y, n_val=3, n_test=3, rng=3)
        np.testing.assert_allclose(yt, xt[:, 0] * 2)

    def test_seeded_split_reproducible(self):
        x = np.arange(20, dtype=float).reshape(20, 1)
        y = np.arange(20, dtype=float)
        a = train_val_test_split(x, y, 4, 4, rng=7)[0][1]
        b = train_val_test_split(x, y, 4, 4, rng=7)[0][1]
        np.testing.assert_array_equal(a, b)

    def test_validation_errors(self):
        x = np.zeros((10, 1))
        y = np.zeros(10)
        with pytest.raises(ValueError):
            train_val_test_split(x, y, n_val=5, n_test=5)
        with pytest.raises(ValueError):
            train_val_test_split(x, y, n_val=-1, n_test=0)
        with pytest.raises(ValueError):
            train_val_test_split(x, np.zeros(9), 1, 1)
