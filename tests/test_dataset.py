"""FieldDataset container."""

import numpy as np
import pytest

from repro.datagen.dataset import FieldDataset
from repro.phasespace.binning import PhaseSpaceGrid


@pytest.fixture
def grid() -> PhaseSpaceGrid:
    return PhaseSpaceGrid(n_x=8, n_v=4)


@pytest.fixture
def dataset(grid) -> FieldDataset:
    rng = np.random.default_rng(0)
    n = 20
    return FieldDataset(
        inputs=rng.poisson(3.0, size=(n, 4, 8)).astype(float),
        targets=rng.normal(size=(n, 16)),
        params=np.column_stack([np.full(n, 0.2), np.full(n, 0.01),
                                np.zeros(n), np.arange(n, dtype=float)]),
        ps_grid=grid,
    )


class TestContainer:
    def test_len(self, dataset):
        assert len(dataset) == 20

    def test_n_cells(self, dataset):
        assert dataset.n_cells == 16

    def test_flat_inputs(self, dataset):
        flat = dataset.flat_inputs()
        assert flat.shape == (20, 32)
        np.testing.assert_array_equal(flat[0], dataset.inputs[0].ravel())

    def test_image_inputs(self, dataset):
        img = dataset.image_inputs()
        assert img.shape == (20, 1, 4, 8)

    def test_inconsistent_counts_rejected(self, grid):
        with pytest.raises(ValueError):
            FieldDataset(
                inputs=np.zeros((3, 4, 8)), targets=np.zeros((2, 16)),
                params=np.zeros((3, 4)), ps_grid=grid,
            )

    def test_wrong_histogram_shape_rejected(self, grid):
        with pytest.raises(ValueError):
            FieldDataset(
                inputs=np.zeros((3, 5, 5)), targets=np.zeros((3, 16)),
                params=np.zeros((3, 4)), ps_grid=grid,
            )


class TestSubsetShuffleSplit:
    def test_subset_copies(self, dataset):
        sub = dataset.subset(np.array([0, 1]))
        sub.inputs[0, 0, 0] = 999.0
        assert dataset.inputs[0, 0, 0] != 999.0

    def test_shuffled_is_permutation(self, dataset):
        shuffled = dataset.shuffled(rng=1)
        assert len(shuffled) == len(dataset)
        np.testing.assert_array_equal(
            np.sort(shuffled.params[:, 3]), np.sort(dataset.params[:, 3])
        )
        assert not np.array_equal(shuffled.params[:, 3], dataset.params[:, 3])

    def test_shuffle_keeps_rows_paired(self, dataset):
        shuffled = dataset.shuffled(rng=2)
        for i in range(len(shuffled)):
            orig = int(shuffled.params[i, 3])
            np.testing.assert_array_equal(shuffled.inputs[i], dataset.inputs[orig])
            np.testing.assert_array_equal(shuffled.targets[i], dataset.targets[orig])

    def test_split_sizes(self, dataset):
        train, val, test = dataset.split(n_val=4, n_test=3, rng=0)
        assert (len(train), len(val), len(test)) == (13, 4, 3)

    def test_split_disjoint(self, dataset):
        train, val, test = dataset.split(n_val=4, n_test=3, rng=0)
        ids = np.concatenate([d.params[:, 3] for d in (train, val, test)])
        assert len(np.unique(ids)) == 20

    def test_split_too_large_rejected(self, dataset):
        with pytest.raises(ValueError):
            dataset.split(n_val=10, n_test=10)


class TestConcatenate:
    def test_concat(self, dataset):
        combined = FieldDataset.concatenate([dataset, dataset])
        assert len(combined) == 40

    def test_concat_empty_list_rejected(self):
        with pytest.raises(ValueError):
            FieldDataset.concatenate([])

    def test_concat_mismatched_grids_rejected(self, dataset):
        other_grid = PhaseSpaceGrid(n_x=8, n_v=4, v_min=-2.0, v_max=2.0)
        other = FieldDataset(
            inputs=np.zeros((2, 4, 8)), targets=np.zeros((2, 16)),
            params=np.zeros((2, 4)), ps_grid=other_grid,
        )
        with pytest.raises(ValueError, match="different phase-space grids"):
            FieldDataset.concatenate([dataset, other])


class TestPersistence:
    def test_save_load_roundtrip(self, dataset, tmp_path):
        path = dataset.save(tmp_path / "data.npz")
        loaded = FieldDataset.load(path)
        np.testing.assert_array_equal(loaded.inputs, dataset.inputs)
        np.testing.assert_array_equal(loaded.targets, dataset.targets)
        np.testing.assert_array_equal(loaded.params, dataset.params)
        assert loaded.ps_grid == dataset.ps_grid
