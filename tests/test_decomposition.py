"""1D slab domain decomposition."""

import numpy as np
import pytest

from repro.parallel.decomposition import DomainDecomposition1D
from repro.pic.grid import Grid1D


@pytest.fixture
def grid() -> Grid1D:
    return Grid1D(16, 4.0)


class TestCellBounds:
    def test_even_split(self, grid):
        decomp = DomainDecomposition1D(grid, 4)
        assert [decomp.cell_bounds(r) for r in range(4)] == [
            (0, 4), (4, 8), (8, 12), (12, 16)
        ]

    def test_uneven_split_distributes_remainder_first(self):
        decomp = DomainDecomposition1D(Grid1D(10, 1.0), 3)
        bounds = [decomp.cell_bounds(r) for r in range(3)]
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_bounds_cover_grid_exactly(self, grid):
        for n_ranks in (1, 2, 3, 5, 16):
            decomp = DomainDecomposition1D(grid, n_ranks)
            cells = []
            for r in range(n_ranks):
                start, stop = decomp.cell_bounds(r)
                cells.extend(range(start, stop))
            assert cells == list(range(16))

    def test_x_bounds(self, grid):
        decomp = DomainDecomposition1D(grid, 4)
        assert decomp.x_bounds(1) == (1.0, 2.0)

    def test_n_local_cells(self):
        decomp = DomainDecomposition1D(Grid1D(10, 1.0), 3)
        assert [decomp.n_local_cells(r) for r in range(3)] == [4, 3, 3]

    def test_too_many_ranks_rejected(self, grid):
        with pytest.raises(ValueError):
            DomainDecomposition1D(grid, 17)

    def test_invalid_rank_queried(self, grid):
        decomp = DomainDecomposition1D(grid, 2)
        with pytest.raises(ValueError):
            decomp.cell_bounds(2)


class TestOwnership:
    def test_owner_matches_x_bounds(self, grid):
        decomp = DomainDecomposition1D(grid, 4)
        x = np.array([0.1, 1.5, 2.5, 3.9])
        np.testing.assert_array_equal(decomp.owner_of(x), [0, 1, 2, 3])

    def test_owner_wraps_positions(self, grid):
        decomp = DomainDecomposition1D(grid, 4)
        assert decomp.owner_of(np.array([4.1]))[0] == 0
        assert decomp.owner_of(np.array([-0.1]))[0] == 3

    def test_boundary_position_belongs_to_right_slab(self, grid):
        decomp = DomainDecomposition1D(grid, 4)
        assert decomp.owner_of(np.array([1.0]))[0] == 1

    def test_all_owners_valid(self, grid):
        decomp = DomainDecomposition1D(grid, 5)
        rng = np.random.default_rng(0)
        owners = decomp.owner_of(rng.uniform(-10, 10, 500))
        assert np.all((owners >= 0) & (owners < 5))

    def test_single_rank_owns_everything(self, grid):
        decomp = DomainDecomposition1D(grid, 1)
        owners = decomp.owner_of(np.linspace(0, 3.99, 20))
        np.testing.assert_array_equal(owners, 0)


class TestPartition:
    def test_partition_preserves_all_particles(self, grid):
        decomp = DomainDecomposition1D(grid, 3)
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 4, 200)
        parts = decomp.partition(x)
        total = sum(p[0].shape[0] for p in parts)
        assert total == 200

    def test_partition_carries_parallel_arrays(self, grid):
        decomp = DomainDecomposition1D(grid, 2)
        x = np.array([0.5, 3.5, 1.0, 2.5])
        v = np.array([10.0, 20.0, 30.0, 40.0])
        parts = decomp.partition(x, v)
        np.testing.assert_array_equal(parts[0][1], [10.0, 30.0])
        np.testing.assert_array_equal(parts[1][1], [20.0, 40.0])

    def test_partitioned_particles_inside_their_slab(self, grid):
        decomp = DomainDecomposition1D(grid, 4)
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 4, 300)
        for rank, (xr,) in enumerate(decomp.partition(x)):
            lo, hi = decomp.x_bounds(rank)
            assert np.all((xr >= lo) & (xr < hi))

    def test_local_slice(self, grid):
        decomp = DomainDecomposition1D(grid, 4)
        field = np.arange(16.0)
        np.testing.assert_array_equal(field[decomp.local_slice(2)], np.arange(8.0, 12.0))
