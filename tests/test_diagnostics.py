"""Energy, momentum and spectral diagnostics."""

import numpy as np
import pytest

from repro.engines.observables import Frame, Observables, pic_observables
from repro.pic.diagnostics import (
    field_energy,
    kinetic_energy,
    mode_amplitude,
    mode_spectrum,
    total_momentum,
)
from repro.pic.grid import Grid1D
from repro.pic.particles import ParticleSet


def squeezed_history() -> Observables:
    """The single-run recorder that replaced the retired ``History``."""
    return Observables(pic_observables(), squeeze=True)


def record(hist, step, time, grid, ps, e, v_center=None) -> None:
    hist.record_frame(Frame(step, time, grid, e, particles=ps, v_center=v_center))


@pytest.fixture
def grid() -> Grid1D:
    return Grid1D(32, 2.0 * np.pi)


class TestEnergies:
    def test_kinetic_energy(self):
        ps = ParticleSet(np.zeros(3), np.array([1.0, 2.0, -2.0]), charge=-1.0, mass=0.5)
        assert kinetic_energy(ps) == pytest.approx(0.5 * 0.5 * 9.0)

    def test_kinetic_energy_with_override_velocities(self):
        ps = ParticleSet(np.zeros(2), np.zeros(2), charge=-1.0, mass=1.0)
        assert kinetic_energy(ps, v=np.array([3.0, 4.0])) == pytest.approx(12.5)

    def test_field_energy_of_sine(self, grid):
        e = np.sin(grid.nodes)
        # (1/2) integral sin^2 over [0, 2pi] = pi/2.
        assert field_energy(grid, e) == pytest.approx(np.pi / 2, rel=1e-12)

    def test_field_energy_scales_with_eps0(self, grid):
        e = np.sin(grid.nodes)
        assert field_energy(grid, e, eps0=2.0) == pytest.approx(2 * field_energy(grid, e))

    def test_field_energy_shape_check(self, grid):
        with pytest.raises(ValueError):
            field_energy(grid, np.zeros(5))

    def test_momentum(self):
        ps = ParticleSet(np.zeros(2), np.array([1.0, -3.0]), charge=-1.0, mass=2.0)
        assert total_momentum(ps) == pytest.approx(-4.0)


class TestModeAmplitude:
    def test_pure_sine_mode(self, grid):
        e = 0.3 * np.sin(2 * grid.nodes)
        assert mode_amplitude(e, mode=2) == pytest.approx(0.3, rel=1e-12)
        assert mode_amplitude(e, mode=1) == pytest.approx(0.0, abs=1e-12)

    def test_pure_cosine_mode(self, grid):
        e = 0.7 * np.cos(grid.nodes)
        assert mode_amplitude(e, mode=1) == pytest.approx(0.7, rel=1e-12)

    def test_dc_mode(self, grid):
        e = np.full(grid.n_cells, 1.5)
        assert mode_amplitude(e, mode=0) == pytest.approx(1.5, rel=1e-12)

    def test_mixed_phase_amplitude(self, grid):
        e = 0.3 * np.sin(grid.nodes) + 0.4 * np.cos(grid.nodes)
        assert mode_amplitude(e, mode=1) == pytest.approx(0.5, rel=1e-12)

    def test_mode_out_of_range(self):
        with pytest.raises(ValueError):
            mode_amplitude(np.zeros(8), mode=5)

    def test_spectrum_matches_individual_modes(self, grid):
        e = 0.2 * np.sin(grid.nodes) + 0.5 * np.cos(3 * grid.nodes)
        spec = mode_spectrum(e)
        assert spec[1] == pytest.approx(0.2, rel=1e-12)
        assert spec[3] == pytest.approx(0.5, rel=1e-12)
        assert spec.shape == (grid.n_cells // 2 + 1,)

    def test_nyquist_mode_normalization(self):
        n = 8
        x = np.arange(n)
        e = 0.4 * np.cos(np.pi * x)  # Nyquist pattern (+,-,+,-)
        assert mode_amplitude(e, mode=n // 2) == pytest.approx(0.4, rel=1e-12)


class TestSqueezedObservables:
    def _record_n(self, hist: Observables, grid: Grid1D, n: int) -> None:
        ps = ParticleSet(np.zeros(4), np.full(4, 0.1), charge=-1.0, mass=1.0)
        for i in range(n):
            record(hist, i, 0.2 * i, grid, ps, np.sin(grid.nodes) * (1 + 0.1 * i))

    def test_lengths(self, grid):
        hist = squeezed_history()
        self._record_n(hist, grid, 5)
        assert len(hist) == 5
        arrays = hist.as_arrays()
        for key in ("time", "kinetic", "potential", "total", "momentum", "mode1"):
            assert arrays[key].shape == (5,)

    def test_total_is_sum(self, grid):
        hist = squeezed_history()
        self._record_n(hist, grid, 3)
        a = hist.as_arrays()
        np.testing.assert_allclose(a["total"], a["kinetic"] + a["potential"])

    def test_energy_variation(self, grid):
        hist = squeezed_history()
        self._record_n(hist, grid, 4)
        a = hist.as_arrays()
        expected = np.max(np.abs(a["total"] - a["total"][0])) / a["total"][0]
        assert hist.energy_variation() == pytest.approx(expected)

    def test_momentum_drift(self, grid):
        hist = squeezed_history()
        ps = ParticleSet(np.zeros(2), np.array([0.1, 0.1]), charge=-1.0, mass=1.0)
        record(hist, 0, 0.0, grid, ps, np.zeros(grid.n_cells))
        ps.v = np.array([0.2, 0.2])
        record(hist, 1, 0.2, grid, ps, np.zeros(grid.n_cells))
        assert hist.momentum_drift() == pytest.approx(0.2)

    def test_empty_history_raises(self):
        with pytest.raises(ValueError):
            squeezed_history().energy_variation()
        with pytest.raises(ValueError):
            squeezed_history().momentum_drift()

    def test_record_fields_option(self, grid):
        hist = Observables(pic_observables(record_fields=True), squeeze=True)
        self._record_n(hist, grid, 3)
        assert hist.as_arrays()["fields"].shape == (3, grid.n_cells)

    def test_v_center_override_used(self, grid):
        hist = squeezed_history()
        ps = ParticleSet(np.zeros(2), np.zeros(2), charge=-1.0, mass=1.0)
        record(hist, 0, 0.0, grid, ps, np.zeros(grid.n_cells),
               v_center=np.array([1.0, 1.0]))
        assert hist["kinetic"][0] == pytest.approx(1.0)
        assert hist["momentum"][0] == pytest.approx(2.0)


class TestRetiredShims:
    def test_history_import_raises_helpfully(self):
        with pytest.raises(ImportError, match="Observables"):
            from repro.pic.diagnostics import History  # noqa: F401

    def test_ensemble_history_import_raises_helpfully(self):
        with pytest.raises(ImportError, match="pic_observables"):
            from repro.pic.diagnostics import EnsembleHistory  # noqa: F401

    def test_measurement_functions_still_importable(self):
        from repro.pic.diagnostics import kinetic_energy_rows  # noqa: F401
