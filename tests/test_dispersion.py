"""Two-stream linear theory."""

import numpy as np
import pytest

from repro import constants
from repro.theory.dispersion import (
    dispersion_residual,
    growth_rate_cold,
    growth_rate_curve,
    max_growth_rate,
    most_unstable_k,
    solve_dispersion,
    stability_threshold_k,
)


class TestClosedForm:
    def test_max_growth_at_sqrt_three_eighths(self):
        v0 = 0.2
        k_star = most_unstable_k(v0)
        assert k_star * v0 == pytest.approx(np.sqrt(3.0 / 8.0))
        gamma_star = growth_rate_cold(k_star, v0)
        assert gamma_star == pytest.approx(1.0 / (2 * np.sqrt(2)), rel=1e-12)

    def test_neighbors_grow_slower_than_maximum(self):
        v0 = 0.2
        k_star = most_unstable_k(v0)
        g_star = growth_rate_cold(k_star, v0)
        assert growth_rate_cold(0.9 * k_star, v0) < g_star
        assert growth_rate_cold(1.1 * k_star, v0) < g_star

    def test_stability_threshold(self):
        v0 = 0.2
        k_c = stability_threshold_k(v0)
        assert k_c * v0 == pytest.approx(1.0)
        assert growth_rate_cold(1.01 * k_c, v0) == 0.0
        assert growth_rate_cold(0.99 * k_c, v0) > 0.0

    def test_paper_box_is_maximally_unstable_for_v0_02(self):
        """The paper's k1 = 3.06 with v0 = 0.2 hits the growth maximum."""
        gamma = growth_rate_cold(constants.TWO_STREAM_K1, 0.2)
        assert gamma == pytest.approx(max_growth_rate(), rel=1e-3)

    def test_paper_coldbeam_case_is_stable(self):
        """Fig. 6: v0 = 0.4 makes the fundamental stable."""
        assert growth_rate_cold(constants.TWO_STREAM_K1, 0.4) == 0.0

    def test_scaling_with_plasma_frequency(self):
        assert growth_rate_cold(1.0, 0.5, wp=2.0) == pytest.approx(
            2.0 * growth_rate_cold(0.5, 0.5, wp=1.0), rel=1e-12
        )

    def test_curve_vectorization(self):
        k = np.linspace(0.5, 6.0, 20)
        curve = growth_rate_curve(k, v0=0.2)
        assert curve.shape == (20,)
        assert np.all(curve >= 0)

    @pytest.mark.parametrize("kwargs", [{"k": 0.0}, {"k": -1.0}, {"v0": 0.0}])
    def test_invalid_arguments(self, kwargs):
        defaults = {"k": 1.0, "v0": 0.2}
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            growth_rate_cold(defaults["k"], defaults["v0"])

    def test_invalid_wp(self):
        with pytest.raises(ValueError):
            growth_rate_cold(1.0, 0.2, wp=0.0)


class TestResidual:
    def test_analytic_root_has_zero_residual(self):
        k, v0 = 3.06, 0.2
        gamma = growth_rate_cold(k, v0)
        residual = dispersion_residual(complex(0.0, gamma), k, v0)
        assert abs(residual) < 1e-10

    def test_non_root_has_nonzero_residual(self):
        assert abs(dispersion_residual(complex(0.5, 0.5), 3.06, 0.2)) > 1e-3

    def test_k_zero_rejected(self):
        with pytest.raises(ValueError):
            dispersion_residual(1.0 + 0j, 0.0, 0.2)

    def test_fast_wave_branch_is_a_root_too(self):
        """The stable oscillating branch omega^2 = a^2+1/2+sqrt(2a^2+1/4)."""
        k, v0 = 3.06, 0.2
        a2 = (k * v0) ** 2
        omega = np.sqrt(a2 + 0.5 + np.sqrt(2 * a2 + 0.25))
        assert abs(dispersion_residual(complex(omega, 0.0), k, v0)) < 1e-10


class TestNumericalRoots:
    def test_solver_recovers_analytic_growth_rate(self):
        k, v0 = 3.06, 0.2
        root = solve_dispersion(k, v0)
        assert root.imag == pytest.approx(growth_rate_cold(k, v0), rel=1e-8)
        assert abs(root.real) < 1e-8

    def test_solver_finds_oscillating_root_when_stable(self):
        k, v0 = 3.06, 0.4
        root = solve_dispersion(k, v0)
        assert abs(root.imag) < 1e-8  # no growth
        assert abs(dispersion_residual(root, k, v0)) < 1e-8

    def test_warm_correction_reduces_growth(self):
        """Thermal pressure stabilizes: warm gamma < cold gamma."""
        k, v0, vth = 3.06, 0.2, 0.05
        cold = solve_dispersion(k, v0)
        warm = solve_dispersion(k, v0, vth=vth, guess=cold)
        assert 0 < warm.imag < cold.imag

    def test_custom_guess_respected(self):
        k, v0 = 3.06, 0.2
        a2 = (k * v0) ** 2
        omega_fast = np.sqrt(a2 + 0.5 + np.sqrt(2 * a2 + 0.25))
        root = solve_dispersion(k, v0, guess=complex(omega_fast, 0.0))
        assert root.real == pytest.approx(omega_fast, rel=1e-6)
