"""Batched DL-PIC: one network forward per ensemble step (ISSUE 2)."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.dlpic import DLEnsemble, DLFieldSolver, DLPIC
from repro.models.architectures import build_cnn, build_mlp
from repro.phasespace.binning import PhaseSpaceGrid
from repro.phasespace.normalization import MinMaxNormalizer
from repro.pic.simulation import EnsembleSimulation


@pytest.fixture
def config() -> SimulationConfig:
    return SimulationConfig(n_cells=32, particles_per_cell=30, n_steps=6, vth=0.01, seed=0)


def _solver(config: SimulationConfig, input_kind: str = "flat") -> DLFieldSolver:
    grid = PhaseSpaceGrid(n_x=16, n_v=8, box_length=config.box_length)
    if input_kind == "flat":
        model = build_mlp(input_size=grid.size, output_size=config.n_cells,
                          hidden_size=24, rng=0)
    else:
        model = build_cnn(input_shape=(1, grid.n_v, grid.n_x), output_size=config.n_cells,
                          channels=(2, 2), hidden_size=16, rng=0)
    norm = MinMaxNormalizer.from_dict({"minimum": 0.0, "maximum": 60.0})
    return DLFieldSolver(model, grid, norm, input_kind=input_kind)


class TestConstruction:
    def test_batch_native_solver_not_lifted(self, config):
        ens = DLEnsemble.from_config(config, 2, _solver(config))
        assert isinstance(ens.field_solver, DLFieldSolver)

    def test_plain_ensemble_accepts_dl_solver_natively(self, config):
        """EnsembleSimulation itself drives the solver without lifting."""
        ens = EnsembleSimulation.from_config(config, 2, field_solver=_solver(config))
        assert isinstance(ens.field_solver, DLFieldSolver)
        ens.step()
        assert ens.efield.shape == (2, config.n_cells)

    def test_non_dl_solver_rejected(self, config):
        class NotDL:
            def field(self, x, v):
                return np.zeros(config.n_cells)

        with pytest.raises(TypeError, match="DLFieldSolver"):
            DLEnsemble.from_config(config, 2, NotDL())

    def test_box_length_mismatch_rejected(self, config):
        grid = PhaseSpaceGrid(n_x=16, n_v=8, box_length=999.0)
        model = build_mlp(input_size=grid.size, output_size=config.n_cells,
                          hidden_size=8, rng=0)
        solver = DLFieldSolver(
            model, grid, MinMaxNormalizer.from_dict({"minimum": 0.0, "maximum": 1.0})
        )
        with pytest.raises(ValueError, match="box length"):
            DLEnsemble.from_config(config, 2, solver)

    def test_dl_solver_property(self, config):
        solver = _solver(config)
        ens = DLEnsemble.from_config(config, 2, solver)
        assert ens.dl_solver is solver


class TestParity:
    def test_batch_of_one_bitwise_identical_to_dlpic(self, config):
        """The satellite regression: batch=1 through the ensemble path
        reproduces a plain DLPIC run bit for bit."""
        ens = DLEnsemble.from_config(config, 1, _solver(config))
        ens.run(6)
        single = DLPIC(config, _solver(config))
        single.run(6)
        np.testing.assert_array_equal(ens.particles.x[0], single.particles.x)
        np.testing.assert_array_equal(ens.particles.v[0], single.particles.v)
        np.testing.assert_array_equal(ens.efield[0], single.efield)
        np.testing.assert_array_equal(ens.last_histograms[0], single.last_histogram)

    @pytest.mark.parametrize("input_kind", ["flat", "image"])
    def test_rows_bitwise_identical_to_sequential_runs(self, config, input_kind):
        batch = 3
        ens = DLEnsemble.from_config(config, batch, _solver(config, input_kind))
        ens.run(6)
        hists = ens.last_histograms.copy()
        for b in range(batch):
            single = DLPIC(config.with_updates(seed=config.seed + b),
                           _solver(config, input_kind))
            single.run(6)
            np.testing.assert_array_equal(ens.particles.x[b], single.particles.x)
            np.testing.assert_array_equal(ens.particles.v[b], single.particles.v)
            np.testing.assert_array_equal(ens.efield[b], single.efield)
            np.testing.assert_array_equal(hists[b], single.last_histogram)

    def test_histories_match_sequential(self, config):
        ens = DLEnsemble.from_config(config, 2, _solver(config))
        series = ens.run(6).as_arrays()
        for b in range(2):
            single = DLPIC(config.with_updates(seed=config.seed + b), _solver(config))
            single_series = single.run(6).as_arrays()
            for key in ("kinetic", "potential", "total", "momentum", "mode1"):
                np.testing.assert_array_equal(series[key][:, b], single_series[key])


class TestBatchedSolverStage:
    def test_one_histogram_per_member(self, config):
        ens = DLEnsemble.from_config(config, 4, _solver(config))
        ens.step()
        assert ens.last_histograms.shape == (4, 8, 16)
        np.testing.assert_allclose(
            ens.last_histograms.sum(axis=(1, 2)), config.n_particles, rtol=1e-12
        )

    def test_fields_shape(self, config):
        solver = _solver(config)
        rng = np.random.default_rng(0)
        x = rng.uniform(0, config.box_length, size=(5, 70))
        v = rng.normal(0, 0.1, size=(5, 70))
        out = solver.fields(x, v)
        assert out.shape == (5, config.n_cells)
        assert np.all(np.isfinite(out))

    def test_field_dispatches_on_ndim(self, config):
        solver = _solver(config)
        rng = np.random.default_rng(1)
        x = rng.uniform(0, config.box_length, size=(2, 50))
        v = rng.normal(0, 0.1, size=(2, 50))
        batched = solver.field(x, v)
        assert batched.shape == (2, config.n_cells)
        np.testing.assert_array_equal(solver.field(x[0], v[0]), batched[0])

    def test_last_histogram_none_for_true_ensembles(self, config):
        solver = _solver(config)
        rng = np.random.default_rng(2)
        x = rng.uniform(0, config.box_length, size=(3, 40))
        v = rng.normal(0, 0.1, size=(3, 40))
        solver.fields(x, v)
        assert solver.last_histogram is None
        assert solver.last_histograms.shape[0] == 3

    def test_prepare_inputs_shapes(self, config):
        solver = _solver(config)
        hists = np.zeros((4, 8, 16))
        assert solver.prepare_inputs(hists).shape == (4, 8 * 16)
        image_solver = _solver(config, "image")
        assert image_solver.prepare_inputs(hists).shape == (4, 1, 8, 16)

    def test_prepare_inputs_wrong_shape_rejected(self, config):
        with pytest.raises(ValueError, match="do not match"):
            _solver(config).prepare_inputs(np.zeros((4, 3, 3)))
