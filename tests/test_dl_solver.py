"""DLFieldSolver: preprocessing, prediction, persistence."""

import numpy as np
import pytest

from repro.dlpic.solver import DLFieldSolver
from repro.models.architectures import build_cnn, build_mlp
from repro.phasespace.binning import PhaseSpaceGrid, bin_phase_space
from repro.phasespace.normalization import MinMaxNormalizer


@pytest.fixture
def ps_grid() -> PhaseSpaceGrid:
    return PhaseSpaceGrid(n_x=8, n_v=4, box_length=2.0, v_min=-0.5, v_max=0.5)


@pytest.fixture
def normalizer() -> MinMaxNormalizer:
    return MinMaxNormalizer.from_dict({"minimum": 0.0, "maximum": 10.0})


@pytest.fixture
def mlp_solver(ps_grid, normalizer) -> DLFieldSolver:
    model = build_mlp(input_size=ps_grid.size, output_size=6, hidden_size=8, rng=0)
    return DLFieldSolver(model, ps_grid, normalizer, input_kind="flat")


class TestPrepareInput:
    def test_flat_shape(self, mlp_solver, ps_grid):
        out = mlp_solver.prepare_input(np.ones(ps_grid.shape))
        assert out.shape == (1, ps_grid.size)

    def test_image_shape(self, ps_grid, normalizer):
        model = build_cnn(
            input_shape=(1, ps_grid.n_v, ps_grid.n_x), output_size=6,
            channels=(2, 2), hidden_size=8, rng=0,
        )
        solver = DLFieldSolver(model, ps_grid, normalizer, input_kind="image")
        out = solver.prepare_input(np.ones(ps_grid.shape))
        assert out.shape == (1, 1, ps_grid.n_v, ps_grid.n_x)

    def test_normalization_applied(self, mlp_solver, ps_grid):
        hist = np.full(ps_grid.shape, 5.0)
        out = mlp_solver.prepare_input(hist)
        np.testing.assert_allclose(out, 0.5)

    def test_wrong_histogram_shape_rejected(self, mlp_solver):
        with pytest.raises(ValueError, match="does not match grid"):
            mlp_solver.prepare_input(np.ones((3, 3)))


class TestFieldProtocol:
    def test_field_returns_grid_sized_array(self, mlp_solver):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 2.0, 100)
        v = rng.normal(0, 0.1, 100)
        e = mlp_solver.field(x, v)
        assert e.shape == (6,)
        assert np.all(np.isfinite(e))

    def test_field_caches_last_histogram(self, mlp_solver, ps_grid):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 2.0, 50)
        v = rng.normal(0, 0.1, 50)
        mlp_solver.field(x, v)
        assert mlp_solver.last_histogram.sum() == pytest.approx(50)
        np.testing.assert_array_equal(
            mlp_solver.last_histogram, bin_phase_space(x, v, ps_grid, order="ngp")
        )

    def test_field_deterministic(self, mlp_solver):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 2.0, 50)
        v = rng.normal(size=50) * 0.1
        np.testing.assert_array_equal(mlp_solver.field(x, v), mlp_solver.field(x, v))

    def test_cic_binning_option(self, ps_grid, normalizer):
        model = build_mlp(input_size=ps_grid.size, output_size=6, hidden_size=8, rng=0)
        solver = DLFieldSolver(model, ps_grid, normalizer, binning="cic")
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 2.0, 50)
        v = rng.normal(size=50) * 0.1
        solver.field(x, v)
        np.testing.assert_allclose(
            solver.last_histogram, bin_phase_space(x, v, ps_grid, order="cic")
        )


class TestValidation:
    def test_unfitted_normalizer_rejected(self, ps_grid):
        model = build_mlp(input_size=ps_grid.size, output_size=6, hidden_size=8, rng=0)
        with pytest.raises(ValueError, match="fitted"):
            DLFieldSolver(model, ps_grid, MinMaxNormalizer())

    def test_unknown_input_kind_rejected(self, ps_grid, normalizer):
        model = build_mlp(input_size=ps_grid.size, output_size=6, hidden_size=8, rng=0)
        with pytest.raises(ValueError, match="input_kind"):
            DLFieldSolver(model, ps_grid, normalizer, input_kind="graph")


class TestPersistence:
    def test_save_load_roundtrip(self, mlp_solver, ps_grid, tmp_path):
        mlp_solver.save(tmp_path / "solver")
        fresh_model = build_mlp(input_size=ps_grid.size, output_size=6, hidden_size=8, rng=99)
        loaded = DLFieldSolver.load(tmp_path / "solver", fresh_model)
        rng = np.random.default_rng(4)
        x = rng.uniform(0, 2.0, 80)
        v = rng.normal(size=80) * 0.2
        np.testing.assert_allclose(loaded.field(x, v), mlp_solver.field(x, v), atol=1e-12)

    def test_loaded_metadata(self, mlp_solver, ps_grid, tmp_path):
        mlp_solver.save(tmp_path / "solver")
        fresh = build_mlp(input_size=ps_grid.size, output_size=6, hidden_size=8, rng=0)
        loaded = DLFieldSolver.load(tmp_path / "solver", fresh)
        assert loaded.ps_grid == ps_grid
        assert loaded.input_kind == "flat"
        assert loaded.binning == "ngp"
        assert loaded.normalizer.maximum == mlp_solver.normalizer.maximum

    def test_load_auto_rebuilds_architecture(self, mlp_solver, ps_grid, tmp_path):
        """No pre-built model needed: the checkpoint fingerprint is enough."""
        mlp_solver.save(tmp_path / "solver")
        loaded = DLFieldSolver.load_auto(tmp_path / "solver")
        rng = np.random.default_rng(5)
        x = rng.uniform(0, 2.0, 60)
        v = rng.normal(size=60) * 0.2
        np.testing.assert_array_equal(loaded.field(x, v), mlp_solver.field(x, v))

    def test_load_auto_rebuilds_cnn(self, ps_grid, normalizer, tmp_path):
        model = build_cnn(
            input_shape=(1, ps_grid.n_v, ps_grid.n_x), output_size=6,
            channels=(2, 2), hidden_size=8, rng=0,
        )
        solver = DLFieldSolver(model, ps_grid, normalizer, input_kind="image")
        solver.save(tmp_path / "cnn")
        loaded = DLFieldSolver.load_auto(tmp_path / "cnn")
        rng = np.random.default_rng(6)
        x = rng.uniform(0, 2.0, 60)
        v = rng.normal(size=60) * 0.2
        np.testing.assert_array_equal(loaded.field(x, v), solver.field(x, v))
