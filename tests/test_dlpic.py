"""The DL-based PIC cycle (Fig. 2)."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.dlpic.simulation import DLPIC
from repro.dlpic.solver import DLFieldSolver
from repro.models.architectures import build_mlp
from repro.phasespace.binning import PhaseSpaceGrid
from repro.phasespace.normalization import MinMaxNormalizer


def _untrained_solver(config: SimulationConfig, n_v: int = 8, n_x: int = 16) -> DLFieldSolver:
    grid = PhaseSpaceGrid(n_x=n_x, n_v=n_v, box_length=config.box_length)
    model = build_mlp(input_size=grid.size, output_size=config.n_cells, hidden_size=16, rng=0)
    norm = MinMaxNormalizer.from_dict({"minimum": 0.0, "maximum": 50.0})
    return DLFieldSolver(model, grid, norm)


@pytest.fixture
def config() -> SimulationConfig:
    return SimulationConfig(n_cells=32, particles_per_cell=30, n_steps=5, vth=0.01, seed=0)


class TestCycle:
    def test_runs_and_records(self, config):
        sim = DLPIC(config, _untrained_solver(config))
        hist = sim.run(5)
        assert len(hist) == 6
        assert np.all(np.isfinite(hist.as_arrays()["total"]))

    def test_field_comes_from_network(self, config):
        solver = _untrained_solver(config)
        sim = DLPIC(config, solver)
        expected = solver.predict_from_histogram(solver.last_histogram)
        np.testing.assert_allclose(sim.efield, expected)

    def test_histogram_mass_tracks_particle_count(self, config):
        sim = DLPIC(config, _untrained_solver(config))
        sim.run(3)
        assert sim.last_histogram.sum() == pytest.approx(config.n_particles)

    def test_no_charge_deposition_solver_involved(self, config):
        sim = DLPIC(config, _untrained_solver(config))
        assert isinstance(sim.field_solver, DLFieldSolver)
        assert sim.dl_solver is sim.field_solver

    def test_box_length_mismatch_rejected(self, config):
        grid = PhaseSpaceGrid(n_x=16, n_v=8, box_length=999.0)
        model = build_mlp(input_size=grid.size, output_size=config.n_cells, hidden_size=8, rng=0)
        solver = DLFieldSolver(
            model, grid, MinMaxNormalizer.from_dict({"minimum": 0.0, "maximum": 1.0})
        )
        with pytest.raises(ValueError, match="box length"):
            DLPIC(config, solver)


class TestAgainstTraditional:
    def test_trained_solver_tracks_traditional_field(
        self, tiny_trained_solver, tiny_solver_config
    ):
        """A real trained solver predicts the initial field with error
        well below the field's own scale."""
        from repro.pic.simulation import TraditionalPIC

        trad = TraditionalPIC(tiny_solver_config)
        dl = DLPIC(tiny_solver_config, tiny_trained_solver)
        scale = np.abs(trad.efield).max()
        error = np.abs(dl.efield - trad.efield).max()
        # The t=0 field of a noisy tiny run is mostly shot noise, so the
        # weak test-scale network only gets the order of magnitude right.
        assert error < 5.0 * scale

    def test_trained_dlpic_develops_instability(
        self, tiny_trained_solver, tiny_solver_config
    ):
        """The DL-based PIC produces a growing two-stream mode."""
        sim = DLPIC(tiny_solver_config, tiny_trained_solver)
        hist = sim.run(40)
        a = hist.as_arrays()
        assert a["mode1"][-5:].mean() > a["mode1"][:5].mean()

    def test_mover_identical_to_traditional(self, config):
        """With the same field values, DL-PIC and traditional PIC move
        particles identically (the cycle only swaps the field solve)."""
        from repro.pic.simulation import PICSimulation

        class FixedField:
            def field(self, x, v):
                return np.sin(2 * np.pi * np.arange(config.n_cells) / config.n_cells)

        a = PICSimulation(config, FixedField())
        b = PICSimulation(config, FixedField())
        a.step()
        b.step()
        np.testing.assert_array_equal(a.particles.x, b.particles.x)
        np.testing.assert_array_equal(a.particles.v, b.particles.v)
