"""Energy-conserving semi-implicit PIC (the paper's reference [4] scheme)."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.pic.energy_conserving import EnergyConservingPIC
from repro.pic.simulation import TraditionalPIC


@pytest.fixture
def config() -> SimulationConfig:
    return SimulationConfig(n_cells=32, particles_per_cell=60, n_steps=20, vth=0.01, seed=0)


class TestConstruction:
    def test_initial_field_from_gauss_law(self, config):
        sim = EnergyConservingPIC(config)
        trad = TraditionalPIC(config)
        np.testing.assert_allclose(sim.efield, trad.efield, atol=1e-12)

    def test_invalid_iteration_controls(self, config):
        with pytest.raises(ValueError):
            EnergyConservingPIC(config, max_iterations=0)
        with pytest.raises(ValueError):
            EnergyConservingPIC(config, tolerance=0.0)

    def test_velocities_not_staggered(self, config):
        sim = EnergyConservingPIC(config)
        np.testing.assert_array_equal(sim.v_at_integer_time, sim.particles.v)


class TestConservation:
    def test_total_energy_conserved_to_picard_tolerance(self):
        """The scheme's defining property: exact energy conservation,
        even through the nonlinear phase of the instability."""
        cfg = SimulationConfig(n_cells=32, particles_per_cell=100, vth=0.01, seed=1)
        sim = EnergyConservingPIC(cfg, tolerance=1e-13)
        hist = sim.run(60)
        assert hist.energy_variation() < 1e-10

    def test_energy_conserved_at_larger_time_step(self):
        """dt 2.5x the explicit default still conserves exactly, as long
        as the Picard fixed point converges (it stops contracting once
        particles cross several cells per step — real implicit codes
        switch to Newton-Krylov there)."""
        cfg = SimulationConfig(
            n_cells=32, particles_per_cell=60, dt=0.5, vth=0.01, seed=2
        )
        sim = EnergyConservingPIC(cfg, max_iterations=60, tolerance=1e-13)
        hist = sim.run(30)
        assert hist.energy_variation() < 1e-8
        assert np.all(np.isfinite(hist.as_arrays()["total"]))

    def test_momentum_not_exactly_conserved(self):
        """The mirror image of the explicit scheme's trade-off."""
        cfg = SimulationConfig(n_cells=32, particles_per_cell=100, vth=0.01, seed=3)
        ec = EnergyConservingPIC(cfg).run(60)
        explicit = TraditionalPIC(cfg).run(60)
        assert abs(ec.momentum_drift()) > 10 * abs(explicit.momentum_drift())

    def test_explicit_scheme_is_the_energy_mirror(self):
        """Cross-check: explicit conserves momentum better, EC energy."""
        cfg = SimulationConfig(n_cells=32, particles_per_cell=100, vth=0.01, seed=4)
        ec = EnergyConservingPIC(cfg, tolerance=1e-13).run(60)
        explicit = TraditionalPIC(cfg).run(60)
        assert ec.energy_variation() < 1e-9 < explicit.energy_variation()


class TestPhysics:
    def test_two_stream_growth_rate(self):
        from repro.theory.dispersion import growth_rate_cold
        from repro.theory.growth import fit_growth_rate

        cfg = SimulationConfig(particles_per_cell=150, v0=0.2, vth=0.025, seed=5)
        hist = EnergyConservingPIC(cfg).run(120)
        a = hist.as_arrays()
        fit = fit_growth_rate(a["time"], a["mode1"])
        gamma = growth_rate_cold(2 * np.pi / cfg.box_length, cfg.v0)
        assert fit.relative_error(gamma) < 0.25
        assert fit.r_squared > 0.9

    def test_matches_explicit_in_linear_phase(self):
        """Before nonlinearity both schemes track the same E1 growth."""
        cfg = SimulationConfig(n_cells=64, particles_per_cell=100, vth=0.01, seed=6)
        ec = EnergyConservingPIC(cfg).run(40).as_arrays()
        ex = TraditionalPIC(cfg).run(40).as_arrays()
        # Same order of magnitude throughout the linear phase.
        ratio = ec["mode1"][1:] / ex["mode1"][1:]
        assert np.all(ratio > 0.2)
        assert np.all(ratio < 5.0)


class TestIteration:
    def test_picard_converges_quickly(self, config):
        sim = EnergyConservingPIC(config, tolerance=1e-12)
        sim.step()
        assert 1 <= sim.last_iterations <= 12

    def test_tighter_tolerance_costs_iterations(self, config):
        loose = EnergyConservingPIC(config, tolerance=1e-4)
        tight = EnergyConservingPIC(config, tolerance=1e-14, max_iterations=50)
        loose.step()
        tight.step()
        assert tight.last_iterations >= loose.last_iterations

    def test_run_interface(self, config):
        hist = EnergyConservingPIC(config).run(5)
        assert len(hist) == 6
        with pytest.raises(ValueError):
            EnergyConservingPIC(config).run(-1)
